// bench_kernel: single-thread speedup of the SoA + SIMD kernel layer over
// the pre-refactor row-major scalar code, for the three hot evaluator ops.
//
// The CSV reuses bench_to_json's schema with the `threads` column encoding
// the implementation pass instead of a lane count (everything here runs on
// one thread):
//
//   pass 1  legacy   — the pre-refactor loops (row-major Dot() per
//                      direction), inlined here as the frozen baseline;
//   pass 2  scalar   — the kernel layer with FAIRHMS_SIMD=off semantics
//                      (SetMode(kOff)): SoA layout + tiling, no vectors;
//   pass 3  simd     — the kernel layer at the host's best dispatch level
//                      (SetMode(kAuto)).
//
// bench_to_json then does exactly the right thing: "speedup" is
// pass-vs-legacy, --min_speedup=mhr_sweep:3:3.0 gates the SIMD pass
// against the pre-refactor baseline, and the checksum gate proves all
// three implementations produce bit-identical results.
//
//   bench_kernel --n=10000 --dim=6 --net=20000 --k=20 --reps=5

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/net_evaluator.h"
#include "data/generators.h"
#include "geom/vec.h"
#include "skyline/skyline.h"
#include "utility/utility_net.h"

namespace fairhms {
namespace {

constexpr double kEps = NetEvaluator::kDegenerate;

struct OpResult {
  std::string op;
  int pass = 0;
  double ms = 0.0;
  std::string checksum;
};

/// Serial, order-fixed digest (same scheme as bench_parallel_eval).
std::string Digest(const double* values, size_t count) {
  double sum = 0.0;
  double alt = 0.0;
  for (size_t i = 0; i < count; ++i) {
    sum += values[i];
    alt += values[i] * static_cast<double>((i % 64) + 1);
  }
  return StrFormat("%.17g|%.17g", sum, alt);
}

// ---------------------------------------------------------------------------
// Pass 1: the pre-refactor implementations, frozen. Row-major coordinate
// reads, one Dot() per (direction, row), per-row division in the sweep.

void LegacyNetBuild(const Dataset& data, const UtilityNet& net,
                    const std::vector<int>& rows, std::vector<double>* best) {
  const size_t m = net.size();
  const size_t d = static_cast<size_t>(data.dim());
  best->assign(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    double b = 0.0;
    for (int r : rows) {
      b = std::max(b, Dot(net.vec(j), data.point(static_cast<size_t>(r)), d));
    }
    (*best)[j] = b;
  }
}

void LegacyHappinessRow(const Dataset& data, const UtilityNet& net,
                        const std::vector<double>& best, int row,
                        double* out) {
  const size_t m = net.size();
  const size_t d = static_cast<size_t>(data.dim());
  const double* p = data.point(static_cast<size_t>(row));
  for (size_t j = 0; j < m; ++j) {
    if (best[j] <= kEps) {
      out[j] = 1.0;
    } else {
      out[j] = std::min(1.0, Dot(net.vec(j), p, d) / best[j]);
    }
  }
}

double LegacyMhr(const Dataset& data, const UtilityNet& net,
                 const std::vector<double>& best,
                 const std::vector<int>& rows) {
  const size_t m = net.size();
  const size_t d = static_cast<size_t>(data.dim());
  double mhr = 1.0;
  for (size_t j = 0; j < m; ++j) {
    double hr;
    if (best[j] <= kEps) {
      hr = 1.0;
    } else {
      hr = 0.0;
      for (int r : rows) {
        const double s = Dot(net.vec(j), data.point(static_cast<size_t>(r)), d);
        hr = std::max(hr, std::min(1.0, s / best[j]));
      }
    }
    mhr = std::min(mhr, hr);
    if (mhr <= 0.0) break;
  }
  return mhr;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const int dim = static_cast<int>(flags.GetInt("dim", 6));
  const size_t net_size = static_cast<size_t>(flags.GetInt("net", 20000));
  const int k = static_cast<int>(flags.GetInt("k", 20));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const int sweep_iters = static_cast<int>(flags.GetInt("sweep_iters", 50));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Rng rng(seed);
  const Dataset data = GenAntiCorrelated(n, dim, &rng).NormalizedMinMax();
  const std::vector<int> skyline = ComputeSkyline(data);
  std::vector<int> cand_rows;
  const size_t cand_target = static_cast<size_t>(flags.GetInt("cand", 1000));
  const size_t cand_count = std::min(cand_target, skyline.size());
  for (size_t i = 0; i < cand_count; ++i) {
    cand_rows.push_back(skyline[i * skyline.size() / cand_count]);
  }
  Rng net_rng(seed + 1);
  const UtilityNet net = UtilityNet::SampleRandom(dim, net_size, &net_rng);
  std::vector<int> solution;
  for (int i = 0; i < k && !skyline.empty(); ++i) {
    solution.push_back(
        skyline[static_cast<size_t>(i) * skyline.size() / static_cast<size_t>(k)]);
  }

  std::fprintf(stdout,
               "# bench=kernel n=%zu dim=%d net=%zu k=%d cand=%zu reps=%d "
               "sweep_iters=%d seed=%llu simd_detected=%s "
               "passes=1:legacy,2:kernel-scalar,3:kernel-simd\n",
               n, dim, net_size, k, cand_rows.size(), reps, sweep_iters,
               static_cast<unsigned long long>(seed),
               simd::DispatchLevelName(simd::DetectedLevel()));
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  std::vector<OpResult> results;
  for (int pass = 1; pass <= 3; ++pass) {
    if (pass == 2) simd::SetMode(simd::SimdMode::kOff);
    if (pass == 3) simd::SetMode(simd::SimdMode::kAuto);

    // net_build: the denominator precompute over the skyline.
    std::vector<double> legacy_best;
    {
      double best_ms = -1.0;
      std::string checksum;
      for (int r = 0; r < reps; ++r) {
        if (pass == 1) {
          Stopwatch sw;
          LegacyNetBuild(data, net, skyline, &legacy_best);
          const double ms = sw.ElapsedMillis();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
          checksum = Digest(legacy_best.data(), legacy_best.size());
        } else {
          Stopwatch sw;
          const NetEvaluator eval(&data, &net, skyline, /*threads=*/1);
          const double ms = sw.ElapsedMillis();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
          checksum = Digest(eval.best_data(), net_size);
        }
      }
      results.push_back({"net_build", pass, best_ms, checksum});
    }

    // cache_fill: the candidates x directions happiness matrix.
    {
      double best_ms = -1.0;
      std::string checksum;
      for (int r = 0; r < reps; ++r) {
        if (pass == 1) {
          // The allocation is timed on purpose: the pre-refactor
          // CacheCandidates resized its matrix inside the call, paying
          // zero-init plus first-touch page faults per build. The kernel
          // passes recycle the allocation through the scratch pool, which
          // is part of the measured improvement.
          Stopwatch sw;
          std::vector<double> cache(cand_rows.size() * net_size);
          for (size_t i = 0; i < cand_rows.size(); ++i) {
            LegacyHappinessRow(data, net, legacy_best, cand_rows[i],
                               &cache[i * net_size]);
          }
          const double ms = sw.ElapsedMillis();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
          checksum = Digest(cache.data(), net_size);  // First row.
        } else {
          NetEvaluator fresh(&data, &net, skyline, /*threads=*/1);
          Stopwatch sw;
          fresh.CacheCandidates(cand_rows);
          const double ms = sw.ElapsedMillis();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
          const double* row = fresh.cached_row(cand_rows.front());
          checksum = row != nullptr ? Digest(row, net_size) : "uncached";
        }
      }
      results.push_back({"cache_fill", pass, best_ms, checksum});
    }

    // mhr_sweep: batched full min-over-net sweeps for the solution set.
    {
      double best_ms = -1.0;
      double mhr = 0.0;
      if (pass == 1) {
        for (int r = 0; r < reps; ++r) {
          Stopwatch sw;
          for (int it = 0; it < sweep_iters; ++it) {
            mhr = LegacyMhr(data, net, legacy_best, solution);
          }
          const double ms = sw.ElapsedMillis();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
        }
      } else {
        const NetEvaluator eval(&data, &net, skyline, /*threads=*/1);
        for (int r = 0; r < reps; ++r) {
          Stopwatch sw;
          for (int it = 0; it < sweep_iters; ++it) mhr = eval.Mhr(solution);
          const double ms = sw.ElapsedMillis();
          if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
        }
      }
      results.push_back({"mhr_sweep", pass, best_ms, StrFormat("%.17g", mhr)});
    }
  }

  for (const OpResult& r : results) {
    std::fprintf(stdout, "%s,%d,%.3f,%s\n", r.op.c_str(), r.pass, r.ms,
                 r.checksum.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
