#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/group_adapter.h"
#include "algo/intcov.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    const std::string s(arg + 2);
    const size_t eq = s.find('=');
    if (eq == std::string::npos) {
      kv_[s] = "1";
    } else {
      kv_[s.substr(0, eq)] = s.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const { return kv_.count(key) > 0; }

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  int64_t v = def;
  ParseInt64(it->second, &v);
  return v;
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v = def;
  ParseDouble(it->second, &v);
  return v;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

namespace {

DatasetCase Finish(std::string name, Dataset normalized, Grouping grouping) {
  DatasetCase c;
  c.name = std::move(name);
  c.data = std::move(normalized);
  c.grouping = std::move(grouping);
  c.skyline = ComputeSkyline(c.data);
  c.pool = ComputeFairCandidatePool(c.data, c.grouping);
  return c;
}

}  // namespace

DatasetCase MakeCase(const std::string& key, uint64_t seed, size_t n_override,
                     int anticor_d, int anticor_c) {
  Rng rng(seed);
  const auto parts = Split(key, ':');
  const std::string& base = parts[0];
  const std::string attr = parts.size() > 1 ? parts[1] : "";

  if (base == "anticor") {
    const size_t n = n_override > 0 ? n_override : 10000;
    Dataset data = GenAntiCorrelated(n, anticor_d, &rng).ScaledByMax();
    Grouping g = GroupBySumRank(data, anticor_c);
    return Finish(StrFormat("AntiCor_%dD (C=%d, n=%zu)", anticor_d, anticor_c,
                            n),
                  std::move(data), std::move(g));
  }

  Dataset raw(1);
  std::string label;
  if (base == "lawschs") {
    raw = MakeLawschsSim(&rng, n_override > 0 ? n_override : 65494);
    label = "Lawschs";
  } else if (base == "adult") {
    raw = MakeAdultSim(&rng, n_override > 0 ? n_override : 32561);
    label = "Adult";
  } else if (base == "compas") {
    raw = MakeCompasSim(&rng, n_override > 0 ? n_override : 4743);
    label = "Compas";
  } else if (base == "credit") {
    raw = MakeCreditSim(&rng, n_override > 0 ? n_override : 1000);
    label = "Credit";
  } else {
    std::fprintf(stderr, "unknown dataset key '%s'\n", key.c_str());
    std::abort();
  }
  Dataset data = raw.ScaledByMax();

  Grouping g;
  std::string attr_label = attr;
  if (attr == "g+r") {
    g = GroupByCategoricalProduct(data, {"gender", "race"}).value();
    attr_label = "G+R";
  } else if (attr == "g+ir") {
    g = GroupByCategoricalProduct(data, {"gender", "isRecid"}).value();
    attr_label = "G+iR";
  } else if (attr == "wy") {
    g = GroupByCategorical(data, "working_years").value();
    attr_label = "WY";
  } else {
    g = GroupByCategorical(data, attr).value();
  }
  return Finish(label + " (" + attr_label + ")", std::move(data),
                std::move(g));
}

std::vector<std::string> MultiDimCaseKeys() {
  return {"adult:gender",  "adult:race",     "adult:g+r",
          "anticor",       "compas:gender",  "compas:isRecid",
          "compas:g+ir",   "credit:job",     "credit:housing",
          "credit:wy"};
}

GroupBounds PaperBounds(const DatasetCase& c, int k) {
  return GroupBounds::Proportional(k, c.grouping.Counts(), 0.1);
}

double ReferenceMhr(const DatasetCase& c, const std::vector<int>& rows) {
  return EvaluateMhr(c.data, c.skyline, rows);
}

std::vector<std::pair<std::string, FairRunner>> FairRoster(bool with_intcov) {
  std::vector<std::pair<std::string, FairRunner>> roster;
  if (with_intcov) {
    roster.emplace_back("IntCov", [](const DatasetCase& c,
                                     const GroupBounds& b) {
      IntCovOptions opts;
      opts.pool = c.pool;
      opts.db_rows = c.skyline;
      return IntCov(c.data, c.grouping, b, opts);
    });
  }
  roster.emplace_back("BiGreedy", [](const DatasetCase& c,
                                     const GroupBounds& b) {
    BiGreedyOptions opts;
    opts.pool = c.pool;
    opts.db_rows = c.skyline;
    return BiGreedy(c.data, c.grouping, b, opts);
  });
  roster.emplace_back("BiGreedy+", [](const DatasetCase& c,
                                      const GroupBounds& b) {
    BiGreedyPlusOptions opts;
    opts.base.pool = c.pool;
    opts.base.db_rows = c.skyline;
    return BiGreedyPlus(c.data, c.grouping, b, opts);
  });
  roster.emplace_back("F-Greedy", [](const DatasetCase& c,
                                     const GroupBounds& b) {
    FairGreedyOptions opts;
    opts.pool = c.pool;
    opts.db_rows = c.skyline;
    return FairGreedy(c.data, c.grouping, b, opts);
  });
  roster.emplace_back("G-Greedy", [](const DatasetCase& c,
                                     const GroupBounds& b) {
    GroupAdapterOptions opts;
    opts.db_rows = c.skyline;
    return GroupAdapt(
        [](const Dataset& d, const std::vector<int>& rows, int k) {
          return RdpGreedy(d, rows, k);
        },
        "Greedy", c.data, c.grouping, b, opts);
  });
  roster.emplace_back("G-DMM", [](const DatasetCase& c,
                                  const GroupBounds& b) {
    GroupAdapterOptions opts;
    opts.db_rows = c.skyline;
    return GroupAdapt(
        [](const Dataset& d, const std::vector<int>& rows, int k) {
          return Dmm(d, rows, k);
        },
        "DMM", c.data, c.grouping, b, opts);
  });
  roster.emplace_back("G-HS", [](const DatasetCase& c, const GroupBounds& b) {
    GroupAdapterOptions opts;
    opts.db_rows = c.skyline;
    return GroupAdapt(
        [](const Dataset& d, const std::vector<int>& rows, int k) {
          return HittingSet(d, rows, k);
        },
        "HS", c.data, c.grouping, b, opts);
  });
  roster.emplace_back("G-Sphere", [](const DatasetCase& c,
                                     const GroupBounds& b) {
    GroupAdapterOptions opts;
    opts.db_rows = c.skyline;
    return GroupAdapt(
        [](const Dataset& d, const std::vector<int>& rows, int k) {
          return SphereAlgo(d, rows, k);
        },
        "Sphere", c.data, c.grouping, b, opts);
  });
  return roster;
}

std::vector<std::pair<std::string, PlainRunner>> PlainRoster() {
  std::vector<std::pair<std::string, PlainRunner>> roster;
  roster.emplace_back("Greedy", [](const DatasetCase& c, int k) {
    return RdpGreedy(c.data, c.skyline, k);
  });
  roster.emplace_back("DMM", [](const DatasetCase& c, int k) {
    return Dmm(c.data, c.skyline, k);
  });
  roster.emplace_back("HS", [](const DatasetCase& c, int k) {
    return HittingSet(c.data, c.skyline, k);
  });
  roster.emplace_back("Sphere", [](const DatasetCase& c, int k) {
    return SphereAlgo(c.data, c.skyline, k);
  });
  return roster;
}

RunResult RunFair(const FairRunner& runner, const DatasetCase& c,
                  const GroupBounds& bounds) {
  RunResult r;
  auto sol = runner(c, bounds);
  if (!sol.ok()) {
    r.ok = false;
    r.note = StatusCodeToString(sol.status().code());
    return r;
  }
  r.ok = true;
  r.ms = sol->elapsed_ms;
  r.mhr = ReferenceMhr(c, sol->rows);
  r.violations = CountViolations(sol->rows, c.grouping, bounds);
  return r;
}

RunResult RunPlain(const PlainRunner& runner, const DatasetCase& c, int k,
                   const GroupBounds& bounds) {
  RunResult r;
  auto sol = runner(c, k);
  if (!sol.ok()) {
    r.ok = false;
    r.note = StatusCodeToString(sol.status().code());
    return r;
  }
  r.ok = true;
  r.ms = sol->elapsed_ms;
  r.mhr = ReferenceMhr(c, sol->rows);
  r.violations = CountViolations(sol->rows, c.grouping, bounds);
  return r;
}

double UnconstrainedReference(const DatasetCase& c, int k) {
  const Grouping single = SingleGroup(c.data.size());
  std::vector<int> lower = {0};
  std::vector<int> upper = {k};
  auto bounds = GroupBounds::Explicit(k, lower, upper);
  if (!bounds.ok()) return 0.0;
  if (c.data.dim() == 2) {
    IntCovOptions opts;
    opts.db_rows = c.skyline;
    auto sol = IntCov(c.data, single, *bounds, opts);
    if (sol.ok()) return ReferenceMhr(c, sol->rows);
  }
  double best = 0.0;
  for (const auto& [name, runner] : PlainRoster()) {
    auto sol = runner(c, k);
    if (sol.ok()) best = std::max(best, ReferenceMhr(c, sol->rows));
  }
  // Unconstrained BiGreedy as well (usually the strongest).
  BiGreedyOptions opts;
  opts.db_rows = c.skyline;
  auto bg = BiGreedy(c.data, single, *bounds, opts);
  if (bg.ok()) best = std::max(best, ReferenceMhr(c, bg->rows));
  return best;
}

namespace {
constexpr int kColWidth = 11;
}  // namespace

void PrintHeader(const std::string& title, const std::string& xlabel,
                 const std::vector<std::string>& series) {
  std::printf("\n## %s\n", title.c_str());
  std::printf("%-14s", xlabel.c_str());
  for (const auto& s : series) std::printf("%*s", kColWidth, s.c_str());
  std::printf("\n");
  for (size_t i = 0; i < 14 + series.size() * kColWidth; ++i)
    std::printf("-");
  std::printf("\n");
}

void PrintRow(const std::string& x, const std::vector<std::string>& cells) {
  std::printf("%-14s", x.c_str());
  for (const auto& c : cells) std::printf("%*s", kColWidth, c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatMhr(const RunResult& r) {
  if (!r.ok) return "-";
  return StrFormat("%.4f", r.mhr);
}

std::string FormatMs(const RunResult& r) {
  if (!r.ok) return "-";
  if (r.ms >= 100) return StrFormat("%.0f", r.ms);
  return StrFormat("%.2f", r.ms);
}

std::string FormatErr(const RunResult& r) {
  if (!r.ok) return "-";
  return StrFormat("%d", r.violations);
}

}  // namespace bench
}  // namespace fairhms
