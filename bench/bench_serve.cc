// bench_serve: sustained-throughput harness for the serving stack (Server
// + ProtocolService over a DatasetCatalog). Builds a fixed query battery,
// boots an in-process daemon on an ephemeral loopback TCP port, and serves
// the whole battery once per client count — the battery is split
// round-robin across the clients, so every pass does the same total work
// and the `threads` column (= concurrent clients) measures how the worker
// pool scales.
//
// Emits the machine-readable CSV tools/bench_to_json consumes. The
// checksum digests every response line after normalizing the
// order-dependent envelope fields (seq) and wall-clock timings — the
// battery is read-only, so the response *set* must be bit-identical at
// every concurrency level, and the checksum consistency gate is a
// concurrent-vs-serial bit-identity check over the full wire bytes.
//
//   bench_serve --n=20000 --dim=4 --groups=3 --lines=240
//       --clients=1,2,4,8 --workers=4 |
//     bench_to_json --out=BENCH_serve.json --min_speedup=serve:4:1.5

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/catalog.h"
#include "api/server.h"
#include "api/service.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "data/grouping.h"

namespace fairhms {
namespace {

/// Replaces the numeric value of every order- or clock-dependent field
/// with `T`, leaving the payload bytes to the digest. The warm_start
/// telemetry flag is stripped outright: whether a solve found a warm
/// memo hint depends on which queries happened to finish first, so it is
/// execution-history metadata, not payload — the hint is advisory and
/// the solution bytes are identical either way.
std::string NormalizeResponse(std::string s) {
  static const std::string kWarmStart = ", \"warm_start\": true";
  for (size_t pos; (pos = s.find(kWarmStart)) != std::string::npos;) {
    s.erase(pos, kWarmStart.size());
  }
  for (const char* key : {"seq", "solve_ms", "total_ms"}) {
    const std::string needle = std::string("\"") + key + "\": ";
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      const size_t start = pos + needle.size();
      size_t end = start;
      while (end < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[end])) ||
              std::strchr(".eE+-", s[end]) != nullptr)) {
        ++end;
      }
      s.replace(start, end - start, "T");
      pos = start + 1;
    }
  }
  return s;
}

/// Order-insensitive digest of the normalized response set: lines are
/// sorted before hashing, so any client split that serves the same battery
/// digests identically.
std::string Digest(std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end());
  uint64_t hash = 1469598103934665603ull;  // FNV-1a.
  for (const std::string& line : lines) {
    for (const char c : line) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ull;
  }
  return StrFormat("%zu|%016llx", lines.size(),
                   static_cast<unsigned long long>(hash));
}

/// One pipelined loopback client: a writer thread streams its share of the
/// battery while the caller's thread reads responses, so neither side can
/// deadlock on full socket buffers.
bool RunClient(int port, const std::vector<std::string>& lines,
               std::vector<std::string>* responses) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::thread writer([fd, &lines] {
    std::string payload;
    for (const std::string& line : lines) payload += line + "\n";
    size_t off = 0;
    while (off < payload.size()) {
      const ssize_t sent =
          ::send(fd, payload.data() + off, payload.size() - off, 0);
      if (sent <= 0) return;
      off += static_cast<size_t>(sent);
    }
  });
  bool ok = true;
  std::string buffer;
  char chunk[8192];
  while (responses->size() < lines.size()) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      ok = false;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(got));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      responses->push_back(buffer.substr(0, pos));
      buffer.erase(0, pos + 1);
    }
  }
  writer.join();
  ::close(fd);
  return ok;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 20000));
  const int dim = static_cast<int>(flags.GetInt("dim", 4));
  const int groups = static_cast<int>(flags.GetInt("groups", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t lines = static_cast<size_t>(flags.GetInt("lines", 240));
  const int workers = static_cast<int>(flags.GetInt("workers", 4));

  std::vector<int> client_counts;
  for (const std::string& t :
       Split(flags.GetString("clients", "1,2,4,8"), ',')) {
    int64_t v = 0;
    if (!ParseInt64(Trim(t), &v) || v < 1) {
      std::fprintf(stderr, "bad --clients entry '%s'\n", t.c_str());
      return 1;
    }
    client_counts.push_back(static_cast<int>(v));
  }

  // The fixed read-only battery: a deterministic mix of algorithms, k and
  // alpha values across two catalog datasets, each line with a unique id.
  const char* const kAlgos[] = {"intcov", "bigreedy", "bigreedy+"};
  std::vector<std::string> battery;
  for (size_t i = 0; i < lines; ++i) {
    battery.push_back(StrFormat(
        "{\"id\": \"q%zu\", \"algorithm\": \"%s\", \"k\": %d, \"alpha\": "
        "0.%d, \"threads\": 1, \"dataset\": \"%s\"}",
        i, kAlgos[i % 3], 4 + static_cast<int>(i % 5), 1 + static_cast<int>(i % 3),
        i % 2 == 0 ? "main" : "side"));
  }

  std::fprintf(stdout,
               "# bench=serve n=%zu dim=%d groups=%d lines=%zu workers=%d "
               "seed=%llu hardware_threads=%d\n",
               n, dim, groups, lines, workers,
               static_cast<unsigned long long>(seed), HardwareThreads());
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  for (const int clients : client_counts) {
    // A fresh serving stack per pass: no cross-pass cache warmth, so each
    // row measures the same cold-catalog serving work.
    DatasetCatalog catalog;
    {
      Rng rng(seed);
      Dataset data = GenIndependent(n, dim, &rng).NormalizedMinMax();
      Grouping grouping = GroupBySumRank(data, groups);
      if (!catalog.Register("main", std::move(data), std::move(grouping))
               .ok()) {
        std::fprintf(stderr, "register main failed\n");
        return 1;
      }
    }
    {
      Rng rng(seed + 1);
      Dataset data =
          GenIndependent(n / 2 + 1, dim, &rng).NormalizedMinMax();
      Grouping grouping = GroupBySumRank(data, std::max(2, groups - 1));
      if (!catalog.Register("side", std::move(data), std::move(grouping))
               .ok()) {
        std::fprintf(stderr, "register side failed\n");
        return 1;
      }
    }
    ServiceOptions service_opts;
    service_opts.default_seed = seed;
    service_opts.default_threads = 1;
    service_opts.envelope.version = 1;
    service_opts.envelope.emit_seq = true;
    ProtocolService service(&catalog, service_opts);
    ServerOptions server_opts;
    server_opts.tcp_port = 0;  // Ephemeral.
    server_opts.workers = workers;
    server_opts.max_queue = lines + 16;
    Server server(&service, server_opts);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "server start failed\n");
      return 1;
    }

    // Round-robin split: client c serves battery lines c, c+C, c+2C, ...
    std::vector<std::vector<std::string>> shares(
        static_cast<size_t>(clients));
    for (size_t i = 0; i < battery.size(); ++i) {
      shares[i % static_cast<size_t>(clients)].push_back(battery[i]);
    }
    std::vector<std::vector<std::string>> responses(
        static_cast<size_t>(clients));
    std::vector<char> ok(static_cast<size_t>(clients), 1);
    Stopwatch timer;
    {
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          ok[static_cast<size_t>(c)] =
              RunClient(server.tcp_port(), shares[static_cast<size_t>(c)],
                        &responses[static_cast<size_t>(c)])
                  ? 1
                  : 0;
        });
      }
      for (std::thread& t : threads) t.join();
    }
    const double ms = timer.ElapsedMillis();
    server.Drain();

    std::vector<std::string> normalized;
    for (int c = 0; c < clients; ++c) {
      if (!ok[static_cast<size_t>(c)]) {
        std::fprintf(stderr, "client %d failed at clients=%d\n", c, clients);
        return 1;
      }
      for (const std::string& line : responses[static_cast<size_t>(c)]) {
        if (line.find("\"ok\": true") == std::string::npos) {
          std::fprintf(stderr, "failed response at clients=%d: %s\n",
                       clients, line.c_str());
          return 1;
        }
        normalized.push_back(NormalizeResponse(line));
      }
    }
    std::fprintf(stdout, "serve,%d,%.3f,%s\n", clients, ms,
                 Digest(std::move(normalized)).c_str());
    std::fflush(stdout);
    std::fprintf(stderr,
                 "bench_serve: clients=%d served %zu lines in %.1f ms "
                 "(%.0f qps)\n",
                 clients, lines, ms, ms > 0.0 ? lines * 1000.0 / ms : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
