# CTest smoke for the perf-tracking pipeline: run bench_parallel_eval on a
# tiny grid, feed its CSV through bench_to_json, and require the JSON
# report to appear. Mirrors what the CI bench job does at full size.
# Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=400 --dim=3 --net=600 --k=6 --cand=100
          --threads=1,2 --reps=1 --sweep_iters=2
  OUTPUT_FILE ${OUT_DIR}/bench_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_parallel_eval failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_smoke.csv
          --out=${OUT_DIR}/BENCH_smoke.json --min_speedup=mhr_sweep:2:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero exit "
          "here means a determinism or speedup gate tripped")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
