# CTest smoke for the kernel-speedup pipeline: run bench_kernel on a tiny
# grid, feed its CSV through bench_to_json, and require the JSON report to
# appear. The checksum gate inside bench_to_json is a legacy-vs-scalar-vs-
# SIMD bit-identity check; the speedup gate is left at 0.0 here (tiny sizes
# say nothing about throughput — the CI bench-kernel job gates at full
# size). Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=400 --dim=3 --net=600 --k=6 --cand=100
          --reps=1 --sweep_iters=2
  OUTPUT_FILE ${OUT_DIR}/bench_kernel_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_kernel failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_kernel_smoke.csv
          --out=${OUT_DIR}/BENCH_kernel_smoke.json
          --min_speedup=mhr_sweep:3:0.0,cache_fill:3:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero exit "
          "here means the legacy/scalar/SIMD checksums diverged")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_kernel_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
