// bench_parallel_eval: speedup harness for the parallel happiness-evaluation
// engine. Times the NetEvaluator denominator precompute, the candidate-cache
// matrix fill, the Mhr net sweep and (optionally) the witness-LP sweep at a
// grid of thread counts, and emits machine-readable CSV for
// tools/bench_to_json:
//
//   # bench=parallel_eval n=10000 dim=6 net=20000 ...
//   op,threads,ms,checksum
//   mhr_sweep,1,84.211,0.73481205...
//
// Each op's checksum is a serial digest of the produced values; it must be
// byte-identical across thread counts (bench_to_json enforces this), which
// turns the bench into a determinism check as well.
//
//   bench_parallel_eval --n=10000 --dim=6 --net=20000 --k=20
//       --threads=1,2,4 --reps=5 [--lp]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "utility/utility_net.h"

namespace fairhms {
namespace {

struct OpResult {
  std::string op;
  int threads = 0;
  double ms = 0.0;
  std::string checksum;
};

/// Serial, order-fixed digest of a value sequence (bit-identical values
/// digest to the same string regardless of how they were computed).
std::string Digest(const double* values, size_t count) {
  double sum = 0.0;
  double alt = 0.0;  // Position-sensitive companion: catches reorderings.
  for (size_t i = 0; i < count; ++i) {
    sum += values[i];
    alt += values[i] * static_cast<double>((i % 64) + 1);
  }
  return StrFormat("%.17g|%.17g", sum, alt);
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const int dim = static_cast<int>(flags.GetInt("dim", 6));
  const size_t net_size = static_cast<size_t>(flags.GetInt("net", 20000));
  const int k = static_cast<int>(flags.GetInt("k", 20));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const int sweep_iters = static_cast<int>(flags.GetInt("sweep_iters", 50));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool with_lp = flags.Has("lp");

  std::vector<int> thread_grid;
  for (const std::string& t :
       Split(flags.GetString("threads", "1,2,4"), ',')) {
    int64_t v = 0;
    if (!ParseInt64(Trim(t), &v) || v < 1) {
      std::fprintf(stderr, "bad --threads entry '%s'\n", t.c_str());
      return 1;
    }
    thread_grid.push_back(static_cast<int>(v));
  }

  Rng rng(seed);
  const Dataset data = GenAntiCorrelated(n, dim, &rng).NormalizedMinMax();
  const std::vector<int> skyline = ComputeSkyline(data);
  // Cache workload: a strided candidate subset sized to stay within the
  // default CacheCandidates budget (anti-correlated skylines are ~0.9 n).
  std::vector<int> cand_rows;
  const size_t cand_target = static_cast<size_t>(flags.GetInt("cand", 1000));
  const size_t cand_count = std::min(cand_target, skyline.size());
  for (size_t i = 0; i < cand_count; ++i) {
    cand_rows.push_back(skyline[i * skyline.size() / cand_count]);
  }
  Rng net_rng(seed + 1);
  const UtilityNet net = UtilityNet::SampleRandom(dim, net_size, &net_rng);

  // A spread-out solution of size k (evenly strided skyline rows): the
  // Mhr sweep workload every greedy algorithm pays per evaluation.
  std::vector<int> solution;
  for (int i = 0; i < k && !skyline.empty(); ++i) {
    solution.push_back(
        skyline[static_cast<size_t>(i) * skyline.size() / static_cast<size_t>(k)]);
  }

  std::fprintf(stdout,
               "# bench=parallel_eval n=%zu dim=%d net=%zu k=%d cand=%zu "
               "reps=%d sweep_iters=%d seed=%llu hardware_threads=%d "
               "simd=%s\n",
               n, dim, net_size, k, cand_rows.size(), reps, sweep_iters,
               static_cast<unsigned long long>(seed), HardwareThreads(),
               simd::DispatchLevelName(simd::ActiveLevel()));
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  std::vector<OpResult> results;
  for (int threads : thread_grid) {
    // net_build: per-direction denominator precompute over the skyline.
    {
      double best_ms = -1.0;
      std::string checksum;
      for (int r = 0; r < reps; ++r) {
        Stopwatch sw;
        const NetEvaluator eval(&data, &net, skyline, threads);
        const double ms = sw.ElapsedMillis();
        if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
        std::vector<double> best(net_size);
        for (size_t j = 0; j < net_size; ++j) best[j] = eval.best(j);
        checksum = Digest(best.data(), best.size());
      }
      results.push_back({"net_build", threads, best_ms, checksum});
    }

    const NetEvaluator eval(&data, &net, skyline, threads);

    // cache_fill: the CacheCandidates matrix (candidates x net directions).
    {
      double best_ms = -1.0;
      std::string checksum;
      for (int r = 0; r < reps; ++r) {
        NetEvaluator fresh(&data, &net, skyline, threads);
        Stopwatch sw;
        fresh.CacheCandidates(cand_rows);
        const double ms = sw.ElapsedMillis();
        if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
        const double* row = fresh.cached_row(cand_rows.front());
        checksum = row != nullptr ? Digest(row, net_size) : "uncached";
      }
      results.push_back({"cache_fill", threads, best_ms, checksum});
    }

    // mhr_sweep: full min-over-net sweeps for the solution set. A single
    // sweep is a few milliseconds — too noise-prone to gate CI on — so the
    // timed region batches `sweep_iters` of them.
    {
      double best_ms = -1.0;
      double mhr = 0.0;
      for (int r = 0; r < reps; ++r) {
        Stopwatch sw;
        for (int it = 0; it < sweep_iters; ++it) mhr = eval.Mhr(solution);
        const double ms = sw.ElapsedMillis();
        if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
      }
      results.push_back(
          {"mhr_sweep", threads, best_ms, StrFormat("%.17g", mhr)});
    }

    // witness_lps: one exact LP per skyline witness (F-Greedy's inner loop).
    if (with_lp) {
      double best_ms = -1.0;
      std::string checksum;
      for (int r = 0; r < reps; ++r) {
        Stopwatch sw;
        const std::vector<double> regrets =
            AllWitnessRegretsLp(data, skyline, solution, threads);
        const double ms = sw.ElapsedMillis();
        if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
        checksum = Digest(regrets.data(), regrets.size());
      }
      results.push_back({"witness_lps", threads, best_ms, checksum});
    }
  }

  for (const OpResult& r : results) {
    std::fprintf(stdout, "%s,%d,%.3f,%s\n", r.op.c_str(), r.threads, r.ms,
                 r.checksum.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
