// Google-benchmark micro suite for the substrates: LP solver, skyline,
// delta-net sampling, net evaluation, envelope construction, lazy vs plain
// greedy. Not a paper artifact — used to track library performance.

#include <benchmark/benchmark.h>

#include <numeric>

#include "common/random.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "data/generators.h"
#include "geom/envelope2d.h"
#include "lp/simplex.h"
#include "skyline/skyline.h"
#include "utility/utility_net.h"

namespace fairhms {
namespace {

void BM_SimplexWitnessLp(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int s_size = static_cast<int>(state.range(1));
  Rng rng(1);
  const Dataset data = GenAntiCorrelated(200, d, &rng);
  std::vector<int> solution(static_cast<size_t>(s_size));
  std::iota(solution.begin(), solution.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxRegretWitnessLp(data, {100}, solution));
  }
}
BENCHMARK(BM_SimplexWitnessLp)->Args({2, 10})->Args({6, 10})->Args({6, 40})
    ->Args({9, 20});

void BM_Skyline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Rng rng(2);
  const Dataset data = GenIndependent(n, d, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkyline(data));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Skyline)->Args({10000, 2})->Args({10000, 4})->Args({50000, 4});

void BM_SkylineAntiCorrelated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  const Dataset data = GenAntiCorrelated(n, 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkyline(data));
  }
}
BENCHMARK(BM_SkylineAntiCorrelated)->Arg(2000)->Arg(5000);

void BM_NetSampling(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const size_t m = static_cast<size_t>(state.range(1));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UtilityNet::SampleRandom(d, m, &rng));
  }
}
BENCHMARK(BM_NetSampling)->Args({6, 1200})->Args({9, 2000});

void BM_NetEvaluatorBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  const Dataset data = GenAntiCorrelated(n, 6, &rng);
  const auto sky = ComputeSkyline(data);
  const UtilityNet net = UtilityNet::SampleRandom(6, 1200, &rng);
  for (auto _ : state) {
    NetEvaluator eval(&data, &net, sky);
    benchmark::DoNotOptimize(eval.best(0));
  }
}
BENCHMARK(BM_NetEvaluatorBuild)->Arg(2000)->Arg(8000);

void BM_TruncatedMarginalGain(benchmark::State& state) {
  Rng rng(6);
  const Dataset data = GenAntiCorrelated(2000, 6, &rng);
  const auto sky = ComputeSkyline(data);
  const UtilityNet net = UtilityNet::SampleRandom(6, 1200, &rng);
  NetEvaluator eval(&data, &net, sky);
  const bool cached = state.range(0) != 0;
  if (cached) eval.CacheCandidates(sky);
  TruncatedMhrState st(&eval);
  st.Add(sky[0]);
  st.Add(sky[1]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.MarginalGain(sky[i % sky.size()], 0.9));
    ++i;
  }
}
BENCHMARK(BM_TruncatedMarginalGain)->Arg(0)->Arg(1);

void BM_Envelope2DBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<IndexedPoint2> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform(), static_cast<int>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Envelope2D::Build(pts));
  }
}
BENCHMARK(BM_Envelope2DBuild)->Arg(1000)->Arg(100000);

void BM_ExactMhr2D(benchmark::State& state) {
  Rng rng(8);
  const Dataset data = GenAntiCorrelated(10000, 2, &rng);
  const auto sky = ComputeSkyline(data);
  std::vector<int> sol(sky.begin(), sky.begin() + std::min<size_t>(10, sky.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MhrExact2D(data, sky, sol));
  }
}
BENCHMARK(BM_ExactMhr2D);

}  // namespace
}  // namespace fairhms

BENCHMARK_MAIN();
