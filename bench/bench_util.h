// Shared infrastructure for the paper-reproduction bench harnesses.
//
// Each bench binary regenerates one table or figure of the paper: it builds
// the dataset cases (statistical replicas; load the real CSVs via data/csv.h
// if you have them), runs the algorithm roster, and prints the same
// rows/series the paper reports. Pass --full for paper-scale extremes
// (larger n / d); defaults keep every binary in the seconds-to-minutes
// range.

#ifndef FAIRHMS_BENCH_BENCH_UTIL_H_
#define FAIRHMS_BENCH_BENCH_UTIL_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {
namespace bench {

/// Parsed command-line flags: --key=value and boolean --key.
class Flags {
 public:
  Flags(int argc, char** argv);
  bool Has(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key, const std::string& def) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// One benchmark instance: normalized data + grouping + labels.
struct DatasetCase {
  std::string name;      ///< Display name, e.g. "Adult (Gender)".
  Dataset data{1};       ///< ScaledByMax-normalized numeric attributes.
  Grouping grouping;
  std::vector<int> skyline;  ///< Global skyline (evaluation denominators).
  std::vector<int> pool;     ///< Fair candidate pool (per-group skylines).
};

/// Builds a dataset case by key:
///   lawschs:gender lawschs:race adult:gender adult:race adult:g+r
///   compas:gender compas:isRecid compas:g+ir
///   credit:job credit:housing credit:wy
///   anticor (uses n/d/c arguments)
/// Replica sizes follow Table 2 unless `n_override` > 0.
DatasetCase MakeCase(const std::string& key, uint64_t seed = 42,
                     size_t n_override = 0, int anticor_d = 6,
                     int anticor_c = 3);

/// The ten dataset/group combinations of Figs. 5, 6, 8-11.
std::vector<std::string> MultiDimCaseKeys();

/// Result row of one algorithm run.
struct RunResult {
  bool ok = false;
  double mhr = 0.0;
  double ms = 0.0;
  int violations = 0;
  std::string note;  ///< Failure reason for skipped bars ("k<d", "OOM"...).
};

/// A fair algorithm: solves FairHMS on the case under the bounds.
using FairRunner =
    std::function<StatusOr<Solution>(const DatasetCase&, const GroupBounds&)>;

/// An unconstrained HMS baseline: solves on the case's global skyline.
using PlainRunner =
    std::function<StatusOr<Solution>(const DatasetCase&, int k)>;

/// The paper's fair roster (Figs. 4-7): BiGreedy, BiGreedy+, F-Greedy,
/// G-Greedy, G-DMM, G-HS, G-Sphere; IntCov included when `with_intcov`.
std::vector<std::pair<std::string, FairRunner>> FairRoster(bool with_intcov);

/// The unconstrained roster of Fig. 3: Greedy, DMM, HS, Sphere.
std::vector<std::pair<std::string, PlainRunner>> PlainRoster();

/// Runs a fair algorithm and evaluates its solution with the reference
/// evaluator (exact 2D / exact LP / high-resolution net as appropriate).
RunResult RunFair(const FairRunner& runner, const DatasetCase& c,
                  const GroupBounds& bounds);

/// Runs an unconstrained baseline; violations are measured against `bounds`.
RunResult RunPlain(const PlainRunner& runner, const DatasetCase& c, int k,
                   const GroupBounds& bounds);

/// Unconstrained reference MHR ("price of fairness" black line): exact via
/// IntCov for d = 2, best-of-roster otherwise.
double UnconstrainedReference(const DatasetCase& c, int k);

/// Reference mhr of a solution (exact when affordable).
double ReferenceMhr(const DatasetCase& c, const std::vector<int>& rows);

/// Proportional bounds with alpha = 0.1 (the paper's default).
GroupBounds PaperBounds(const DatasetCase& c, int k);

/// Prints a table header / row with fixed-width columns.
void PrintHeader(const std::string& title, const std::string& xlabel,
                 const std::vector<std::string>& series);
void PrintRow(const std::string& x, const std::vector<std::string>& cells);

/// Formats a RunResult metric ("-" for failures with the note appended).
std::string FormatMhr(const RunResult& r);
std::string FormatMs(const RunResult& r);
std::string FormatErr(const RunResult& r);

}  // namespace bench
}  // namespace fairhms

#endif  // FAIRHMS_BENCH_BENCH_UTIL_H_
