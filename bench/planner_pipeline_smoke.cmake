# CTest smoke for the planner pipeline: run the warm-start/auto bench on a
# tiny sweep, feed its CSV through bench_to_json, and require the JSON
# report. The checksum gate inside bench_to_json makes this two
# bit-identity checks at once — warm-started re-solves vs cold binary
# searches, and planned ("auto") solves vs naming the algorithm directly
# (speedup is not gated at smoke size — CI's bench-planner job gates the
# full sweep at >= 2x).
# Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=600 --dim=4 --groups=2 --k_min=4 --k_max=8
          --sweeps=1
  OUTPUT_FILE ${OUT_DIR}/bench_planner_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_planner failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_planner_smoke.csv
          --out=${OUT_DIR}/BENCH_planner_smoke.json
          --min_speedup=warm_k_sweep:2:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero "
          "exit here means a warm-started or planned solve diverged from "
          "its cold/direct twin (checksum gate) or the report could not "
          "be written")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_planner_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
