// Regenerates Table 2: statistics of the experiment datasets — d, n, C and
// "#skylines" (the summed sizes of the per-group skylines that form the
// fair candidate pool).

#include <cstdio>

#include "bench/bench_util.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

using bench::DatasetCase;
using bench::Flags;
using bench::MakeCase;

void Row(const DatasetCase& c, const char* dataset, const char* group) {
  size_t summed = 0;
  for (const auto& sky : ComputeGroupSkylines(c.data, c.grouping)) {
    summed += sky.size();
  }
  std::printf("%-16s %-10s %3d %9zu %4d %10zu\n", dataset, group,
              c.data.dim(), c.data.size(), c.grouping.num_groups, summed);
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t anticor_n =
      static_cast<size_t>(flags.GetInt("anticor_n", flags.Has("full") ? 10000 : 4000));

  std::printf("=== Table 2: Statistics of datasets (replica defaults) ===\n");
  std::printf("%-16s %-10s %3s %9s %4s %10s\n", "Dataset", "Group", "d", "n",
              "C", "#skylines");

  for (int d : {2, 6}) {
    for (int c_num : {3}) {
      Row(MakeCase("anticor", seed, anticor_n, d, c_num), "Anti-Correlated",
          "sum-rank");
    }
  }
  Row(MakeCase("lawschs:gender", seed), "Lawschs", "Gender");
  Row(MakeCase("lawschs:race", seed), "Lawschs", "Race");
  Row(MakeCase("adult:gender", seed), "Adult", "Gender");
  Row(MakeCase("adult:race", seed), "Adult", "Race");
  Row(MakeCase("adult:g+r", seed), "Adult", "G+R");
  Row(MakeCase("compas:gender", seed), "Compas", "Gender");
  Row(MakeCase("compas:isRecid", seed), "Compas", "isRecid");
  Row(MakeCase("compas:g+ir", seed), "Compas", "G+iR");
  Row(MakeCase("credit:housing", seed), "Credit", "Housing");
  Row(MakeCase("credit:job", seed), "Credit", "Job");
  Row(MakeCase("credit:wy", seed), "Credit", "WorkingYears");

  std::printf(
      "\nPaper reference (real files): Lawschs 19/42, Adult 130/206/339,\n"
      "Compas 195/229/296, Credit 120/126/185 summed group skylines;\n"
      "anti-correlated 0.9n-n. The replicas reproduce these scales.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
