// Regenerates Fig. 4: MHR (a-e) and running time (f-j) on two-dimensional
// datasets — Lawschs (Gender / Race) and AntiCor_2D — versus k, C and n,
// including the unconstrained-optimum black line ("price of fairness").

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

void Panel(const DatasetCase& c, const std::vector<int>& ks) {
  const auto roster = FairRoster(/*with_intcov=*/true);
  std::vector<std::string> series;
  for (const auto& [name, runner] : roster) series.push_back(name);
  series.push_back("Unconstr");

  std::vector<std::vector<RunResult>> results(ks.size());
  std::vector<double> unconstrained(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    const GroupBounds bounds = PaperBounds(c, ks[i]);
    for (const auto& [name, runner] : roster) {
      results[i].push_back(RunFair(runner, c, bounds));
    }
    unconstrained[i] = UnconstrainedReference(c, ks[i]);
  }

  PrintHeader("Fig. 4 MHR: " + c.name, "k", series);
  for (size_t i = 0; i < ks.size(); ++i) {
    std::vector<std::string> cells;
    for (const auto& r : results[i]) cells.push_back(FormatMhr(r));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", unconstrained[i]);
    cells.push_back(buf);
    PrintRow(std::to_string(ks[i]), cells);
  }

  series.pop_back();
  PrintHeader("Fig. 4 time (ms): " + c.name, "k", series);
  for (size_t i = 0; i < ks.size(); ++i) {
    std::vector<std::string> cells;
    for (const auto& r : results[i]) cells.push_back(FormatMs(r));
    PrintRow(std::to_string(ks[i]), cells);
  }
}

void VaryC(uint64_t seed, size_t n, const std::vector<int>& cs, int k) {
  const auto roster = FairRoster(true);
  std::vector<std::string> series;
  for (const auto& [name, runner] : roster) series.push_back(name);

  std::vector<std::vector<std::string>> mhr_rows, time_rows;
  for (int c_num : cs) {
    const DatasetCase c = MakeCase("anticor", seed, n, 2, c_num);
    const GroupBounds bounds = PaperBounds(c, k);
    std::vector<std::string> mhr_cells, time_cells;
    for (const auto& [name, runner] : roster) {
      const RunResult r = RunFair(runner, c, bounds);
      mhr_cells.push_back(FormatMhr(r));
      time_cells.push_back(FormatMs(r));
    }
    mhr_rows.push_back(mhr_cells);
    time_rows.push_back(time_cells);
  }
  PrintHeader("Fig. 4(d) MHR: AntiCor_2D vary C (k=5)", "C", series);
  for (size_t i = 0; i < cs.size(); ++i)
    PrintRow(std::to_string(cs[i]), mhr_rows[i]);
  PrintHeader("Fig. 4(i) time (ms): AntiCor_2D vary C (k=5)", "C", series);
  for (size_t i = 0; i < cs.size(); ++i)
    PrintRow(std::to_string(cs[i]), time_rows[i]);
}

void VaryN(uint64_t seed, const std::vector<size_t>& ns, int k) {
  const auto roster = FairRoster(true);
  std::vector<std::string> series;
  for (const auto& [name, runner] : roster) series.push_back(name);

  std::vector<std::vector<std::string>> mhr_rows, time_rows;
  for (size_t n : ns) {
    const DatasetCase c = MakeCase("anticor", seed, n, 2, 3);
    const GroupBounds bounds = PaperBounds(c, k);
    std::vector<std::string> mhr_cells, time_cells;
    for (const auto& [name, runner] : roster) {
      const RunResult r = RunFair(runner, c, bounds);
      mhr_cells.push_back(FormatMhr(r));
      time_cells.push_back(FormatMs(r));
    }
    mhr_rows.push_back(mhr_cells);
    time_rows.push_back(time_cells);
  }
  PrintHeader("Fig. 4(e) MHR: AntiCor_2D vary n (k=5)", "n", series);
  for (size_t i = 0; i < ns.size(); ++i)
    PrintRow(std::to_string(ns[i]), mhr_rows[i]);
  PrintHeader("Fig. 4(j) time (ms): AntiCor_2D vary n (k=5)", "n", series);
  for (size_t i = 0; i < ns.size(); ++i)
    PrintRow(std::to_string(ns[i]), time_rows[i]);
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool full = flags.Has("full");
  const size_t anticor_n =
      static_cast<size_t>(flags.GetInt("anticor_n", full ? 10000 : 4000));

  std::printf("=== Fig. 4: two-dimensional datasets (IntCov exact vs "
              "approximations; proportional bounds, alpha = 0.1) ===\n");

  Panel(MakeCase("lawschs:gender", seed), {2, 3, 4, 5, 6});
  Panel(MakeCase("lawschs:race", seed), {5, 6, 7, 8, 9, 10});
  Panel(MakeCase("anticor", seed, anticor_n, 2, 3), {5, 6, 7, 8, 9, 10});
  VaryC(seed, anticor_n, {2, 3, 4, 5}, 5);
  std::vector<size_t> ns = {100, 1000, 10000, 100000};
  if (full) ns.push_back(1000000);
  VaryN(seed, ns, 5);

  std::printf("\nExpected shape (paper): IntCov attains the highest MHR "
              "(exact) but is the\nslowest; BiGreedy/BiGreedy+ beat the "
              "adapted baselines; the gap between the\nunconstrained line "
              "and IntCov (price of fairness) stays within ~0.02.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
