// bench_planner: warm-started re-solve and `algorithm: "auto"` harness for
// the query planner. Builds one dataset and runs two ops, each served
// twice so bench_to_json's checksum gate doubles as a bit-identity check:
//
//   * warm_k_sweep — a k sweep (k_min..k_max and back, all one-k steps)
//     of BiGreedy through one SolverSession per pass. Pass 1 disables warm
//     starts (`allow_warm_start=false`: every solve runs the cold
//     capped-value binary search); pass 2 enables them (each re-solve
//     walks the tau grid from the previous certified index). Both passes
//     hold equally warm artifact caches, so the speedup isolates the
//     warm-start walk — and identical checksums prove the walk lands on
//     the cold search's answer, query for query.
//
//   * planned_vs_direct — the same sweep with explicit "bigreedy" (pass 1,
//     which also trains the session's cost model) and then as
//     `algorithm: "auto"` on the same session (pass 2). Identical
//     checksums prove a planned solve is bit-identical to naming the
//     chosen algorithm directly.
//
//   bench_planner --n=10000 --dim=6 --groups=4 --k_min=8 --k_max=24 |
//     bench_to_json --out=BENCH_planner.json --min_speedup=warm_k_sweep:2:2.0

#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/solver.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {
namespace {

/// Serial, order-fixed digest of a value sequence (bit-identical values
/// digest to the same string regardless of how they were computed).
std::string Digest(const std::vector<double>& values) {
  double sum = 0.0;
  double alt = 0.0;  // Position-sensitive companion: catches reorderings.
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    alt += values[i] * static_cast<double>((i % 64) + 1);
  }
  return StrFormat("%.17g|%.17g", sum, alt);
}

void FoldResult(const SolverResult& result, std::vector<double>* digest) {
  digest->push_back(static_cast<double>(result.solution.rows.size()));
  for (int row : result.solution.rows) {
    digest->push_back(static_cast<double>(row));
  }
  digest->push_back(result.solution.mhr);
  digest->push_back(static_cast<double>(result.violations));
}

struct PassStats {
  double ms = 0.0;
  std::vector<double> digest;
  int warm_used = 0;
};

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const int dim = static_cast<int>(flags.GetInt("dim", 6));
  const int groups = static_cast<int>(flags.GetInt("groups", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int threads = static_cast<int>(flags.GetInt("solver_threads", 1));
  const int k_min = static_cast<int>(flags.GetInt("k_min", 8));
  const int k_max = static_cast<int>(flags.GetInt("k_max", 24));
  const int sweeps = static_cast<int>(flags.GetInt("sweeps", 2));
  const double alpha = flags.GetDouble("alpha", 0.2);
  if (k_min < 1 || k_max < k_min) {
    std::fprintf(stderr, "bad k range [%d, %d]\n", k_min, k_max);
    return 1;
  }

  Rng rng(seed);
  const Dataset data = GenIndependent(n, dim, &rng).NormalizedMinMax();
  const Grouping grouping = GroupBySumRank(data, groups);
  const std::vector<int> group_counts = grouping.Counts();

  // Up-and-down k sweep: every consecutive pair differs by exactly one k,
  // the warm memo's eligibility window.
  std::vector<int> ks;
  for (int s = 0; s < sweeps; ++s) {
    for (int k = k_min; k <= k_max; ++k) ks.push_back(k);
    for (int k = k_max - 1; k >= k_min; --k) ks.push_back(k);
  }

  auto make_request = [&](int k, const std::string& algo, bool allow_warm) {
    SolverRequest request;
    request.data = &data;
    request.grouping = &grouping;
    request.bounds = GroupBounds::Proportional(k, group_counts, alpha);
    request.algorithm = algo;
    request.seed = seed;
    request.threads = threads;
    request.allow_warm_start = allow_warm;
    return request;
  };

  std::fprintf(stdout,
               "# bench=planner pass1=cold pass2=warm n=%zu dim=%d "
               "groups=%d k_min=%d k_max=%d sweeps=%d queries=%zu "
               "alpha=%g solver_threads=%d seed=%llu hardware_threads=%d\n",
               n, dim, groups, k_min, k_max, sweeps, ks.size(), alpha,
               threads, static_cast<unsigned long long>(seed),
               HardwareThreads());
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  // One pass of one op: serve the whole sweep through `session`. A
  // non-empty `algo_check` requires every solve (planned or direct) to
  // have resolved onto that algorithm.
  auto run_pass = [&](const std::string& algo, bool allow_warm,
                      SolverSession* session, const char* label,
                      const std::string& algo_check,
                      PassStats* stats) -> bool {
    for (int k : ks) {
      const SolverRequest request = make_request(k, algo, allow_warm);
      Stopwatch timer;
      auto result = session->Solve(request);
      if (!result.ok()) {
        std::fprintf(stderr, "%s k=%d failed: %s\n", label, k,
                     result.status().ToString().c_str());
        return false;
      }
      stats->ms += timer.ElapsedMillis();
      if (!algo_check.empty() && result->algorithm != algo_check) {
        std::fprintf(stderr, "%s k=%d resolved to '%s', expected '%s'\n",
                     label, k, result->algorithm.c_str(),
                     algo_check.c_str());
        return false;
      }
      if (result->warm_start_used) ++stats->warm_used;
      FoldResult(*result, &stats->digest);
    }
    return true;
  };

  // --- Op 1: warm_k_sweep -------------------------------------------------
  PassStats cold;
  PassStats warm;
  {
    auto session = SolverSession::Create(&data, &grouping);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    if (!run_pass("bigreedy", /*allow_warm=*/false, &*session,
                  "cold sweep", "bigreedy", &cold)) {
      return 1;
    }
  }
  {
    auto session = SolverSession::Create(&data, &grouping);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    if (!run_pass("bigreedy", /*allow_warm=*/true, &*session, "warm sweep",
                  "bigreedy", &warm)) {
      return 1;
    }
  }
  std::fprintf(stdout, "warm_k_sweep,1,%.3f,%s\n", cold.ms,
               Digest(cold.digest).c_str());
  std::fprintf(stdout, "warm_k_sweep,2,%.3f,%s\n", warm.ms,
               Digest(warm.digest).c_str());

  // --- Op 2: planned_vs_direct --------------------------------------------
  // One session for both passes: the explicit pass trains the cost model
  // the "auto" pass plans from. The planner must resolve every query onto
  // bigreedy (the only algorithm the session has measured).
  PassStats direct;
  PassStats planned;
  {
    auto session = SolverSession::Create(&data, &grouping);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    if (!run_pass("bigreedy", /*allow_warm=*/true, &*session, "direct",
                  "bigreedy", &direct)) {
      return 1;
    }
    if (!run_pass("auto", /*allow_warm=*/true, &*session, "planned",
                  "bigreedy", &planned)) {
      return 1;
    }
  }
  std::fprintf(stdout, "planned_vs_direct,1,%.3f,%s\n", direct.ms,
               Digest(direct.digest).c_str());
  std::fprintf(stdout, "planned_vs_direct,2,%.3f,%s\n", planned.ms,
               Digest(planned.digest).c_str());

  std::fprintf(stderr,
               "warm_k_sweep: %zu queries, cold %.1f ms, warm %.1f ms "
               "(%.2fx), warm starts accepted %d/%zu\n",
               ks.size(), cold.ms, warm.ms,
               warm.ms > 0.0 ? cold.ms / warm.ms : 0.0, warm.warm_used,
               ks.size());
  std::fprintf(stderr,
               "planned_vs_direct: direct %.1f ms, planned %.1f ms, warm "
               "starts accepted %d/%zu\n",
               direct.ms, planned.ms, planned.warm_used, ks.size());
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
