// Regenerates Fig. 7: scalability on anti-correlated data at k = 20 —
// (a) varying dimensionality d, (b) varying group count C (d = 6),
// (c) varying cardinality n (d = 6). MHR and time per panel.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

struct PanelRows {
  std::vector<std::string> xs;
  std::vector<std::vector<std::string>> mhr;
  std::vector<std::vector<std::string>> ms;
};

PanelRows Sweep(const std::vector<DatasetCase>& cases,
                const std::vector<std::string>& labels, int k,
                size_t fgreedy_pool_cap) {
  const auto roster = FairRoster(false);
  PanelRows out;
  for (size_t i = 0; i < cases.size(); ++i) {
    const DatasetCase& c = cases[i];
    const GroupBounds bounds = PaperBounds(c, k);
    std::vector<std::string> mhr_cells, ms_cells;
    for (const auto& [name, runner] : roster) {
      if (name == "F-Greedy" && c.pool.size() > fgreedy_pool_cap) {
        mhr_cells.push_back("(skip)");
        ms_cells.push_back("(skip)");
        continue;
      }
      const RunResult r = RunFair(runner, c, bounds);
      mhr_cells.push_back(FormatMhr(r));
      ms_cells.push_back(FormatMs(r));
    }
    out.xs.push_back(labels[i]);
    out.mhr.push_back(mhr_cells);
    out.ms.push_back(ms_cells);
  }
  return out;
}

void Print(const std::string& what, const PanelRows& rows,
           const std::string& xlabel) {
  const auto roster = FairRoster(false);
  std::vector<std::string> series;
  for (const auto& [name, runner] : roster) series.push_back(name);
  PrintHeader(what, xlabel, series);
  for (size_t i = 0; i < rows.xs.size(); ++i) {
    PrintRow(rows.xs[i], what.find("MHR") != std::string::npos ? rows.mhr[i]
                                                               : rows.ms[i]);
  }
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool full = flags.Has("full");
  const size_t base_n =
      static_cast<size_t>(flags.GetInt("anticor_n", full ? 10000 : 2000));
  const int k = static_cast<int>(flags.GetInt("k", 20));
  const size_t fgreedy_cap =
      static_cast<size_t>(flags.GetInt("fgreedy_pool_cap", full ? 20000 : 6000));

  std::printf("=== Fig. 7: scalability on anti-correlated data (k = %d) ===\n",
              k);

  // (a) Vary d.
  {
    std::vector<int> ds = {2, 3, 4, 5, 6, 7, 8};
    if (full) {
      ds.push_back(10);
      ds.push_back(12);
      ds.push_back(16);
    }
    std::vector<DatasetCase> cases;
    std::vector<std::string> labels;
    for (int d : ds) {
      cases.push_back(MakeCase("anticor", seed, base_n, d, 3));
      labels.push_back(std::to_string(d));
    }
    const PanelRows rows = Sweep(cases, labels, k, fgreedy_cap);
    Print("Fig. 7(a) MHR: AntiCor vary d", rows, "d");
    Print("Fig. 7(a) time (ms): AntiCor vary d", rows, "d");
  }

  // (b) Vary C at d = 6.
  {
    const std::vector<int> cs = {2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<DatasetCase> cases;
    std::vector<std::string> labels;
    for (int c_num : cs) {
      cases.push_back(MakeCase("anticor", seed, base_n, 6, c_num));
      labels.push_back(std::to_string(c_num));
    }
    const PanelRows rows = Sweep(cases, labels, k, fgreedy_cap);
    Print("Fig. 7(b) MHR: AntiCor_6D vary C", rows, "C");
    Print("Fig. 7(b) time (ms): AntiCor_6D vary C", rows, "C");
  }

  // (c) Vary n at d = 6.
  {
    std::vector<size_t> ns = {100, 1000, 10000};
    if (full) {
      ns.push_back(100000);
      ns.push_back(1000000);
    }
    std::vector<DatasetCase> cases;
    std::vector<std::string> labels;
    for (size_t n : ns) {
      cases.push_back(MakeCase("anticor", seed, n, 6, 3));
      labels.push_back(std::to_string(n));
    }
    const PanelRows rows = Sweep(cases, labels, k, fgreedy_cap);
    Print("Fig. 7(c) MHR: AntiCor_6D vary n", rows, "n");
    Print("Fig. 7(c) time (ms): AntiCor_6D vary n", rows, "n");
  }

  std::printf("\nExpected shape (paper): MHR drops and time rises with d "
              "(curse of\ndimensionality; G-DMM exits with OOM beyond d~6); "
              "MHR drops as C grows\n(tighter constraint) while "
              "BiGreedy/BiGreedy+ widen their lead; time grows\nnear-linearly "
              "with n. (skip) marks F-Greedy runs beyond the LP budget —\n"
              "use --full to include them.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
