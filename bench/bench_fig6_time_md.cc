// Regenerates Fig. 6: running time (ms) of all fair algorithms on the ten
// multi-dimensional dataset/group combinations, varying solution size k.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

void Panel(const DatasetCase& c, const std::vector<int>& ks) {
  const auto roster = FairRoster(/*with_intcov=*/false);
  std::vector<std::string> series;
  for (const auto& [name, runner] : roster) series.push_back(name);
  PrintHeader("Fig. 6 time (ms): " + c.name, "k", series);
  for (int k : ks) {
    const GroupBounds bounds = PaperBounds(c, k);
    std::vector<std::string> cells;
    for (const auto& [name, runner] : roster) {
      auto sol = runner(c, bounds);
      if (!sol.ok()) {
        cells.push_back("-");
        continue;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), sol->elapsed_ms >= 100 ? "%.0f" : "%.2f",
                    sol->elapsed_ms);
      cells.push_back(buf);
    }
    PrintRow(std::to_string(k), cells);
  }
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t anticor_n = static_cast<size_t>(
      flags.GetInt("anticor_n", flags.Has("full") ? 10000 : 2000));

  std::printf("=== Fig. 6: running time on multi-dimensional datasets ===\n");

  for (const std::string& key : MultiDimCaseKeys()) {
    const DatasetCase c = key == "anticor"
                              ? MakeCase(key, seed, anticor_n, 6, 3)
                              : MakeCase(key, seed);
    const std::vector<int> ks = (key == "adult:gender")
                                    ? std::vector<int>{6, 8, 10, 12, 14, 16}
                                    : std::vector<int>{10, 12, 14, 16, 18, 20};
    Panel(c, ks);
  }

  std::printf("\nExpected shape (paper): G-Sphere fastest, G-Greedy/G-HS "
              "fast, BiGreedy+\nup to ~5x faster than BiGreedy, F-Greedy "
              "slowest (one LP per skyline item\nper iteration).\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
