// Regenerates Fig. 8 (MHR) and Fig. 9 (time) jointly: BiGreedy vs BiGreedy+
// as the net size m (resp. the cap M) sweeps over
// {1.25, 2.5, 5, 10, 20, 40} * k * d, on the ten dataset/group combos.
// Also hosts the tau-search ablation (--ablate-tau).

#include <cstdio>
#include <vector>

#include "algo/bigreedy.h"
#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

void Panel(const DatasetCase& c, int k) {
  const GroupBounds bounds = PaperBounds(c, k);
  const int d = c.data.dim();
  const std::vector<double> factors = {1.25, 2.5, 5, 10, 20, 40};

  PrintHeader("Fig. 8/9 net-size sweep: " + c.name +
                  " (k=" + std::to_string(k) + ")",
              "m", {"BG mhr", "BG+ mhr", "BG ms", "BG+ ms", "BG+ m_i"});
  for (double f : factors) {
    const size_t m = static_cast<size_t>(f * k * d);
    BiGreedyOptions bg_opts;
    bg_opts.net_size = m;
    bg_opts.pool = c.pool;
    bg_opts.db_rows = c.skyline;
    auto bg = BiGreedy(c.data, c.grouping, bounds, bg_opts);

    BiGreedyPlusOptions bgp_opts;
    bgp_opts.max_net_size = m;
    bgp_opts.base.pool = c.pool;
    bgp_opts.base.db_rows = c.skyline;
    BiGreedyRunInfo info;
    auto bgp = BiGreedyPlus(c.data, c.grouping, bounds, bgp_opts, &info);

    std::vector<std::string> cells;
    char buf[32];
    if (bg.ok()) {
      std::snprintf(buf, sizeof(buf), "%.4f", ReferenceMhr(c, bg->rows));
      cells.push_back(buf);
    } else {
      cells.push_back("-");
    }
    if (bgp.ok()) {
      std::snprintf(buf, sizeof(buf), "%.4f", ReferenceMhr(c, bgp->rows));
      cells.push_back(buf);
    } else {
      cells.push_back("-");
    }
    std::snprintf(buf, sizeof(buf), "%.1f", bg.ok() ? bg->elapsed_ms : -1.0);
    cells.push_back(bg.ok() ? buf : "-");
    std::snprintf(buf, sizeof(buf), "%.1f", bgp.ok() ? bgp->elapsed_ms : -1.0);
    cells.push_back(bgp.ok() ? buf : "-");
    cells.push_back(std::to_string(info.net_size));
    PrintRow(std::to_string(m), cells);
  }
}

void AblateTauSearch(const DatasetCase& c, int k) {
  const GroupBounds bounds = PaperBounds(c, k);
  PrintHeader("Ablation - tau search mode: " + c.name,
              "mode", {"mhr", "ms", "MRG calls"});
  for (TauSearch mode : {TauSearch::kBinary, TauSearch::kLinear}) {
    BiGreedyOptions opts;
    opts.tau_search = mode;
    opts.pool = c.pool;
    opts.db_rows = c.skyline;
    BiGreedyRunInfo info;
    auto sol = BiGreedy(c.data, c.grouping, bounds, opts, &info);
    std::vector<std::string> cells;
    char buf[32];
    if (sol.ok()) {
      std::snprintf(buf, sizeof(buf), "%.4f", ReferenceMhr(c, sol->rows));
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f", sol->elapsed_ms);
      cells.push_back(buf);
      cells.push_back(std::to_string(info.mrgreedy_calls));
    } else {
      cells = {"-", "-", "-"};
    }
    PrintRow(mode == TauSearch::kBinary ? "binary" : "linear", cells);
  }
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t anticor_n = static_cast<size_t>(
      flags.GetInt("anticor_n", flags.Has("full") ? 10000 : 2000));
  const int k = static_cast<int>(flags.GetInt("k", 20));

  std::printf("=== Figs. 8 + 9: effect of the net size m (BiGreedy) / cap M "
              "(BiGreedy+) ===\n");

  for (const std::string& key : MultiDimCaseKeys()) {
    const DatasetCase c = key == "anticor"
                              ? MakeCase(key, seed, anticor_n, 6, 3)
                              : MakeCase(key, seed);
    Panel(c, k);
    if (flags.Has("ablate-tau")) AblateTauSearch(c, k);
  }

  std::printf("\nExpected shape (paper): MHR rises with m and saturates "
              "around m = 10kd;\ntime grows near-linearly with m; BiGreedy+ "
              "stops at m_i << M with little\nquality loss.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
