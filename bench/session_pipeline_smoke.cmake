# CTest smoke for the session-amortization pipeline: run the cold/warm
# bench on a tiny grid, feed its CSV through bench_to_json, and require the
# JSON report. The checksum gate inside bench_to_json makes this a
# warm-vs-cold bit-identity check (speedup is not gated at smoke size —
# CI's bench job gates the full grid at >= 2x).
# Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=500 --dim=3 --groups=2 --algos=bigreedy,intcov
          --ks=4,6 --alphas=0.2 --ref_net=1000
  OUTPUT_FILE ${OUT_DIR}/bench_session_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_session_amortization failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_session_smoke.csv
          --out=${OUT_DIR}/BENCH_session_smoke.json
          --min_speedup=batch:2:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero "
          "exit here means the warm path diverged from the cold path "
          "(checksum gate) or the report could not be written")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_session_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
