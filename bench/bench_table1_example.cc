// Regenerates Table 1 and the paper's running example (Sec. 1 + Example
// 2.2): the eight LSAC applicants, the unconstrained HMS solutions at k = 3
// and k = 2, and the gender-fair FairHMS solution at k = 2, with their
// published minimum happiness ratios.

#include <cstdio>

#include "algo/intcov.h"
#include "bench/bench_util.h"
#include "core/exact_evaluator.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

Dataset MakeLsacTable1() {
  Dataset data(std::vector<std::string>{"lsat", "gpa"});
  data.AddCategoricalColumn("gender", {"Female", "Male"});
  data.AddCategoricalColumn("race", {"Black", "White", "Hispanic", "Asian"});
  const double lsat[] = {164, 163, 165, 160, 170, 161, 153, 156};
  const double gpa[] = {3.31, 3.55, 3.09, 3.83, 2.79, 3.69, 3.89, 3.87};
  const int male[] = {0, 1, 0, 1, 1, 0, 1, 0};
  const int race[] = {0, 0, 1, 1, 2, 2, 3, 3};
  for (int i = 0; i < 8; ++i) data.AddRow({lsat[i], gpa[i]}, {male[i], race[i]});
  return data;
}

void PrintSet(const char* label, const std::vector<int>& rows, double mhr,
              const Dataset& raw) {
  std::printf("%-38s {", label);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%sa%d", i ? ", " : "", rows[i] + 1);
  }
  std::printf("}  mhr = %.4f  genders = [", mhr);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& col = raw.categorical(0);
    std::printf("%s%s", i ? ", " : "",
                col.labels[static_cast<size_t>(
                               col.codes[static_cast<size_t>(rows[i])])]
                    .c_str());
  }
  std::printf("]\n");
}

int Run() {
  const Dataset raw = MakeLsacTable1();
  const Dataset data = raw.ScaledByMax();

  std::printf("=== Table 1: Example tuples in the LSAC database ===\n");
  std::printf("%-5s %-8s %-10s %-6s %-5s\n", "ID", "Gender", "Race", "LSAT",
              "GPA");
  for (size_t i = 0; i < raw.size(); ++i) {
    std::printf("a%-4zu %-8s %-10s %-6.0f %-5.2f\n", i + 1,
                raw.categorical(0)
                    .labels[static_cast<size_t>(raw.categorical(0).codes[i])]
                    .c_str(),
                raw.categorical(1)
                    .labels[static_cast<size_t>(raw.categorical(1).codes[i])]
                    .c_str(),
                raw.at(i, 0), raw.at(i, 1));
  }

  const auto sky = ComputeSkyline(data);
  std::printf("\nAll %zu applicants lie on the skyline (paper: \"all the "
              "applicants are in the skyline\").\n",
              sky.size());

  std::printf("\n=== Running example (paper Sec. 1 / Example 2.2) ===\n");
  std::printf("%-38s %s\n", "paper", "this implementation");

  const Grouping single = SingleGroup(8);
  {
    auto sol =
        IntCov(data, single, GroupBounds::Explicit(3, {0}, {3}).value());
    PrintSet("HMS k=3 (paper: {a4,a5,a7}, 0.9984)", sol->rows, sol->mhr, raw);
  }
  {
    auto sol =
        IntCov(data, single, GroupBounds::Explicit(2, {0}, {2}).value());
    PrintSet("HMS k=2 (paper: {a4,a5}, 0.9846)", sol->rows, sol->mhr, raw);
  }
  {
    auto gender = GroupByCategorical(data, "gender").value();
    auto sol = IntCov(data, gender,
                      GroupBounds::Explicit(2, {1, 1}, {1, 1}).value());
    PrintSet("FairHMS k=2 (paper: {a5,a8}, 0.9834)", sol->rows, sol->mhr,
             raw);
  }
  std::printf(
      "\nPrice of fairness on the example: %.4f -> %.4f (drop %.4f).\n",
      MhrExact2D(data, sky, {3, 4}), MhrExact2D(data, sky, {4, 7}),
      MhrExact2D(data, sky, {3, 4}) - MhrExact2D(data, sky, {4, 7}));
  return 0;
}

}  // namespace
}  // namespace fairhms

int main() { return fairhms::Run(); }
