// Ablation (beyond the paper's figures): how the fairness *scheme* shapes
// the solution. The paper defines two instantiations of the group-fairness
// constraint (Sec. 2) but evaluates only proportional representation; this
// harness compares
//   * proportional representation (alpha = 0.1)  — the paper's default,
//   * balanced representation (alpha = 0.1)      — equal shares per group,
//   * exact quotas (alpha = 0)                   — hard proportional shares,
// reporting MHR (price of fairness per scheme) and the violation count an
// *unconstrained* solution incurs under each scheme.

#include <cstdio>
#include <vector>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

void Panel(const DatasetCase& c, int k) {
  struct Scheme {
    const char* name;
    GroupBounds bounds;
  };
  std::vector<Scheme> schemes;
  schemes.push_back(
      {"proportional", GroupBounds::Proportional(k, c.grouping.Counts(), 0.1)});
  schemes.push_back(
      {"balanced",
       GroupBounds::Balanced(k, c.grouping.num_groups, 0.1).value()});
  schemes.push_back(
      {"exact-quota", GroupBounds::Proportional(k, c.grouping.Counts(), 0.0)});

  const double unconstrained = UnconstrainedReference(c, k);
  auto greedy = RdpGreedy(c.data, c.skyline, k);

  PrintHeader("Bounds-scheme ablation: " + c.name + " (k=" +
                  std::to_string(k) + ")",
              "scheme", {"BG mhr", "price", "err(Greedy)", "feasible"});
  for (const auto& s : schemes) {
    std::vector<std::string> cells;
    char buf[32];
    const Status valid = s.bounds.Validate(c.grouping.Counts());
    if (!valid.ok()) {
      PrintRow(s.name, {"-", "-", "-", "no"});
      continue;
    }
    BiGreedyOptions opts;
    opts.pool = c.pool;
    opts.db_rows = c.skyline;
    auto sol = BiGreedy(c.data, c.grouping, s.bounds, opts);
    if (!sol.ok()) {
      PrintRow(s.name, {"-", "-", "-", "yes"});
      continue;
    }
    const double mhr = ReferenceMhr(c, sol->rows);
    std::snprintf(buf, sizeof(buf), "%.4f", mhr);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.4f", unconstrained - mhr);
    cells.push_back(buf);
    cells.push_back(greedy.ok()
                        ? std::to_string(CountViolations(
                              greedy->rows, c.grouping, s.bounds))
                        : std::string("-"));
    cells.push_back("yes");
    PrintRow(s.name, cells);
  }
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t anticor_n = static_cast<size_t>(
      flags.GetInt("anticor_n", flags.Has("full") ? 10000 : 2000));
  const int k = static_cast<int>(flags.GetInt("k", 12));

  std::printf("=== Ablation: fairness-scheme comparison (not a paper "
              "figure; extends Sec. 2's two instantiations) ===\n");

  Panel(MakeCase("adult:gender", seed), k);
  Panel(MakeCase("adult:race", seed), k);
  Panel(MakeCase("anticor", seed, anticor_n, 6, 3), k);
  Panel(MakeCase("credit:job", seed), k);

  std::printf("\nReading: balanced bounds cost more MHR than proportional on "
              "skewed groups\n(they drag the solution toward tiny groups); "
              "exact quotas cost the most.\nUnconstrained solutions violate "
              "balanced bounds hardest.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
