// Regenerates Fig. 10 (MHR) and Fig. 11 (time) jointly: BiGreedy+ over the
// (eps, lambda) grid — the capped-value search granularity and the adaptive
// sampling convergence threshold.

#include <cstdio>
#include <vector>

#include "algo/bigreedy.h"
#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

void Panel(const DatasetCase& c, int k, const std::vector<double>& grid) {
  const GroupBounds bounds = PaperBounds(c, k);
  std::vector<std::string> series;
  char buf[32];
  for (double eps : grid) {
    std::snprintf(buf, sizeof(buf), "e=%g", eps);
    series.push_back(buf);
  }

  std::vector<std::vector<std::string>> mhr_rows, ms_rows;
  for (double lambda : grid) {
    std::vector<std::string> mhr_cells, ms_cells;
    for (double eps : grid) {
      BiGreedyPlusOptions opts;
      opts.base.eps = eps;
      opts.lambda = lambda;
      opts.base.pool = c.pool;
      opts.base.db_rows = c.skyline;
      auto sol = BiGreedyPlus(c.data, c.grouping, bounds, opts);
      if (sol.ok()) {
        std::snprintf(buf, sizeof(buf), "%.4f", ReferenceMhr(c, sol->rows));
        mhr_cells.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", sol->elapsed_ms);
        ms_cells.push_back(buf);
      } else {
        mhr_cells.push_back("-");
        ms_cells.push_back("-");
      }
    }
    mhr_rows.push_back(mhr_cells);
    ms_rows.push_back(ms_cells);
  }

  PrintHeader("Fig. 10 MHR (rows: lambda): " + c.name, "lambda", series);
  for (size_t i = 0; i < grid.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", grid[i]);
    PrintRow(buf, mhr_rows[i]);
  }
  PrintHeader("Fig. 11 time ms (rows: lambda): " + c.name, "lambda", series);
  for (size_t i = 0; i < grid.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", grid[i]);
    PrintRow(buf, ms_rows[i]);
  }
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t anticor_n = static_cast<size_t>(
      flags.GetInt("anticor_n", flags.Has("full") ? 10000 : 2000));
  const int k = static_cast<int>(flags.GetInt("k", 20));

  // The paper sweeps {0.00125, 0.0025, ..., 0.64} (factor 2); the default
  // grid here uses the paper's axis ticks (factor 8), --full the whole grid.
  const std::vector<double> grid =
      flags.Has("full")
          ? std::vector<double>{0.00125, 0.0025, 0.005, 0.01, 0.02, 0.04,
                                0.08, 0.16, 0.32, 0.64}
          : std::vector<double>{0.00125, 0.01, 0.08, 0.64};

  std::printf("=== Figs. 10 + 11: BiGreedy+ sensitivity to eps and lambda "
              "===\n");

  const std::vector<std::string> keys =
      flags.Has("full") ? MultiDimCaseKeys()
                        : std::vector<std::string>{"adult:gender", "anticor",
                                                   "credit:job"};
  for (const std::string& key : keys) {
    const DatasetCase c = key == "anticor"
                              ? MakeCase(key, seed, anticor_n, 6, 3)
                              : MakeCase(key, seed);
    Panel(c, k, grid);
  }

  std::printf("\nExpected shape (paper): MHR improves sharply from 0.64 down "
              "to ~0.08 and\nthen plateaus; smaller eps/lambda inflate "
              "running time; eps = 0.02,\nlambda = 0.04 is the sweet "
              "spot.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
