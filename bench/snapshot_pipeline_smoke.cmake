# CTest smoke for the snapshot warm-start pipeline: run the cold-vs-restore
# bench on a tiny grid, feed its CSV through bench_to_json, and require the
# JSON report. The checksum gate inside bench_to_json makes this a
# restored-state bit-identity check — every query result and the full
# skyline-index state must match across passes (speedup is not gated at
# smoke size; CI's bench-snapshot job gates the 10k grid at >= 10x).
# Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=500 --dim=3 --groups=2 --ks=4,6
          --algos=intcov,g_greedy --work_dir=${OUT_DIR}
  OUTPUT_FILE ${OUT_DIR}/bench_snapshot_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_snapshot failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_snapshot_smoke.csv
          --out=${OUT_DIR}/BENCH_snapshot_smoke.json
          --min_speedup=warm_start:2:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero "
          "exit here means the restored state diverged from the cold "
          "ingest (checksum gate) or the report could not be written")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_snapshot_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
