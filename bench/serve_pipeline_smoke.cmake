# CTest smoke for the serving-throughput pipeline: boot the in-process
# daemon on a tiny catalog, serve the battery at 1 and 2 clients, feed the
# CSV through bench_to_json, and require the JSON report. The checksum
# gate inside bench_to_json makes this a concurrent-vs-serial bit-identity
# check over the full wire bytes (speedup is not gated at smoke size —
# CI's bench job gates the full battery).
# Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=800 --dim=3 --groups=2 --lines=40 --clients=1,2
          --workers=2
  OUTPUT_FILE ${OUT_DIR}/bench_serve_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_serve failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_serve_smoke.csv
          --out=${OUT_DIR}/BENCH_serve_smoke.json
          --min_speedup=serve:2:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero "
          "exit here means concurrent serving diverged from serial serving "
          "(checksum gate) or the report could not be written")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_serve_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
