// bench_dynamic_updates: update+query latency of the dynamic-session
// subsystem versus rebuild-from-scratch. One deterministic op schedule —
// alternating point inserts and deletes, each followed by a k-sweep of
// solve + reference-evaluation queries (--ks, algorithm rotating per
// update: the paper's sweep workload over churning data) — is served
// twice:
//
//   * rebuild — every mutation goes straight to the Dataset/Grouping and
//     every query pays a cold Solver::Solve plus an uncached reference
//     evaluation (skylines, fair pools, nets and evaluator precomputes
//     rebuilt from scratch per query: the pre-dynamic serving story);
//   * incremental — the same ops through one dynamic SolverSession, whose
//     SkylineIndex maintains the skylines/pools/group tables per update
//     and republishes them into the session cache (nets survive,
//     evaluators rebuild lazily).
//
// Emits the machine-readable CSV tools/bench_to_json consumes; the
// `threads` column encodes the pass — 1 = rebuild, 2 = incremental (see
// the pass1/pass2 config keys) — so the incremental row's "speedup" is the
// rebuild/incremental factor, and the checksum gate doubles as the
// incremental-vs-recompute bit-identity guarantee (every selected row,
// reference mhr, violation count and the full skyline state after the
// final op are digested).
//
//   bench_dynamic_updates --n=10000 --dim=6 --groups=4 --updates=40 |
//     bench_to_json --out=BENCH_dynamic.json --min_speedup=update_query:2:5.0

#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/solver.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

/// Serial, order-fixed digest (same contract as the session bench).
std::string Digest(const std::vector<double>& values) {
  double sum = 0.0;
  double alt = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    alt += values[i] * static_cast<double>((i % 64) + 1);
  }
  return StrFormat("%.17g|%.17g", sum, alt);
}

struct Op {
  bool insert = false;
  std::vector<double> coords;  ///< Insert only.
  int group = 0;               ///< Insert only.
  int erase_row = -1;          ///< Delete only.
  std::string algo;            ///< The query following the update.
};

/// Pre-computed deterministic schedule, identical for both passes:
/// alternating inserts (random point, random group) and deletes (random
/// live row, tracked by simulating the mutations).
std::vector<Op> MakeSchedule(size_t n0, int dim, int groups, int updates,
                             const std::vector<std::string>& algos,
                             uint64_t seed) {
  Rng rng(seed ^ 0xD15EA5E);
  std::vector<int> live(n0);
  for (size_t i = 0; i < n0; ++i) live[i] = static_cast<int>(i);
  size_t next_row = n0;
  std::vector<Op> ops;
  for (int s = 0; s < updates; ++s) {
    Op op;
    op.algo = algos[static_cast<size_t>(s) % algos.size()];
    if (s % 2 == 0) {
      op.insert = true;
      op.coords.resize(static_cast<size_t>(dim));
      for (int j = 0; j < dim; ++j) {
        op.coords[static_cast<size_t>(j)] = rng.Uniform();
      }
      op.group = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(groups)));
      live.push_back(static_cast<int>(next_row++));
    } else {
      const size_t pick = static_cast<size_t>(rng.UniformInt(live.size()));
      op.erase_row = live[pick];
      live[pick] = live.back();
      live.pop_back();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const int dim = static_cast<int>(flags.GetInt("dim", 6));
  const int groups = static_cast<int>(flags.GetInt("groups", 4));
  const double alpha = flags.GetDouble("alpha", 0.2);
  const int updates = static_cast<int>(flags.GetInt("updates", 40));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int threads = static_cast<int>(flags.GetInt("solver_threads", 1));
  const size_t ref_net = static_cast<size_t>(flags.GetInt("ref_net", 20000));
  // Default mix: algorithms whose queries are artifact-bound (skylines,
  // pools, evaluator precomputes), i.e. the costs the dynamic subsystem
  // actually removes. Solve-bound engines (bigreedy's net-greedy rounds
  // dominate its queries) gain little here by construction; measure them
  // explicitly via --algos.
  const std::string algos_flag =
      flags.GetString("algos", "intcov,g_greedy");
  const std::string ks_flag = flags.GetString("ks", "6,10,14,18,22");

  std::vector<std::string> algos;
  for (const std::string& a : Split(algos_flag, ',')) {
    algos.push_back(std::string(Trim(a)));
  }
  if (algos.empty()) {
    std::fprintf(stderr, "--algos must name at least one algorithm\n");
    return 1;
  }
  std::vector<int> ks;
  for (const std::string& t : Split(ks_flag, ',')) {
    int64_t v = 0;
    if (!ParseInt64(Trim(t), &v) || v < 1) {
      std::fprintf(stderr, "bad --ks entry '%s'\n", t.c_str());
      return 1;
    }
    ks.push_back(static_cast<int>(v));
  }

  const std::vector<Op> schedule =
      MakeSchedule(n, dim, groups, updates, algos, seed);

  std::fprintf(stdout,
               "# bench=dynamic_updates pass1=rebuild pass2=incremental "
               "n=%zu dim=%d groups=%d ks=%s alpha=%g updates=%d "
               "queries=%zu algos=%s ref_net=%zu solver_threads=%d "
               "seed=%llu hardware_threads=%d\n",
               n, dim, groups, ks_flag.c_str(), alpha, updates,
               static_cast<size_t>(updates) * ks.size(), algos_flag.c_str(),
               ref_net, threads, static_cast<unsigned long long>(seed),
               HardwareThreads());
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  struct PassResult {
    double update_ms = 0.0;
    double query_ms = 0.0;
    std::vector<double> digest;
  };

  // Fold one query's outcome (and the reference mhr) into the digest.
  auto fold = [](const SolverResult& result, double mhr,
                 std::vector<double>* digest) {
    digest->push_back(static_cast<double>(result.solution.rows.size()));
    for (int row : result.solution.rows) {
      digest->push_back(static_cast<double>(row));
    }
    digest->push_back(result.solution.mhr);
    digest->push_back(mhr);
    digest->push_back(static_cast<double>(result.violations));
  };

  // Fold the complete skyline pipeline state after the final op, so the
  // checksum also certifies the maintained artifacts — not just the query
  // results computed from them.
  auto fold_state = [&](const Dataset& data, const Grouping& grouping,
                        std::vector<double>* digest) {
    for (int r : ComputeSkyline(data)) digest->push_back(r);
    for (const auto& sky : ComputeGroupSkylines(data, grouping)) {
      digest->push_back(static_cast<double>(sky.size()));
      for (int r : sky) digest->push_back(r);
    }
    for (int c : grouping.LiveCounts(data)) digest->push_back(c);
  };

  auto make_request = [&](const Dataset& data, const Grouping& grouping,
                          const std::string& algo, int k) {
    SolverRequest request;
    request.bounds =
        GroupBounds::Proportional(k, grouping.LiveCounts(data), alpha);
    request.algorithm = algo;
    request.seed = seed;
    request.threads = threads;
    return request;
  };

  // ---- Pass 1: rebuild-from-scratch. --------------------------------
  PassResult rebuild;
  {
    Rng rng(seed);
    Dataset data = GenIndependent(n, dim, &rng).NormalizedMinMax();
    Grouping grouping = GroupBySumRank(data, groups);
    for (const Op& op : schedule) {
      Stopwatch update_timer;
      if (op.insert) {
        auto first = data.AppendRows({op.coords}, {{}});
        if (!first.ok()) {
          std::fprintf(stderr, "rebuild insert failed: %s\n",
                       first.status().ToString().c_str());
          return 1;
        }
        grouping.AppendRow(op.group);
      } else {
        if (Status st = data.ErasePoints({op.erase_row}); !st.ok()) {
          std::fprintf(stderr, "rebuild delete failed: %s\n",
                       st.ToString().c_str());
          return 1;
        }
      }
      rebuild.update_ms += update_timer.ElapsedMillis();

      for (int k : ks) {
        Stopwatch query_timer;
        SolverRequest request = make_request(data, grouping, op.algo, k);
        request.data = &data;
        request.grouping = &grouping;
        auto result = Solver::Solve(request);
        if (!result.ok()) {
          std::fprintf(stderr, "rebuild query (%s, k=%d) failed: %s\n",
                       op.algo.c_str(), k, result.status().ToString().c_str());
          return 1;
        }
        // Uncached reference evaluation: recompute the skyline (reusing
        // the facade's when it produced one) and rebuild the net.
        std::vector<int> skyline = result->skyline.empty()
                                       ? ComputeSkyline(data)
                                       : std::move(result->skyline);
        EvalOptions eval_opts;
        eval_opts.method = MhrMethod::kNet;
        eval_opts.net_size = ref_net;
        eval_opts.threads = threads;
        const double mhr =
            EvaluateMhr(data, skyline, result->solution.rows, eval_opts);
        rebuild.query_ms += query_timer.ElapsedMillis();
        fold(*result, mhr, &rebuild.digest);
      }
    }
    fold_state(data, grouping, &rebuild.digest);
  }

  // ---- Pass 2: incremental dynamic session. -------------------------
  PassResult incremental;
  {
    Rng rng(seed);
    Dataset data = GenIndependent(n, dim, &rng).NormalizedMinMax();
    Grouping grouping = GroupBySumRank(data, groups);
    auto session = SolverSession::CreateDynamic(&data, &grouping);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    for (const Op& op : schedule) {
      Stopwatch update_timer;
      if (op.insert) {
        auto row = session->Insert(op.coords, {}, op.group);
        if (!row.ok()) {
          std::fprintf(stderr, "incremental insert failed: %s\n",
                       row.status().ToString().c_str());
          return 1;
        }
      } else {
        if (Status st = session->Erase({op.erase_row}); !st.ok()) {
          std::fprintf(stderr, "incremental delete failed: %s\n",
                       st.ToString().c_str());
          return 1;
        }
      }
      incremental.update_ms += update_timer.ElapsedMillis();

      for (int k : ks) {
        Stopwatch query_timer;
        const SolverRequest request = make_request(data, grouping, op.algo, k);
        auto result = session->Solve(request);
        if (!result.ok()) {
          std::fprintf(stderr, "incremental query (%s, k=%d) failed: %s\n",
                       op.algo.c_str(), k, result.status().ToString().c_str());
          return 1;
        }
        EvalOptions eval_opts;
        eval_opts.method = MhrMethod::kNet;
        eval_opts.net_size = ref_net;
        eval_opts.threads = threads;
        eval_opts.cache = session->cache();
        const double mhr = EvaluateMhr(data, session->cache()->Skyline(data),
                                       result->solution.rows, eval_opts);
        incremental.query_ms += query_timer.ElapsedMillis();
        fold(*result, mhr, &incremental.digest);
      }
    }
    fold_state(data, grouping, &incremental.digest);

    const CacheStats stats = session->cache_stats();
    std::fprintf(stderr,
                 "incremental: %d updates x %zu-query sweeps, update %.1f "
                 "ms, query %.1f ms (rebuild: %.1f / %.1f); cache: %llu "
                 "hits, %llu misses\n",
                 updates, ks.size(), incremental.update_ms,
                 incremental.query_ms,
                 rebuild.update_ms, rebuild.query_ms,
                 static_cast<unsigned long long>(stats.TotalHits()),
                 static_cast<unsigned long long>(stats.TotalMisses()));
  }

  auto emit = [](const char* op, int pass, double ms,
                 const std::vector<double>& digest) {
    std::fprintf(stdout, "%s,%d,%.3f,%s\n", op, pass, ms,
                 Digest(digest).c_str());
  };
  // The per-phase rows share the full digest: any divergence — rows, mhr,
  // violations or final skyline state — trips bench_to_json's checksum
  // gate on every op series at once.
  emit("update", 1, rebuild.update_ms, rebuild.digest);
  emit("update", 2, incremental.update_ms, incremental.digest);
  emit("query", 1, rebuild.query_ms, rebuild.digest);
  emit("query", 2, incremental.query_ms, incremental.digest);
  emit("update_query", 1, rebuild.update_ms + rebuild.query_ms,
       rebuild.digest);
  emit("update_query", 2, incremental.update_ms + incremental.query_ms,
       incremental.digest);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
