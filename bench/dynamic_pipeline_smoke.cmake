# CTest smoke for the dynamic-updates pipeline: run the rebuild-vs-
# incremental bench on a tiny grid, feed its CSV through bench_to_json,
# and require the JSON report. The checksum gate inside bench_to_json
# makes this an incremental-vs-recompute bit-identity check — every query
# result and the final skyline state must match across passes (speedup is
# not gated at smoke size; CI's bench-dynamic job gates the 10k grid at
# >= 5x). Expects -DBENCH=..., -DEMIT=..., -DOUT_DIR=... .

execute_process(
  COMMAND ${BENCH} --n=500 --dim=3 --groups=2 --updates=6 --ks=4,6
          --algos=intcov,g_greedy --ref_net=1000
  OUTPUT_FILE ${OUT_DIR}/bench_dynamic_smoke.csv
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_dynamic_updates failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND ${EMIT} --in=${OUT_DIR}/bench_dynamic_smoke.csv
          --out=${OUT_DIR}/BENCH_dynamic_smoke.json
          --min_speedup=update_query:2:0.0
  RESULT_VARIABLE emit_rc)
if(NOT emit_rc EQUAL 0)
  message(FATAL_ERROR "bench_to_json failed (rc=${emit_rc}); a non-zero "
          "exit here means the incremental path diverged from full "
          "recomputation (checksum gate) or the report could not be "
          "written")
endif()

if(NOT EXISTS ${OUT_DIR}/BENCH_dynamic_smoke.json)
  message(FATAL_ERROR "bench_to_json exited 0 but wrote no JSON report")
endif()
