// bench_snapshot: process warm-start via binary snapshots versus cold
// ingest. One serving state — a generated dataset written to CSV (the
// on-disk source a fresh process would ingest) — is brought up twice:
//
//   * cold — ReadCsv + grouping + dynamic session + skyline-index build
//     from scratch (the pre-snapshot restart story), then a query sweep;
//   * restore — DatasetCatalog::Load of the snapshot file written from the
//     cold session (untimed save): table, tombstone state, grouping,
//     insert-routing provenance and the maintained skyline state all come
//     from the file without a single dominance test, then the same sweep
//     through the catalog.
//
// Emits the machine-readable CSV tools/bench_to_json consumes; `threads`
// encodes the pass — 1 = cold, 2 = restore (see the pass1/pass2 config
// keys) — so the restore row's "speedup" is the cold/restore factor, and
// the checksum gate doubles as the restored-state bit-identity guarantee
// (every query result plus the full skyline-index state is digested).
//
//   bench_snapshot --n=10000 --dim=6 --groups=4 |
//     bench_to_json --out=BENCH_snapshot.json --min_speedup=warm_start:2:10.0

#include <cstdio>
#include <string>
#include <vector>

#include "api/catalog.h"
#include "api/session.h"
#include "api/solver.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "data/snapshot.h"
#include "fairness/group_bounds.h"
#include "skyline/incremental.h"

namespace fairhms {
namespace {

/// Serial, order-fixed digest (same contract as the other bench harnesses).
std::string Digest(const std::vector<double>& values) {
  double sum = 0.0;
  double alt = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    alt += values[i] * static_cast<double>((i % 64) + 1);
  }
  return StrFormat("%.17g|%.17g", sum, alt);
}

/// Folds one query's outcome into the digest.
void Fold(const SolverResult& result, std::vector<double>* digest) {
  digest->push_back(static_cast<double>(result.solution.rows.size()));
  for (int row : result.solution.rows) {
    digest->push_back(static_cast<double>(row));
  }
  digest->push_back(result.solution.mhr);
  digest->push_back(static_cast<double>(result.violations));
}

/// Folds the complete maintained skyline-index state, so the checksum also
/// certifies what the snapshot carried — not just results computed from it.
void FoldIndexState(const SkylineIndex& index, std::vector<double>* digest) {
  const SkylineIndexState state = index.SaveState();
  for (int r : state.global.skyline) digest->push_back(r);
  for (const auto& [row, by] : state.global.dominated) {
    digest->push_back(static_cast<double>(row));
    digest->push_back(static_cast<double>(by));
  }
  for (const IncrementalSkylineState& g : state.per_group) {
    digest->push_back(static_cast<double>(g.skyline.size()));
    for (int r : g.skyline) digest->push_back(r);
    digest->push_back(static_cast<double>(g.dominated.size()));
  }
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const int dim = static_cast<int>(flags.GetInt("dim", 6));
  const int groups = static_cast<int>(flags.GetInt("groups", 4));
  const double alpha = flags.GetDouble("alpha", 0.2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int threads = static_cast<int>(flags.GetInt("solver_threads", 1));
  const std::string algos_flag = flags.GetString("algos", "intcov,g_greedy");
  const std::string ks_flag = flags.GetString("ks", "6,10,14");
  const std::string work_dir = flags.GetString("work_dir", ".");

  std::vector<std::string> algos;
  for (const std::string& a : Split(algos_flag, ',')) {
    algos.push_back(std::string(Trim(a)));
  }
  std::vector<int> ks;
  for (const std::string& t : Split(ks_flag, ',')) {
    int64_t v = 0;
    if (!ParseInt64(Trim(t), &v) || v < 1) {
      std::fprintf(stderr, "bad --ks entry '%s'\n", t.c_str());
      return 1;
    }
    ks.push_back(static_cast<int>(v));
  }
  const std::string csv_path = work_dir + "/bench_snapshot_data.csv";
  const std::string snap_path = work_dir + "/bench_snapshot_state.snap";

  // ---- Setup (untimed): the on-disk CSV a fresh process would ingest.
  {
    Rng rng(seed);
    const Dataset generated = GenIndependent(n, dim, &rng).NormalizedMinMax();
    if (Status st = WriteCsv(generated, csv_path); !st.ok()) {
      std::fprintf(stderr, "write csv: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::fprintf(stdout,
               "# bench=snapshot pass1=cold_ingest pass2=snapshot_restore "
               "n=%zu dim=%d groups=%d ks=%s alpha=%g algos=%s "
               "solver_threads=%d seed=%llu hardware_threads=%d\n",
               n, dim, groups, ks_flag.c_str(), alpha, algos_flag.c_str(),
               threads, static_cast<unsigned long long>(seed),
               HardwareThreads());
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  auto make_request = [&](const Grouping& grouping, const Dataset& data,
                          const std::string& algo, int k) {
    SolverRequest request;
    request.bounds =
        GroupBounds::Proportional(k, grouping.LiveCounts(data), alpha);
    request.algorithm = algo;
    request.seed = seed;
    request.threads = threads;
    return request;
  };

  // ---- Pass 1: cold — CSV ingest + grouping + skyline-index build. ----
  double cold_start_ms = 0.0;
  double cold_query_ms = 0.0;
  std::vector<double> cold_digest;
  Dataset cold_data(1);
  Grouping cold_grouping;
  {
    Stopwatch start_timer;
    CsvReadOptions opts;
    {
      // A real restart knows its schema; reading the header for the
      // column list is part of the ingest it pays.
      Rng rng(seed);
      opts.numeric_columns =
          GenIndependent(1, dim, &rng).attr_names();
    }
    auto read = ReadCsv(csv_path, opts);
    if (!read.ok()) {
      std::fprintf(stderr, "read csv: %s\n", read.status().ToString().c_str());
      return 1;
    }
    cold_data = std::move(*read);
    cold_grouping = GroupBySumRank(cold_data, groups);
    auto session = SolverSession::CreateDynamic(&cold_data, &cold_grouping);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    if (Status st = session->EnsureIndex(); !st.ok()) {
      std::fprintf(stderr, "index build: %s\n", st.ToString().c_str());
      return 1;
    }
    cold_start_ms = start_timer.ElapsedMillis();

    for (const std::string& algo : algos) {
      for (int k : ks) {
        Stopwatch query_timer;
        auto result = session->Solve(
            make_request(cold_grouping, cold_data, algo, k));
        if (!result.ok()) {
          std::fprintf(stderr, "cold query (%s, k=%d): %s\n", algo.c_str(), k,
                       result.status().ToString().c_str());
          return 1;
        }
        cold_query_ms += query_timer.ElapsedMillis();
        Fold(*result, &cold_digest);
      }
    }
    FoldIndexState(*session->index(), &cold_digest);

    // Untimed: persist the cold session's full serving state.
    auto snapshot = SnapshotSession(&*session);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    if (Status st = WriteSnapshotFile(*snapshot, snap_path); !st.ok()) {
      std::fprintf(stderr, "write snapshot: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // ---- Pass 2: restore — catalog warm-start from the snapshot file. ---
  double restore_ms = 0.0;
  double restore_query_ms = 0.0;
  std::vector<double> restore_digest;
  {
    DatasetCatalog catalog;
    Stopwatch restore_timer;
    if (Status st = catalog.Load("bench", snap_path); !st.ok()) {
      std::fprintf(stderr, "restore: %s\n", st.ToString().c_str());
      return 1;
    }
    restore_ms = restore_timer.ElapsedMillis();

    auto session = catalog.Session("bench");
    if (!session.ok()) {
      std::fprintf(stderr, "restored session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    for (const std::string& algo : algos) {
      for (int k : ks) {
        Stopwatch query_timer;
        auto result = catalog.Solve(
            "bench",
            make_request((*session)->grouping(), (*session)->data(), algo, k));
        if (!result.ok()) {
          std::fprintf(stderr, "restored query (%s, k=%d): %s\n", algo.c_str(),
                       k, result.status().ToString().c_str());
          return 1;
        }
        restore_query_ms += query_timer.ElapsedMillis();
        Fold(*result, &restore_digest);
      }
    }
    FoldIndexState(*(*session)->index(), &restore_digest);
  }

  std::fprintf(stderr,
               "cold: ingest+build %.1f ms, queries %.1f ms; restore: "
               "%.1f ms, queries %.1f ms (%.1fx warm-start)\n",
               cold_start_ms, cold_query_ms, restore_ms, restore_query_ms,
               restore_ms > 0.0 ? cold_start_ms / restore_ms : 0.0);

  auto emit = [](const char* op, int pass, double ms,
                 const std::vector<double>& digest) {
    std::fprintf(stdout, "%s,%d,%.3f,%s\n", op, pass, ms,
                 Digest(digest).c_str());
  };
  // Both passes share the full digest: a restored state that diverges
  // anywhere — query rows, mhr, violations, or any skyline-index entry —
  // trips bench_to_json's checksum gate on every series at once.
  emit("warm_start", 1, cold_start_ms, cold_digest);
  emit("warm_start", 2, restore_ms, restore_digest);
  emit("query", 1, cold_query_ms, cold_digest);
  emit("query", 2, restore_query_ms, restore_digest);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
