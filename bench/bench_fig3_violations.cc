// Regenerates Fig. 3: numbers of fairness violations err(S) vs k.
//
// The fairness-unaware baselines (Greedy, DMM, HS, Sphere) run in their
// original form on the global skyline; BiGreedy/BiGreedy+ run with the
// proportional constraint (alpha = 0.1). Expected shape: baselines violate
// in almost all cases, our algorithms always report 0.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fairhms {
namespace {

using namespace bench;

void Panel(const DatasetCase& c, const std::vector<int>& ks) {
  std::vector<std::string> series = {"BiGreedy", "BiGreedy+"};
  const auto plain = PlainRoster();
  for (const auto& [name, runner] : plain) series.push_back(name);
  PrintHeader("Fig. 3 - fairness violations err(S): " + c.name, "k", series);

  const auto fair = FairRoster(/*with_intcov=*/false);
  for (int k : ks) {
    const GroupBounds bounds = PaperBounds(c, k);
    std::vector<std::string> cells;
    // BiGreedy and BiGreedy+ (fair; err must be 0).
    for (int i = 0; i < 2; ++i) {
      cells.push_back(FormatErr(RunFair(fair[static_cast<size_t>(i)].second,
                                        c, bounds)));
    }
    for (const auto& [name, runner] : plain) {
      cells.push_back(FormatErr(RunPlain(runner, c, k, bounds)));
    }
    PrintRow(std::to_string(k), cells);
  }
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t anticor_n = static_cast<size_t>(
      flags.GetInt("anticor_n", flags.Has("full") ? 10000 : 3000));

  std::printf("=== Fig. 3: fairness violations of unconstrained algorithms "
              "(proportional bounds, alpha = 0.1) ===\n");

  const std::vector<int> adult_ks = {10, 12, 14, 16, 18, 20};
  const std::vector<int> wide_ks =
      flags.Has("full") ? std::vector<int>{10, 20, 30, 40, 50}
                        : std::vector<int>{10, 20, 30};

  Panel(MakeCase("adult:gender", seed), adult_ks);
  Panel(MakeCase("adult:race", seed), adult_ks);
  Panel(MakeCase("anticor", seed, anticor_n, 6, 3), wide_ks);
  Panel(MakeCase("compas:gender", seed), wide_ks);
  Panel(MakeCase("credit:job", seed), wide_ks);

  std::printf("\nExpected shape (paper): every baseline column is > 0 almost "
              "everywhere;\nBiGreedy/BiGreedy+ are identically 0.\n");
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
