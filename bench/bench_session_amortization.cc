// bench_session_amortization: cold-vs-warm harness for the SolverSession
// multi-query engine. Builds one dataset, enumerates an (algorithm x k x
// alpha) query grid, and serves the whole batch twice — where "serving"
// one query is exactly what `fairhms_cli --queries` does per line: solve,
// then reference-evaluate the solution's happiness ratio against the
// global skyline on a high-resolution net:
//
//   * cold — one independent Solver::Solve + uncached evaluation per query
//     (every query rebuilds the skyline, fair pool, utility nets and
//     evaluator/denominator precomputes);
//   * warm — the same queries, in order, through a single SolverSession
//     with its cross-query ArtifactCache.
//
// Emits the machine-readable CSV tools/bench_to_json consumes. The
// `threads` column encodes the pass — 1 = cold, 2 = warm (see the
// pass1/pass2 keys of the config line) — so the JSON "speedup" of the
// warm row is the cold/warm amortization factor, and the checksum
// consistency gate doubles as the warm-vs-cold bit-identity guarantee
// (every selected row, mhr and violation count is digested).
//
//   bench_session_amortization --n=10000 --dim=6 --groups=4
//       --algos=bigreedy,bigreedy+,intcov --ks=6,10,14,18,22
//       --alphas=0.05,0.15,0.25,0.35 |
//     bench_to_json --out=BENCH_session.json --min_speedup=batch:2:2.0

#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/solver.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

/// Serial, order-fixed digest of a value sequence (bit-identical values
/// digest to the same string regardless of how they were computed).
std::string Digest(const std::vector<double>& values) {
  double sum = 0.0;
  double alt = 0.0;  // Position-sensitive companion: catches reorderings.
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    alt += values[i] * static_cast<double>((i % 64) + 1);
  }
  return StrFormat("%.17g|%.17g", sum, alt);
}

struct Query {
  std::string algo;
  int k = 0;
  double alpha = 0.0;
};

/// Folds one result (and its reference happiness ratio) into the digest
/// stream.
void FoldResult(const SolverResult& result, double reference_mhr,
                std::vector<double>* digest) {
  digest->push_back(static_cast<double>(result.solution.rows.size()));
  for (int row : result.solution.rows) {
    digest->push_back(static_cast<double>(row));
  }
  digest->push_back(result.solution.mhr);
  digest->push_back(reference_mhr);
  digest->push_back(static_cast<double>(result.violations));
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const int dim = static_cast<int>(flags.GetInt("dim", 6));
  const int groups = static_cast<int>(flags.GetInt("groups", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int threads = static_cast<int>(flags.GetInt("solver_threads", 1));
  const int repeat = static_cast<int>(flags.GetInt("repeat_grid", 1));
  const size_t ref_net = static_cast<size_t>(flags.GetInt("ref_net", 20000));

  std::vector<std::string> algos;
  for (const std::string& a :
       Split(flags.GetString("algos", "bigreedy,bigreedy+,intcov"), ',')) {
    algos.push_back(std::string(Trim(a)));
  }
  std::vector<int> ks;
  for (const std::string& t :
       Split(flags.GetString("ks", "6,10,14,18,22"), ',')) {
    int64_t v = 0;
    if (!ParseInt64(Trim(t), &v) || v < 1) {
      std::fprintf(stderr, "bad --ks entry '%s'\n", t.c_str());
      return 1;
    }
    ks.push_back(static_cast<int>(v));
  }
  std::vector<double> alphas;
  for (const std::string& t :
       Split(flags.GetString("alphas", "0.05,0.15,0.25,0.35"), ',')) {
    double v = 0.0;
    if (!ParseDouble(Trim(t), &v) || v < 0.0) {
      std::fprintf(stderr, "bad --alphas entry '%s'\n", t.c_str());
      return 1;
    }
    alphas.push_back(v);
  }

  Rng rng(seed);
  const Dataset data = GenIndependent(n, dim, &rng).NormalizedMinMax();
  const Grouping grouping = GroupBySumRank(data, groups);
  const std::vector<int> group_counts = grouping.Counts();

  std::vector<Query> queries;
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& algo : algos) {
      for (int k : ks) {
        for (double alpha : alphas) {
          queries.push_back({algo, k, alpha});
        }
      }
    }
  }

  auto make_request = [&](const Query& q) {
    SolverRequest request;
    request.data = &data;
    request.grouping = &grouping;
    request.bounds = GroupBounds::Proportional(q.k, group_counts, q.alpha);
    request.algorithm = q.algo;
    request.seed = seed;
    request.threads = threads;
    return request;
  };

  // The reference evaluation every served query pays (the `--queries`
  // driver's happiness_ratio): mhr against the global skyline on a
  // high-resolution net. With a cache the skyline and the evaluator
  // amortize; without one each query rebuilds both.
  auto reference_mhr = [&](const std::vector<int>& rows,
                           ArtifactCache* cache) {
    std::vector<int> local_skyline;
    const std::vector<int>& skyline =
        cache != nullptr ? cache->Skyline(data)
                         : (local_skyline = ComputeSkyline(data));
    EvalOptions eval_opts;
    eval_opts.method = MhrMethod::kNet;
    eval_opts.net_size = ref_net;
    eval_opts.threads = threads;
    eval_opts.cache = cache;
    return EvaluateMhr(data, skyline, rows, eval_opts);
  };

  std::fprintf(stdout,
               "# bench=session_amortization pass1=cold pass2=warm n=%zu "
               "dim=%d groups=%d queries=%zu algos=%s ks=%s alphas=%s "
               "ref_net=%zu solver_threads=%d seed=%llu "
               "hardware_threads=%d\n",
               n, dim, groups, queries.size(),
               flags.GetString("algos", "bigreedy,bigreedy+,intcov").c_str(),
               flags.GetString("ks", "6,10,14,18,22").c_str(),
               flags.GetString("alphas", "0.05,0.15,0.25,0.35").c_str(),
               ref_net, threads, static_cast<unsigned long long>(seed),
               HardwareThreads());
  std::fprintf(stdout, "op,threads,ms,checksum\n");

  // Per-algorithm timing buckets plus the whole-batch rollup.
  struct Bucket {
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    std::vector<double> cold_digest;
    std::vector<double> warm_digest;
  };
  std::vector<std::string> bucket_names = algos;
  bucket_names.push_back("batch");
  std::vector<Bucket> buckets(bucket_names.size());
  auto bucket_of = [&](const std::string& algo) -> Bucket& {
    for (size_t i = 0; i < algos.size(); ++i) {
      if (algos[i] == algo) return buckets[i];
    }
    return buckets.back();
  };
  Bucket& batch = buckets.back();

  // Cold pass: one throwaway session per query (Solver::Solve) plus an
  // uncached reference evaluation.
  for (const Query& q : queries) {
    const SolverRequest request = make_request(q);
    Stopwatch timer;
    auto result = Solver::Solve(request);
    if (!result.ok()) {
      std::fprintf(stderr, "cold %s k=%d alpha=%g failed: %s\n",
                   q.algo.c_str(), q.k, q.alpha,
                   result.status().ToString().c_str());
      return 1;
    }
    const double mhr = reference_mhr(result->solution.rows, nullptr);
    const double ms = timer.ElapsedMillis();
    Bucket& b = bucket_of(q.algo);
    b.cold_ms += ms;
    batch.cold_ms += ms;
    FoldResult(*result, mhr, &b.cold_digest);
    FoldResult(*result, mhr, &batch.cold_digest);
  }

  // Warm pass: the same queries through one pinned session.
  auto session = SolverSession::Create(&data, &grouping);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.status().ToString().c_str());
    return 1;
  }
  for (const Query& q : queries) {
    const SolverRequest request = make_request(q);
    Stopwatch timer;
    auto result = session->Solve(request);
    if (!result.ok()) {
      std::fprintf(stderr, "warm %s k=%d alpha=%g failed: %s\n",
                   q.algo.c_str(), q.k, q.alpha,
                   result.status().ToString().c_str());
      return 1;
    }
    const double mhr = reference_mhr(result->solution.rows, session->cache());
    const double ms = timer.ElapsedMillis();
    Bucket& b = bucket_of(q.algo);
    b.warm_ms += ms;
    batch.warm_ms += ms;
    FoldResult(*result, mhr, &b.warm_digest);
    FoldResult(*result, mhr, &batch.warm_digest);
  }

  for (size_t i = 0; i < buckets.size(); ++i) {
    std::fprintf(stdout, "%s,1,%.3f,%s\n", bucket_names[i].c_str(),
                 buckets[i].cold_ms, Digest(buckets[i].cold_digest).c_str());
    std::fprintf(stdout, "%s,2,%.3f,%s\n", bucket_names[i].c_str(),
                 buckets[i].warm_ms, Digest(buckets[i].warm_digest).c_str());
  }

  const CacheStats stats = session->cache_stats();
  std::fprintf(stderr,
               "batch: %zu queries, cold %.1f ms, warm %.1f ms (%.2fx); "
               "cache: %llu hits, %llu misses, %.1f KiB\n",
               queries.size(), batch.cold_ms, batch.warm_ms,
               batch.warm_ms > 0.0 ? batch.cold_ms / batch.warm_ms : 0.0,
               static_cast<unsigned long long>(stats.TotalHits()),
               static_cast<unsigned long long>(stats.TotalMisses()),
               static_cast<double>(stats.TotalBytes()) / 1024.0);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
