# CTest smoke for the --queries batch driver: serve a small JSONL batch
# (including one bad line and interleaved insert/delete update ops)
# through a single dynamic SolverSession and check that every good line
# produced an ok record while the bad one failed without stopping the
# stream. Expects -DCLI=..., -DOUT_DIR=... .

set(queries ${OUT_DIR}/smoke_queries.jsonl)
file(WRITE ${queries}
  "{\"algorithm\": \"bigreedy\", \"k\": 6, \"alpha\": 0.2, \"params\": {\"net_size\": 120}}\n"
  "{\"algorithm\": \"bigreedy\", \"k\": 6, \"alpha\": 0.2, \"params\": {\"net_size\": 120}}\n"
  "{\"op\": \"insert\", \"point\": [0.9, 0.9, 0.9], \"group\": 1, \"id\": \"ins\"}\n"
  "{\"op\": \"delete\", \"rows\": [0, 1], \"id\": \"del\"}\n"
  "{\"op\": \"delete\", \"rows\": [0], \"id\": \"redel\"}\n"
  "{\"algorithm\": \"intcov\", \"k\": 4, \"bounds\": \"balanced\", \"alpha\": 0.5, \"id\": \"smoke\"}\n"
  "{\"algorithm\": \"no_such_algo\", \"k\": 4}\n"
  "{\"algorithm\": \"rdp_greedy\", \"k\": 4}\n")

execute_process(
  COMMAND ${CLI} --synthetic=independent --n=400 --dim=3 --groups=2
          --queries=${queries}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

# Exit 3 = batch completed with failed lines (the bad algorithm and the
# double delete), which is exactly what this stream must produce.
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "expected exit 3 (failed lines), got rc=${rc}\n"
          "stdout:\n${out}\nstderr:\n${err}")
endif()

string(REGEX MATCHALL "\"ok\": true" ok_lines "${out}")
list(LENGTH ok_lines ok_count)
if(NOT ok_count EQUAL 6)
  message(FATAL_ERROR "expected 6 ok lines, got ${ok_count}\n${out}")
endif()

if(NOT out MATCHES "\"id\": \"smoke\"")
  message(FATAL_ERROR "query ids are not echoed:\n${out}")
endif()
if(NOT out MATCHES "\"ok\": false")
  message(FATAL_ERROR "the bad lines did not produce error records:\n${out}")
endif()

# The insert lands at row 400 (the table had 400 rows), the delete leaves
# 399 live rows (400 - 2 + 1 inserted), and deleting row 0 again must fail
# without stopping the stream.
if(NOT out MATCHES "\"op\": \"insert\", \"row\": 400")
  message(FATAL_ERROR "insert did not report row 400:\n${out}")
endif()
if(NOT out MATCHES "\"op\": \"delete\", \"erased\": 2, \"version\": [0-9]+, \"live_rows\": 399")
  message(FATAL_ERROR "delete did not report 399 live rows:\n${out}")
endif()
if(NOT out MATCHES "\"id\": \"redel\", \"ok\": false")
  message(FATAL_ERROR "double delete did not fail:\n${out}")
endif()
if(NOT err MATCHES "cache:")
  message(FATAL_ERROR "no cache report on stderr:\n${err}")
endif()

# The two identical bigreedy queries must serve bit-identical rows.
string(REGEX MATCHALL "\"rows\": \\[[^]]*\\]" row_lists "${out}")
list(GET row_lists 0 first_rows)
list(GET row_lists 1 second_rows)
if(NOT first_rows STREQUAL second_rows)
  message(FATAL_ERROR "warm repeat diverged from first serve:\n"
          "${first_rows}\nvs\n${second_rows}")
endif()
