# CTest smoke for the --queries batch driver: serve a small JSONL batch
# (including one bad line) through a single SolverSession and check that
# every good query produced an ok line while the bad one failed without
# stopping the stream. Expects -DCLI=..., -DOUT_DIR=... .

set(queries ${OUT_DIR}/smoke_queries.jsonl)
file(WRITE ${queries}
  "{\"algorithm\": \"bigreedy\", \"k\": 6, \"alpha\": 0.2, \"params\": {\"net_size\": 120}}\n"
  "{\"algorithm\": \"bigreedy\", \"k\": 6, \"alpha\": 0.2, \"params\": {\"net_size\": 120}}\n"
  "{\"algorithm\": \"intcov\", \"k\": 4, \"bounds\": \"balanced\", \"alpha\": 0.5, \"id\": \"smoke\"}\n"
  "{\"algorithm\": \"no_such_algo\", \"k\": 4}\n"
  "{\"algorithm\": \"rdp_greedy\", \"k\": 4}\n")

execute_process(
  COMMAND ${CLI} --synthetic=independent --n=400 --dim=3 --groups=2
          --queries=${queries}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

# Exit 3 = batch completed with failed lines (the bad algorithm), which is
# exactly what this stream must produce.
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "expected exit 3 (one failed line), got rc=${rc}\n"
          "stdout:\n${out}\nstderr:\n${err}")
endif()

string(REGEX MATCHALL "\"ok\": true" ok_lines "${out}")
list(LENGTH ok_lines ok_count)
if(NOT ok_count EQUAL 4)
  message(FATAL_ERROR "expected 4 ok lines, got ${ok_count}\n${out}")
endif()

if(NOT out MATCHES "\"id\": \"smoke\"")
  message(FATAL_ERROR "query ids are not echoed:\n${out}")
endif()
if(NOT out MATCHES "\"ok\": false")
  message(FATAL_ERROR "the bad line did not produce an error record:\n${out}")
endif()
if(NOT err MATCHES "cache:")
  message(FATAL_ERROR "no cache report on stderr:\n${err}")
endif()

# The two identical bigreedy queries must serve bit-identical rows.
string(REGEX MATCHALL "\"rows\": \\[[^]]*\\]" row_lists "${out}")
list(GET row_lists 0 first_rows)
list(GET row_lists 1 second_rows)
if(NOT first_rows STREQUAL second_rows)
  message(FATAL_ERROR "warm repeat diverged from first serve:\n"
          "${first_rows}\nvs\n${second_rows}")
endif()
