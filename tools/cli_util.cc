#include "cli_util.h"

#include <cmath>

#include "common/string_util.h"

namespace fairhms {
namespace cli {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // A stray positional or single-dash token ("-k=20") must not slip
      // through the typo guard and run with defaults.
      if (parse_error_.ok()) {
        parse_error_ = Status::InvalidArgument(StrFormat(
            "unrecognized argument '%s' (flags are --key=value)",
            arg.c_str()));
      }
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  seen_.insert(key);
  return kv_.count(key) > 0;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  int64_t v = 0;
  if (!ParseInt64(it->second, &v)) {
    if (parse_error_.ok()) {
      parse_error_ = Status::InvalidArgument(
          StrFormat("--%s: '%s' is not an integer", key.c_str(),
                    it->second.c_str()));
    }
    return def;
  }
  return v;
}

double Flags::GetDouble(const std::string& key, double def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v = 0.0;
  if (!ParseDouble(it->second, &v)) {
    if (parse_error_.ok()) {
      parse_error_ = Status::InvalidArgument(
          StrFormat("--%s: '%s' is not a number", key.c_str(),
                    it->second.c_str()));
    }
    return def;
  }
  return v;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::vector<std::string> Flags::GetList(const std::string& key) const {
  std::vector<std::string> out;
  const std::string joined = GetString(key, "");
  if (joined.empty()) return out;
  for (const auto& part : Split(joined, ',')) {
    out.push_back(std::string(Trim(part)));
  }
  return out;
}

StatusOr<std::vector<int>> Flags::GetIntList(const std::string& key) const {
  std::vector<int> out;
  for (const auto& part : GetList(key)) {
    int64_t v = 0;
    if (!ParseInt64(part, &v)) {
      return Status::InvalidArgument(
          StrFormat("--%s: '%s' is not an integer", key.c_str(),
                    part.c_str()));
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

Status Flags::ParseError() const { return parse_error_; }

std::vector<std::string> Flags::Unknown() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : kv_) {
    (void)value;
    if (!seen_.count(key)) out.push_back(key);
  }
  return out;
}

void Report::AddString(const std::string& key, const std::string& value) {
  entries_.push_back({key, value, Kind::kString});
}

void Report::AddInt(const std::string& key, int64_t value) {
  entries_.push_back({key, StrFormat("%lld", static_cast<long long>(value)),
                      Kind::kNumber});
}

void Report::AddDouble(const std::string& key, double value) {
  if (std::isfinite(value)) {
    entries_.push_back({key, StrFormat("%.6g", value), Kind::kNumber});
  } else {
    entries_.push_back({key, "null", Kind::kNumber});
  }
}

std::string Report::ToPlain() const {
  size_t width = 0;
  for (const auto& e : entries_) width = std::max(width, e.key.size());
  std::string out;
  for (const auto& e : entries_) {
    out += StrFormat("%-*s %s\n", static_cast<int>(width + 1),
                     (e.key + ":").c_str(), e.value.c_str());
  }
  return out;
}

std::string Report::ToCsv() const {
  std::vector<std::string> header;
  std::vector<std::string> row;
  for (const auto& e : entries_) {
    header.push_back(CsvEscape(e.key));
    row.push_back(CsvEscape(e.value));
  }
  return Join(header, ",") + "\n" + Join(row, ",") + "\n";
}

std::string Report::ToJson() const {
  std::vector<std::string> fields;
  for (const auto& e : entries_) {
    const std::string value = e.kind == Kind::kNumber
                                  ? e.value
                                  : "\"" + JsonEscape(e.value) + "\"";
    fields.push_back("\"" + JsonEscape(e.key) + "\": " + value);
  }
  return "{" + Join(fields, ", ") + "}\n";
}

StatusOr<std::string> Report::Render(const std::string& format) const {
  if (format == "plain") return ToPlain();
  if (format == "csv") return ToCsv();
  if (format == "json") return ToJson();
  return Status::InvalidArgument(
      StrFormat("unknown --format '%s' (want plain, csv or json)",
                format.c_str()));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace cli
}  // namespace fairhms
