#include "cli_util.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/json.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "data/generators.h"

namespace fairhms {
namespace cli {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // A stray positional or single-dash token ("-k=20") must not slip
      // through the typo guard and run with defaults.
      if (parse_error_.ok()) {
        parse_error_ = Status::InvalidArgument(StrFormat(
            "unrecognized argument '%s' (flags are --key=value)",
            arg.c_str()));
      }
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  seen_.insert(key);
  return kv_.count(key) > 0;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  int64_t v = 0;
  if (!ParseInt64(it->second, &v)) {
    if (parse_error_.ok()) {
      parse_error_ = Status::InvalidArgument(
          StrFormat("--%s: '%s' is not an integer", key.c_str(),
                    it->second.c_str()));
    }
    return def;
  }
  return v;
}

double Flags::GetDouble(const std::string& key, double def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v = 0.0;
  if (!ParseDouble(it->second, &v)) {
    if (parse_error_.ok()) {
      parse_error_ = Status::InvalidArgument(
          StrFormat("--%s: '%s' is not a number", key.c_str(),
                    it->second.c_str()));
    }
    return def;
  }
  return v;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::vector<std::string> Flags::GetList(const std::string& key) const {
  std::vector<std::string> out;
  const std::string joined = GetString(key, "");
  if (joined.empty()) return out;
  for (const auto& part : Split(joined, ',')) {
    out.push_back(std::string(Trim(part)));
  }
  return out;
}

StatusOr<std::vector<int>> Flags::GetIntList(const std::string& key) const {
  std::vector<int> out;
  for (const auto& part : GetList(key)) {
    int64_t v = 0;
    if (!ParseInt64(part, &v)) {
      return Status::InvalidArgument(
          StrFormat("--%s: '%s' is not an integer", key.c_str(),
                    part.c_str()));
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

Status Flags::ParseError() const { return parse_error_; }

std::vector<std::string> Flags::Unknown() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : kv_) {
    (void)value;
    if (!seen_.count(key)) out.push_back(key);
  }
  return out;
}

void Report::AddString(const std::string& key, const std::string& value) {
  entries_.push_back({key, value, Kind::kString});
}

void Report::AddInt(const std::string& key, int64_t value) {
  entries_.push_back({key, StrFormat("%lld", static_cast<long long>(value)),
                      Kind::kNumber});
}

void Report::AddDouble(const std::string& key, double value) {
  if (std::isfinite(value)) {
    entries_.push_back({key, StrFormat("%.6g", value), Kind::kNumber});
  } else {
    entries_.push_back({key, "null", Kind::kNumber});
  }
}

std::string Report::ToPlain() const {
  size_t width = 0;
  for (const auto& e : entries_) width = std::max(width, e.key.size());
  std::string out;
  for (const auto& e : entries_) {
    out += StrFormat("%-*s %s\n", static_cast<int>(width + 1),
                     (e.key + ":").c_str(), e.value.c_str());
  }
  return out;
}

std::string Report::ToCsv() const {
  std::vector<std::string> header;
  std::vector<std::string> row;
  for (const auto& e : entries_) {
    header.push_back(CsvEscape(e.key));
    row.push_back(CsvEscape(e.value));
  }
  return Join(header, ",") + "\n" + Join(row, ",") + "\n";
}

std::string Report::ToJson() const {
  std::vector<std::string> fields;
  for (const auto& e : entries_) {
    const std::string value = e.kind == Kind::kNumber
                                  ? e.value
                                  : "\"" + fairhms::JsonEscape(e.value) + "\"";
    fields.push_back("\"" + fairhms::JsonEscape(e.key) + "\": " + value);
  }
  return "{" + Join(fields, ", ") + "}\n";
}

StatusOr<std::string> Report::Render(const std::string& format) const {
  if (format == "plain") return ToPlain();
  if (format == "csv") return ToCsv();
  if (format == "json") return ToJson();
  return Status::InvalidArgument(
      StrFormat("unknown --format '%s' (want plain, csv or json)",
                format.c_str()));
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

StatusOr<Dataset> LoadDatasetFromFlags(const Flags& flags, Rng* rng) {
  const bool has_csv = flags.Has("csv");
  const bool has_syn = flags.Has("synthetic");
  if (has_csv == has_syn) {
    return Status::InvalidArgument(
        "pass exactly one of --csv=PATH or --synthetic=NAME (--help for "
        "usage)");
  }
  if (has_csv) {
    CsvReadOptions opts;
    for (const auto& c : flags.GetList("numeric")) {
      opts.numeric_columns.push_back(c);
    }
    for (const auto& c : flags.GetList("categorical")) {
      opts.categorical_columns.push_back(c);
    }
    if (opts.numeric_columns.empty()) {
      return Status::InvalidArgument("--csv requires --numeric=col1,col2,...");
    }
    return ReadCsv(flags.GetString("csv", ""), opts);
  }
  return MakeSyntheticDataset(flags.GetString("synthetic", ""),
                              flags.GetInt("n", 0), flags.GetInt("dim", 4),
                              rng);
}

StatusOr<Dataset> NormalizeDatasetFromFlags(const Flags& flags, Dataset raw) {
  return NormalizeDatasetByName(flags.GetString("normalize", "minmax"),
                                std::move(raw));
}

StatusOr<Grouping> MakeGroupingFromFlags(const Flags& flags,
                                         const Dataset& data) {
  const auto by = flags.GetList("group_by");
  if (!by.empty()) return GroupByCategoricalProduct(data, by);
  const int c_num = static_cast<int>(flags.GetInt("groups", 1));
  if (c_num < 1) return Status::InvalidArgument("--groups must be >= 1");
  if (c_num > static_cast<int>(data.size())) {
    return Status::InvalidArgument("--groups exceeds dataset size");
  }
  if (c_num == 1) return SingleGroup(data.size());
  return GroupBySumRank(data, c_num);
}

StatusOr<uint64_t> ResolveCacheBudgetBytes(const Flags& flags,
                                           const char* prog) {
  const bool has_legacy = flags.Has("cache_budget_mb");
  const bool has_global = flags.Has("global_cache_budget_mb");
  int64_t mb = 1024;
  if (has_legacy && has_global &&
      flags.GetInt("cache_budget_mb", 1024) !=
          flags.GetInt("global_cache_budget_mb", 1024)) {
    return Status::InvalidArgument(
        "--cache_budget_mb and --global_cache_budget_mb disagree; "
        "--cache_budget_mb is a deprecated alias — drop it and keep "
        "--global_cache_budget_mb");
  }
  if (has_legacy) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "%s: warning: --cache_budget_mb is deprecated; "
                   "the budget is process-wide across the whole catalog — "
                   "use --global_cache_budget_mb\n",
                   prog);
    }
    mb = flags.GetInt("cache_budget_mb", 1024);
  }
  if (has_global) mb = flags.GetInt("global_cache_budget_mb", 1024);
  if (mb < 0) {
    return Status::InvalidArgument("--global_cache_budget_mb must be >= 0");
  }
  return static_cast<uint64_t>(mb) * 1024 * 1024;
}

Status ApplySimdFlags(const Flags& flags) {
  if (Status st = simd::ValidateSimdEnv(); !st.ok()) return st;
  if (flags.Has("simd")) {
    auto mode = simd::ParseSimdMode(flags.GetString("simd", "auto"));
    if (!mode.ok()) {
      return Status::InvalidArgument(
          StrFormat("--simd must be \"auto\" or \"off\", got \"%s\"",
                    flags.GetString("simd", "").c_str()));
    }
    simd::SetMode(*mode);
  }
  return Status::OK();
}

}  // namespace cli
}  // namespace fairhms
