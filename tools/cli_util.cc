#include "cli_util.h"

#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace fairhms {
namespace cli {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // A stray positional or single-dash token ("-k=20") must not slip
      // through the typo guard and run with defaults.
      if (parse_error_.ok()) {
        parse_error_ = Status::InvalidArgument(StrFormat(
            "unrecognized argument '%s' (flags are --key=value)",
            arg.c_str()));
      }
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  seen_.insert(key);
  return kv_.count(key) > 0;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  int64_t v = 0;
  if (!ParseInt64(it->second, &v)) {
    if (parse_error_.ok()) {
      parse_error_ = Status::InvalidArgument(
          StrFormat("--%s: '%s' is not an integer", key.c_str(),
                    it->second.c_str()));
    }
    return def;
  }
  return v;
}

double Flags::GetDouble(const std::string& key, double def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v = 0.0;
  if (!ParseDouble(it->second, &v)) {
    if (parse_error_.ok()) {
      parse_error_ = Status::InvalidArgument(
          StrFormat("--%s: '%s' is not a number", key.c_str(),
                    it->second.c_str()));
    }
    return def;
  }
  return v;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  seen_.insert(key);
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::vector<std::string> Flags::GetList(const std::string& key) const {
  std::vector<std::string> out;
  const std::string joined = GetString(key, "");
  if (joined.empty()) return out;
  for (const auto& part : Split(joined, ',')) {
    out.push_back(std::string(Trim(part)));
  }
  return out;
}

StatusOr<std::vector<int>> Flags::GetIntList(const std::string& key) const {
  std::vector<int> out;
  for (const auto& part : GetList(key)) {
    int64_t v = 0;
    if (!ParseInt64(part, &v)) {
      return Status::InvalidArgument(
          StrFormat("--%s: '%s' is not an integer", key.c_str(),
                    part.c_str()));
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

Status Flags::ParseError() const { return parse_error_; }

std::vector<std::string> Flags::Unknown() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : kv_) {
    (void)value;
    if (!seen_.count(key)) out.push_back(key);
  }
  return out;
}

void Report::AddString(const std::string& key, const std::string& value) {
  entries_.push_back({key, value, Kind::kString});
}

void Report::AddInt(const std::string& key, int64_t value) {
  entries_.push_back({key, StrFormat("%lld", static_cast<long long>(value)),
                      Kind::kNumber});
}

void Report::AddDouble(const std::string& key, double value) {
  if (std::isfinite(value)) {
    entries_.push_back({key, StrFormat("%.6g", value), Kind::kNumber});
  } else {
    entries_.push_back({key, "null", Kind::kNumber});
  }
}

std::string Report::ToPlain() const {
  size_t width = 0;
  for (const auto& e : entries_) width = std::max(width, e.key.size());
  std::string out;
  for (const auto& e : entries_) {
    out += StrFormat("%-*s %s\n", static_cast<int>(width + 1),
                     (e.key + ":").c_str(), e.value.c_str());
  }
  return out;
}

std::string Report::ToCsv() const {
  std::vector<std::string> header;
  std::vector<std::string> row;
  for (const auto& e : entries_) {
    header.push_back(CsvEscape(e.key));
    row.push_back(CsvEscape(e.value));
  }
  return Join(header, ",") + "\n" + Join(row, ",") + "\n";
}

std::string Report::ToJson() const {
  std::vector<std::string> fields;
  for (const auto& e : entries_) {
    const std::string value = e.kind == Kind::kNumber
                                  ? e.value
                                  : "\"" + JsonEscape(e.value) + "\"";
    fields.push_back("\"" + JsonEscape(e.key) + "\": " + value);
  }
  return "{" + Join(fields, ", ") + "}\n";
}

StatusOr<std::string> Report::Render(const std::string& format) const {
  if (format == "plain") return ToPlain();
  if (format == "csv") return ToCsv();
  if (format == "json") return ToJson();
  return Status::InvalidArgument(
      StrFormat("unknown --format '%s' (want plain, csv or json)",
                format.c_str()));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) found = &value;
  }
  return found;
}

StatusOr<int64_t> JsonValue::AsInt64() const {
  if (!is_number()) return Status::InvalidArgument("expected a number");
  const double v = number_;
  // Range check before the cast: double -> int64 outside the representable
  // range is undefined behavior. 2^63 is exactly representable as a double.
  if (!(v >= -9223372036854775808.0 && v < 9223372036854775808.0)) {
    return Status::InvalidArgument(
        StrFormat("number %g is out of the 64-bit integer range", v));
  }
  if (v != static_cast<double>(static_cast<int64_t>(v))) {
    return Status::InvalidArgument(
        StrFormat("expected a whole number, got %g", v));
  }
  return static_cast<int64_t>(v);
}

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    FAIRHMS_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeLiteral("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string object key");
      }
      std::string key;
      FAIRHMS_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      FAIRHMS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      FAIRHMS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape digit");
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through individually — labels are treated as opaque bytes).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error(StrFormat("bad escape '\\%c'", esc));
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    if (!ParseDouble(text_.substr(start, pos_ - start), &v)) {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace cli
}  // namespace fairhms
