#!/usr/bin/env bash
# Smoke test for the fairhms_serve daemon: boot on a unix-domain socket,
# serve a mixed batch through --client, hammer it from four concurrent
# clients, snapshot-reload on SIGHUP, then drain gracefully on SIGTERM.
# Usage: serve_smoke.sh <fairhms_serve binary> <scratch dir>
set -u

SERVE="$1"
OUT="$2"
SOCK="$OUT/serve_smoke.sock"
RELOAD="$OUT/serve_smoke_reload"
LOG="$OUT/serve_smoke.stdout"
ERR="$OUT/serve_smoke.stderr"

fail() {
  echo "serve_smoke: FAIL: $1" >&2
  [ -f "$LOG" ] && sed 's/^/  stdout: /' "$LOG" >&2
  [ -f "$ERR" ] && sed 's/^/  stderr: /' "$ERR" >&2
  [ -n "${PID:-}" ] && kill -KILL "$PID" 2>/dev/null
  exit 1
}

rm -f "$SOCK" "$LOG" "$ERR"
rm -rf "$RELOAD"
mkdir -p "$RELOAD"

"$SERVE" --synthetic=independent --n=300 --dim=3 --groups=2 \
  --unix="$SOCK" --workers=4 --reload_dir="$RELOAD" >"$LOG" 2>"$ERR" &
PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && grep -q "ready" "$LOG" 2>/dev/null && break
  kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon did not come up"

# One mixed batch: queries, an update, a stats probe and one bad line.
REQ="$OUT/serve_smoke_req.jsonl"
cat >"$REQ" <<'EOF'
{"algorithm": "bigreedy", "k": 6, "alpha": 0.2, "params": {"net_size": 120}, "id": "q1"}
{"algorithm": "bigreedy", "k": 6, "alpha": 0.2, "params": {"net_size": 120}, "id": "q2"}
{"op": "insert", "point": [0.9, 0.9, 0.9], "group": 1, "id": "ins"}
{"op": "stats", "id": "st"}
{"algorithm": "no_such_algo", "k": 4, "id": "bad"}
EOF
"$SERVE" --client --unix="$SOCK" <"$REQ" >"$OUT/serve_smoke_resp.jsonl"
rc=$?
[ "$rc" -eq 3 ] || fail "client expected exit 3 (one failed line), got $rc"
resp="$OUT/serve_smoke_resp.jsonl"
[ "$(wc -l <"$resp")" -eq 5 ] || fail "expected 5 responses, got $(wc -l <"$resp")"
grep -q '"protocol_version": 1' "$resp" || fail "versioned envelope missing"
grep -q '"seq": ' "$resp" || fail "seq missing from daemon responses"
grep -q '"id": "st", "ok": true' "$resp" || fail "stats op failed"
grep -q '"error": {"code": "InvalidArgument"' "$resp" || \
  fail "structured error code missing"

# The two identical queries must return bit-identical rows.
q1=$(grep '"id": "q1"' "$resp" | grep -o '"rows": \[[^]]*\]')
q2=$(grep '"id": "q2"' "$resp" | grep -o '"rows": \[[^]]*\]')
[ -n "$q1" ] && [ "$q1" = "$q2" ] || fail "repeat query diverged: $q1 vs $q2"

# Four concurrent clients, mixed read load; every line must be answered.
CRQ="$OUT/serve_smoke_conc.jsonl"
{
  for i in $(seq 1 10); do
    echo "{\"algorithm\": \"intcov\", \"k\": 4, \"id\": $i}"
  done
  echo '{"op": "list", "id": "ls"}'
} >"$CRQ"
for c in 1 2 3 4; do
  "$SERVE" --client --unix="$SOCK" <"$CRQ" >"$OUT/serve_smoke_c$c.jsonl" &
done
wait %2 %3 %4 %5 2>/dev/null
for c in 1 2 3 4; do
  n=$(wc -l <"$OUT/serve_smoke_c$c.jsonl")
  [ "$n" -eq 11 ] || fail "client $c got $n of 11 responses"
  grep -q '"ok": false' "$OUT/serve_smoke_c$c.jsonl" && \
    fail "client $c saw a failed line"
done

# SIGHUP: snapshot-reload the catalog, then the daemon must keep serving.
kill -HUP "$PID"
for _ in $(seq 1 100); do
  grep -q "snapshot-reloaded" "$ERR" 2>/dev/null && break
  sleep 0.1
done
grep -q "snapshot-reloaded" "$ERR" || fail "SIGHUP reload did not complete"
[ -f "$RELOAD/default.snap" ] || fail "reload dir has no default.snap"
echo '{"algorithm": "intcov", "k": 4, "id": "after"}' | \
  "$SERVE" --client --unix="$SOCK" >"$OUT/serve_smoke_after.jsonl" || \
  fail "query after reload failed"
grep -q '"id": "after", "ok": true' "$OUT/serve_smoke_after.jsonl" || \
  fail "post-reload query not ok"

# SIGTERM: graceful drain, exit 0, final report on stderr.
kill -TERM "$PID"
wait "$PID"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM"
grep -q "served" "$ERR" || fail "no final report on stderr"
[ -S "$SOCK" ] && fail "unix socket not removed on drain"

echo "serve_smoke: PASS"
exit 0
