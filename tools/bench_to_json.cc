// bench_to_json: turns bench_parallel_eval's CSV into the speedup report
// BENCH_parallel_eval.json tracked by CI, and gates on two regressions:
//
//   * determinism — every op's checksum must be byte-identical across
//     thread counts (exit 2 otherwise);
//   * throughput — each --min_speedup=op:threads:factor entry must hold
//     against the op's 1-thread baseline (exit 1 otherwise).
//
//   bench_parallel_eval --threads=1,2,4 |
//       bench_to_json --out=BENCH_parallel_eval.json
//                     --min_speedup=mhr_sweep:4:1.5

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cli_util.h"
#include "common/json.h"
#include "common/string_util.h"

namespace fairhms {
namespace {

struct Entry {
  int threads = 0;
  double ms = 0.0;
  std::string checksum;
};

struct OpSeries {
  std::string op;
  std::vector<Entry> entries;  ///< Input order (thread grid order).
};

int Fail(const char* fmt, const std::string& arg) {
  std::fprintf(stderr, "bench_to_json: ");
  std::fprintf(stderr, fmt, arg.c_str());
  std::fprintf(stderr, "\n");
  return 1;
}

int Run(int argc, char** argv) {
  const cli::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::fputs(
        "bench_to_json --in=FILE|- --out=FILE "
        "[--min_speedup=op:threads:factor,...]\n"
        "Reads bench_parallel_eval CSV, writes a JSON speedup report.\n"
        "Exits 1 on an unmet --min_speedup, 2 on a checksum mismatch\n"
        "(determinism regression across thread counts).\n",
        stdout);
    return 0;
  }

  const std::string in_path = flags.GetString("in", "-");
  const std::string out_path = flags.GetString("out", "BENCH_parallel_eval.json");

  std::ifstream file;
  if (in_path != "-") {
    file.open(in_path);
    if (!file) return Fail("cannot open --in=%s", in_path);
  }
  std::istream& in = in_path == "-" ? std::cin : file;

  std::map<std::string, std::string> config;
  std::vector<OpSeries> series;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      // "# bench=parallel_eval n=10000 dim=6 ..." -> config map.
      for (const std::string& kv : Split(trimmed.substr(1), ' ')) {
        const auto parts = Split(kv, '=');
        if (parts.size() == 2 && !parts[0].empty()) {
          config[parts[0]] = parts[1];
        }
      }
      continue;
    }
    const auto cells = Split(trimmed, ',');
    if (cells.size() != 4) return Fail("malformed CSV line: %s", line);
    if (cells[0] == "op") continue;  // Header.
    Entry e;
    int64_t threads = 0;
    if (!ParseInt64(cells[1], &threads) || threads < 1 ||
        !ParseDouble(cells[2], &e.ms)) {
      return Fail("malformed CSV line: %s", line);
    }
    e.threads = static_cast<int>(threads);
    e.checksum = cells[3];
    OpSeries* s = nullptr;
    for (OpSeries& existing : series) {
      if (existing.op == cells[0]) s = &existing;
    }
    if (s == nullptr) {
      series.push_back({cells[0], {}});
      s = &series.back();
    }
    s->entries.push_back(std::move(e));
  }
  if (series.empty()) return Fail("no data rows in %s", in_path);

  // Baselines and the determinism gate (consistency tracked per op).
  std::map<std::string, double> baseline_ms;
  std::map<std::string, bool> op_consistent;
  bool checksums_ok = true;
  for (const OpSeries& s : series) {
    op_consistent[s.op] = true;
    for (const Entry& e : s.entries) {
      if (e.threads == 1) baseline_ms[s.op] = e.ms;
      if (e.checksum != s.entries.front().checksum) {
        std::fprintf(stderr,
                     "bench_to_json: DETERMINISM REGRESSION: op %s checksum "
                     "at %d threads (%s) differs from %d threads (%s)\n",
                     s.op.c_str(), e.threads, e.checksum.c_str(),
                     s.entries.front().threads,
                     s.entries.front().checksum.c_str());
        op_consistent[s.op] = false;
        checksums_ok = false;
      }
    }
    if (baseline_ms.find(s.op) == baseline_ms.end()) {
      return Fail("op %s has no 1-thread baseline row", s.op);
    }
  }

  auto speedup_of = [&](const OpSeries& s, const Entry& e) {
    return e.ms > 0.0 ? baseline_ms[s.op] / e.ms : 0.0;
  };

  // The bench names itself via the "# bench=..." config key; default kept
  // for CSVs from older harness versions.
  const std::string bench_name =
      config.count("bench") ? config.at("bench") : "parallel_eval";
  std::ostringstream json;
  json << "{\n  \"bench\": \"" << JsonEscape(bench_name)
       << "\",\n  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config) {
    json << (first ? "" : ", ") << '"' << JsonEscape(key) << "\": \""
         << JsonEscape(value) << '"';
    first = false;
  }
  json << "},\n  \"ops\": [\n";
  for (size_t si = 0; si < series.size(); ++si) {
    const OpSeries& s = series[si];
    json << "    {\"op\": \"" << JsonEscape(s.op)
         << "\", \"checksum_consistent\": "
         << (op_consistent[s.op] ? "true" : "false") << ", \"results\": [";
    for (size_t i = 0; i < s.entries.size(); ++i) {
      const Entry& e = s.entries[i];
      json << (i == 0 ? "" : ", ")
           << StrFormat("{\"threads\": %d, \"ms\": %.3f, \"speedup\": %.3f}",
                        e.threads, e.ms, speedup_of(s, e));
    }
    json << "]}" << (si + 1 < series.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) return Fail("cannot write --out=%s", out_path);
  out << json.str();
  out.close();
  std::fprintf(stderr, "bench_to_json: wrote %s (%zu ops)\n",
               out_path.c_str(), series.size());

  if (!checksums_ok) return 2;

  // Throughput gates: --min_speedup=op:threads:factor[,op:threads:factor].
  int failures = 0;
  for (const std::string& gate : flags.GetList("min_speedup")) {
    const auto parts = Split(gate, ':');
    int64_t want_threads = 0;
    double want_factor = 0.0;
    if (parts.size() != 3 || !ParseInt64(parts[1], &want_threads) ||
        !ParseDouble(parts[2], &want_factor)) {
      return Fail("malformed --min_speedup entry '%s'", gate);
    }
    bool found = false;
    for (const OpSeries& s : series) {
      if (s.op != parts[0]) continue;
      for (const Entry& e : s.entries) {
        if (e.threads != want_threads) continue;
        found = true;
        const double got = speedup_of(s, e);
        const bool ok = got >= want_factor;
        std::fprintf(stderr,
                     "bench_to_json: %s %s@%d speedup %.2fx (want >= %.2fx)\n",
                     ok ? "PASS" : "FAIL", s.op.c_str(), e.threads, got,
                     want_factor);
        if (!ok) ++failures;
      }
    }
    if (!found) return Fail("--min_speedup refers to missing op/threads '%s'", gate);
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
