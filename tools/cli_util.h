// Argument parsing and result emission for the unified fairhms_cli driver.
//
// Kept separate from bench/bench_util.h on purpose: the bench harness is a
// paper-reproduction fixture, while the CLI is the long-lived entry point
// that future scaling/batching work extends.
//
// The JSON machinery that used to live here moved to common/json.h when the
// batch protocol was lifted into the library (api/protocol.h) — tools keep
// only flag parsing and report rendering.

#ifndef FAIRHMS_TOOLS_CLI_UTIL_H_
#define FAIRHMS_TOOLS_CLI_UTIL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "data/grouping.h"

namespace fairhms {
namespace cli {

/// Command-line flags: --key=value and boolean --key. Every lookup records
/// the key so Unknown() can flag typos after parsing.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  /// Comma-separated list flag ("a,b,c"); empty when absent.
  std::vector<std::string> GetList(const std::string& key) const;
  /// Comma-separated integer list; error status on malformed entries.
  StatusOr<std::vector<int>> GetIntList(const std::string& key) const;

  /// Keys given on the command line but never looked up (typo guard).
  std::vector<std::string> Unknown() const;

  /// First malformed numeric value seen by GetInt/GetDouble (a present flag
  /// whose value failed to parse), or OK. Callers must check this before
  /// trusting defaults: a typo like --k=1O must not silently run with k=10.
  Status ParseError() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> seen_;
  mutable Status parse_error_;
};

/// Ordered key/value report with typed adders, emitted as aligned plain
/// text, a two-line CSV (header + row), or a flat JSON object.
class Report {
 public:
  void AddString(const std::string& key, const std::string& value);
  void AddInt(const std::string& key, int64_t value);
  void AddDouble(const std::string& key, double value);

  std::string ToPlain() const;
  std::string ToCsv() const;
  std::string ToJson() const;

  /// Dispatches on "plain", "csv" or "json"; error on anything else.
  StatusOr<std::string> Render(const std::string& format) const;

 private:
  enum class Kind { kString, kNumber };
  struct Entry {
    std::string key;
    std::string value;  ///< Already formatted.
    Kind kind = Kind::kString;
  };
  std::vector<Entry> entries_;
};

/// Escapes a CSV cell (quotes when it contains delimiter/quote/newline).
std::string CsvEscape(const std::string& s);

// ---------------------------------------------------------------------------
// Dataset bootstrap shared by fairhms_cli and fairhms_serve: both tools
// describe their initial "default" dataset with the same flags.

/// Loads the flag-described dataset: --csv=PATH (with --numeric and
/// optional --categorical column lists) or --synthetic=NAME (with --n,
/// --dim and the caller's Rng). Exactly one source must be given.
StatusOr<Dataset> LoadDatasetFromFlags(const Flags& flags, Rng* rng);

/// Applies --normalize (minmax default | max | none) to a freshly loaded
/// dataset.
StatusOr<Dataset> NormalizeDatasetFromFlags(const Flags& flags, Dataset raw);

/// Builds the grouping from --group_by (categorical product) or --groups
/// (attribute-sum rank; default 1 = single group).
StatusOr<Grouping> MakeGroupingFromFlags(const Flags& flags,
                                         const Dataset& data);

/// Resolves the process-wide cache budget from --global_cache_budget_mb,
/// honoring the deprecated --cache_budget_mb spelling with a one-time
/// stderr warning prefixed by `prog`. Both flags with different values is
/// a contradiction, not a preference order.
StatusOr<uint64_t> ResolveCacheBudgetBytes(const Flags& flags,
                                           const char* prog);

/// Applies the SIMD dispatch controls, shared by fairhms_cli and
/// fairhms_serve: refuses an unknown FAIRHMS_SIMD value up front (the
/// library's lazy init only warns), then lets --simd=auto|off override the
/// environment. An unknown --simd value is an error.
Status ApplySimdFlags(const Flags& flags);

}  // namespace cli
}  // namespace fairhms

#endif  // FAIRHMS_TOOLS_CLI_UTIL_H_
