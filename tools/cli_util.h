// Argument parsing and result emission for the unified fairhms_cli driver.
//
// Kept separate from bench/bench_util.h on purpose: the bench harness is a
// paper-reproduction fixture, while the CLI is the long-lived entry point
// that future scaling/batching work extends.

#ifndef FAIRHMS_TOOLS_CLI_UTIL_H_
#define FAIRHMS_TOOLS_CLI_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace fairhms {
namespace cli {

/// Command-line flags: --key=value and boolean --key. Every lookup records
/// the key so Unknown() can flag typos after parsing.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  /// Comma-separated list flag ("a,b,c"); empty when absent.
  std::vector<std::string> GetList(const std::string& key) const;
  /// Comma-separated integer list; error status on malformed entries.
  StatusOr<std::vector<int>> GetIntList(const std::string& key) const;

  /// Keys given on the command line but never looked up (typo guard).
  std::vector<std::string> Unknown() const;

  /// First malformed numeric value seen by GetInt/GetDouble (a present flag
  /// whose value failed to parse), or OK. Callers must check this before
  /// trusting defaults: a typo like --k=1O must not silently run with k=10.
  Status ParseError() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> seen_;
  mutable Status parse_error_;
};

/// Ordered key/value report with typed adders, emitted as aligned plain
/// text, a two-line CSV (header + row), or a flat JSON object.
class Report {
 public:
  void AddString(const std::string& key, const std::string& value);
  void AddInt(const std::string& key, int64_t value);
  void AddDouble(const std::string& key, double value);

  std::string ToPlain() const;
  std::string ToCsv() const;
  std::string ToJson() const;

  /// Dispatches on "plain", "csv" or "json"; error on anything else.
  StatusOr<std::string> Render(const std::string& format) const;

 private:
  enum class Kind { kString, kNumber };
  struct Entry {
    std::string key;
    std::string value;  ///< Already formatted.
    Kind kind = Kind::kString;
  };
  std::vector<Entry> entries_;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes added).
std::string JsonEscape(const std::string& s);

/// Minimal JSON value tree for the --queries batch driver: objects,
/// arrays, strings, numbers, booleans and null. Object member order is
/// preserved; duplicate keys keep the last occurrence (Find returns it).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key (last occurrence), or nullptr when absent or not
  /// an object.
  const JsonValue* Find(const std::string& key) const;

  /// The value as a whole-number int64 — error when not a number or not
  /// integral (e.g. 2.5 where a count is expected).
  StatusOr<int64_t> AsInt64() const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the whole input; trailing garbage is an
/// error). Supports the JSON core: no comments, no NaN/Infinity literals.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes a CSV cell (quotes when it contains delimiter/quote/newline).
std::string CsvEscape(const std::string& s);

}  // namespace cli
}  // namespace fairhms

#endif  // FAIRHMS_TOOLS_CLI_UTIL_H_
