// fairhms_cli: the unified driver for every FairHMS / HMS algorithm in the
// library. Loads a CSV or synthetic dataset, applies a grouping, solves via
// the Solver::Solve facade (algorithm selection goes through the
// AlgorithmRegistry — no per-algorithm wiring lives here), and emits the
// happiness ratio, per-group counts versus bounds, fairness violations and
// wall-clock as plain text, CSV or JSON.
//
// Examples:
//   fairhms_cli --list_algos
//   fairhms_cli --algo=intcov --synthetic=independent --n=1000 --dim=4
//       --k=10 --groups=3
//   fairhms_cli --algo=bigreedy --synthetic=anticorrelated --n=20000
//       --dim=6 --k=20 --groups=4 --format=json
//   fairhms_cli --algo=fair_greedy --synthetic=adult --group_by=gender
//       --k=12 --alpha=0.2 --format=csv
//   fairhms_cli --algo=g_dmm --csv=data.csv --numeric=price,rating
//       --categorical=region --group_by=region --k=8

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "api/solver.h"
#include "cli_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluate.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

constexpr char kUsage[] = R"(fairhms_cli: unified FairHMS driver.

Dataset (pick one source):
  --csv=PATH               headered CSV file
    --numeric=a,b,c        numeric attribute columns (required with --csv)
    --categorical=x,y      categorical columns to load
  --synthetic=NAME         independent | anticorrelated | correlated |
                           lawschs | adult | compas | credit
    --n=N                  rows (synthetic; replicas default to paper sizes)
    --dim=D                dimensions (independent/anticorrelated/correlated)
  --normalize=MODE         minmax (default) | max | none

Execution (valid with every dataset source and algorithm):
  --seed=S                 seed (>= 0, default 42) for the synthetic
                           generator AND all randomized algorithm parts
                           (BiGreedy/Sphere/HS direction nets); echoed in
                           the output so runs are reproducible
  --threads=N              evaluation-engine lanes; 0 (default) = all
                           hardware threads, 1 = serial. Results are
                           bit-identical across thread counts

Grouping (pick one):
  --groups=C               C groups by attribute-sum rank (default 1)
  --group_by=col[,col2]    categorical column(s); product when several

Constraint:
  --k=K                    result size (default 10)
  --bounds=KIND            proportional (default) | balanced | explicit
  --alpha=A                tolerance for proportional/balanced (default 0.1)
  --lower=l0,l1,... --upper=h0,h1,...   explicit per-group bounds

Algorithm:
  --algo=NAME              required; any registry name (see --list_algos)
  --list_algos             print every registered algorithm with its
                           capabilities and parameter schema, then exit
  --<param>=V              any parameter of the chosen algorithm's schema
                           becomes a flag (e.g. --net_size, --eps,
                           --lambda, --max_rounds; --list_algos shows
                           names, types and defaults per algorithm)

Output:
  --format=F               plain (default) | csv | json
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "fairhms_cli: %s\n", status.ToString().c_str());
  return 1;
}

/// Prints the registry: one block per algorithm with capabilities and the
/// parameter schema (name, type, default, description). The algorithm name
/// is the first token of its line so scripts can match on field 1.
int ListAlgos() {
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    std::printf("%-12s [%s]  %s — %s\n", info->name.c_str(),
                CapabilitiesToString(info->caps).c_str(),
                info->display_name.c_str(), info->summary.c_str());
    for (const ParamSpec& p : info->params) {
      std::printf("    --%s (%s, default %s): %s\n", p.name.c_str(),
                  ParamTypeToString(p.type), p.default_value.c_str(),
                  p.description.c_str());
    }
  }
  return 0;
}

StatusOr<Dataset> LoadDataset(const cli::Flags& flags, Rng* rng) {
  const bool has_csv = flags.Has("csv");
  const bool has_syn = flags.Has("synthetic");
  if (has_csv == has_syn) {
    return Status::InvalidArgument(
        "pass exactly one of --csv=PATH or --synthetic=NAME (--help for "
        "usage)");
  }
  if (has_csv) {
    CsvReadOptions opts;
    for (const auto& c : flags.GetList("numeric")) {
      opts.numeric_columns.push_back(c);
    }
    for (const auto& c : flags.GetList("categorical")) {
      opts.categorical_columns.push_back(c);
    }
    if (opts.numeric_columns.empty()) {
      return Status::InvalidArgument("--csv requires --numeric=col1,col2,...");
    }
    return ReadCsv(flags.GetString("csv", ""), opts);
  }
  const std::string name = flags.GetString("synthetic", "");
  const int64_t n_raw = flags.GetInt("n", 0);
  const int64_t dim_raw = flags.GetInt("dim", 4);
  if (n_raw < 0) return Status::InvalidArgument("--n must be >= 0");
  if (dim_raw < 1 || dim_raw > 1000) {
    return Status::InvalidArgument("--dim must be in [1, 1000]");
  }
  const size_t n = static_cast<size_t>(n_raw);
  const int dim = static_cast<int>(dim_raw);
  if (name == "independent") {
    return GenIndependent(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "anticorrelated" || name == "anticor") {
    return GenAntiCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "correlated") {
    return GenCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "lawschs") return n ? MakeLawschsSim(rng, n) : MakeLawschsSim(rng);
  if (name == "adult") return n ? MakeAdultSim(rng, n) : MakeAdultSim(rng);
  if (name == "compas") return n ? MakeCompasSim(rng, n) : MakeCompasSim(rng);
  if (name == "credit") return n ? MakeCreditSim(rng, n) : MakeCreditSim(rng);
  return Status::InvalidArgument(
      StrFormat("unknown --synthetic '%s'", name.c_str()));
}

StatusOr<Grouping> MakeGrouping(const cli::Flags& flags, const Dataset& data) {
  const auto by = flags.GetList("group_by");
  if (!by.empty()) return GroupByCategoricalProduct(data, by);
  const int c_num = static_cast<int>(flags.GetInt("groups", 1));
  if (c_num < 1) return Status::InvalidArgument("--groups must be >= 1");
  if (c_num > static_cast<int>(data.size())) {
    return Status::InvalidArgument("--groups exceeds dataset size");
  }
  if (c_num == 1) return SingleGroup(data.size());
  return GroupBySumRank(data, c_num);
}

StatusOr<GroupBounds> MakeBounds(const cli::Flags& flags, int k,
                                 const Grouping& grouping) {
  const std::string kind = flags.GetString("bounds", "proportional");
  const double alpha = flags.GetDouble("alpha", 0.1);
  if (kind == "proportional") {
    return GroupBounds::Proportional(k, grouping.Counts(), alpha);
  }
  if (kind == "balanced") {
    return GroupBounds::Balanced(k, grouping.num_groups, alpha);
  }
  if (kind == "explicit") {
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> lower,
                             flags.GetIntList("lower"));
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> upper,
                             flags.GetIntList("upper"));
    if (static_cast<int>(lower.size()) != grouping.num_groups ||
        static_cast<int>(upper.size()) != grouping.num_groups) {
      return Status::InvalidArgument(StrFormat(
          "--lower/--upper must list %d values", grouping.num_groups));
    }
    return GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  }
  return Status::InvalidArgument(
      StrFormat("unknown --bounds '%s'", kind.c_str()));
}

/// Forwards every flag matching the chosen algorithm's parameter schema
/// into the request's AlgoParams — each entry --list_algos prints is a
/// working --flag. Flags naming a parameter of a *different* algorithm are
/// never looked up here; the end-of-run unknown-flag sweep warns about
/// them ("no effect with the chosen options") like any other unused knob.
Status FillParamsFromFlags(const cli::Flags& flags, const AlgorithmInfo& info,
                           AlgoParams* params) {
  for (const ParamSpec& spec : info.params) {
    if (!flags.Has(spec.name)) continue;
    switch (spec.type) {
      case ParamType::kInt:
        params->SetInt(spec.name, flags.GetInt(spec.name, 0));
        break;
      case ParamType::kDouble:
        params->SetDouble(spec.name, flags.GetDouble(spec.name, 0.0));
        break;
      case ParamType::kBool: {
        // Bare --flag means true; otherwise require true/false (or 1/0).
        const std::string v = flags.GetString(spec.name, "true");
        if (v.empty() || v == "true" || v == "1") {
          params->SetBool(spec.name, true);
        } else if (v == "false" || v == "0") {
          params->SetBool(spec.name, false);
        } else {
          return Status::InvalidArgument(
              StrFormat("--%s wants true or false, got '%s'",
                        spec.name.c_str(), v.c_str()));
        }
        break;
      }
      case ParamType::kString:
        params->SetString(spec.name, flags.GetString(spec.name, ""));
        break;
    }
  }
  return Status::OK();
}

/// Every parameter name registered by any algorithm: a flag in this set
/// that went unused is "documented but without effect here", not a typo.
std::set<std::string> AllRegisteredParamNames() {
  std::set<std::string> names;
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    for (const ParamSpec& p : info->params) names.insert(p.name);
  }
  return names;
}

int Run(int argc, char** argv) {
  const cli::Flags flags(argc, argv);
  if (flags.Has("help") || argc <= 1) {
    std::fputs(kUsage, stdout);
    return argc <= 1 ? 1 : 0;
  }
  if (flags.Has("list_algos")) return ListAlgos();

  Stopwatch total;
  // Resolve the algorithm up front (fail fast before a long dataset load);
  // the unknown-name message comes straight from the registry.
  const std::string algo = flags.GetString("algo", "");
  if (algo.empty()) {
    return Fail(Status::InvalidArgument(StrFormat(
        "--algo is required (one of: %s; see --list_algos or --help)",
        AlgorithmRegistry::Instance().NamesForError().c_str())));
  }
  const AlgorithmInfo* info = AlgorithmRegistry::Instance().Find(algo);
  if (info == nullptr) {
    return Fail(Status::InvalidArgument(
        StrFormat("unknown --algo '%s' (valid: %s)", algo.c_str(),
                  AlgorithmRegistry::Instance().NamesForError().c_str())));
  }
  const int k = static_cast<int>(flags.GetInt("k", 10));
  if (k < 1) return Fail(Status::InvalidArgument("--k must be >= 1"));
  // --seed and --threads apply to every dataset source and algorithm;
  // validate them up front so no path accepts garbage silently.
  const int64_t seed_raw = flags.GetInt("seed", 42);
  if (seed_raw < 0) {
    return Fail(Status::InvalidArgument("--seed must be >= 0"));
  }
  const int64_t threads_raw = flags.GetInt("threads", 0);
  if (threads_raw < 0 || threads_raw > 4096) {
    return Fail(Status::InvalidArgument(
        "--threads must be in [0, 4096] (0 = all hardware threads)"));
  }
  SetDefaultThreads(static_cast<int>(threads_raw));
  const int threads = DefaultThreads();
  // Reject a bad --format up front: a typo must not discard a long solve.
  const std::string format = flags.GetString("format", "plain");
  if (format != "plain" && format != "csv" && format != "json") {
    return Fail(Status::InvalidArgument(StrFormat(
        "unknown --format '%s' (want plain, csv or json)", format.c_str())));
  }

  Rng rng(static_cast<uint64_t>(seed_raw));
  auto raw = LoadDataset(flags, &rng);
  if (!raw.ok()) return Fail(raw.status());

  const std::string norm = flags.GetString("normalize", "minmax");
  Dataset data(1);
  if (norm == "minmax") {
    data = raw->NormalizedMinMax();
  } else if (norm == "max") {
    data = raw->ScaledByMax();
  } else if (norm == "none") {
    data = std::move(*raw);
  } else {
    return Fail(Status::InvalidArgument(
        StrFormat("unknown --normalize '%s'", norm.c_str())));
  }

  auto grouping = MakeGrouping(flags, data);
  if (!grouping.ok()) return Fail(grouping.status());

  auto bounds = MakeBounds(flags, k, *grouping);
  if (!bounds.ok()) return Fail(bounds.status());

  SolverRequest request;
  request.data = &data;
  request.grouping = &*grouping;
  request.bounds = std::move(*bounds);
  request.algorithm = algo;
  request.seed = static_cast<uint64_t>(seed_raw);
  request.threads = static_cast<int>(threads_raw);
  if (Status st = FillParamsFromFlags(flags, *info, &request.params);
      !st.ok()) {
    return Fail(st);
  }
  // Refuse to solve with defaults substituted for malformed numeric flags.
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);

  auto run = Solver::Solve(request);
  if (!run.ok()) return Fail(run.status());
  const Solution& sol = run->solution;

  // Reference evaluation against the global skyline (exact 2D / exact LP /
  // high-resolution net, picked automatically), reusing the facade's
  // skyline when it computed one.
  const std::vector<int> skyline =
      run->skyline.empty() ? ComputeSkyline(data) : std::move(run->skyline);
  const double mhr = EvaluateMhr(data, skyline, sol.rows);

  cli::Report report;
  report.AddString("algo", sol.algorithm.empty() ? algo : sol.algorithm);
  report.AddString("dataset", flags.Has("csv")
                                  ? flags.GetString("csv", "")
                                  : flags.GetString("synthetic", ""));
  report.AddInt("n", static_cast<int64_t>(data.size()));
  report.AddInt("dim", data.dim());
  report.AddInt("k", k);
  report.AddInt("groups", grouping->num_groups);
  report.AddInt("seed", seed_raw);
  report.AddInt("threads", threads);
  report.AddInt("solution_size", static_cast<int64_t>(sol.rows.size()));
  report.AddDouble("happiness_ratio", mhr);
  report.AddDouble("algo_mhr_estimate", sol.mhr);
  report.AddInt("violations", run->violations);
  for (int c = 0; c < grouping->num_groups; ++c) {
    const auto& name = grouping->names[static_cast<size_t>(c)];
    report.AddString(
        StrFormat("group_%s", name.c_str()),
        StrFormat("%d of bounds [%d, %d]",
                  run->group_counts[static_cast<size_t>(c)],
                  run->bounds.lower[static_cast<size_t>(c)],
                  run->bounds.upper[static_cast<size_t>(c)]));
  }
  std::vector<std::string> rows;
  for (int r : sol.rows) rows.push_back(StrFormat("%d", r));
  report.AddString("rows", Join(rows, " "));
  if (!run->note.empty()) report.AddString("note", run->note);
  report.AddDouble("solve_ms", run->solve_ms);
  report.AddDouble("total_ms", total.ElapsedMillis());

  auto rendered = report.Render(format);
  if (!rendered.ok()) return Fail(rendered.status());
  // Flags never looked up on the taken code path: a documented flag (the
  // driver flags below plus any algorithm parameter in the registry) is
  // merely unused with the chosen options, anything else is a likely typo.
  std::set<std::string> documented = AllRegisteredParamNames();
  documented.insert({"csv", "numeric", "categorical", "synthetic", "n",
                     "dim", "seed", "normalize", "groups", "group_by", "k",
                     "bounds", "alpha", "lower", "upper", "algo", "format",
                     "threads", "list_algos", "help"});
  for (const auto& key : flags.Unknown()) {
    if (documented.count(key)) {
      std::fprintf(stderr,
                   "fairhms_cli: warning: --%s has no effect with the "
                   "chosen options; ignored\n",
                   key.c_str());
    } else {
      std::fprintf(stderr, "fairhms_cli: warning: unknown flag --%s ignored\n",
                   key.c_str());
    }
  }
  std::fputs(rendered->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
