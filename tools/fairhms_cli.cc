// fairhms_cli: the unified driver for every FairHMS / HMS algorithm in the
// library. Loads a CSV or synthetic dataset, applies a grouping, solves via
// the Solver::Solve facade (algorithm selection goes through the
// AlgorithmRegistry — no per-algorithm wiring lives here), and emits the
// happiness ratio, per-group counts versus bounds, fairness violations and
// wall-clock as plain text, CSV or JSON.
//
// Examples:
//   fairhms_cli --list_algos
//   fairhms_cli --algo=intcov --synthetic=independent --n=1000 --dim=4
//       --k=10 --groups=3
//   fairhms_cli --algo=bigreedy --synthetic=anticorrelated --n=20000
//       --dim=6 --k=20 --groups=4 --format=json
//   fairhms_cli --algo=fair_greedy --synthetic=adult --group_by=gender
//       --k=12 --alpha=0.2 --format=csv
//   fairhms_cli --algo=g_dmm --csv=data.csv --numeric=price,rating
//       --categorical=region --group_by=region --k=8

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/catalog.h"
#include "api/service.h"
#include "api/solver.h"
#include "cli_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluate.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "data/snapshot.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

constexpr char kUsage[] = R"(fairhms_cli: unified FairHMS driver.

Dataset (pick one source):
  --csv=PATH               headered CSV file
    --numeric=a,b,c        numeric attribute columns (required with --csv)
    --categorical=x,y      categorical columns to load
  --synthetic=NAME         independent | anticorrelated | correlated |
                           lawschs | adult | compas | credit
    --n=N                  rows (synthetic; replicas default to paper sizes)
    --dim=D                dimensions (independent/anticorrelated/correlated)
  --normalize=MODE         minmax (default) | max | none

Execution (valid with every dataset source and algorithm):
  --seed=S                 seed (>= 0, default 42) for the synthetic
                           generator AND all randomized algorithm parts
                           (BiGreedy/Sphere/HS direction nets); echoed in
                           the output so runs are reproducible
  --threads=N              evaluation-engine lanes; 0 (default) = all
                           hardware threads, 1 = serial. Results are
                           bit-identical across thread counts
  --simd=auto|off          kernel dispatch: auto (default; best level the
                           CPU supports) or off (forced scalar). Overrides
                           the FAIRHMS_SIMD environment variable; results
                           are bit-identical either way

Grouping (pick one):
  --groups=C               C groups by attribute-sum rank (default 1)
  --group_by=col[,col2]    categorical column(s); product when several

Constraint:
  --k=K                    result size (default 10)
  --bounds=KIND            proportional (default) | balanced | explicit
  --alpha=A                tolerance for proportional/balanced (default 0.1)
  --lower=l0,l1,... --upper=h0,h1,...   explicit per-group bounds

Algorithm:
  --algo=NAME              required; any registry name (see --list_algos),
                           or "auto" to let the cost-model planner choose
                           (the choice and prediction are echoed as
                           planned_algorithm / plan_* report fields)
  --list_algos             print every registered algorithm with its
                           capabilities and parameter schema, then exit
  --<param>=V              any parameter of the chosen algorithm's schema
                           becomes a flag (e.g. --net_size, --eps,
                           --lambda, --max_rounds; --list_algos shows
                           names, types and defaults per algorithm).
                           Not combinable with --algo=auto
  --latency_budget_ms=MS   --algo=auto only: prefer the best-quality
                           algorithm predicted to finish within MS
  --quality_target=Q       --algo=auto only: prefer the fastest algorithm
                           predicted to reach happiness ratio >= Q

Output:
  --format=F               plain (default) | csv | json

Batch serving (many queries over a catalog of named datasets):
  --queries=FILE           JSONL file ('-' = stdin): one request object per
                           line, served through a DatasetCatalog of dynamic
                           SolverSessions with cross-query artifact caching.
                           The flag-loaded dataset registers as "default";
                           every line routes by its optional string
                           "dataset" field (default "default"). Per line:
                             {"dataset": "default", "algorithm": "bigreedy",
                              "k": 10,
                              "bounds": "proportional|balanced|explicit",
                              "alpha": 0.1, "lower": [..], "upper": [..],
                              "seed": 42, "threads": 0, "id": any,
                              "params": {"net_size": 500, ...},
                              "latency_budget_ms": 50, "quality_target": 0.8,
                              "warm_start": true}
                           k and algorithm are required ("auto" plans per
                           session cost model and echoes a "plan" object);
                           seed/threads default to the --seed/--threads
                           flags; bounds defaults to proportional. One result JSON is
                           streamed to stdout per line as
                             {"id": .., "ok": true, "dataset": "name",
                              "catalog_version": V, ...result fields...}
                           (catalog_version is the catalog's mutation
                           counter, so each response pins which catalog
                           state served it; errors become
                           {"ok": false, "error": ...} lines without
                           stopping the batch); the cache report goes to
                           stderr. --algo/--k/--bounds/--format and
                           algorithm-parameter flags are ignored here.
                           Update ops interleave with queries; skylines,
                           fair pools and group tables are maintained
                           incrementally, utility nets survive:
                             {"op": "insert", "point": [0.4, ...],
                              "cats": {"gender": "F", ...},
                              "group": "F" | 2, "id": any,
                              "dataset": "name"}
                             {"op": "delete", "rows": [17, 42], "id": any,
                              "dataset": "name"}
                           Inserted points are used as given (they bypass
                           --normalize; supply already-scaled coordinates).
                           "cats" maps categorical columns to labels
                           (unseen labels register themselves); with
                           --group_by the group derives from those columns
                           (new combinations open a new group), otherwise
                           pass "group" explicitly (sum-rank groupings
                           have no rule for new rows). Deleted rows keep
                           their indices but leave every skyline, pool,
                           group count and happiness denominator; a group
                           emptied by deletes gets [0, 0] proportional
                           bounds instead of poisoning feasibility.
                           Catalog ops manage further datasets in-stream:
                             {"op": "register", "name": "x",
                              "synthetic": "independent", "n": 500,
                              "dim": 3, "seed": 7, "groups": 2,
                              "group_by": ["col"], "normalize": "minmax"}
                             {"op": "register", "name": "x",
                              "snapshot": "x.snap"}
                             {"op": "save", "name": "x", "path": "x.snap"}
                             {"op": "drop", "name": "x"}
                             {"op": "list"}
                             {"op": "stats"}
                           (stats reports the catalog contents, per-session
                           cache accounting, the global cache ledger and
                           per-op latency percentiles; docs/protocol.md
                           specifies the full wire protocol, which
                           fairhms_serve exposes over sockets.)
  --global_cache_budget_mb=N
                           process-wide cache budget across every catalog
                           session (default 1024; 0 = unbounded). When the
                           global resident total crosses it, the coldest
                           sessions' caches are evicted first (the serving
                           session last), so an undersized budget degrades
                           to recomputation — results are bit-identical
                           regardless.
  --cache_budget_mb=N      deprecated alias for --global_cache_budget_mb
                           (the budget has been process-wide since the
                           catalog landed); warns once on stderr. Giving
                           both with different values is an error.

Snapshots (versioned binary serving state; see data/snapshot.h):
  --snapshot_save=PATH     after the batch stream completes, write the
                           "default" dataset's full serving state (table,
                           tombstones, grouping, insert-routing provenance,
                           maintained skyline state) to PATH atomically.
  --snapshot_load=PATH     register "default" from a snapshot file instead
                           of --csv/--synthetic: the process warm-starts
                           without re-ingest or skyline recomputation.
                           Corrupt, truncated or future-versioned files are
                           rejected up front. Batch mode only.
  --snapshot_info=PATH     print a snapshot file's summary (rows, dims,
                           groups, format version, skyline state) and exit.
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "fairhms_cli: %s\n", status.ToString().c_str());
  return 1;
}

/// Prints the registry: one block per algorithm with capabilities and the
/// parameter schema (name, type, default, description). The algorithm name
/// is the first token of its line so scripts can match on field 1.
int ListAlgos() {
  // Column 2 is the machine-parseable capability list (awk '$2'): bare
  // comma-separated tokens in a fixed order, "-" when none. CI greps it.
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    std::printf("%-12s %-32s %s — %s\n", info->name.c_str(),
                CapabilitiesToString(info->caps).c_str(),
                info->display_name.c_str(), info->summary.c_str());
    for (const ParamSpec& p : info->params) {
      std::printf("    --%s (%s, default %s): %s\n", p.name.c_str(),
                  ParamTypeToString(p.type), p.default_value.c_str(),
                  p.description.c_str());
    }
  }
  return 0;
}

StatusOr<GroupBounds> MakeBounds(const cli::Flags& flags, int k,
                                 const Grouping& grouping) {
  const std::string kind = flags.GetString("bounds", "proportional");
  const double alpha = flags.GetDouble("alpha", 0.1);
  if (kind == "proportional") {
    return GroupBounds::Proportional(k, grouping.Counts(), alpha);
  }
  if (kind == "balanced") {
    return GroupBounds::Balanced(k, grouping.num_groups, alpha);
  }
  if (kind == "explicit") {
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> lower,
                             flags.GetIntList("lower"));
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> upper,
                             flags.GetIntList("upper"));
    if (static_cast<int>(lower.size()) != grouping.num_groups ||
        static_cast<int>(upper.size()) != grouping.num_groups) {
      return Status::InvalidArgument(StrFormat(
          "--lower/--upper must list %d values", grouping.num_groups));
    }
    return GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  }
  return Status::InvalidArgument(
      StrFormat("unknown --bounds '%s'", kind.c_str()));
}

/// Forwards every flag matching the chosen algorithm's parameter schema
/// into the request's AlgoParams — each entry --list_algos prints is a
/// working --flag. Flags naming a parameter of a *different* algorithm are
/// never looked up here; the end-of-run unknown-flag sweep warns about
/// them ("no effect with the chosen options") like any other unused knob.
Status FillParamsFromFlags(const cli::Flags& flags, const AlgorithmInfo& info,
                           AlgoParams* params) {
  for (const ParamSpec& spec : info.params) {
    if (!flags.Has(spec.name)) continue;
    switch (spec.type) {
      case ParamType::kInt:
        params->SetInt(spec.name, flags.GetInt(spec.name, 0));
        break;
      case ParamType::kDouble:
        params->SetDouble(spec.name, flags.GetDouble(spec.name, 0.0));
        break;
      case ParamType::kBool: {
        // Bare --flag means true; otherwise require true/false (or 1/0).
        const std::string v = flags.GetString(spec.name, "true");
        if (v.empty() || v == "true" || v == "1") {
          params->SetBool(spec.name, true);
        } else if (v == "false" || v == "0") {
          params->SetBool(spec.name, false);
        } else {
          return Status::InvalidArgument(
              StrFormat("--%s wants true or false, got '%s'",
                        spec.name.c_str(), v.c_str()));
        }
        break;
      }
      case ParamType::kString:
        params->SetString(spec.name, flags.GetString(spec.name, ""));
        break;
    }
  }
  return Status::OK();
}

/// Every parameter name registered by any algorithm: a flag in this set
/// that went unused is "documented but without effect here", not a typo.
std::set<std::string> AllRegisteredParamNames() {
  std::set<std::string> names;
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    for (const ParamSpec& p : info->params) names.insert(p.name);
  }
  return names;
}

/// Warns on flags never looked up on the taken code path: a documented
/// flag (the driver flags plus any algorithm parameter in the registry) is
/// merely unused with the chosen options, anything else is a likely typo.
/// Both serving modes run this so a typo never silently changes a run.
void WarnUnusedFlags(const cli::Flags& flags) {
  std::set<std::string> documented = AllRegisteredParamNames();
  documented.insert({"csv", "numeric", "categorical", "synthetic", "n",
                     "dim", "seed", "normalize", "groups", "group_by", "k",
                     "bounds", "alpha", "lower", "upper", "algo", "format",
                     "latency_budget_ms", "quality_target",
                     "threads", "simd", "list_algos", "queries",
                     "cache_budget_mb",
                     "global_cache_budget_mb", "snapshot_save",
                     "snapshot_load", "snapshot_info", "help"});
  for (const auto& key : flags.Unknown()) {
    if (documented.count(key)) {
      std::fprintf(stderr,
                   "fairhms_cli: warning: --%s has no effect with the "
                   "chosen options; ignored\n",
                   key.c_str());
    } else {
      std::fprintf(stderr, "fairhms_cli: warning: unknown flag --%s ignored\n",
                   key.c_str());
    }
  }
}

/// --snapshot_info: print a snapshot file's summary and exit.
int RunSnapshotInfo(const std::string& path) {
  auto snapshot = ReadSnapshotFile(path);
  if (!snapshot.ok()) return Fail(snapshot.status());
  const Dataset& data = snapshot->data;
  std::printf("snapshot: %s\n", path.c_str());
  std::printf("  reader format version: %u\n", kSnapshotFormatVersion);
  std::printf("  rows: %zu total, %zu live\n", data.size(), data.live_size());
  std::printf("  dim: %d\n", data.dim());
  std::printf("  dataset version: %llu\n",
              static_cast<unsigned long long>(data.version()));
  std::printf("  groups: %d\n", snapshot->grouping.num_groups);
  std::string cols;
  for (const std::string& c : snapshot->group_columns) {
    cols += (cols.empty() ? "" : ", ") + c;
  }
  std::printf("  group columns: %s\n", cols.empty() ? "(none)" : cols.c_str());
  std::printf("  insert-routing combinations: %zu\n",
              snapshot->combo_to_group.size());
  if (snapshot->has_index) {
    std::printf("  skyline state: present (%zu global skyline rows, "
                "%zu per-group states)\n",
                snapshot->index.global.skyline.size(),
                snapshot->index.per_group.size());
  } else {
    std::printf("  skyline state: absent (rebuilds lazily)\n");
  }
  return 0;
}

/// The --queries batch driver: a DatasetCatalog of dynamic SolverSessions
/// (the flag-loaded dataset is "default"), one result JSON per request
/// line, routed by each line's "dataset" field.
int RunBatch(const cli::Flags& flags, uint64_t seed, int threads) {
  Stopwatch total;
  // Process-wide bound on resident cache bytes across every catalog
  // session: an unbounded seed/k sweep would pin a fresh net + evaluator
  // per line forever. The arbiter evicts the coldest sessions' caches
  // when the global total crosses it (results are bit-identical either
  // way); 0 disables.
  auto budget_bytes = cli::ResolveCacheBudgetBytes(flags, "fairhms_cli");
  if (!budget_bytes.ok()) return Fail(budget_bytes.status());
  DatasetCatalog catalog(DatasetCatalog::Options{*budget_bytes});

  // The flag-described dataset registers as "default": restored warm from
  // a snapshot, or ingested cold from --csv/--synthetic. With --group_by
  // the named columns route inserted rows to their groups; otherwise
  // inserts need an explicit "group".
  if (flags.Has("snapshot_load")) {
    if (flags.Has("csv") || flags.Has("synthetic")) {
      return Fail(Status::InvalidArgument(
          "--snapshot_load replaces --csv/--synthetic; pass exactly one "
          "dataset source"));
    }
    if (Status st =
            catalog.Load("default", flags.GetString("snapshot_load", ""));
        !st.ok()) {
      return Fail(st);
    }
  } else {
    Rng rng(seed);
    auto raw = cli::LoadDatasetFromFlags(flags, &rng);
    if (!raw.ok()) return Fail(raw.status());
    auto data = cli::NormalizeDatasetFromFlags(flags, std::move(*raw));
    if (!data.ok()) return Fail(data.status());
    auto grouping = cli::MakeGroupingFromFlags(flags, *data);
    if (!grouping.ok()) return Fail(grouping.status());
    if (Status st = catalog.Register("default", std::move(*data),
                                     std::move(*grouping),
                                     flags.GetList("group_by"));
        !st.ok()) {
      return Fail(st);
    }
  }

  // Looked up here — before the unused-flag sweep — though the save runs
  // after the stream, over the final mutated state.
  const std::string snapshot_save =
      flags.Has("snapshot_save") ? flags.GetString("snapshot_save", "")
                                 : std::string();

  const std::string path = flags.GetString("queries", "");
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      return Fail(Status::IOError("cannot open --queries=" + path));
    }
  }
  std::istream& in = path == "-" ? std::cin : file;
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);
  // Every driver flag has been looked up by now; surface typos before the
  // batch streams (a misspelled --groups must not silently serve the whole
  // sweep against the default grouping).
  WarnUnusedFlags(flags);

  // The batch driver is one of two thin transports over the shared
  // ProtocolService (the fairhms_serve daemon is the other): parsing,
  // execution and rendering all live in the library, so the wire format
  // cannot fork between them. The default-constructed EnvelopeOptions keep
  // the legacy version-0 envelope — batch output stays bit-identical.
  ServiceOptions service_opts;
  service_opts.default_seed = seed;
  service_opts.default_threads = threads;
  ProtocolService service(&catalog, service_opts);

  uint64_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    const std::string response = service.HandleLine(line, line_no);
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  const size_t served = static_cast<size_t>(service.served());
  const size_t failed = static_cast<size_t>(service.failed());
  const size_t updates = static_cast<size_t>(service.updates());

  if (!snapshot_save.empty()) {
    if (Status st = catalog.Save("default", snapshot_save); !st.ok()) {
      return Fail(st);
    }
  }

  // Stderr report: aggregate totals, then per-session detail, then the
  // arbiter's global line — per-session bytes and the global charged
  // total are printed side by side so they can be checked against each
  // other.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes = 0;
  for (const std::string& name : catalog.List()) {
    auto s = catalog.Session(name);
    if (!s.ok()) continue;
    const CacheStats stats = (*s)->cache_stats();
    hits += stats.TotalHits();
    misses += stats.TotalMisses();
    bytes += stats.TotalBytes();
  }
  std::fprintf(stderr,
               "fairhms_cli: served %zu lines (%zu updates, %zu failed) in "
               "%.1f ms; cache: %llu hits, %llu misses, %.1f KiB resident, "
               "%llu budget evictions\n",
               served, updates, failed, total.ElapsedMillis(),
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses),
               static_cast<double>(bytes) / 1024.0,
               static_cast<unsigned long long>(
                   catalog.arbiter()->evictions()));
  for (const std::string& name : catalog.List()) {
    auto s = catalog.Session(name);
    if (!s.ok()) continue;
    std::fprintf(stderr, "fairhms_cli: cache detail [%s]: %s\n", name.c_str(),
                 (*s)->cache_stats().ToString().c_str());
  }
  std::fprintf(stderr, "fairhms_cli: %s\n",
               catalog.arbiter()->ToString().c_str());
  return failed == 0 ? 0 : 3;
}

int Run(int argc, char** argv) {
  const cli::Flags flags(argc, argv);
  if (flags.Has("help") || argc <= 1) {
    std::fputs(kUsage, stdout);
    return argc <= 1 ? 1 : 0;
  }
  if (flags.Has("list_algos")) return ListAlgos();
  if (flags.Has("snapshot_info")) {
    return RunSnapshotInfo(flags.GetString("snapshot_info", ""));
  }

  // --seed and --threads apply to every dataset source, algorithm and
  // serving mode; validate them up front so no path accepts garbage
  // silently.
  const int64_t seed_raw = flags.GetInt("seed", 42);
  if (seed_raw < 0) {
    return Fail(Status::InvalidArgument("--seed must be >= 0"));
  }
  const int64_t threads_raw = flags.GetInt("threads", 0);
  if (threads_raw < 0 || threads_raw > 4096) {
    return Fail(Status::InvalidArgument(
        "--threads must be in [0, 4096] (0 = all hardware threads)"));
  }
  SetDefaultThreads(static_cast<int>(threads_raw));
  const int threads = DefaultThreads();
  if (Status st = cli::ApplySimdFlags(flags); !st.ok()) return Fail(st);

  if (flags.Has("queries")) {
    return RunBatch(flags, static_cast<uint64_t>(seed_raw),
                    static_cast<int>(threads_raw));
  }
  if (flags.Has("snapshot_load") || flags.Has("snapshot_save")) {
    return Fail(Status::InvalidArgument(
        "--snapshot_load/--snapshot_save serve the --queries batch mode; "
        "use --snapshot_info to inspect a file"));
  }

  Stopwatch total;
  // Resolve the algorithm up front (fail fast before a long dataset load);
  // the unknown-name message comes straight from the registry.
  const std::string algo = flags.GetString("algo", "");
  if (algo.empty()) {
    return Fail(Status::InvalidArgument(StrFormat(
        "--algo is required (one of: %s; see --list_algos or --help)",
        AlgorithmRegistry::Instance().NamesForError().c_str())));
  }
  // "auto" defers the choice to the session planner (src/plan) — there is
  // no schema to resolve here; the chosen algorithm is echoed in the
  // report's plan fields.
  const bool auto_algo = algo == "auto";
  const AlgorithmInfo* info =
      auto_algo ? nullptr : AlgorithmRegistry::Instance().Find(algo);
  if (info == nullptr && !auto_algo) {
    return Fail(Status::InvalidArgument(
        StrFormat("unknown --algo '%s' (valid: auto, %s)", algo.c_str(),
                  AlgorithmRegistry::Instance().NamesForError().c_str())));
  }
  const int k = static_cast<int>(flags.GetInt("k", 10));
  if (k < 1) return Fail(Status::InvalidArgument("--k must be >= 1"));
  // Reject a bad --format up front: a typo must not discard a long solve.
  const std::string format = flags.GetString("format", "plain");
  if (format != "plain" && format != "csv" && format != "json") {
    return Fail(Status::InvalidArgument(StrFormat(
        "unknown --format '%s' (want plain, csv or json)", format.c_str())));
  }

  Rng rng(static_cast<uint64_t>(seed_raw));
  auto raw = cli::LoadDatasetFromFlags(flags, &rng);
  if (!raw.ok()) return Fail(raw.status());

  auto normalized = cli::NormalizeDatasetFromFlags(flags, std::move(*raw));
  if (!normalized.ok()) return Fail(normalized.status());
  Dataset data = std::move(*normalized);

  auto grouping = cli::MakeGroupingFromFlags(flags, data);
  if (!grouping.ok()) return Fail(grouping.status());

  auto bounds = MakeBounds(flags, k, *grouping);
  if (!bounds.ok()) return Fail(bounds.status());

  SolverRequest request;
  request.data = &data;
  request.grouping = &*grouping;
  request.bounds = std::move(*bounds);
  request.algorithm = algo;
  request.seed = static_cast<uint64_t>(seed_raw);
  request.threads = static_cast<int>(threads_raw);
  const double latency_budget = flags.GetDouble("latency_budget_ms", 0.0);
  const double quality_target = flags.GetDouble("quality_target", 0.0);
  if (latency_budget < 0.0) {
    return Fail(Status::InvalidArgument("--latency_budget_ms must be >= 0"));
  }
  if (quality_target < 0.0 || quality_target > 1.0) {
    return Fail(Status::InvalidArgument("--quality_target must be in [0, 1]"));
  }
  request.latency_budget_ms = latency_budget;
  request.quality_target = quality_target;
  if (!auto_algo) {
    // With --algo=auto there is no schema yet: parameter flags would be
    // ambiguous across candidates, so only the planner may set params.
    if (Status st = FillParamsFromFlags(flags, *info, &request.params);
        !st.ok()) {
      return Fail(st);
    }
  }
  // Refuse to solve with defaults substituted for malformed numeric flags.
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);

  auto run = Solver::Solve(request);
  if (!run.ok()) return Fail(run.status());
  const Solution& sol = run->solution;

  // Reference evaluation against the global skyline (exact 2D / exact LP /
  // high-resolution net, picked automatically), reusing the facade's
  // skyline when it computed one.
  const std::vector<int> skyline =
      run->skyline.empty() ? ComputeSkyline(data) : std::move(run->skyline);
  const double mhr = EvaluateMhr(data, skyline, sol.rows);

  cli::Report report;
  report.AddString("algo", sol.algorithm.empty() ? algo : sol.algorithm);
  report.AddString("dataset", flags.Has("csv")
                                  ? flags.GetString("csv", "")
                                  : flags.GetString("synthetic", ""));
  report.AddInt("n", static_cast<int64_t>(data.size()));
  report.AddInt("dim", data.dim());
  report.AddInt("k", k);
  report.AddInt("groups", grouping->num_groups);
  report.AddInt("seed", seed_raw);
  report.AddInt("threads", threads);
  report.AddInt("solution_size", static_cast<int64_t>(sol.rows.size()));
  report.AddDouble("happiness_ratio", mhr);
  report.AddDouble("algo_mhr_estimate", sol.mhr);
  report.AddInt("violations", run->violations);
  if (run->plan.planned) {
    report.AddString("planned_algorithm", run->algorithm);
    report.AddDouble("plan_predicted_ms", run->plan.predicted_ms);
    report.AddString("plan_reason", run->plan.reason);
    if (!run->plan.params.empty()) {
      report.AddString("plan_params", run->plan.params);
    }
  }
  for (int c = 0; c < grouping->num_groups; ++c) {
    const auto& name = grouping->names[static_cast<size_t>(c)];
    report.AddString(
        StrFormat("group_%s", name.c_str()),
        StrFormat("%d of bounds [%d, %d]",
                  run->group_counts[static_cast<size_t>(c)],
                  run->bounds.lower[static_cast<size_t>(c)],
                  run->bounds.upper[static_cast<size_t>(c)]));
  }
  std::vector<std::string> rows;
  for (int r : sol.rows) rows.push_back(StrFormat("%d", r));
  report.AddString("rows", Join(rows, " "));
  if (!run->note.empty()) report.AddString("note", run->note);
  report.AddDouble("solve_ms", run->solve_ms);
  report.AddDouble("total_ms", total.ElapsedMillis());

  auto rendered = report.Render(format);
  if (!rendered.ok()) return Fail(rendered.status());
  WarnUnusedFlags(flags);
  std::fputs(rendered->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
