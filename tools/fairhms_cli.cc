// fairhms_cli: the unified driver for every FairHMS / HMS algorithm in the
// library. Loads a CSV or synthetic dataset, applies a grouping, solves via
// the Solver::Solve facade (algorithm selection goes through the
// AlgorithmRegistry — no per-algorithm wiring lives here), and emits the
// happiness ratio, per-group counts versus bounds, fairness violations and
// wall-clock as plain text, CSV or JSON.
//
// Examples:
//   fairhms_cli --list_algos
//   fairhms_cli --algo=intcov --synthetic=independent --n=1000 --dim=4
//       --k=10 --groups=3
//   fairhms_cli --algo=bigreedy --synthetic=anticorrelated --n=20000
//       --dim=6 --k=20 --groups=4 --format=json
//   fairhms_cli --algo=fair_greedy --synthetic=adult --group_by=gender
//       --k=12 --alpha=0.2 --format=csv
//   fairhms_cli --algo=g_dmm --csv=data.csv --numeric=price,rating
//       --categorical=region --group_by=region --k=8

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/catalog.h"
#include "api/session.h"
#include "api/solver.h"
#include "cli_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluate.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "data/snapshot.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

constexpr char kUsage[] = R"(fairhms_cli: unified FairHMS driver.

Dataset (pick one source):
  --csv=PATH               headered CSV file
    --numeric=a,b,c        numeric attribute columns (required with --csv)
    --categorical=x,y      categorical columns to load
  --synthetic=NAME         independent | anticorrelated | correlated |
                           lawschs | adult | compas | credit
    --n=N                  rows (synthetic; replicas default to paper sizes)
    --dim=D                dimensions (independent/anticorrelated/correlated)
  --normalize=MODE         minmax (default) | max | none

Execution (valid with every dataset source and algorithm):
  --seed=S                 seed (>= 0, default 42) for the synthetic
                           generator AND all randomized algorithm parts
                           (BiGreedy/Sphere/HS direction nets); echoed in
                           the output so runs are reproducible
  --threads=N              evaluation-engine lanes; 0 (default) = all
                           hardware threads, 1 = serial. Results are
                           bit-identical across thread counts

Grouping (pick one):
  --groups=C               C groups by attribute-sum rank (default 1)
  --group_by=col[,col2]    categorical column(s); product when several

Constraint:
  --k=K                    result size (default 10)
  --bounds=KIND            proportional (default) | balanced | explicit
  --alpha=A                tolerance for proportional/balanced (default 0.1)
  --lower=l0,l1,... --upper=h0,h1,...   explicit per-group bounds

Algorithm:
  --algo=NAME              required; any registry name (see --list_algos)
  --list_algos             print every registered algorithm with its
                           capabilities and parameter schema, then exit
  --<param>=V              any parameter of the chosen algorithm's schema
                           becomes a flag (e.g. --net_size, --eps,
                           --lambda, --max_rounds; --list_algos shows
                           names, types and defaults per algorithm)

Output:
  --format=F               plain (default) | csv | json

Batch serving (many queries over a catalog of named datasets):
  --queries=FILE           JSONL file ('-' = stdin): one request object per
                           line, served through a DatasetCatalog of dynamic
                           SolverSessions with cross-query artifact caching.
                           The flag-loaded dataset registers as "default";
                           every line routes by its optional string
                           "dataset" field (default "default"). Per line:
                             {"dataset": "default", "algorithm": "bigreedy",
                              "k": 10,
                              "bounds": "proportional|balanced|explicit",
                              "alpha": 0.1, "lower": [..], "upper": [..],
                              "seed": 42, "threads": 0, "id": any,
                              "params": {"net_size": 500, ...}}
                           k and algorithm are required; seed/threads
                           default to the --seed/--threads flags; bounds
                           defaults to proportional. One result JSON is
                           streamed to stdout per line as
                             {"id": .., "ok": true, "dataset": "name",
                              "catalog_version": V, ...result fields...}
                           (catalog_version is the catalog's mutation
                           counter, so each response pins which catalog
                           state served it; errors become
                           {"ok": false, "error": ...} lines without
                           stopping the batch); the cache report goes to
                           stderr. --algo/--k/--bounds/--format and
                           algorithm-parameter flags are ignored here.
                           Update ops interleave with queries; skylines,
                           fair pools and group tables are maintained
                           incrementally, utility nets survive:
                             {"op": "insert", "point": [0.4, ...],
                              "cats": {"gender": "F", ...},
                              "group": "F" | 2, "id": any,
                              "dataset": "name"}
                             {"op": "delete", "rows": [17, 42], "id": any,
                              "dataset": "name"}
                           Inserted points are used as given (they bypass
                           --normalize; supply already-scaled coordinates).
                           "cats" maps categorical columns to labels
                           (unseen labels register themselves); with
                           --group_by the group derives from those columns
                           (new combinations open a new group), otherwise
                           pass "group" explicitly (sum-rank groupings
                           have no rule for new rows). Deleted rows keep
                           their indices but leave every skyline, pool,
                           group count and happiness denominator; a group
                           emptied by deletes gets [0, 0] proportional
                           bounds instead of poisoning feasibility.
                           Catalog ops manage further datasets in-stream:
                             {"op": "register", "name": "x",
                              "synthetic": "independent", "n": 500,
                              "dim": 3, "seed": 7, "groups": 2,
                              "group_by": ["col"], "normalize": "minmax"}
                             {"op": "register", "name": "x",
                              "snapshot": "x.snap"}
                             {"op": "save", "name": "x", "path": "x.snap"}
                             {"op": "drop", "name": "x"}
                             {"op": "list"}
  --global_cache_budget_mb=N
                           process-wide cache budget across every catalog
                           session (default 1024; 0 = unbounded). When the
                           global resident total crosses it, the coldest
                           sessions' caches are evicted first (the serving
                           session last), so an undersized budget degrades
                           to recomputation — results are bit-identical
                           regardless.
  --cache_budget_mb=N      deprecated alias for --global_cache_budget_mb
                           (the budget has been process-wide since the
                           catalog landed); warns once on stderr. Giving
                           both with different values is an error.

Snapshots (versioned binary serving state; see data/snapshot.h):
  --snapshot_save=PATH     after the batch stream completes, write the
                           "default" dataset's full serving state (table,
                           tombstones, grouping, insert-routing provenance,
                           maintained skyline state) to PATH atomically.
  --snapshot_load=PATH     register "default" from a snapshot file instead
                           of --csv/--synthetic: the process warm-starts
                           without re-ingest or skyline recomputation.
                           Corrupt, truncated or future-versioned files are
                           rejected up front. Batch mode only.
  --snapshot_info=PATH     print a snapshot file's summary (rows, dims,
                           groups, format version, skyline state) and exit.
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "fairhms_cli: %s\n", status.ToString().c_str());
  return 1;
}

/// Prints the registry: one block per algorithm with capabilities and the
/// parameter schema (name, type, default, description). The algorithm name
/// is the first token of its line so scripts can match on field 1.
int ListAlgos() {
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    std::printf("%-12s [%s]  %s — %s\n", info->name.c_str(),
                CapabilitiesToString(info->caps).c_str(),
                info->display_name.c_str(), info->summary.c_str());
    for (const ParamSpec& p : info->params) {
      std::printf("    --%s (%s, default %s): %s\n", p.name.c_str(),
                  ParamTypeToString(p.type), p.default_value.c_str(),
                  p.description.c_str());
    }
  }
  return 0;
}

/// The shared synthetic-generator dispatch: `n` 0 means the paper-default
/// size for the chosen family. Serves both the --synthetic flag and the
/// batch stream's {"op": "register", "synthetic": ...} lines.
StatusOr<Dataset> MakeSynthetic(const std::string& name, int64_t n_raw,
                                int64_t dim_raw, Rng* rng) {
  if (n_raw < 0) return Status::InvalidArgument("n must be >= 0");
  if (dim_raw < 1 || dim_raw > 1000) {
    return Status::InvalidArgument("dim must be in [1, 1000]");
  }
  const size_t n = static_cast<size_t>(n_raw);
  const int dim = static_cast<int>(dim_raw);
  if (name == "independent") {
    return GenIndependent(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "anticorrelated" || name == "anticor") {
    return GenAntiCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "correlated") {
    return GenCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "lawschs") return n ? MakeLawschsSim(rng, n) : MakeLawschsSim(rng);
  if (name == "adult") return n ? MakeAdultSim(rng, n) : MakeAdultSim(rng);
  if (name == "compas") return n ? MakeCompasSim(rng, n) : MakeCompasSim(rng);
  if (name == "credit") return n ? MakeCreditSim(rng, n) : MakeCreditSim(rng);
  return Status::InvalidArgument(
      StrFormat("unknown synthetic family '%s'", name.c_str()));
}

StatusOr<Dataset> LoadDataset(const cli::Flags& flags, Rng* rng) {
  const bool has_csv = flags.Has("csv");
  const bool has_syn = flags.Has("synthetic");
  if (has_csv == has_syn) {
    return Status::InvalidArgument(
        "pass exactly one of --csv=PATH or --synthetic=NAME (--help for "
        "usage)");
  }
  if (has_csv) {
    CsvReadOptions opts;
    for (const auto& c : flags.GetList("numeric")) {
      opts.numeric_columns.push_back(c);
    }
    for (const auto& c : flags.GetList("categorical")) {
      opts.categorical_columns.push_back(c);
    }
    if (opts.numeric_columns.empty()) {
      return Status::InvalidArgument("--csv requires --numeric=col1,col2,...");
    }
    return ReadCsv(flags.GetString("csv", ""), opts);
  }
  return MakeSynthetic(flags.GetString("synthetic", ""), flags.GetInt("n", 0),
                       flags.GetInt("dim", 4), rng);
}

StatusOr<Grouping> MakeGrouping(const cli::Flags& flags, const Dataset& data) {
  const auto by = flags.GetList("group_by");
  if (!by.empty()) return GroupByCategoricalProduct(data, by);
  const int c_num = static_cast<int>(flags.GetInt("groups", 1));
  if (c_num < 1) return Status::InvalidArgument("--groups must be >= 1");
  if (c_num > static_cast<int>(data.size())) {
    return Status::InvalidArgument("--groups exceeds dataset size");
  }
  if (c_num == 1) return SingleGroup(data.size());
  return GroupBySumRank(data, c_num);
}

StatusOr<GroupBounds> MakeBounds(const cli::Flags& flags, int k,
                                 const Grouping& grouping) {
  const std::string kind = flags.GetString("bounds", "proportional");
  const double alpha = flags.GetDouble("alpha", 0.1);
  if (kind == "proportional") {
    return GroupBounds::Proportional(k, grouping.Counts(), alpha);
  }
  if (kind == "balanced") {
    return GroupBounds::Balanced(k, grouping.num_groups, alpha);
  }
  if (kind == "explicit") {
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> lower,
                             flags.GetIntList("lower"));
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> upper,
                             flags.GetIntList("upper"));
    if (static_cast<int>(lower.size()) != grouping.num_groups ||
        static_cast<int>(upper.size()) != grouping.num_groups) {
      return Status::InvalidArgument(StrFormat(
          "--lower/--upper must list %d values", grouping.num_groups));
    }
    return GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  }
  return Status::InvalidArgument(
      StrFormat("unknown --bounds '%s'", kind.c_str()));
}

/// Forwards every flag matching the chosen algorithm's parameter schema
/// into the request's AlgoParams — each entry --list_algos prints is a
/// working --flag. Flags naming a parameter of a *different* algorithm are
/// never looked up here; the end-of-run unknown-flag sweep warns about
/// them ("no effect with the chosen options") like any other unused knob.
Status FillParamsFromFlags(const cli::Flags& flags, const AlgorithmInfo& info,
                           AlgoParams* params) {
  for (const ParamSpec& spec : info.params) {
    if (!flags.Has(spec.name)) continue;
    switch (spec.type) {
      case ParamType::kInt:
        params->SetInt(spec.name, flags.GetInt(spec.name, 0));
        break;
      case ParamType::kDouble:
        params->SetDouble(spec.name, flags.GetDouble(spec.name, 0.0));
        break;
      case ParamType::kBool: {
        // Bare --flag means true; otherwise require true/false (or 1/0).
        const std::string v = flags.GetString(spec.name, "true");
        if (v.empty() || v == "true" || v == "1") {
          params->SetBool(spec.name, true);
        } else if (v == "false" || v == "0") {
          params->SetBool(spec.name, false);
        } else {
          return Status::InvalidArgument(
              StrFormat("--%s wants true or false, got '%s'",
                        spec.name.c_str(), v.c_str()));
        }
        break;
      }
      case ParamType::kString:
        params->SetString(spec.name, flags.GetString(spec.name, ""));
        break;
    }
  }
  return Status::OK();
}

/// Every parameter name registered by any algorithm: a flag in this set
/// that went unused is "documented but without effect here", not a typo.
std::set<std::string> AllRegisteredParamNames() {
  std::set<std::string> names;
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    for (const ParamSpec& p : info->params) names.insert(p.name);
  }
  return names;
}

/// Warns on flags never looked up on the taken code path: a documented
/// flag (the driver flags plus any algorithm parameter in the registry) is
/// merely unused with the chosen options, anything else is a likely typo.
/// Both serving modes run this so a typo never silently changes a run.
void WarnUnusedFlags(const cli::Flags& flags) {
  std::set<std::string> documented = AllRegisteredParamNames();
  documented.insert({"csv", "numeric", "categorical", "synthetic", "n",
                     "dim", "seed", "normalize", "groups", "group_by", "k",
                     "bounds", "alpha", "lower", "upper", "algo", "format",
                     "threads", "list_algos", "queries", "cache_budget_mb",
                     "global_cache_budget_mb", "snapshot_save",
                     "snapshot_load", "snapshot_info", "help"});
  for (const auto& key : flags.Unknown()) {
    if (documented.count(key)) {
      std::fprintf(stderr,
                   "fairhms_cli: warning: --%s has no effect with the "
                   "chosen options; ignored\n",
                   key.c_str());
    } else {
      std::fprintf(stderr, "fairhms_cli: warning: unknown flag --%s ignored\n",
                   key.c_str());
    }
  }
}

/// Applies a normalization mode (minmax | max | none) to a freshly loaded
/// dataset; shared by the --normalize flag and register ops.
StatusOr<Dataset> NormalizeByName(const std::string& norm, Dataset raw) {
  if (norm == "minmax") return raw.NormalizedMinMax();
  if (norm == "max") return raw.ScaledByMax();
  if (norm == "none") return raw;
  return Status::InvalidArgument(
      StrFormat("unknown normalization '%s' (want minmax, max or none)",
                norm.c_str()));
}

/// Applies --normalize to a freshly loaded dataset.
StatusOr<Dataset> NormalizeDataset(const cli::Flags& flags, Dataset raw) {
  return NormalizeByName(flags.GetString("normalize", "minmax"),
                         std::move(raw));
}

/// Resolves the process-wide cache budget from --global_cache_budget_mb,
/// honoring the deprecated --cache_budget_mb spelling (the budget has been
/// global since the catalog landed) with a one-time warning. Both flags
/// with different values is a contradiction, not a preference order.
StatusOr<uint64_t> ResolveCacheBudgetBytes(const cli::Flags& flags) {
  const bool has_legacy = flags.Has("cache_budget_mb");
  const bool has_global = flags.Has("global_cache_budget_mb");
  int64_t mb = 1024;
  if (has_legacy && has_global &&
      flags.GetInt("cache_budget_mb", 1024) !=
          flags.GetInt("global_cache_budget_mb", 1024)) {
    return Status::InvalidArgument(
        "--cache_budget_mb and --global_cache_budget_mb disagree; "
        "--cache_budget_mb is a deprecated alias — drop it and keep "
        "--global_cache_budget_mb");
  }
  if (has_legacy) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "fairhms_cli: warning: --cache_budget_mb is deprecated; "
                   "the budget is process-wide across the whole catalog — "
                   "use --global_cache_budget_mb\n");
    }
    mb = flags.GetInt("cache_budget_mb", 1024);
  }
  if (has_global) mb = flags.GetInt("global_cache_budget_mb", 1024);
  if (mb < 0) {
    return Status::InvalidArgument("--global_cache_budget_mb must be >= 0");
  }
  return static_cast<uint64_t>(mb) * 1024 * 1024;
}

/// Builds the GroupBounds of one batch query (default: proportional 0.1).
StatusOr<GroupBounds> BoundsFromQuery(const cli::JsonValue& query, int k,
                                      SolverSession* session) {
  std::string kind = "proportional";
  if (const cli::JsonValue* b = query.Find("bounds"); b != nullptr) {
    if (!b->is_string()) {
      return Status::InvalidArgument("\"bounds\" must be a string");
    }
    kind = b->string_value();
  }
  double alpha = 0.1;
  if (const cli::JsonValue* a = query.Find("alpha"); a != nullptr) {
    if (!a->is_number()) {
      return Status::InvalidArgument("\"alpha\" must be a number");
    }
    alpha = a->number_value();
  }
  if (kind == "proportional") {
    return GroupBounds::Proportional(k, session->group_counts(), alpha);
  }
  if (kind == "balanced") {
    return GroupBounds::Balanced(k, session->grouping().num_groups, alpha);
  }
  if (kind == "explicit") {
    auto int_list = [&](const char* key) -> StatusOr<std::vector<int>> {
      const cli::JsonValue* v = query.Find(key);
      if (v == nullptr || !v->is_array()) {
        return Status::InvalidArgument(StrFormat(
            "explicit bounds need an integer array \"%s\"", key));
      }
      std::vector<int> out;
      for (const cli::JsonValue& item : v->items()) {
        FAIRHMS_ASSIGN_OR_RETURN(const int64_t value, item.AsInt64());
        out.push_back(static_cast<int>(value));
      }
      return out;
    };
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> lower, int_list("lower"));
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> upper, int_list("upper"));
    return GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  }
  return Status::InvalidArgument(
      StrFormat("unknown \"bounds\" kind '%s' (want proportional, balanced "
                "or explicit)", kind.c_str()));
}

/// Fills AlgoParams from the query's "params" object, using the algorithm's
/// schema for int/double disambiguation; keys or types the schema does not
/// know are set by their JSON type so Solver validation reports them with
/// the uniform messages.
Status ParamsFromQuery(const cli::JsonValue& params, const AlgorithmInfo* info,
                       AlgoParams* out) {
  if (!params.is_object()) {
    return Status::InvalidArgument("\"params\" must be an object");
  }
  for (const auto& [name, value] : params.members()) {
    const ParamSpec* spec = nullptr;
    if (info != nullptr) {
      for (const ParamSpec& candidate : info->params) {
        if (candidate.name == name) spec = &candidate;
      }
    }
    if (spec != nullptr && value.is_number()) {
      if (spec->type == ParamType::kInt) {
        FAIRHMS_ASSIGN_OR_RETURN(const int64_t v, value.AsInt64());
        out->SetInt(name, v);
      } else {
        out->SetDouble(name, value.number_value());
      }
      continue;
    }
    switch (value.kind()) {
      case cli::JsonValue::Kind::kBool:
        out->SetBool(name, value.bool_value());
        break;
      case cli::JsonValue::Kind::kString:
        out->SetString(name, value.string_value());
        break;
      case cli::JsonValue::Kind::kNumber: {
        const auto as_int = value.AsInt64();
        if (as_int.ok()) {
          out->SetInt(name, *as_int);
        } else {
          out->SetDouble(name, value.number_value());
        }
        break;
      }
      default:
        return Status::InvalidArgument(StrFormat(
            "parameter '%s' must be a number, boolean or string",
            name.c_str()));
    }
  }
  return Status::OK();
}

/// A label an insert op mentions that the column does not know yet; it is
/// registered only once the rest of the op has validated, so a rejected
/// line leaves the table untouched.
struct PendingLabel {
  int col = 0;
  std::string label;
};

/// Converts an insert op's "cats" object ({column: label}) into a full
/// code vector without mutating the dataset; columns not mentioned
/// default to code 0, unseen labels land in `pending` with their future
/// codes already in `codes`.
StatusOr<std::vector<int>> CodesFromCats(const cli::JsonValue* cats,
                                         const Dataset& data,
                                         std::vector<PendingLabel>* pending) {
  std::vector<int> codes(static_cast<size_t>(data.num_categorical()), 0);
  if (cats == nullptr) return codes;
  if (!cats->is_object()) {
    return Status::InvalidArgument(
        "\"cats\" must be an object mapping column names to labels");
  }
  // Future code per column = current label count + pending labels there.
  std::vector<int> next_code(static_cast<size_t>(data.num_categorical()));
  for (int c = 0; c < data.num_categorical(); ++c) {
    next_code[static_cast<size_t>(c)] =
        static_cast<int>(data.categorical(c).labels.size());
  }
  for (const auto& [name, value] : cats->members()) {
    FAIRHMS_ASSIGN_OR_RETURN(const int col, data.FindCategorical(name));
    if (!value.is_string()) {
      return Status::InvalidArgument(
          StrFormat("\"cats\" entry '%s' must be a string label",
                    name.c_str()));
    }
    const CategoricalColumn& column = data.categorical(col);
    int code = -1;
    for (size_t i = 0; i < column.labels.size(); ++i) {
      if (column.labels[i] == value.string_value()) {
        code = static_cast<int>(i);
        break;
      }
    }
    if (code < 0) {
      code = next_code[static_cast<size_t>(col)]++;
      pending->push_back({col, value.string_value()});
    }
    codes[static_cast<size_t>(col)] = code;
  }
  return codes;
}

/// Serves one {"op": "insert"} line: appends the point, routes it to its
/// group, and reports the new row id plus the table's version and live
/// size so streams can assert their view of the data. `group_columns` is
/// the --group_by list: when the group is derived from it, the op's
/// "cats" must name every grouping column (a defaulted code would
/// silently misroute the row).
StatusOr<std::string> ServeInsert(const cli::JsonValue& op,
                                  const std::vector<std::string>& group_columns,
                                  Dataset* data, SolverSession* session) {
  const cli::JsonValue* point = op.Find("point");
  if (point == nullptr || !point->is_array()) {
    return Status::InvalidArgument(
        "insert needs a \"point\" array of numeric attributes");
  }
  std::vector<double> coords;
  for (const cli::JsonValue& v : point->items()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("\"point\" entries must be numbers");
    }
    coords.push_back(v.number_value());
  }
  // Pre-validate the point so a bad line is rejected before this op
  // mutates anything (in particular before new labels register below).
  if (coords.size() != static_cast<size_t>(data->dim())) {
    return Status::InvalidArgument(
        StrFormat("\"point\" has %zu coordinates but the dataset is %d-d",
                  coords.size(), data->dim()));
  }
  for (size_t j = 0; j < coords.size(); ++j) {
    if (!std::isfinite(coords[j]) || coords[j] < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "\"point\" entry %zu (%g) must be finite and nonnegative", j,
          coords[j]));
    }
  }
  const cli::JsonValue* cats = op.Find("cats");
  std::vector<PendingLabel> pending;
  FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> codes,
                           CodesFromCats(cats, *data, &pending));
  // With --group_by the grouping columns' values must always be given —
  // a defaulted code would misroute a derived insert or poison the
  // combination table consulted by explicit ones.
  for (const std::string& col : group_columns) {
    if (cats == nullptr || cats->Find(col) == nullptr) {
      return Status::InvalidArgument(StrFormat(
          "inserts must give \"cats\" values for every --group_by column "
          "(missing '%s')", col.c_str()));
    }
  }
  int group = -1;
  if (const cli::JsonValue* g = op.Find("group"); g != nullptr) {
    if (g->is_string()) {
      const Grouping& grouping = session->grouping();
      for (int c = 0; c < grouping.num_groups; ++c) {
        if (grouping.names[static_cast<size_t>(c)] == g->string_value()) {
          group = c;
          break;
        }
      }
      if (group < 0) {
        return Status::InvalidArgument(StrFormat(
            "unknown group '%s'", g->string_value().c_str()));
      }
    } else {
      FAIRHMS_ASSIGN_OR_RETURN(const int64_t id, g->AsInt64());
      // Range-check before narrowing so huge values fail instead of
      // wrapping onto a valid group id.
      if (id < 0 || id >= session->grouping().num_groups) {
        return Status::InvalidArgument(StrFormat(
            "\"group\" %lld out of range (the grouping has %d groups)",
            static_cast<long long>(id), session->grouping().num_groups));
      }
      group = static_cast<int>(id);
    }
  }
  // Run the session's own routing checks (contradicting explicit group,
  // missing provenance) before this op mutates anything; only then
  // register the labels it introduced and insert.
  FAIRHMS_RETURN_IF_ERROR(session->ResolveInsertGroup(codes, group).status());
  for (const PendingLabel& p : pending) {
    data->AddCategoricalLabel(p.col, p.label);
  }
  FAIRHMS_ASSIGN_OR_RETURN(const int row,
                           session->Insert(coords, codes, group));
  const int assigned =
      session->grouping().group_of[static_cast<size_t>(row)];
  return StrFormat(
      "\"op\": \"insert\", \"row\": %d, \"group\": %d, "
      "\"group_name\": \"%s\", \"version\": %llu, \"live_rows\": %zu", row,
      assigned,
      cli::JsonEscape(session->grouping().names[static_cast<size_t>(assigned)])
          .c_str(),
      static_cast<unsigned long long>(session->version()),
      session->data().live_size());
}

/// Serves one {"op": "delete"} line.
StatusOr<std::string> ServeDelete(const cli::JsonValue& op,
                                  SolverSession* session) {
  const cli::JsonValue* rows_field = op.Find("rows");
  if (rows_field == nullptr || !rows_field->is_array()) {
    return Status::InvalidArgument(
        "delete needs a \"rows\" array of row indices");
  }
  std::vector<int> rows;
  for (const cli::JsonValue& v : rows_field->items()) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t row, v.AsInt64());
    // Range-check before narrowing so huge values fail instead of
    // wrapping onto (and tombstoning) a valid row.
    if (row < 0 || static_cast<size_t>(row) >= session->data().size()) {
      return Status::OutOfRange(StrFormat(
          "cannot erase row %lld of a %zu-row dataset",
          static_cast<long long>(row), session->data().size()));
    }
    rows.push_back(static_cast<int>(row));
  }
  FAIRHMS_RETURN_IF_ERROR(session->Erase(rows));
  return StrFormat(
      "\"op\": \"delete\", \"erased\": %zu, \"version\": %llu, "
      "\"live_rows\": %zu",
      rows.size(), static_cast<unsigned long long>(session->version()),
      session->data().live_size());
}

/// Serves one parsed batch query; the returned string is the one-line JSON
/// body (without the id/ok envelope, which the caller emits).
StatusOr<std::string> ServeQuery(const cli::JsonValue& query,
                                 SolverSession* session, uint64_t default_seed,
                                 int default_threads) {
  const cli::JsonValue* algo = query.Find("algorithm");
  if (algo == nullptr) algo = query.Find("algo");
  if (algo == nullptr || !algo->is_string()) {
    return Status::InvalidArgument(
        "each query needs a string \"algorithm\" field");
  }
  const cli::JsonValue* k_field = query.Find("k");
  if (k_field == nullptr) {
    return Status::InvalidArgument("each query needs an integer \"k\" field");
  }
  FAIRHMS_ASSIGN_OR_RETURN(const int64_t k64, k_field->AsInt64());
  if (k64 < 1 || k64 > 1'000'000) {
    return Status::InvalidArgument(
        StrFormat("k must be in [1, 1000000], got %lld",
                  static_cast<long long>(k64)));
  }
  const int k = static_cast<int>(k64);

  SolverRequest request;  // data/grouping stay null: the session pins them.
  request.algorithm = algo->string_value();
  request.seed = default_seed;
  request.threads = default_threads;
  if (const cli::JsonValue* s = query.Find("seed"); s != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t seed, s->AsInt64());
    if (seed < 0) return Status::InvalidArgument("\"seed\" must be >= 0");
    request.seed = static_cast<uint64_t>(seed);
  }
  if (const cli::JsonValue* t = query.Find("threads"); t != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t threads, t->AsInt64());
    // Range-check before narrowing so huge values fail like the flag does
    // instead of wrapping into the valid range.
    if (threads < 0 || threads > 4096) {
      return Status::InvalidArgument(StrFormat(
          "\"threads\" must be in [0, 4096] (0 = all hardware threads), "
          "got %lld", static_cast<long long>(threads)));
    }
    request.threads = static_cast<int>(threads);
  }
  FAIRHMS_ASSIGN_OR_RETURN(request.bounds,
                           BoundsFromQuery(query, k, session));
  if (const cli::JsonValue* params = query.Find("params"); params != nullptr) {
    FAIRHMS_RETURN_IF_ERROR(ParamsFromQuery(
        *params, AlgorithmRegistry::Instance().Find(request.algorithm),
        &request.params));
  }

  FAIRHMS_ASSIGN_OR_RETURN(SolverResult run, session->Solve(request));

  // Reference evaluation against the pinned dataset's global skyline —
  // both the skyline and any evaluation net come from the session cache.
  const Dataset& data = session->data();
  EvalOptions eval_opts;
  eval_opts.threads = request.threads;
  eval_opts.cache = session->cache();
  const double mhr = EvaluateMhr(data, session->cache()->Skyline(data),
                                 run.solution.rows, eval_opts);

  std::string out = StrFormat(
      "\"algorithm\": \"%s\", \"k\": %d, \"seed\": %llu, \"threads\": %d, "
      "\"solution_size\": %zu, \"rows\": [",
      cli::JsonEscape(run.algorithm).c_str(), k,
      static_cast<unsigned long long>(request.seed), request.threads,
      run.solution.rows.size());
  for (size_t i = 0; i < run.solution.rows.size(); ++i) {
    out += StrFormat("%s%d", i == 0 ? "" : ", ", run.solution.rows[i]);
  }
  out += StrFormat(
      "], \"happiness_ratio\": %.17g, \"algo_mhr_estimate\": %.17g, "
      "\"violations\": %d, \"group_counts\": [",
      mhr, run.solution.mhr, run.violations);
  for (size_t c = 0; c < run.group_counts.size(); ++c) {
    out += StrFormat("%s%d", c == 0 ? "" : ", ", run.group_counts[c]);
  }
  out += "]";
  if (!run.note.empty()) {
    out += StrFormat(", \"note\": \"%s\"", cli::JsonEscape(run.note).c_str());
  }
  out += StrFormat(", \"solve_ms\": %.3f, \"total_ms\": %.3f", run.solve_ms,
                   run.total_ms);
  return out;
}

/// Serves one {"op": "register"} line: builds a synthetic dataset (or
/// restores a snapshot file) and registers it in the catalog under the
/// line's "name". `dataset_label` gets the target name for the envelope
/// even when registration fails partway.
StatusOr<std::string> ServeRegister(const cli::JsonValue& op,
                                    uint64_t default_seed,
                                    DatasetCatalog* catalog,
                                    std::string* dataset_label) {
  const cli::JsonValue* name_field = op.Find("name");
  if (name_field == nullptr || !name_field->is_string()) {
    return Status::InvalidArgument("register needs a string \"name\"");
  }
  const std::string name = name_field->string_value();
  *dataset_label = name;
  const cli::JsonValue* snap = op.Find("snapshot");
  const cli::JsonValue* syn = op.Find("synthetic");
  if (snap != nullptr && syn != nullptr) {
    return Status::InvalidArgument(
        "register takes \"snapshot\" or \"synthetic\", not both");
  }
  if (snap != nullptr) {
    if (!snap->is_string()) {
      return Status::InvalidArgument("\"snapshot\" must be a path string");
    }
    FAIRHMS_RETURN_IF_ERROR(catalog->Load(name, snap->string_value()));
  } else {
    if (syn == nullptr || !syn->is_string()) {
      return Status::InvalidArgument(
          "register needs a string \"synthetic\" (generator family) or "
          "\"snapshot\" (file path) source");
    }
    int64_t n = 0;
    int64_t dim = 4;
    uint64_t seed = default_seed;
    if (const cli::JsonValue* v = op.Find("n"); v != nullptr) {
      FAIRHMS_ASSIGN_OR_RETURN(n, v->AsInt64());
    }
    if (const cli::JsonValue* v = op.Find("dim"); v != nullptr) {
      FAIRHMS_ASSIGN_OR_RETURN(dim, v->AsInt64());
    }
    if (const cli::JsonValue* v = op.Find("seed"); v != nullptr) {
      FAIRHMS_ASSIGN_OR_RETURN(const int64_t s, v->AsInt64());
      if (s < 0) return Status::InvalidArgument("\"seed\" must be >= 0");
      seed = static_cast<uint64_t>(s);
    }
    Rng rng(seed);
    FAIRHMS_ASSIGN_OR_RETURN(Dataset raw,
                             MakeSynthetic(syn->string_value(), n, dim, &rng));
    std::string norm = "minmax";
    if (const cli::JsonValue* v = op.Find("normalize"); v != nullptr) {
      if (!v->is_string()) {
        return Status::InvalidArgument("\"normalize\" must be a string");
      }
      norm = v->string_value();
    }
    FAIRHMS_ASSIGN_OR_RETURN(Dataset data,
                             NormalizeByName(norm, std::move(raw)));
    std::vector<std::string> group_columns;
    Grouping grouping;
    if (const cli::JsonValue* gb = op.Find("group_by"); gb != nullptr) {
      if (!gb->is_array()) {
        return Status::InvalidArgument(
            "\"group_by\" must be an array of categorical column names");
      }
      for (const cli::JsonValue& item : gb->items()) {
        if (!item.is_string()) {
          return Status::InvalidArgument(
              "\"group_by\" entries must be column-name strings");
        }
        group_columns.push_back(item.string_value());
      }
      FAIRHMS_ASSIGN_OR_RETURN(grouping,
                               GroupByCategoricalProduct(data, group_columns));
    } else {
      int64_t groups = 1;
      if (const cli::JsonValue* v = op.Find("groups"); v != nullptr) {
        FAIRHMS_ASSIGN_OR_RETURN(groups, v->AsInt64());
      }
      if (groups < 1 || groups > static_cast<int64_t>(data.size())) {
        return Status::InvalidArgument(StrFormat(
            "\"groups\" must be in [1, %zu]", data.size()));
      }
      if (groups == 1) {
        grouping = SingleGroup(data.size());
      } else {
        grouping = GroupBySumRank(data, static_cast<int>(groups));
      }
    }
    FAIRHMS_RETURN_IF_ERROR(catalog->Register(
        name, std::move(data), std::move(grouping), group_columns));
  }
  FAIRHMS_ASSIGN_OR_RETURN(SolverSession * session, catalog->Session(name));
  return StrFormat(
      "\"op\": \"register\", \"name\": \"%s\", \"rows\": %zu, \"dim\": %d, "
      "\"groups\": %d",
      cli::JsonEscape(name).c_str(), session->data().live_size(),
      session->data().dim(), session->grouping().num_groups);
}

/// Serves one {"op": "save"} line: snapshots a catalog entry to disk.
StatusOr<std::string> ServeSave(const cli::JsonValue& op,
                                DatasetCatalog* catalog,
                                std::string* dataset_label) {
  const cli::JsonValue* name_field = op.Find("name");
  if (name_field == nullptr || !name_field->is_string()) {
    return Status::InvalidArgument("save needs a string \"name\"");
  }
  const cli::JsonValue* path_field = op.Find("path");
  if (path_field == nullptr || !path_field->is_string()) {
    return Status::InvalidArgument("save needs a string \"path\"");
  }
  *dataset_label = name_field->string_value();
  FAIRHMS_RETURN_IF_ERROR(
      catalog->Save(name_field->string_value(), path_field->string_value()));
  return StrFormat("\"op\": \"save\", \"name\": \"%s\", \"path\": \"%s\"",
                   cli::JsonEscape(name_field->string_value()).c_str(),
                   cli::JsonEscape(path_field->string_value()).c_str());
}

/// Serves one {"op": "drop"} line.
StatusOr<std::string> ServeDrop(const cli::JsonValue& op,
                                DatasetCatalog* catalog,
                                std::string* dataset_label) {
  const cli::JsonValue* name_field = op.Find("name");
  if (name_field == nullptr || !name_field->is_string()) {
    return Status::InvalidArgument("drop needs a string \"name\"");
  }
  *dataset_label = name_field->string_value();
  FAIRHMS_RETURN_IF_ERROR(catalog->Drop(name_field->string_value()));
  return StrFormat("\"op\": \"drop\", \"name\": \"%s\"",
                   cli::JsonEscape(name_field->string_value()).c_str());
}

/// Serves one {"op": "list"} line.
std::string ServeList(const DatasetCatalog& catalog) {
  std::string out = "\"op\": \"list\", \"datasets\": [";
  bool first = true;
  for (const std::string& name : catalog.List()) {
    out += StrFormat("%s\"%s\"", first ? "" : ", ",
                     cli::JsonEscape(name).c_str());
    first = false;
  }
  out += "]";
  return out;
}

/// --snapshot_info: print a snapshot file's summary and exit.
int RunSnapshotInfo(const std::string& path) {
  auto snapshot = ReadSnapshotFile(path);
  if (!snapshot.ok()) return Fail(snapshot.status());
  const Dataset& data = snapshot->data;
  std::printf("snapshot: %s\n", path.c_str());
  std::printf("  reader format version: %u\n", kSnapshotFormatVersion);
  std::printf("  rows: %zu total, %zu live\n", data.size(), data.live_size());
  std::printf("  dim: %d\n", data.dim());
  std::printf("  dataset version: %llu\n",
              static_cast<unsigned long long>(data.version()));
  std::printf("  groups: %d\n", snapshot->grouping.num_groups);
  std::string cols;
  for (const std::string& c : snapshot->group_columns) {
    cols += (cols.empty() ? "" : ", ") + c;
  }
  std::printf("  group columns: %s\n", cols.empty() ? "(none)" : cols.c_str());
  std::printf("  insert-routing combinations: %zu\n",
              snapshot->combo_to_group.size());
  if (snapshot->has_index) {
    std::printf("  skyline state: present (%zu global skyline rows, "
                "%zu per-group states)\n",
                snapshot->index.global.skyline.size(),
                snapshot->index.per_group.size());
  } else {
    std::printf("  skyline state: absent (rebuilds lazily)\n");
  }
  return 0;
}

/// The --queries batch driver: a DatasetCatalog of dynamic SolverSessions
/// (the flag-loaded dataset is "default"), one result JSON per request
/// line, routed by each line's "dataset" field.
int RunBatch(const cli::Flags& flags, uint64_t seed, int threads) {
  Stopwatch total;
  // Process-wide bound on resident cache bytes across every catalog
  // session: an unbounded seed/k sweep would pin a fresh net + evaluator
  // per line forever. The arbiter evicts the coldest sessions' caches
  // when the global total crosses it (results are bit-identical either
  // way); 0 disables.
  auto budget_bytes = ResolveCacheBudgetBytes(flags);
  if (!budget_bytes.ok()) return Fail(budget_bytes.status());
  DatasetCatalog catalog(DatasetCatalog::Options{*budget_bytes});

  // The flag-described dataset registers as "default": restored warm from
  // a snapshot, or ingested cold from --csv/--synthetic. With --group_by
  // the named columns route inserted rows to their groups; otherwise
  // inserts need an explicit "group".
  if (flags.Has("snapshot_load")) {
    if (flags.Has("csv") || flags.Has("synthetic")) {
      return Fail(Status::InvalidArgument(
          "--snapshot_load replaces --csv/--synthetic; pass exactly one "
          "dataset source"));
    }
    if (Status st =
            catalog.Load("default", flags.GetString("snapshot_load", ""));
        !st.ok()) {
      return Fail(st);
    }
  } else {
    Rng rng(seed);
    auto raw = LoadDataset(flags, &rng);
    if (!raw.ok()) return Fail(raw.status());
    auto data = NormalizeDataset(flags, std::move(*raw));
    if (!data.ok()) return Fail(data.status());
    auto grouping = MakeGrouping(flags, *data);
    if (!grouping.ok()) return Fail(grouping.status());
    if (Status st = catalog.Register("default", std::move(*data),
                                     std::move(*grouping),
                                     flags.GetList("group_by"));
        !st.ok()) {
      return Fail(st);
    }
  }

  // Looked up here — before the unused-flag sweep — though the save runs
  // after the stream, over the final mutated state.
  const std::string snapshot_save =
      flags.Has("snapshot_save") ? flags.GetString("snapshot_save", "")
                                 : std::string();

  const std::string path = flags.GetString("queries", "");
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      return Fail(Status::IOError("cannot open --queries=" + path));
    }
  }
  std::istream& in = path == "-" ? std::cin : file;
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);
  // Every driver flag has been looked up by now; surface typos before the
  // batch streams (a misspelled --groups must not silently serve the whole
  // sweep against the default grouping).
  WarnUnusedFlags(flags);

  size_t line_no = 0;
  size_t served = 0;
  size_t failed = 0;
  size_t updates = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    // The line's own "id" (echoed verbatim when scalar) falls back to the
    // 1-based line number.
    std::string id = StrFormat("%zu", line_no);
    Status status = Status::OK();
    std::string body;
    std::string dataset_label;
    auto parsed = cli::ParseJson(line);
    if (!parsed.ok()) {
      status = parsed.status();
    } else if (!parsed->is_object()) {
      status = Status::InvalidArgument("each query line must be an object");
    } else {
      if (const cli::JsonValue* id_field = parsed->Find("id");
          id_field != nullptr) {
        if (id_field->is_string()) {
          id = "\"" + cli::JsonEscape(id_field->string_value()) + "\"";
        } else if (id_field->is_number()) {
          id = StrFormat("%.17g", id_field->number_value());
        }
      }
      std::string op = "query";
      if (const cli::JsonValue* op_field = parsed->Find("op");
          op_field != nullptr) {
        if (op_field->is_string()) {
          op = op_field->string_value();
        } else {
          op = "";  // Forces the unknown-op error below.
        }
      }
      // Per-dataset ops route by the line's "dataset" field; catalog ops
      // (register/save/drop/list) name their target themselves.
      std::string route = "default";
      bool route_ok = true;
      if (const cli::JsonValue* d = parsed->Find("dataset"); d != nullptr) {
        if (d->is_string()) {
          route = d->string_value();
        } else {
          route_ok = false;
        }
      }
      StatusOr<std::string> result =
          Status::InvalidArgument(StrFormat(
              "unknown \"op\" '%s' (want query, insert, delete, register, "
              "save, drop or list)",
              op.c_str()));
      if (!route_ok) {
        result = Status::InvalidArgument(
            "\"dataset\" must be a string (a catalog name)");
      } else if (op == "query" || op == "solve" || op == "insert" ||
                 op == "delete") {
        dataset_label = route;
        auto session_or = catalog.Session(route);
        if (!session_or.ok()) {
          result = session_or.status();
        } else {
          SolverSession* session = *session_or;
          // Serving marks this session hot; the global budget settles
          // *after* the line, never mid-solve (cache references handed to
          // the algorithm must stay valid), evicting the coldest sessions
          // first and the serving one only as a last resort.
          catalog.arbiter()->Touch(session->cache());
          if (op == "insert") {
            result = ServeInsert(*parsed, session->group_column_names(),
                                 session->mutable_data(), session);
            if (result.ok()) ++updates;
          } else if (op == "delete") {
            result = ServeDelete(*parsed, session);
            if (result.ok()) ++updates;
          } else {
            result = ServeQuery(*parsed, session, seed, threads);
          }
          catalog.arbiter()->Rebalance(session->cache());
        }
      } else if (op == "register") {
        result = ServeRegister(*parsed, seed, &catalog, &dataset_label);
        if (result.ok()) ++updates;
      } else if (op == "save") {
        result = ServeSave(*parsed, &catalog, &dataset_label);
      } else if (op == "drop") {
        result = ServeDrop(*parsed, &catalog, &dataset_label);
        if (result.ok()) ++updates;
      } else if (op == "list") {
        result = ServeList(catalog);
      }
      if (result.ok()) {
        body = std::move(*result);
      } else {
        status = result.status();
      }
    }
    if (status.ok()) {
      ++served;
      // The envelope stamps which dataset served the line and the catalog
      // mutation counter, so responses pin the exact catalog state.
      const std::string ds =
          dataset_label.empty()
              ? std::string()
              : StrFormat("\"dataset\": \"%s\", ",
                          cli::JsonEscape(dataset_label).c_str());
      std::printf("{\"id\": %s, \"ok\": true, %s\"catalog_version\": %llu, "
                  "%s}\n",
                  id.c_str(), ds.c_str(),
                  static_cast<unsigned long long>(catalog.version()),
                  body.c_str());
    } else {
      ++failed;
      std::printf("{\"id\": %s, \"ok\": false, \"error\": \"%s\"}\n",
                  id.c_str(), cli::JsonEscape(status.ToString()).c_str());
    }
    std::fflush(stdout);
  }

  if (!snapshot_save.empty()) {
    if (Status st = catalog.Save("default", snapshot_save); !st.ok()) {
      return Fail(st);
    }
  }

  // Stderr report: aggregate totals, then per-session detail, then the
  // arbiter's global line — per-session bytes and the global charged
  // total are printed side by side so they can be checked against each
  // other.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes = 0;
  for (const std::string& name : catalog.List()) {
    auto s = catalog.Session(name);
    if (!s.ok()) continue;
    const CacheStats stats = (*s)->cache_stats();
    hits += stats.TotalHits();
    misses += stats.TotalMisses();
    bytes += stats.TotalBytes();
  }
  std::fprintf(stderr,
               "fairhms_cli: served %zu lines (%zu updates, %zu failed) in "
               "%.1f ms; cache: %llu hits, %llu misses, %.1f KiB resident, "
               "%llu budget evictions\n",
               served, updates, failed, total.ElapsedMillis(),
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses),
               static_cast<double>(bytes) / 1024.0,
               static_cast<unsigned long long>(
                   catalog.arbiter()->evictions()));
  for (const std::string& name : catalog.List()) {
    auto s = catalog.Session(name);
    if (!s.ok()) continue;
    std::fprintf(stderr, "fairhms_cli: cache detail [%s]: %s\n", name.c_str(),
                 (*s)->cache_stats().ToString().c_str());
  }
  std::fprintf(stderr, "fairhms_cli: %s\n",
               catalog.arbiter()->ToString().c_str());
  return failed == 0 ? 0 : 3;
}

int Run(int argc, char** argv) {
  const cli::Flags flags(argc, argv);
  if (flags.Has("help") || argc <= 1) {
    std::fputs(kUsage, stdout);
    return argc <= 1 ? 1 : 0;
  }
  if (flags.Has("list_algos")) return ListAlgos();
  if (flags.Has("snapshot_info")) {
    return RunSnapshotInfo(flags.GetString("snapshot_info", ""));
  }

  // --seed and --threads apply to every dataset source, algorithm and
  // serving mode; validate them up front so no path accepts garbage
  // silently.
  const int64_t seed_raw = flags.GetInt("seed", 42);
  if (seed_raw < 0) {
    return Fail(Status::InvalidArgument("--seed must be >= 0"));
  }
  const int64_t threads_raw = flags.GetInt("threads", 0);
  if (threads_raw < 0 || threads_raw > 4096) {
    return Fail(Status::InvalidArgument(
        "--threads must be in [0, 4096] (0 = all hardware threads)"));
  }
  SetDefaultThreads(static_cast<int>(threads_raw));
  const int threads = DefaultThreads();

  if (flags.Has("queries")) {
    return RunBatch(flags, static_cast<uint64_t>(seed_raw),
                    static_cast<int>(threads_raw));
  }
  if (flags.Has("snapshot_load") || flags.Has("snapshot_save")) {
    return Fail(Status::InvalidArgument(
        "--snapshot_load/--snapshot_save serve the --queries batch mode; "
        "use --snapshot_info to inspect a file"));
  }

  Stopwatch total;
  // Resolve the algorithm up front (fail fast before a long dataset load);
  // the unknown-name message comes straight from the registry.
  const std::string algo = flags.GetString("algo", "");
  if (algo.empty()) {
    return Fail(Status::InvalidArgument(StrFormat(
        "--algo is required (one of: %s; see --list_algos or --help)",
        AlgorithmRegistry::Instance().NamesForError().c_str())));
  }
  const AlgorithmInfo* info = AlgorithmRegistry::Instance().Find(algo);
  if (info == nullptr) {
    return Fail(Status::InvalidArgument(
        StrFormat("unknown --algo '%s' (valid: %s)", algo.c_str(),
                  AlgorithmRegistry::Instance().NamesForError().c_str())));
  }
  const int k = static_cast<int>(flags.GetInt("k", 10));
  if (k < 1) return Fail(Status::InvalidArgument("--k must be >= 1"));
  // Reject a bad --format up front: a typo must not discard a long solve.
  const std::string format = flags.GetString("format", "plain");
  if (format != "plain" && format != "csv" && format != "json") {
    return Fail(Status::InvalidArgument(StrFormat(
        "unknown --format '%s' (want plain, csv or json)", format.c_str())));
  }

  Rng rng(static_cast<uint64_t>(seed_raw));
  auto raw = LoadDataset(flags, &rng);
  if (!raw.ok()) return Fail(raw.status());

  auto normalized = NormalizeDataset(flags, std::move(*raw));
  if (!normalized.ok()) return Fail(normalized.status());
  Dataset data = std::move(*normalized);

  auto grouping = MakeGrouping(flags, data);
  if (!grouping.ok()) return Fail(grouping.status());

  auto bounds = MakeBounds(flags, k, *grouping);
  if (!bounds.ok()) return Fail(bounds.status());

  SolverRequest request;
  request.data = &data;
  request.grouping = &*grouping;
  request.bounds = std::move(*bounds);
  request.algorithm = algo;
  request.seed = static_cast<uint64_t>(seed_raw);
  request.threads = static_cast<int>(threads_raw);
  if (Status st = FillParamsFromFlags(flags, *info, &request.params);
      !st.ok()) {
    return Fail(st);
  }
  // Refuse to solve with defaults substituted for malformed numeric flags.
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);

  auto run = Solver::Solve(request);
  if (!run.ok()) return Fail(run.status());
  const Solution& sol = run->solution;

  // Reference evaluation against the global skyline (exact 2D / exact LP /
  // high-resolution net, picked automatically), reusing the facade's
  // skyline when it computed one.
  const std::vector<int> skyline =
      run->skyline.empty() ? ComputeSkyline(data) : std::move(run->skyline);
  const double mhr = EvaluateMhr(data, skyline, sol.rows);

  cli::Report report;
  report.AddString("algo", sol.algorithm.empty() ? algo : sol.algorithm);
  report.AddString("dataset", flags.Has("csv")
                                  ? flags.GetString("csv", "")
                                  : flags.GetString("synthetic", ""));
  report.AddInt("n", static_cast<int64_t>(data.size()));
  report.AddInt("dim", data.dim());
  report.AddInt("k", k);
  report.AddInt("groups", grouping->num_groups);
  report.AddInt("seed", seed_raw);
  report.AddInt("threads", threads);
  report.AddInt("solution_size", static_cast<int64_t>(sol.rows.size()));
  report.AddDouble("happiness_ratio", mhr);
  report.AddDouble("algo_mhr_estimate", sol.mhr);
  report.AddInt("violations", run->violations);
  for (int c = 0; c < grouping->num_groups; ++c) {
    const auto& name = grouping->names[static_cast<size_t>(c)];
    report.AddString(
        StrFormat("group_%s", name.c_str()),
        StrFormat("%d of bounds [%d, %d]",
                  run->group_counts[static_cast<size_t>(c)],
                  run->bounds.lower[static_cast<size_t>(c)],
                  run->bounds.upper[static_cast<size_t>(c)]));
  }
  std::vector<std::string> rows;
  for (int r : sol.rows) rows.push_back(StrFormat("%d", r));
  report.AddString("rows", Join(rows, " "));
  if (!run->note.empty()) report.AddString("note", run->note);
  report.AddDouble("solve_ms", run->solve_ms);
  report.AddDouble("total_ms", total.ElapsedMillis());

  auto rendered = report.Render(format);
  if (!rendered.ok()) return Fail(rendered.status());
  WarnUnusedFlags(flags);
  std::fputs(rendered->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
