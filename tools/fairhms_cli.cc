// fairhms_cli: the unified driver for every FairHMS / HMS algorithm in the
// library. Loads a CSV or synthetic dataset, applies a grouping, dispatches
// to the requested algorithm, and emits the happiness ratio, per-group
// counts versus bounds, fairness violations and wall-clock as plain text,
// CSV or JSON.
//
// Examples:
//   fairhms_cli --algo=intcov --synthetic=independent --n=1000 --dim=4
//       --k=10 --groups=3
//   fairhms_cli --algo=bigreedy --synthetic=anticorrelated --n=20000
//       --dim=6 --k=20 --groups=4 --format=json
//   fairhms_cli --algo=fair_greedy --synthetic=adult --group_by=gender
//       --k=12 --alpha=0.2 --format=csv
//   fairhms_cli --algo=g_dmm --csv=data.csv --numeric=price,rating
//       --categorical=region --group_by=region --k=8

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/group_adapter.h"
#include "algo/intcov.h"
#include "cli_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluate.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

constexpr char kUsage[] = R"(fairhms_cli: unified FairHMS driver.

Dataset (pick one source):
  --csv=PATH               headered CSV file
    --numeric=a,b,c        numeric attribute columns (required with --csv)
    --categorical=x,y      categorical columns to load
  --synthetic=NAME         independent | anticorrelated | correlated |
                           lawschs | adult | compas | credit
    --n=N                  rows (synthetic; replicas default to paper sizes)
    --dim=D                dimensions (independent/anticorrelated/correlated)
  --normalize=MODE         minmax (default) | max | none

Execution (valid with every dataset source and algorithm):
  --seed=S                 seed (>= 0, default 42) for the synthetic
                           generator AND all randomized algorithm parts
                           (BiGreedy/Sphere/HS direction nets); echoed in
                           the output so runs are reproducible
  --threads=N              evaluation-engine lanes; 0 (default) = all
                           hardware threads, 1 = serial. Results are
                           bit-identical across thread counts

Grouping (pick one):
  --groups=C               C groups by attribute-sum rank (default 1)
  --group_by=col[,col2]    categorical column(s); product when several

Constraint:
  --k=K                    result size (default 10)
  --bounds=KIND            proportional (default) | balanced | explicit
  --alpha=A                tolerance for proportional/balanced (default 0.1)
  --lower=l0,l1,... --upper=h0,h1,...   explicit per-group bounds

Algorithm (--algo=..., required):
  fair:          intcov (exact, 2D; higher-D inputs are solved on a
                 2-attribute projection), bigreedy, bigreedy+, fair_greedy,
                 g_greedy, g_dmm, g_sphere, g_hs
  unconstrained: rdp_greedy, dmm, sphere, hs   (violations still reported)
  --net_size=M --eps=E     BiGreedy knobs; --lambda=L for bigreedy+

Output:
  --format=F               plain (default) | csv | json
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "fairhms_cli: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<Dataset> LoadDataset(const cli::Flags& flags, Rng* rng) {
  const bool has_csv = flags.Has("csv");
  const bool has_syn = flags.Has("synthetic");
  if (has_csv == has_syn) {
    return Status::InvalidArgument(
        "pass exactly one of --csv=PATH or --synthetic=NAME (--help for "
        "usage)");
  }
  if (has_csv) {
    CsvReadOptions opts;
    for (const auto& c : flags.GetList("numeric")) {
      opts.numeric_columns.push_back(c);
    }
    for (const auto& c : flags.GetList("categorical")) {
      opts.categorical_columns.push_back(c);
    }
    if (opts.numeric_columns.empty()) {
      return Status::InvalidArgument("--csv requires --numeric=col1,col2,...");
    }
    return ReadCsv(flags.GetString("csv", ""), opts);
  }
  const std::string name = flags.GetString("synthetic", "");
  const int64_t n_raw = flags.GetInt("n", 0);
  const int64_t dim_raw = flags.GetInt("dim", 4);
  if (n_raw < 0) return Status::InvalidArgument("--n must be >= 0");
  if (dim_raw < 1 || dim_raw > 1000) {
    return Status::InvalidArgument("--dim must be in [1, 1000]");
  }
  const size_t n = static_cast<size_t>(n_raw);
  const int dim = static_cast<int>(dim_raw);
  if (name == "independent") {
    return GenIndependent(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "anticorrelated" || name == "anticor") {
    return GenAntiCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "correlated") {
    return GenCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "lawschs") return n ? MakeLawschsSim(rng, n) : MakeLawschsSim(rng);
  if (name == "adult") return n ? MakeAdultSim(rng, n) : MakeAdultSim(rng);
  if (name == "compas") return n ? MakeCompasSim(rng, n) : MakeCompasSim(rng);
  if (name == "credit") return n ? MakeCreditSim(rng, n) : MakeCreditSim(rng);
  return Status::InvalidArgument(
      StrFormat("unknown --synthetic '%s'", name.c_str()));
}

StatusOr<Grouping> MakeGrouping(const cli::Flags& flags, const Dataset& data) {
  const auto by = flags.GetList("group_by");
  if (!by.empty()) return GroupByCategoricalProduct(data, by);
  const int c_num = static_cast<int>(flags.GetInt("groups", 1));
  if (c_num < 1) return Status::InvalidArgument("--groups must be >= 1");
  if (c_num > static_cast<int>(data.size())) {
    return Status::InvalidArgument("--groups exceeds dataset size");
  }
  if (c_num == 1) return SingleGroup(data.size());
  return GroupBySumRank(data, c_num);
}

StatusOr<GroupBounds> MakeBounds(const cli::Flags& flags, int k,
                                 const Grouping& grouping) {
  const std::string kind = flags.GetString("bounds", "proportional");
  const double alpha = flags.GetDouble("alpha", 0.1);
  if (kind == "proportional") {
    return GroupBounds::Proportional(k, grouping.Counts(), alpha);
  }
  if (kind == "balanced") {
    return GroupBounds::Balanced(k, grouping.num_groups, alpha);
  }
  if (kind == "explicit") {
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> lower,
                             flags.GetIntList("lower"));
    FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> upper,
                             flags.GetIntList("upper"));
    if (static_cast<int>(lower.size()) != grouping.num_groups ||
        static_cast<int>(upper.size()) != grouping.num_groups) {
      return Status::InvalidArgument(StrFormat(
          "--lower/--upper must list %d values", grouping.num_groups));
    }
    return GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  }
  return Status::InvalidArgument(
      StrFormat("unknown --bounds '%s'", kind.c_str()));
}

/// Copies the first two numeric attributes (IntCov is exact-2D only).
Dataset ProjectTo2D(const Dataset& data) {
  Dataset proj(std::vector<std::string>{data.attr_names()[0],
                                        data.attr_names()[1]});
  proj.Reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    proj.AddPoint({data.at(i, 0), data.at(i, 1)});
  }
  return proj;
}

struct RunOutput {
  Solution solution;
  std::string note;  ///< e.g. the IntCov projection caveat.
};

StatusOr<RunOutput> Dispatch(const std::string& algo, const cli::Flags& flags,
                             const Dataset& data, const Grouping& grouping,
                             const GroupBounds& bounds,
                             const std::vector<int>& skyline) {
  RunOutput out;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (algo == "intcov") {
    IntCovOptions opts;
    if (data.dim() == 2) {
      FAIRHMS_ASSIGN_OR_RETURN(out.solution,
                               IntCov(data, grouping, bounds, opts));
      return out;
    }
    if (data.dim() < 2) {
      return Status::InvalidArgument(
          "intcov needs at least 2 numeric attributes");
    }
    const Dataset proj = ProjectTo2D(data);
    FAIRHMS_ASSIGN_OR_RETURN(out.solution,
                             IntCov(proj, grouping, bounds, opts));
    out.note = StrFormat(
        "intcov is exact-2D; selected on the (%s, %s) projection, evaluated "
        "in full %dD",
        data.attr_names()[0].c_str(), data.attr_names()[1].c_str(),
        data.dim());
    return out;
  }
  if (algo == "bigreedy" || algo == "bigreedy+") {
    BiGreedyOptions base;
    base.net_size = static_cast<size_t>(flags.GetInt("net_size", 0));
    base.eps = flags.GetDouble("eps", 0.02);
    base.seed = seed;
    if (algo == "bigreedy") {
      FAIRHMS_ASSIGN_OR_RETURN(out.solution,
                               BiGreedy(data, grouping, bounds, base));
      return out;
    }
    BiGreedyPlusOptions opts;
    opts.base = base;
    opts.max_net_size = static_cast<size_t>(flags.GetInt("max_net_size", 0));
    opts.lambda = flags.GetDouble("lambda", 0.04);
    FAIRHMS_ASSIGN_OR_RETURN(out.solution,
                             BiGreedyPlus(data, grouping, bounds, opts));
    return out;
  }
  if (algo == "fair_greedy") {
    FAIRHMS_ASSIGN_OR_RETURN(out.solution, FairGreedy(data, grouping, bounds));
    return out;
  }

  // Fairness-unaware baselines, either G-adapted (fair by construction) or
  // run unconstrained on the global skyline (violations reported).
  const BaseSolver solvers[] = {
      [](const Dataset& d, const std::vector<int>& rows, int k) {
        return RdpGreedy(d, rows, k);
      },
      [](const Dataset& d, const std::vector<int>& rows, int k) {
        return Dmm(d, rows, k);
      },
      [seed](const Dataset& d, const std::vector<int>& rows, int k) {
        SphereOptions opts;
        opts.seed = seed;
        return SphereAlgo(d, rows, k, opts);
      },
      [seed](const Dataset& d, const std::vector<int>& rows, int k) {
        HittingSetOptions opts;
        opts.seed = seed;
        return HittingSet(d, rows, k, opts);
      },
  };
  const std::string adapted[] = {"g_greedy", "g_dmm", "g_sphere", "g_hs"};
  const std::string display[] = {"Greedy", "DMM", "Sphere", "HS"};
  const std::string plain[] = {"rdp_greedy", "dmm", "sphere", "hs"};
  for (int i = 0; i < 4; ++i) {
    if (algo == adapted[i]) {
      FAIRHMS_ASSIGN_OR_RETURN(
          out.solution,
          GroupAdapt(solvers[i], display[i], data, grouping, bounds));
      return out;
    }
    if (algo == plain[i]) {
      FAIRHMS_ASSIGN_OR_RETURN(out.solution,
                               solvers[i](data, skyline, bounds.k));
      out.note = "fairness-unaware baseline; bounds only used for the "
                 "violation report";
      return out;
    }
  }
  return Status::InvalidArgument(StrFormat(
      "unknown --algo '%s' (intcov, bigreedy, bigreedy+, fair_greedy, "
      "g_greedy, g_dmm, g_sphere, g_hs, rdp_greedy, dmm, sphere, hs)",
      algo.c_str()));
}

int Run(int argc, char** argv) {
  const cli::Flags flags(argc, argv);
  if (flags.Has("help") || argc <= 1) {
    std::fputs(kUsage, stdout);
    return argc <= 1 ? 1 : 0;
  }

  Stopwatch total;
  const std::string algo = flags.GetString("algo", "");
  if (algo.empty()) {
    return Fail(Status::InvalidArgument("--algo is required (--help)"));
  }
  const int k = static_cast<int>(flags.GetInt("k", 10));
  if (k < 1) return Fail(Status::InvalidArgument("--k must be >= 1"));
  // --seed and --threads apply to every dataset source and algorithm;
  // validate them up front so no path accepts garbage silently.
  const int64_t seed_raw = flags.GetInt("seed", 42);
  if (seed_raw < 0) {
    return Fail(Status::InvalidArgument("--seed must be >= 0"));
  }
  const int64_t threads_raw = flags.GetInt("threads", 0);
  if (threads_raw < 0 || threads_raw > 4096) {
    return Fail(Status::InvalidArgument(
        "--threads must be in [0, 4096] (0 = all hardware threads)"));
  }
  SetDefaultThreads(static_cast<int>(threads_raw));
  const int threads = DefaultThreads();
  // Reject a bad --format up front: a typo must not discard a long solve.
  const std::string format = flags.GetString("format", "plain");
  if (format != "plain" && format != "csv" && format != "json") {
    return Fail(Status::InvalidArgument(StrFormat(
        "unknown --format '%s' (want plain, csv or json)", format.c_str())));
  }

  Rng rng(static_cast<uint64_t>(seed_raw));
  auto raw = LoadDataset(flags, &rng);
  if (!raw.ok()) return Fail(raw.status());

  const std::string norm = flags.GetString("normalize", "minmax");
  Dataset data(1);
  if (norm == "minmax") {
    data = raw->NormalizedMinMax();
  } else if (norm == "max") {
    data = raw->ScaledByMax();
  } else if (norm == "none") {
    data = std::move(*raw);
  } else {
    return Fail(Status::InvalidArgument(
        StrFormat("unknown --normalize '%s'", norm.c_str())));
  }

  auto grouping = MakeGrouping(flags, data);
  if (!grouping.ok()) return Fail(grouping.status());

  auto bounds = MakeBounds(flags, k, *grouping);
  if (!bounds.ok()) return Fail(bounds.status());
  if (Status st = bounds->Validate(grouping->Counts()); !st.ok()) {
    return Fail(st);
  }
  // Refuse to solve with defaults substituted for malformed numeric flags.
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);

  const auto skyline = ComputeSkyline(data);
  auto run = Dispatch(algo, flags, data, *grouping, *bounds, skyline);
  if (!run.ok()) return Fail(run.status());
  // Algorithm-specific numeric flags (--eps, --net_size, ...) are parsed
  // inside Dispatch; check those too before reporting success.
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);
  const Solution& sol = run->solution;

  // Reference evaluation against the global skyline (exact 2D / exact LP /
  // high-resolution net, picked automatically).
  const double mhr = EvaluateMhr(data, skyline, sol.rows);
  const auto counts = SolutionGroupCounts(sol.rows, *grouping);
  const int violations = CountViolations(sol.rows, *grouping, *bounds);

  cli::Report report;
  report.AddString("algo", sol.algorithm.empty() ? algo : sol.algorithm);
  report.AddString("dataset", flags.Has("csv")
                                  ? flags.GetString("csv", "")
                                  : flags.GetString("synthetic", ""));
  report.AddInt("n", static_cast<int64_t>(data.size()));
  report.AddInt("dim", data.dim());
  report.AddInt("k", k);
  report.AddInt("groups", grouping->num_groups);
  report.AddInt("seed", seed_raw);
  report.AddInt("threads", threads);
  report.AddInt("solution_size", static_cast<int64_t>(sol.rows.size()));
  report.AddDouble("happiness_ratio", mhr);
  report.AddDouble("algo_mhr_estimate", sol.mhr);
  report.AddInt("violations", violations);
  for (int c = 0; c < grouping->num_groups; ++c) {
    const auto& name = grouping->names[static_cast<size_t>(c)];
    report.AddString(
        StrFormat("group_%s", name.c_str()),
        StrFormat("%d of bounds [%d, %d]", counts[static_cast<size_t>(c)],
                  bounds->lower[static_cast<size_t>(c)],
                  bounds->upper[static_cast<size_t>(c)]));
  }
  std::vector<std::string> rows;
  for (int r : sol.rows) rows.push_back(StrFormat("%d", r));
  report.AddString("rows", Join(rows, " "));
  if (!run->note.empty()) report.AddString("note", run->note);
  report.AddDouble("solve_ms", sol.elapsed_ms);
  report.AddDouble("total_ms", total.ElapsedMillis());

  auto rendered = report.Render(format);
  if (!rendered.ok()) return Fail(rendered.status());
  // Flags never looked up on the taken code path: a documented flag is
  // merely unused with the chosen options, anything else is a likely typo.
  static const std::set<std::string> kDocumented = {
      "csv",    "numeric",   "categorical", "synthetic", "n",
      "dim",    "seed",      "normalize",   "groups",    "group_by",
      "k",      "bounds",    "alpha",       "lower",     "upper",
      "algo",   "net_size",  "eps",         "lambda",    "max_net_size",
      "format", "threads",   "help"};
  for (const auto& key : flags.Unknown()) {
    if (kDocumented.count(key)) {
      std::fprintf(stderr,
                   "fairhms_cli: warning: --%s has no effect with the "
                   "chosen options; ignored\n",
                   key.c_str());
    } else {
      std::fprintf(stderr, "fairhms_cli: warning: unknown flag --%s ignored\n",
                   key.c_str());
    }
  }
  std::fputs(rendered->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
