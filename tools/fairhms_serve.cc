// fairhms_serve: a long-lived daemon serving the FairHMS wire protocol
// (docs/protocol.md) to concurrent clients over a unix-domain socket, a
// TCP socket, or both. It is a thin transport: every request line goes
// through the same ProtocolService that backs `fairhms_cli --queries`, so
// the two modes cannot drift. The daemon defaults to the versioned
// envelope (protocol_version 1, structured errors, per-response "seq").
//
//   fairhms_serve --synthetic=independent --n=10000 --groups=3 --port=0
//   fairhms_serve --snapshot_load=warm.snap --unix=/tmp/fairhms.sock
//       --workers=8 --rate_limit=200 --queue_deadline_ms=5000
//
// Lifecycle: SIGTERM / SIGINT drain gracefully (stop accepting, serve
// everything admitted, then exit 0 with a cache report on stderr); SIGHUP
// snapshot-reloads the catalog through --reload_dir (save every dataset,
// then drop + reload each from its fresh snapshot, quiescing in-flight
// requests via the service's catalog lock).
//
// The binary doubles as a line-oriented client (`--client`) so tests and
// CI can talk to the daemon without external tooling: stdin JSONL is
// streamed to the server, one response line is read back per request line
// and printed to stdout; exit 3 when any response carries "ok": false.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/catalog.h"
#include "api/server.h"
#include "api/service.h"
#include "cli_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace fairhms {
namespace {

constexpr char kUsage[] = R"(fairhms_serve: concurrent FairHMS daemon.

Listeners (at least one):
  --unix=PATH              unix-domain socket (an existing file is replaced)
  --port=N                 TCP port (0 = ephemeral; the bound port is
                           printed on the ready line)
  --host=ADDR              TCP bind address (default 127.0.0.1)

Dataset bootstrap (registers as "default"; same flags as fairhms_cli):
  --csv=PATH --numeric=a,b [--categorical=x,y]   headered CSV file
  --synthetic=NAME [--n=N] [--dim=D]             generator family
  --snapshot_load=PATH                           warm-start from a snapshot
  --normalize=MODE         minmax (default) | max | none
  --groups=C | --group_by=col[,col2]             grouping
  --seed=S --threads=N     defaults for queries without their own
  --global_cache_budget_mb=N   process-wide cache budget (default 1024)
  --simd=auto|off          kernel dispatch: auto (default; best level the
                           CPU supports) or off (forced scalar). Overrides
                           the FAIRHMS_SIMD environment variable; results
                           are bit-identical either way

Serving:
  --workers=N              worker threads (default 4)
  --max_queue=N            admission queue bound (default 1024); beyond it
                           lines are refused with Unavailable
  --rate_limit=QPS         per-connection sustained requests/second
                           (token bucket; 0 = unlimited)
  --rate_burst=N           token-bucket burst (default: same as the rate)
  --queue_deadline_ms=MS   max queue wait before a line is refused with
                           DeadlineExceeded (0 = no deadline)
  --max_line_bytes=N       longest accepted request line (default 1 MiB)
  --protocol=V             response envelope version: 1 (default; adds
                           protocol_version, structured errors and "seq")
                           or 0 (the legacy fairhms_cli batch envelope)
  --reload_dir=DIR         SIGHUP snapshot-reload directory (each dataset
                           is saved to DIR/<name>.snap, then reloaded)

Signals:
  SIGTERM / SIGINT         graceful drain, cache report on stderr, exit 0
  SIGHUP                   snapshot-reload the catalog via --reload_dir

Client mode (line-oriented; for tests, CI and scripting):
  --client --unix=PATH | --client --port=N [--host=ADDR]
                           stream stdin JSONL to the server, print one
                           response line per request line; exit 3 when any
                           response carries "ok": false
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "fairhms_serve: %s\n", status.ToString().c_str());
  return 1;
}

/// Warns on flags never looked up on the taken code path (typo guard,
/// mirroring fairhms_cli); every documented serve flag is listed.
void WarnUnusedFlags(const cli::Flags& flags) {
  static const std::set<std::string> documented = {
      "unix", "port", "host", "csv", "numeric", "categorical", "synthetic",
      "n", "dim", "snapshot_load", "normalize", "groups", "group_by", "seed",
      "threads", "global_cache_budget_mb", "cache_budget_mb", "simd",
      "workers",
      "max_queue", "rate_limit", "rate_burst", "queue_deadline_ms",
      "max_line_bytes", "protocol", "reload_dir", "client", "help"};
  for (const auto& key : flags.Unknown()) {
    if (documented.count(key)) {
      std::fprintf(stderr,
                   "fairhms_serve: warning: --%s has no effect with the "
                   "chosen options; ignored\n",
                   key.c_str());
    } else {
      std::fprintf(stderr,
                   "fairhms_serve: warning: unknown flag --%s ignored\n",
                   key.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Client mode.

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Streams stdin request lines to the server and prints one response line
/// per request. The write side stays open until every response arrived:
/// the server cancels queued work of disconnected clients, so a premature
/// shutdown would drop in-flight requests.
int RunClient(const cli::Flags& flags) {
  int fd = -1;
  if (flags.Has("unix")) {
    fd = ConnectUnix(flags.GetString("unix", ""));
  } else if (flags.Has("port")) {
    fd = ConnectTcp(flags.GetString("host", "127.0.0.1"),
                    static_cast<int>(flags.GetInt("port", 0)));
  } else {
    return Fail(Status::InvalidArgument(
        "--client needs --unix=PATH or --port=N to connect to"));
  }
  if (fd < 0) {
    return Fail(Status::Unavailable(
        StrFormat("cannot connect (%s)", std::strerror(errno))));
  }

  // Writer thread: forward stdin lines as they arrive, so responses can be
  // consumed concurrently (a bounded server queue plus a full socket
  // buffer must not deadlock a large pipelined batch).
  std::atomic<uint64_t> sent{0};
  std::atomic<bool> input_done{false};
  std::atomic<bool> send_failed{false};
  std::thread writer([&] {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (Trim(line).empty()) continue;
      line.push_back('\n');
      if (!SendAll(fd, line)) {
        send_failed.store(true);
        break;
      }
      sent.fetch_add(1);
    }
    input_done.store(true);
  });

  // Reader: one response line per request line, in server completion
  // order. Done when the input is exhausted and every sent line has been
  // answered. The recv is guarded by a short poll so the exit condition is
  // re-checked periodically: the final response can arrive and be consumed
  // *before* the writer thread gets scheduled to store input_done, and a
  // bare blocking recv taken in that window would sleep forever — the
  // server never closes the connection from its side, and the client must
  // not half-close first (the server reads EOF as "client gone" and
  // cancels still-queued work).
  uint64_t received = 0;
  bool any_failed = false;
  bool disconnected = false;
  std::string buffer;
  char chunk[65536];
  while (!(input_done.load() && received >= sent.load())) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0 && errno != EINTR) {
      disconnected = true;
      break;
    }
    if (ready <= 0) continue;  // Timeout or EINTR: re-check the condition.
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      disconnected = true;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string response = buffer.substr(start, nl - start);
      start = nl + 1;
      ++received;
      if (response.find("\"ok\": false") != std::string::npos) {
        any_failed = true;
      }
      std::fwrite(response.data(), 1, response.size(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
    buffer.erase(0, start);
  }
  writer.join();
  ::close(fd);
  if (send_failed.load() || (disconnected && received < sent.load())) {
    std::fprintf(stderr,
                 "fairhms_serve: connection lost after %llu of %llu "
                 "responses\n",
                 static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(sent.load()));
    return 1;
  }
  return any_failed ? 3 : 0;
}

// ---------------------------------------------------------------------------
// Daemon mode.

int RunDaemon(const cli::Flags& flags) {
  const int64_t seed_raw = flags.GetInt("seed", 42);
  if (seed_raw < 0) {
    return Fail(Status::InvalidArgument("--seed must be >= 0"));
  }
  const int64_t threads_raw = flags.GetInt("threads", 0);
  if (threads_raw < 0 || threads_raw > 4096) {
    return Fail(Status::InvalidArgument(
        "--threads must be in [0, 4096] (0 = all hardware threads)"));
  }
  SetDefaultThreads(static_cast<int>(threads_raw));
  if (Status st = cli::ApplySimdFlags(flags); !st.ok()) return Fail(st);

  auto budget_bytes = cli::ResolveCacheBudgetBytes(flags, "fairhms_serve");
  if (!budget_bytes.ok()) return Fail(budget_bytes.status());
  DatasetCatalog catalog(DatasetCatalog::Options{*budget_bytes});

  // Bootstrap the "default" dataset exactly like the batch CLI: warm from
  // a snapshot, or cold from --csv/--synthetic.
  if (flags.Has("snapshot_load")) {
    if (flags.Has("csv") || flags.Has("synthetic")) {
      return Fail(Status::InvalidArgument(
          "--snapshot_load replaces --csv/--synthetic; pass exactly one "
          "dataset source"));
    }
    if (Status st =
            catalog.Load("default", flags.GetString("snapshot_load", ""));
        !st.ok()) {
      return Fail(st);
    }
  } else {
    Rng rng(static_cast<uint64_t>(seed_raw));
    auto raw = cli::LoadDatasetFromFlags(flags, &rng);
    if (!raw.ok()) return Fail(raw.status());
    auto data = cli::NormalizeDatasetFromFlags(flags, std::move(*raw));
    if (!data.ok()) return Fail(data.status());
    auto grouping = cli::MakeGroupingFromFlags(flags, *data);
    if (!grouping.ok()) return Fail(grouping.status());
    if (Status st = catalog.Register("default", std::move(*data),
                                     std::move(*grouping),
                                     flags.GetList("group_by"));
        !st.ok()) {
      return Fail(st);
    }
  }

  const int64_t protocol = flags.GetInt("protocol", 1);
  if (protocol != 0 && protocol != 1) {
    return Fail(Status::InvalidArgument(
        StrFormat("--protocol must be 0 or 1, got %lld",
                  static_cast<long long>(protocol))));
  }
  ServiceOptions service_opts;
  service_opts.default_seed = static_cast<uint64_t>(seed_raw);
  service_opts.default_threads = static_cast<int>(threads_raw);
  service_opts.envelope.version = static_cast<int>(protocol);
  service_opts.envelope.emit_seq = protocol >= 1;
  ProtocolService service(&catalog, service_opts);

  ServerOptions server_opts;
  server_opts.unix_path = flags.GetString("unix", "");
  server_opts.tcp_port =
      flags.Has("port") ? static_cast<int>(flags.GetInt("port", 0)) : -1;
  server_opts.tcp_host = flags.GetString("host", "127.0.0.1");
  server_opts.workers = static_cast<int>(flags.GetInt("workers", 4));
  if (server_opts.workers < 1 || server_opts.workers > 1024) {
    return Fail(Status::InvalidArgument("--workers must be in [1, 1024]"));
  }
  const int64_t max_queue = flags.GetInt("max_queue", 1024);
  if (max_queue < 1) {
    return Fail(Status::InvalidArgument("--max_queue must be >= 1"));
  }
  server_opts.max_queue = static_cast<size_t>(max_queue);
  server_opts.rate_limit_per_sec = flags.GetDouble("rate_limit", 0.0);
  server_opts.rate_limit_burst = flags.GetDouble("rate_burst", 0.0);
  server_opts.queue_deadline_ms = flags.GetDouble("queue_deadline_ms", 0.0);
  if (server_opts.rate_limit_per_sec < 0.0 ||
      server_opts.rate_limit_burst < 0.0 ||
      server_opts.queue_deadline_ms < 0.0) {
    return Fail(Status::InvalidArgument(
        "--rate_limit/--rate_burst/--queue_deadline_ms must be >= 0"));
  }
  const int64_t max_line = flags.GetInt("max_line_bytes", 1 << 20);
  if (max_line < 64) {
    return Fail(Status::InvalidArgument("--max_line_bytes must be >= 64"));
  }
  server_opts.max_line_bytes = static_cast<size_t>(max_line);

  const std::string reload_dir = flags.GetString("reload_dir", "");
  if (Status st = flags.ParseError(); !st.ok()) return Fail(st);
  WarnUnusedFlags(flags);

  // Block the lifecycle signals in every thread the server is about to
  // spawn (they inherit this mask); the main thread collects them via
  // sigwait below — no async-signal-safety gymnastics in handlers.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // Client hangups surface as send() errors.

  Server server(&service, server_opts);
  if (Status st = server.Start(); !st.ok()) return Fail(st);

  // The ready banner is the machine-readable contract for scripts: one
  // line per listener, then "ready". An ephemeral --port=0 resolves here.
  if (!server_opts.unix_path.empty()) {
    std::printf("fairhms_serve: listening on unix:%s\n",
                server_opts.unix_path.c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("fairhms_serve: listening on tcp:%s:%d\n",
                server_opts.tcp_host.c_str(), server.tcp_port());
  }
  std::printf("fairhms_serve: ready (workers=%d, protocol=%d)\n",
              server_opts.workers, static_cast<int>(protocol));
  std::fflush(stdout);

  for (;;) {
    int sig = 0;
    if (sigwait(&sigs, &sig) != 0) continue;
    if (sig == SIGHUP) {
      if (reload_dir.empty()) {
        std::fprintf(stderr,
                     "fairhms_serve: SIGHUP ignored (no --reload_dir)\n");
        continue;
      }
      if (Status st = service.SnapshotReload(reload_dir); st.ok()) {
        std::fprintf(stderr,
                     "fairhms_serve: catalog snapshot-reloaded from %s\n",
                     reload_dir.c_str());
      } else {
        std::fprintf(stderr, "fairhms_serve: snapshot reload failed: %s\n",
                     st.ToString().c_str());
      }
      continue;
    }
    break;  // SIGTERM / SIGINT: drain below.
  }

  server.Drain();

  // Final report, mirroring the batch CLI's: totals, per-session cache
  // detail, the arbiter's global ledger, plus the server's own counters.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes = 0;
  for (const std::string& name : catalog.List()) {
    auto s = catalog.Session(name);
    if (!s.ok()) continue;
    const CacheStats stats = (*s)->cache_stats();
    hits += stats.TotalHits();
    misses += stats.TotalMisses();
    bytes += stats.TotalBytes();
  }
  std::fprintf(stderr,
               "fairhms_serve: served %llu lines (%llu updates, %llu "
               "failed); connections %llu, rejected %llu, cancelled %llu; "
               "cache: %llu hits, %llu misses, %.1f KiB resident, %llu "
               "budget evictions\n",
               static_cast<unsigned long long>(service.served()),
               static_cast<unsigned long long>(service.updates()),
               static_cast<unsigned long long>(service.failed()),
               static_cast<unsigned long long>(server.connections_accepted()),
               static_cast<unsigned long long>(server.rejected()),
               static_cast<unsigned long long>(server.cancelled()),
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses),
               static_cast<double>(bytes) / 1024.0,
               static_cast<unsigned long long>(
                   catalog.arbiter()->evictions()));
  for (const std::string& name : catalog.List()) {
    auto s = catalog.Session(name);
    if (!s.ok()) continue;
    std::fprintf(stderr, "fairhms_serve: cache detail [%s]: %s\n",
                 name.c_str(), (*s)->cache_stats().ToString().c_str());
  }
  std::fprintf(stderr, "fairhms_serve: %s\n",
               catalog.arbiter()->ToString().c_str());
  return 0;
}

int Run(int argc, char** argv) {
  const cli::Flags flags(argc, argv);
  if (flags.Has("help") || argc <= 1) {
    std::fputs(kUsage, stdout);
    return argc <= 1 ? 1 : 0;
  }
  if (flags.Has("client")) return RunClient(flags);
  if (!flags.Has("unix") && !flags.Has("port")) {
    return Fail(Status::InvalidArgument(
        "pass --unix=PATH and/or --port=N (0 = ephemeral) to listen on"));
  }
  return RunDaemon(flags);
}

}  // namespace
}  // namespace fairhms

int main(int argc, char** argv) { return fairhms::Run(argc, argv); }
