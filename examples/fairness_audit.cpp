// Fairness audit: run EVERY algorithm in the registry on a census-like
// dataset (Adult replica, gender x race groups) through the unified
// Solver::Solve facade, and tabulate fairness-awareness, mhr, violations
// and wall-clock side by side — a miniature of the paper's Fig. 3 + Fig. 5
// analysis, usable as an audit template on your own data. Because the loop
// iterates AlgorithmRegistry::All(), a newly registered algorithm shows up
// here with zero code changes.
//
//   $ ./build/examples/fairness_audit

#include <cstdio>

#include "api/solver.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "skyline/skyline.h"

using namespace fairhms;

int main() {
  Rng rng(11);
  const Dataset data = MakeAdultSim(&rng, 32561).ScaledByMax();
  auto groups_or = GroupByCategoricalProduct(data, {"gender", "race"});
  if (!groups_or.ok()) {
    std::fprintf(stderr, "%s\n", groups_or.status().ToString().c_str());
    return 1;
  }
  const Grouping& groups = *groups_or;
  const auto skyline = ComputeSkyline(data);
  const int k = 16;

  std::printf("dataset: Adult replica, n=%zu, d=%d, %d gender x race groups\n",
              data.size(), data.dim(), groups.num_groups);
  std::printf("constraint: proportional representation, alpha=0.1, k=%d\n\n",
              k);
  std::printf("%-12s %-8s %-10s %-12s %s\n", "algorithm", "fair?", "mhr",
              "violations", "time(ms)");

  SolverRequest request;
  request.data = &data;
  request.grouping = &groups;
  request.bounds = GroupBounds::Proportional(k, groups.Counts(), 0.1);

  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    request.algorithm = info->name;
    const char* fair = info->caps.fairness_aware ? "yes" : "no";
    auto result = Solver::Solve(request);
    if (!result.ok()) {
      // Expected for some combos (e.g. g_sphere when a quota < d) — the
      // paper's plots have the same missing bars.
      std::printf("%-12s %-8s failed: %s\n", info->name.c_str(), fair,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %-8s %-10.4f %-12d %.1f\n", info->name.c_str(), fair,
                EvaluateMhr(data, skyline, result->solution.rows),
                result->violations, result->solve_ms);
  }

  std::printf(
      "\nReading: every unaware algorithm over-represents the gain-heavy\n"
      "groups (violations > 0); the fair algorithms hit 0 violations at a\n"
      "small cost in minimum happiness ratio.\n");
  return 0;
}
