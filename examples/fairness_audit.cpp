// Fairness audit: run the classic (fairness-unaware) RMS/HMS algorithms on
// a census-like dataset (Adult replica, gender x race groups), count their
// fairness violations, then show the fair algorithms' results side by side
// — a miniature of the paper's Fig. 3 + Fig. 5 analysis, usable as an audit
// template on your own data.
//
//   $ ./build/examples/fairness_audit

#include <cstdio>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

using namespace fairhms;

int main() {
  Rng rng(11);
  const Dataset data = MakeAdultSim(&rng, 32561).ScaledByMax();
  auto groups_or = GroupByCategoricalProduct(data, {"gender", "race"});
  if (!groups_or.ok()) {
    std::fprintf(stderr, "%s\n", groups_or.status().ToString().c_str());
    return 1;
  }
  const Grouping& groups = *groups_or;
  const auto skyline = ComputeSkyline(data);
  const int k = 16;
  const GroupBounds bounds =
      GroupBounds::Proportional(k, groups.Counts(), 0.1);

  std::printf("dataset: Adult replica, n=%zu, d=%d, %d gender x race groups\n",
              data.size(), data.dim(), groups.num_groups);
  std::printf("constraint: proportional representation, alpha=0.1, k=%d\n\n",
              k);
  std::printf("%-12s %-8s %-10s %-12s %s\n", "algorithm", "fair?", "mhr",
              "violations", "time(ms)");

  auto report = [&](const char* name, const StatusOr<Solution>& sol,
                    bool is_fair_algo) {
    if (!sol.ok()) {
      std::printf("%-12s %-8s failed: %s\n", name, is_fair_algo ? "yes" : "no",
                  sol.status().ToString().c_str());
      return;
    }
    std::printf("%-12s %-8s %-10.4f %-12d %.1f\n", name,
                is_fair_algo ? "yes" : "no",
                EvaluateMhr(data, skyline, sol->rows),
                CountViolations(sol->rows, groups, bounds),
                sol->elapsed_ms);
  };

  std::printf("--- fairness-unaware (original implementations) ---\n");
  report("Greedy", RdpGreedy(data, skyline, k), false);
  report("DMM", Dmm(data, skyline, k), false);
  report("HS", HittingSet(data, skyline, k), false);
  report("Sphere", SphereAlgo(data, skyline, k), false);

  std::printf("--- fair algorithms (this library) ---\n");
  report("BiGreedy", BiGreedy(data, groups, bounds), true);
  report("BiGreedy+", BiGreedyPlus(data, groups, bounds), true);
  report("F-Greedy", FairGreedy(data, groups, bounds), true);

  std::printf(
      "\nReading: every unaware algorithm over-represents the gain-heavy\n"
      "groups (violations > 0); the fair algorithms hit 0 violations at a\n"
      "small cost in minimum happiness ratio.\n");
  return 0;
}
