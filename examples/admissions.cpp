// Admissions scenario: the paper's motivating use case on a law-school
// admission pool (LSAC replica). Shows how an unconstrained happiness
// maximizing set under-represents female applicants, and how FairHMS fixes
// it at a tiny cost in happiness — first unconstrained, then under a
// proportional gender constraint, both solved exactly by IntCov through the
// unified Solver::Solve facade (the C = 1 single-group case IS vanilla
// HMS).
//
//   $ ./build/examples/admissions
//
// To run on the real LSAC file instead of the replica, load it with:
//   ReadCsv("lawschs.csv", {.numeric_columns = {"lsat", "gpa"},
//                           .categorical_columns = {"gender", "race"}});

#include <cstdio>

#include "api/solver.h"
#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"

using namespace fairhms;

namespace {

void Report(const char* label, const Dataset& data, const Grouping& gender,
            const SolverResult& result, const std::vector<int>& skyline) {
  int female = 0;
  for (int r : result.solution.rows) {
    if (gender.group_of[static_cast<size_t>(r)] == 0) ++female;
  }
  std::printf("%-28s k=%zu  mhr=%.4f  female=%d  male=%zu  (%.0f ms)\n",
              label, result.solution.rows.size(),
              MhrExact2D(data, skyline, result.solution.rows), female,
              result.solution.rows.size() - static_cast<size_t>(female),
              result.solve_ms);
}

}  // namespace

int main() {
  Rng rng(2022);
  const Dataset data = MakeLawschsSim(&rng, 65494).ScaledByMax();
  auto gender_or = GroupByCategorical(data, "gender");
  if (!gender_or.ok()) {
    std::fprintf(stderr, "%s\n", gender_or.status().ToString().c_str());
    return 1;
  }
  const Grouping& gender = *gender_or;
  const auto skyline = ComputeSkyline(data);
  const auto counts = gender.Counts();
  std::printf("admission pool: %zu applicants (%s=%d, %s=%d), skyline %zu\n\n",
              data.size(), gender.names[0].c_str(), counts[0],
              gender.names[1].c_str(), counts[1], skyline.size());

  const int k = 4;

  // Unconstrained HMS: exact optimum via IntCov with a single group.
  const Grouping single = SingleGroup(data.size());
  SolverRequest unconstrained_req;
  unconstrained_req.data = &data;
  unconstrained_req.grouping = &single;
  unconstrained_req.bounds = GroupBounds::Explicit(k, {0}, {k}).value();
  unconstrained_req.algorithm = "intcov";
  auto unconstrained = Solver::Solve(unconstrained_req);
  if (!unconstrained.ok()) {
    std::fprintf(stderr, "%s\n", unconstrained.status().ToString().c_str());
    return 1;
  }
  Report("unconstrained HMS:", data, gender, *unconstrained, skyline);

  // FairHMS under proportional gender representation (alpha = 0.1).
  SolverRequest fair_req;
  fair_req.data = &data;
  fair_req.grouping = &gender;
  fair_req.bounds = GroupBounds::Proportional(k, counts, 0.1);
  fair_req.algorithm = "intcov";
  std::printf("\nfairness constraint: %s in [%d, %d], %s in [%d, %d]\n",
              gender.names[0].c_str(), fair_req.bounds.lower[0],
              fair_req.bounds.upper[0], gender.names[1].c_str(),
              fair_req.bounds.lower[1], fair_req.bounds.upper[1]);
  auto fair = Solver::Solve(fair_req);
  if (!fair.ok()) {
    std::fprintf(stderr, "%s\n", fair.status().ToString().c_str());
    return 1;
  }
  Report("FairHMS (IntCov, exact):", data, gender, *fair, skyline);

  std::printf("\nprice of fairness: %.4f -> %.4f (drop %.4f)\n",
              unconstrained->solution.mhr, fair->solution.mhr,
              unconstrained->solution.mhr - fair->solution.mhr);
  std::printf("violations before/after: %d / %d\n",
              CountViolations(unconstrained->solution.rows, gender,
                              fair_req.bounds),
              fair->violations);
  return 0;
}
