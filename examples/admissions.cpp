// Admissions scenario: the paper's motivating use case on a law-school
// admission pool (LSAC replica). Shows how an unconstrained happiness
// maximizing set under-represents female applicants, and how FairHMS fixes
// it at a tiny cost in happiness — first on the 8-tuple Table 1 example,
// then at dataset scale with the exact IntCov algorithm.
//
//   $ ./build/examples/admissions
//
// To run on the real LSAC file instead of the replica, load it with:
//   ReadCsv("lawschs.csv", {.numeric_columns = {"lsat", "gpa"},
//                           .categorical_columns = {"gender", "race"}});

#include <cstdio>

#include "algo/intcov.h"
#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

using namespace fairhms;

namespace {

void Report(const char* label, const Dataset& data, const Grouping& gender,
            const Solution& sol, const std::vector<int>& skyline) {
  int female = 0;
  for (int r : sol.rows) {
    if (gender.group_of[static_cast<size_t>(r)] == 0) ++female;
  }
  std::printf("%-28s k=%zu  mhr=%.4f  female=%d  male=%zu  (%.0f ms)\n",
              label, sol.rows.size(), MhrExact2D(data, skyline, sol.rows),
              female, sol.rows.size() - static_cast<size_t>(female),
              sol.elapsed_ms);
}

}  // namespace

int main() {
  Rng rng(2022);
  const Dataset data = MakeLawschsSim(&rng, 65494).ScaledByMax();
  auto gender_or = GroupByCategorical(data, "gender");
  if (!gender_or.ok()) {
    std::fprintf(stderr, "%s\n", gender_or.status().ToString().c_str());
    return 1;
  }
  const Grouping& gender = *gender_or;
  const auto skyline = ComputeSkyline(data);
  const auto counts = gender.Counts();
  std::printf("admission pool: %zu applicants (%s=%d, %s=%d), skyline %zu\n\n",
              data.size(), gender.names[0].c_str(), counts[0],
              gender.names[1].c_str(), counts[1], skyline.size());

  const int k = 4;

  // Unconstrained HMS: exact optimum via IntCov with a single group.
  const Grouping single = SingleGroup(data.size());
  auto unconstrained =
      IntCov(data, single, GroupBounds::Explicit(k, {0}, {k}).value());
  if (!unconstrained.ok()) {
    std::fprintf(stderr, "%s\n", unconstrained.status().ToString().c_str());
    return 1;
  }
  Report("unconstrained HMS:", data, gender, *unconstrained, skyline);

  // FairHMS under proportional gender representation (alpha = 0.1).
  const GroupBounds bounds = GroupBounds::Proportional(k, counts, 0.1);
  std::printf("\nfairness constraint: %s in [%d, %d], %s in [%d, %d]\n",
              gender.names[0].c_str(), bounds.lower[0], bounds.upper[0],
              gender.names[1].c_str(), bounds.lower[1], bounds.upper[1]);
  auto fair = IntCov(data, gender, bounds);
  if (!fair.ok()) {
    std::fprintf(stderr, "%s\n", fair.status().ToString().c_str());
    return 1;
  }
  Report("FairHMS (IntCov, exact):", data, gender, *fair, skyline);

  std::printf("\nprice of fairness: %.4f -> %.4f (drop %.4f)\n",
              unconstrained->mhr, fair->mhr,
              unconstrained->mhr - fair->mhr);
  std::printf("violations before/after: %d / %d\n",
              CountViolations(unconstrained->rows, gender, bounds),
              CountViolations(fair->rows, gender, bounds));
  return 0;
}
