// Quickstart: build a small dataset, declare a fairness constraint, and
// solve FairHMS through the unified Solver::Solve facade — the same entry
// point behind fairhms_cli and the recommended library API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "api/solver.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "skyline/skyline.h"

using namespace fairhms;

int main() {
  // 1. Data: 5000 anti-correlated points in 4D, normalized to [0,1], split
  //    into three sensitive groups by attribute-sum rank (the paper's
  //    synthetic scheme). Swap in data/csv.h ReadCsv for your own table.
  Rng rng(7);
  const Dataset data = GenAntiCorrelated(5000, 4, &rng).ScaledByMax();
  const Grouping groups = GroupBySumRank(data, 3);

  // 2. Request: pick k = 12 tuples, each group's share within 10% of its
  //    population share, solved by BiGreedy. Any name from
  //    AlgorithmRegistry::Names() (fairhms_cli --list_algos) works here —
  //    algorithms are interchangeable behind the facade.
  SolverRequest request;
  request.data = &data;
  request.grouping = &groups;
  request.bounds = GroupBounds::Proportional(12, groups.Counts(), 0.1);
  request.algorithm = "bigreedy";

  // 3. Solve. The result carries the rows, per-group counts versus bounds,
  //    the violation count and timings.
  auto result = Solver::Solve(request);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect: the solution is fair by construction; its minimum happiness
  //    ratio says how well it represents every linear preference.
  const auto skyline = ComputeSkyline(data);
  const double mhr = EvaluateMhr(data, skyline, result->solution.rows);
  std::printf("algorithm: %s\n", result->solution.algorithm.c_str());
  std::printf("selected %zu rows in %.1f ms\n", result->solution.rows.size(),
              result->solve_ms);
  std::printf("minimum happiness ratio: %.4f\n", mhr);
  std::printf("fairness violations:     %d\n", result->violations);
  std::printf("per-group counts:       ");
  for (size_t c = 0; c < result->group_counts.size(); ++c) {
    std::printf(" %s=%d (allowed %d..%d)", groups.names[c].c_str(),
                result->group_counts[c], result->bounds.lower[c],
                result->bounds.upper[c]);
  }
  std::printf("\nrows:");
  for (int r : result->solution.rows) std::printf(" %d", r);
  std::printf("\n");
  return 0;
}
