// Quickstart: build a small dataset, declare a fairness constraint, run
// BiGreedy, and inspect the solution.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "algo/bigreedy.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

using namespace fairhms;

int main() {
  // 1. Data: 5000 anti-correlated points in 4D, normalized to [0,1], split
  //    into three sensitive groups by attribute-sum rank (the paper's
  //    synthetic scheme). Swap in data/csv.h ReadCsv for your own table.
  Rng rng(7);
  const Dataset data = GenAntiCorrelated(5000, 4, &rng).ScaledByMax();
  const Grouping groups = GroupBySumRank(data, 3);

  // 2. Constraint: pick k = 12 tuples, each group's share within 10% of its
  //    population share (proportional representation).
  const int k = 12;
  const GroupBounds bounds =
      GroupBounds::Proportional(k, groups.Counts(), /*alpha=*/0.1);

  // 3. Solve FairHMS.
  auto solution = BiGreedy(data, groups, bounds);
  if (!solution.ok()) {
    std::fprintf(stderr, "BiGreedy failed: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect: the solution is fair by construction; its minimum happiness
  //    ratio says how well it represents every linear preference.
  const auto skyline = ComputeSkyline(data);
  const double mhr = EvaluateMhr(data, skyline, solution->rows);
  std::printf("selected %zu rows in %.1f ms\n", solution->rows.size(),
              solution->elapsed_ms);
  std::printf("minimum happiness ratio: %.4f\n", mhr);
  std::printf("fairness violations:     %d\n",
              CountViolations(solution->rows, groups, bounds));
  std::printf("per-group counts:       ");
  const auto counts = SolutionGroupCounts(solution->rows, groups);
  for (size_t c = 0; c < counts.size(); ++c) {
    std::printf(" %s=%d (allowed %d..%d)", groups.names[c].c_str(), counts[c],
                bounds.lower[c], bounds.upper[c]);
  }
  std::printf("\nrows:");
  for (int r : solution->rows) std::printf(" %d", r);
  std::printf("\n");
  return 0;
}
