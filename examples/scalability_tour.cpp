// Scalability tour: how FairHMS solve time scales with dataset size on
// anti-correlated data — the hardest distribution, where nearly every point
// is on the skyline. Mirrors the paper's Fig. 7(c) at example scale, with
// both BiGreedy variants driven through the Solver::Solve facade (swap the
// request's algorithm string to tour any other engine).
//
// Timing semantics: the reported per-solver milliseconds include each
// solver's own candidate-pool/skyline preprocessing (the facade wires no
// precomputed pool through), identically for both variants — so the
// BiGreedy-vs-BiGreedy+ comparison is apples to apples. Callers needing
// shared preprocessing across many solves should use the algorithm entry
// points' pool/db_rows overrides directly (see algo/bigreedy.h).
//
//   $ ./build/examples/scalability_tour [max_n]

#include <cstdio>
#include <cstdlib>

#include "api/solver.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "skyline/skyline.h"

using namespace fairhms;

int main(int argc, char** argv) {
  const size_t max_n =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  const int d = 6;
  const int k = 20;
  const int c_num = 3;

  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "n", "skyline",
              "BiGreedy ms", "BiGreedy+ ms", "mhr(BG+)");
  for (size_t n = 1000; n <= max_n; n *= 5) {
    Rng rng(99);
    const Dataset data = GenAntiCorrelated(n, d, &rng).ScaledByMax();
    const Grouping groups = GroupBySumRank(data, c_num);

    SolverRequest request;
    request.data = &data;
    request.grouping = &groups;
    request.bounds = GroupBounds::Proportional(k, groups.Counts(), 0.1);

    request.algorithm = "bigreedy";
    auto bg = Solver::Solve(request);
    request.algorithm = "bigreedy+";
    auto bgp = Solver::Solve(request);
    if (!bg.ok() || !bgp.ok()) {
      std::fprintf(stderr, "solve failed at n=%zu\n", n);
      return 1;
    }

    const auto skyline = ComputeSkyline(data);
    EvalOptions eval_opts;  // Net evaluation above the LP witness limit.
    const double mhr =
        EvaluateMhr(data, skyline, bgp->solution.rows, eval_opts);
    std::printf("%-10zu %-10zu %-12.1f %-12.1f %-10.4f\n", n, skyline.size(),
                bg->solve_ms, bgp->solve_ms, mhr);
  }
  std::printf("\nBoth solvers scale near-linearly in n; BiGreedy+ stays a "
              "constant factor\nahead thanks to adaptive net sizing.\n");
  return 0;
}
