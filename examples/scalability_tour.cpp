// Scalability tour: how FairHMS solve time scales with dataset size on
// anti-correlated data — the hardest distribution, where nearly every point
// is on the skyline. Mirrors the paper's Fig. 7(c) at example scale.
//
//   $ ./build/examples/scalability_tour [max_n]

#include <cstdio>
#include <cstdlib>

#include "algo/bigreedy.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

using namespace fairhms;

int main(int argc, char** argv) {
  const size_t max_n =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  const int d = 6;
  const int k = 20;
  const int c_num = 3;

  std::printf("%-10s %-10s %-10s %-12s %-12s %-10s\n", "n", "skyline",
              "pool", "BiGreedy ms", "BiGreedy+ ms", "mhr(BG+)");
  for (size_t n = 1000; n <= max_n; n *= 5) {
    Rng rng(99);
    const Dataset data = GenAntiCorrelated(n, d, &rng).ScaledByMax();
    const Grouping groups = GroupBySumRank(data, c_num);
    const GroupBounds bounds =
        GroupBounds::Proportional(k, groups.Counts(), 0.1);

    Stopwatch prep;
    const auto skyline = ComputeSkyline(data);
    const auto pool = ComputeFairCandidatePool(data, groups);
    const double prep_ms = prep.ElapsedMillis();

    BiGreedyOptions bg_opts;
    bg_opts.pool = pool;
    bg_opts.db_rows = skyline;
    auto bg = BiGreedy(data, groups, bounds, bg_opts);

    BiGreedyPlusOptions bgp_opts;
    bgp_opts.base.pool = pool;
    bgp_opts.base.db_rows = skyline;
    auto bgp = BiGreedyPlus(data, groups, bounds, bgp_opts);

    if (!bg.ok() || !bgp.ok()) {
      std::fprintf(stderr, "solve failed at n=%zu\n", n);
      return 1;
    }
    EvalOptions eval_opts;  // Net evaluation above the LP witness limit.
    const double mhr = EvaluateMhr(data, skyline, bgp->rows, eval_opts);
    std::printf("%-10zu %-10zu %-10zu %-12.1f %-12.1f %-10.4f  (prep %.0f ms)\n",
                n, skyline.size(), pool.size(), bg->elapsed_ms,
                bgp->elapsed_ms, mhr, prep_ms);
  }
  std::printf("\nBoth solvers scale near-linearly in n; BiGreedy+ stays a "
              "constant factor\nahead thanks to adaptive net sizing.\n");
  return 0;
}
