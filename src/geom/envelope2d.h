// Upper envelope of score lines in utility-parameter space (2D datasets).
//
// For d = 2 every nonnegative linear utility can be written u = (l, 1 - l)
// with l in [0, 1] (l1-normalized; happiness ratios are normalization
// invariant). A point p = (x, y) then scores f_l(p) = y + (x - y) * l, a line
// in l. The pointwise maximum over a point set is a piecewise-linear convex
// function: the *upper envelope*. The envelope underlies
//   * IntCov's tau-envelope / interval construction (Sec. 3 of the paper),
//   * the exact 2D minimum-happiness-ratio evaluator.

#ifndef FAIRHMS_GEOM_ENVELOPE2D_H_
#define FAIRHMS_GEOM_ENVELOPE2D_H_

#include <vector>

#include "geom/convex_hull2d.h"

namespace fairhms {

/// Piecewise-linear convex upper envelope over lambda in [0, 1].
class Envelope2D {
 public:
  /// One maximal lambda-interval on which a single point's line is the
  /// envelope. value(lambda) = intercept + slope * lambda.
  struct Piece {
    double lo;        ///< Piece start (inclusive).
    double hi;        ///< Piece end (inclusive).
    double intercept; ///< The owning point's y coordinate.
    double slope;     ///< x - y of the owning point.
    int point_index;  ///< Caller-supplied index of the owning point.
  };

  /// Builds the envelope of the given points. `pts` must be non-empty.
  /// Indices inside IndexedPoint2 are preserved into Piece::point_index.
  static Envelope2D Build(const std::vector<IndexedPoint2>& pts);

  /// Envelope value at lambda (clamped to [0, 1]).
  double Eval(double lambda) const;

  /// Index of the point whose line is maximal at lambda.
  int ArgMax(double lambda) const;

  const std::vector<Piece>& pieces() const { return pieces_; }

  /// All piece boundaries, including 0 and 1, ascending.
  std::vector<double> Breakpoints() const;

  /// Computes the maximal lambda-interval [*lo, *hi] on which the line of
  /// point (x, y) lies on or above tau * envelope. Returns false when the
  /// line is strictly below everywhere in [0, 1]. (line - tau * envelope is
  /// concave, so the feasible set is a single interval.)
  bool IntervalAbove(double x, double y, double tau, double* lo,
                     double* hi) const;

 private:
  /// Index into pieces_ of the piece active at lambda.
  int ArgMaxPieceIndex(double lambda) const;

  std::vector<Piece> pieces_;
};

/// Exact 2D minimum happiness ratio of a subset envelope `env_s` against the
/// full-database envelope `env_d`:  min over lambda of env_s / env_d.
/// Both envelopes must be built over the same normalized attribute space and
/// env_s must come from a subset (env_s <= env_d pointwise).
double MinHappinessRatio2D(const Envelope2D& env_d, const Envelope2D& env_s);

/// Convenience: exact 2D mhr of the subset `subset` (indices into `pts`).
/// Returns 0 for an empty subset.
double MinHappinessRatio2D(const std::vector<IndexedPoint2>& pts,
                           const std::vector<int>& subset);

}  // namespace fairhms

#endif  // FAIRHMS_GEOM_ENVELOPE2D_H_
