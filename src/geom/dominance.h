// Pareto dominance for max-preferred numeric attributes.

#ifndef FAIRHMS_GEOM_DOMINANCE_H_
#define FAIRHMS_GEOM_DOMINANCE_H_

#include <cstddef>

namespace fairhms {

/// True iff `a` dominates `b`: a[i] >= b[i] for all i and a[j] > b[j] for
/// some j (larger values preferred on every attribute).
inline bool Dominates(const double* a, const double* b, size_t d) {
  bool strictly_better_somewhere = false;
  for (size_t i = 0; i < d; ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

/// True iff `a` weakly dominates `b` (>= on every coordinate).
inline bool WeaklyDominates(const double* a, const double* b, size_t d) {
  for (size_t i = 0; i < d; ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

}  // namespace fairhms

#endif  // FAIRHMS_GEOM_DOMINANCE_H_
