// 2D convex hull (Andrew's monotone chain) and the upper-right chain that
// contains every maximizer of a nonnegative linear utility function.

#ifndef FAIRHMS_GEOM_CONVEX_HULL2D_H_
#define FAIRHMS_GEOM_CONVEX_HULL2D_H_

#include <cstddef>
#include <vector>

namespace fairhms {

/// A 2D point with the index it came from in the caller's array.
struct IndexedPoint2 {
  double x;
  double y;
  int index;
};

/// Full convex hull in counter-clockwise order, starting from the
/// lexicographically smallest point. Collinear points on hull edges are
/// dropped. Duplicates are handled. Returns input unchanged for size <= 2
/// (after dedup).
std::vector<IndexedPoint2> ConvexHull(std::vector<IndexedPoint2> pts);

/// The "upper-right" hull chain ordered by decreasing x / increasing y:
/// exactly the points that maximize lambda*x + (1-lambda)*y for some
/// lambda in [0,1]. These are the vertices whose score lines appear on the
/// upper envelope in lambda-space.
std::vector<IndexedPoint2> UpperRightHull(std::vector<IndexedPoint2> pts);

}  // namespace fairhms

#endif  // FAIRHMS_GEOM_CONVEX_HULL2D_H_
