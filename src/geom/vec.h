// Dense vector kernels on raw double spans.
//
// Points and utility vectors are stored row-major in flat arrays throughout
// the library; these helpers are the only place that loops over coordinates.

#ifndef FAIRHMS_GEOM_VEC_H_
#define FAIRHMS_GEOM_VEC_H_

#include <cmath>
#include <cstddef>

namespace fairhms {

/// Inner product <a, b> over d coordinates.
inline double Dot(const double* a, const double* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) s += a[i] * b[i];
  return s;
}

/// Euclidean norm.
inline double NormL2(const double* a, size_t d) {
  return std::sqrt(Dot(a, a, d));
}

/// Sum of coordinates (l1 norm for nonnegative vectors).
inline double SumCoords(const double* a, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) s += a[i];
  return s;
}

/// Scales `a` to unit l2 norm in place. No-op on the zero vector.
inline void NormalizeL2(double* a, size_t d) {
  const double n = NormL2(a, d);
  if (n > 0.0) {
    for (size_t i = 0; i < d; ++i) a[i] /= n;
  }
}

/// Scales `a` to unit l1 norm in place (assumes nonnegative coordinates).
inline void NormalizeL1(double* a, size_t d) {
  const double n = SumCoords(a, d);
  if (n > 0.0) {
    for (size_t i = 0; i < d; ++i) a[i] /= n;
  }
}

}  // namespace fairhms

#endif  // FAIRHMS_GEOM_VEC_H_
