#include "geom/envelope2d.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fairhms {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

Envelope2D Envelope2D::Build(const std::vector<IndexedPoint2>& pts) {
  assert(!pts.empty());
  Envelope2D env;
  // The envelope owners are exactly the upper-right hull chain, ordered by
  // decreasing x / increasing y; walking it in *reverse* (max-y first) gives
  // the active lines for lambda from 0 to 1.
  std::vector<IndexedPoint2> chain = UpperRightHull(pts);
  std::reverse(chain.begin(), chain.end());  // Now y decreasing, x increasing.

  double cur = 0.0;
  for (size_t i = 0; i < chain.size(); ++i) {
    const double a = chain[i].y;
    const double b = chain[i].x - chain[i].y;
    double hi = 1.0;
    if (i + 1 < chain.size()) {
      const double a2 = chain[i + 1].y;
      const double b2 = chain[i + 1].x - chain[i + 1].y;
      const double denom = b2 - b;  // > 0: slopes strictly increase.
      if (denom > kEps) {
        hi = (a - a2) / denom;
      } else {
        hi = cur;  // Degenerate; next line takes over immediately.
      }
      hi = std::clamp(hi, cur, 1.0);
    }
    if (hi >= cur) {
      env.pieces_.push_back({cur, hi, a, b, chain[i].index});
      cur = hi;
    }
    if (cur >= 1.0) break;
  }
  // Ensure coverage up to 1 even with numeric clamping.
  if (!env.pieces_.empty()) env.pieces_.back().hi = 1.0;
  return env;
}

int Envelope2D::ArgMaxPieceIndex(double lambda) const {
  assert(!pieces_.empty());
  // First piece whose hi >= lambda.
  int lo = 0;
  int hi = static_cast<int>(pieces_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (pieces_[static_cast<size_t>(mid)].hi >= lambda) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double Envelope2D::Eval(double lambda) const {
  lambda = std::clamp(lambda, 0.0, 1.0);
  const Piece& p = pieces_[static_cast<size_t>(ArgMaxPieceIndex(lambda))];
  return p.intercept + p.slope * lambda;
}

int Envelope2D::ArgMax(double lambda) const {
  lambda = std::clamp(lambda, 0.0, 1.0);
  return pieces_[static_cast<size_t>(ArgMaxPieceIndex(lambda))].point_index;
}

std::vector<double> Envelope2D::Breakpoints() const {
  std::vector<double> bps;
  bps.reserve(pieces_.size() + 1);
  bps.push_back(0.0);
  for (const Piece& p : pieces_) bps.push_back(p.hi);
  bps.back() = 1.0;
  return bps;
}

bool Envelope2D::IntervalAbove(double x, double y, double tau, double* lo,
                               double* hi) const {
  const double line_a = y;
  const double line_b = x - y;
  bool found = false;
  double best_lo = 2.0;
  double best_hi = -1.0;
  for (const Piece& p : pieces_) {
    // Solve line_a + line_b*l >= tau*(p.intercept + p.slope*l) on [p.lo,p.hi]:
    //   c + m*l >= 0.
    const double c = line_a - tau * p.intercept;
    const double m = line_b - tau * p.slope;
    double seg_lo = p.lo;
    double seg_hi = p.hi;
    if (std::fabs(m) <= kEps) {
      if (c < -kEps) continue;  // Below on the whole piece.
    } else if (m > 0) {
      const double root = -c / m;
      if (root > seg_lo) seg_lo = root;
    } else {
      const double root = -c / m;
      if (root < seg_hi) seg_hi = root;
    }
    if (seg_lo <= seg_hi + kEps) {
      found = true;
      best_lo = std::min(best_lo, seg_lo);
      best_hi = std::max(best_hi, seg_hi);
    }
  }
  if (!found) return false;
  // line - tau*envelope is concave, so the union of per-piece solutions is
  // one interval; min/max accumulation reproduces it exactly.
  *lo = std::clamp(best_lo, 0.0, 1.0);
  *hi = std::clamp(best_hi, 0.0, 1.0);
  return true;
}

double MinHappinessRatio2D(const Envelope2D& env_d, const Envelope2D& env_s) {
  // On every common linear piece the ratio env_s / env_d is a Moebius
  // function of lambda, hence monotone; the minimum is attained at a
  // breakpoint of either envelope.
  std::vector<double> bps = env_d.Breakpoints();
  const std::vector<double> bps_s = env_s.Breakpoints();
  bps.insert(bps.end(), bps_s.begin(), bps_s.end());
  std::sort(bps.begin(), bps.end());
  double mhr = 1.0;
  for (double l : bps) {
    const double denom = env_d.Eval(l);
    const double num = env_s.Eval(l);
    double ratio;
    if (denom <= kEps) {
      ratio = 1.0;  // Degenerate direction: nobody scores anything.
    } else {
      ratio = num / denom;
    }
    mhr = std::min(mhr, ratio);
  }
  return std::max(0.0, mhr);
}

double MinHappinessRatio2D(const std::vector<IndexedPoint2>& pts,
                           const std::vector<int>& subset) {
  if (pts.empty() || subset.empty()) return 0.0;
  std::vector<IndexedPoint2> sub;
  sub.reserve(subset.size());
  for (int idx : subset) {
    assert(idx >= 0 && static_cast<size_t>(idx) < pts.size());
    sub.push_back(pts[static_cast<size_t>(idx)]);
  }
  const Envelope2D env_d = Envelope2D::Build(pts);
  const Envelope2D env_s = Envelope2D::Build(sub);
  return MinHappinessRatio2D(env_d, env_s);
}

}  // namespace fairhms
