#include "geom/convex_hull2d.h"

#include <algorithm>
#include <cmath>

namespace fairhms {

namespace {

/// Twice the signed area of triangle (o, a, b); > 0 for a left turn.
double Cross(const IndexedPoint2& o, const IndexedPoint2& a,
             const IndexedPoint2& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

bool LexLess(const IndexedPoint2& a, const IndexedPoint2& b) {
  if (a.x != b.x) return a.x < b.x;
  return a.y < b.y;
}

bool SamePoint(const IndexedPoint2& a, const IndexedPoint2& b) {
  return a.x == b.x && a.y == b.y;
}

}  // namespace

std::vector<IndexedPoint2> ConvexHull(std::vector<IndexedPoint2> pts) {
  std::sort(pts.begin(), pts.end(), LexLess);
  pts.erase(std::unique(pts.begin(), pts.end(), SamePoint), pts.end());
  const size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<IndexedPoint2> hull(2 * n);
  size_t h = 0;
  // Lower chain.
  for (size_t i = 0; i < n; ++i) {
    while (h >= 2 && Cross(hull[h - 2], hull[h - 1], pts[i]) <= 0) --h;
    hull[h++] = pts[i];
  }
  // Upper chain.
  const size_t lower_size = h + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (h >= lower_size && Cross(hull[h - 2], hull[h - 1], pts[i]) <= 0) --h;
    hull[h++] = pts[i];
  }
  hull.resize(h - 1);  // Last point equals the first.
  return hull;
}

std::vector<IndexedPoint2> UpperRightHull(std::vector<IndexedPoint2> pts) {
  if (pts.empty()) return pts;
  // Sort by x descending, y ascending; walk keeping right turns so that the
  // chain is concave when seen from above (slopes of consecutive edges
  // decrease as x grows).
  std::sort(pts.begin(), pts.end(), [](const IndexedPoint2& a,
                                       const IndexedPoint2& b) {
    if (a.x != b.x) return a.x > b.x;
    return a.y > b.y;
  });
  std::vector<IndexedPoint2> chain;
  for (const auto& p : pts) {
    // Skip points weakly dominated by the current chain tail (same x, lower
    // y handled by sort order; any y not above the tail cannot be maximal).
    if (!chain.empty() && p.y <= chain.back().y) continue;
    while (chain.size() >= 2) {
      const auto& a = chain[chain.size() - 2];
      const auto& b = chain[chain.size() - 1];
      // b must be a left turn on the path a -> p (seen from decreasing x);
      // otherwise b lies under segment (a, p) and is never a maximizer.
      if (Cross(a, b, p) <= 0) {
        chain.pop_back();
      } else {
        break;
      }
    }
    chain.push_back(p);
  }
  return chain;  // x decreasing, y increasing.
}

}  // namespace fairhms
