#include "core/evaluate.h"

#include "common/random.h"
#include "core/artifact_cache.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "utility/utility_net.h"

namespace fairhms {

double EvaluateMhr(const Dataset& data, const std::vector<int>& db_rows,
                   const std::vector<int>& solution, const EvalOptions& opts) {
  if (solution.empty() || db_rows.empty()) return 0.0;
  MhrMethod method = opts.method;
  if (method == MhrMethod::kAuto) {
    if (data.dim() == 2) {
      method = MhrMethod::kExact2D;
    } else if (db_rows.size() <= opts.lp_witness_limit) {
      method = MhrMethod::kExactLp;
    } else {
      method = MhrMethod::kNet;
    }
  }
  switch (method) {
    case MhrMethod::kExact2D:
      return MhrExact2D(data, db_rows, solution);
    case MhrMethod::kExactLp:
      return MhrExactLp(data, db_rows, solution, opts.threads);
    case MhrMethod::kNet: {
      Rng rng(opts.seed);
      const std::shared_ptr<const UtilityNet> net =
          GetOrSampleNet(opts.cache, data.dim(), opts.net_size, &rng);
      const std::shared_ptr<const NetEvaluator> eval = GetOrBuildEvaluator(
          opts.cache, data, net, db_rows, {}, opts.threads);
      return eval->Mhr(solution);
    }
    case MhrMethod::kAuto:
      break;  // Unreachable.
  }
  return 0.0;
}

}  // namespace fairhms
