// ArtifactCache: cross-query memoization of the expensive, immutable
// artifacts FairHMS solves keep rebuilding — sampled utility nets, the
// NetEvaluator denominator/candidate precomputes, global and per-group
// skylines, fair candidate pools and group tables.
//
// A SolverSession (api/session.h) owns one cache and pins it to a dataset +
// grouping; algorithms reach it through SolveContext::cache (or their
// Options struct) and fall back to building artifacts locally when it is
// null, so the cold path and the cached path run the exact same code and
// produce bit-identical results:
//
//   * nets are keyed by (dim, size, full RNG state) and a cache hit
//     restores the generator to its post-sample state, so the caller's
//     stream continues exactly as if it had sampled;
//   * evaluators are keyed by (net identity, denominator rows, cached
//     candidate rows, thread lanes) and their precomputes are already
//     bit-identical across thread counts (PR 2 contract);
//   * skylines / pools / group tables are pure functions of the pinned
//     dataset and grouping, which the cache identifies by (address,
//     version) — every keyed object must outlive the cache, and a mutation
//     (Dataset::AppendRows/ErasePoints, Grouping::AppendRow/AddGroup)
//     makes the stale entries unreachable. Storing a fresh version prunes
//     the superseded one, so a churning dataset does not accumulate dead
//     artifacts. Group tables are *live* views (erased rows excluded).
//
// Dynamic sessions avoid even the one recompute per version: SkylineIndex
// maintains these artifacts incrementally and publishes them via the Put*
// hooks; nets are version-free (they never read the dataset) and survive
// every mutation, while evaluators are keyed by their exact row sets and
// simply rebuild lazily when the skyline under them changes.
//
// All lookups are mutex-guarded and safe for concurrent queries; Clear()
// and the Put* publish hooks must not race in-flight solves (returned
// references/shared_ptrs stay valid only while their entry lives).

#ifndef FAIRHMS_CORE_ARTIFACT_CACHE_H_
#define FAIRHMS_CORE_ARTIFACT_CACHE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_annotations.h"
#include "core/net_evaluator.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "utility/utility_net.h"

namespace fairhms {

/// Hit/miss/byte accounting per artifact class, reported by
/// SolverSession::cache_stats() and the --queries batch driver.
struct CacheStats {
  struct Counter {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bytes = 0;  ///< Resident payload bytes of live entries.
  };
  Counter nets;            ///< Sampled utility nets.
  Counter evaluators;      ///< NetEvaluator denominator + candidate caches.
  Counter skylines;        ///< Global skylines (one per projection key).
  Counter group_skylines;  ///< Per-group skylines.
  Counter pools;           ///< Fair candidate pools.
  Counter groups;          ///< Group counts + member tables.
  Counter projections;     ///< Prepared 2D projections (session-owned).

  uint64_t TotalHits() const;
  uint64_t TotalMisses() const;
  uint64_t TotalBytes() const;

  /// One entry per artifact class plus a trailing total, e.g.
  /// "nets: 5 hits, 3 misses, 1.2 KiB; ...; total: 8 hits, 4 misses,
  /// 3.4 KiB" — the same byte total a CacheArbiter charges globally, so
  /// per-session and process-wide reports always agree.
  std::string ToString() const;
};

class CacheArbiter;

class ArtifactCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The net `UtilityNet::SampleRandom(d, m, rng)` would produce, memoized
  /// on (d, m, rng->StateKey()). On a hit `*rng` is fast-forwarded to its
  /// post-sample state, so callers that keep drawing see no difference.
  std::shared_ptr<const UtilityNet> Net(int d, size_t m, Rng* rng)
      FAIRHMS_EXCLUDES(mu_);

  /// A NetEvaluator over (data, net, db_rows) with `cache_rows` candidate
  /// happiness rows pre-filled (skipped when empty), memoized on the net's
  /// identity + row sets + thread lanes. `net` must stay alive through the
  /// shared_ptr (pass the pointer returned by Net()).
  std::shared_ptr<const NetEvaluator> Evaluator(
      const Dataset& data, std::shared_ptr<const UtilityNet> net,
      const std::vector<int>& db_rows, const std::vector<int>& cache_rows,
      int threads) FAIRHMS_EXCLUDES(mu_);

  /// Global skyline of `data`'s live rows, memoized per (dataset address,
  /// dataset version).
  const std::vector<int>& Skyline(const Dataset& data) FAIRHMS_EXCLUDES(mu_);

  /// Per-group skylines over live rows, memoized per (dataset, grouping)
  /// address/version quadruple.
  const std::vector<std::vector<int>>& GroupSkylines(const Dataset& data,
                                                     const Grouping& grouping)
      FAIRHMS_EXCLUDES(mu_);

  /// Union of per-group skylines (the fair candidate pool), memoized like
  /// GroupSkylines.
  const std::vector<int>& FairPool(const Dataset& data,
                                   const Grouping& grouping)
      FAIRHMS_EXCLUDES(mu_);

  /// grouping.LiveCounts(data), memoized like GroupSkylines.
  const std::vector<int>& GroupCounts(const Dataset& data,
                                      const Grouping& grouping)
      FAIRHMS_EXCLUDES(mu_);

  /// grouping.MembersLive(data), memoized like GroupSkylines.
  const std::vector<std::vector<int>>& GroupMembers(const Dataset& data,
                                                    const Grouping& grouping)
      FAIRHMS_EXCLUDES(mu_);

  /// Publish hooks for incrementally maintained artifacts (SkylineIndex):
  /// store the value under the object's *current* version so the next
  /// lookup hits instead of recomputing. Counted as neither hit nor miss;
  /// superseded versions are pruned. Must not race in-flight solves.
  void PutSkyline(const Dataset& data, std::vector<int> skyline)
      FAIRHMS_EXCLUDES(mu_);
  void PutGroupArtifacts(const Dataset& data, const Grouping& grouping,
                         std::vector<std::vector<int>> group_skylines,
                         std::vector<int> fair_pool,
                         std::vector<int> live_counts,
                         std::vector<std::vector<int>> live_members)
      FAIRHMS_EXCLUDES(mu_);

  /// Snapshot of the counters (copied under the lock).
  CacheStats stats() const FAIRHMS_EXCLUDES(mu_);

  /// Accounts a session-owned artifact lookup (the prepared 2D projection)
  /// under the cache lock; `bytes` is added on a miss.
  void AccountProjection(bool hit, uint64_t bytes) FAIRHMS_EXCLUDES(mu_);

  /// Drops every entry (stats counters keep their hit/miss history; bytes
  /// reset). Callers must ensure no solve is in flight.
  void Clear() FAIRHMS_EXCLUDES(mu_);

  /// Attaches a process-wide arbiter: from now on every change to the
  /// resident byte total is charged/refunded there (after this cache's
  /// lock is released, so the arbiter can lock its own state freely).
  /// Call while no solve is in flight; CacheArbiter::Register does this.
  void SetArbiter(CacheArbiter* arbiter) FAIRHMS_EXCLUDES(mu_);

 private:
  struct NetKey {
    int d;
    uint64_t m;
    std::array<uint64_t, 6> rng_state;
    bool operator<(const NetKey& o) const;
  };
  struct NetEntry {
    std::shared_ptr<const UtilityNet> net;
    Rng post_state;  ///< Generator state right after sampling.
  };
  struct EvalKey {
    const void* data;
    const UtilityNet* net;
    std::vector<int> db_rows;
    std::vector<int> cache_rows;
    int threads;
    /// simd::LayoutKey() at build time: an evaluator's resident blocks are
    /// tied to the data-layout version and active dispatch level, so a
    /// mid-process SetMode switch builds fresh artifacts instead of mixing.
    uint32_t layout;
    bool operator<(const EvalKey& o) const;
  };
  struct EvalEntry {
    std::shared_ptr<const NetEvaluator> evaluator;
    std::shared_ptr<const UtilityNet> net;  ///< Keeps the raw key pointer live.
    uint64_t bytes = 0;  ///< Accounted size, refunded on eviction.
    /// Dataset version this entry was last built or hit under. An entry
    /// whose row sets survive a mutation keeps hitting (coordinates are
    /// immutable) and refreshes the stamp; entries left behind by older
    /// versions are superseded and evicted on the next miss.
    uint64_t data_version = 0;
  };
  /// (address, version): a mutation makes the old entry unreachable and
  /// the next store for the same address prunes it.
  using DataKey = std::pair<const void*, uint64_t>;
  using DataGroupKey = std::tuple<const void*, const void*, uint64_t, uint64_t>;

  // Never held while calling into the arbiter: methods copy arbiter_ under
  // mu_, release, then settle the byte delta (lock order cache -> arbiter,
  // see docs/concurrency.md).
  mutable Mutex mu_;
  CacheStats stats_ FAIRHMS_GUARDED_BY(mu_);
  /// The pointer is guarded; the arbiter itself is called outside mu_.
  CacheArbiter* arbiter_ FAIRHMS_GUARDED_BY(mu_) = nullptr;
  std::map<NetKey, NetEntry> nets_ FAIRHMS_GUARDED_BY(mu_);
  std::map<EvalKey, EvalEntry> evaluators_ FAIRHMS_GUARDED_BY(mu_);
  std::map<DataKey, std::vector<int>> skylines_ FAIRHMS_GUARDED_BY(mu_);
  std::map<DataGroupKey, std::vector<std::vector<int>>> group_skylines_
      FAIRHMS_GUARDED_BY(mu_);
  std::map<DataGroupKey, std::vector<int>> pools_ FAIRHMS_GUARDED_BY(mu_);
  std::map<DataGroupKey, std::vector<int>> group_counts_
      FAIRHMS_GUARDED_BY(mu_);
  std::map<DataGroupKey, std::vector<std::vector<int>>> group_members_
      FAIRHMS_GUARDED_BY(mu_);
};

/// Process-wide cache budget arbitration across many ArtifactCaches (one
/// per catalog session). Each cache charges/refunds its resident-byte
/// changes here; when the global total exceeds the budget, Rebalance
/// evicts whole cold caches — least-recently-Touched first — through the
/// eviction callback they registered with (typically
/// SolverSession::ClearCache, so the session's publish sentinels reset
/// together with the drop).
///
/// Concurrency contract: OnBytesChanged is pure accounting and safe from
/// any thread (caches call it after releasing their own lock, so the lock
/// order is always cache -> arbiter, never the reverse). Rebalance invokes
/// eviction callbacks *outside* the arbiter lock — callbacks re-enter via
/// OnBytesChanged when the cleared cache refunds its bytes — and must only
/// run between queries: evicting mid-solve would dangle the references the
/// cache handed out. A budget of 0 means unlimited (never evicts).
class CacheArbiter {
 public:
  explicit CacheArbiter(uint64_t budget_bytes) : budget_(budget_bytes) {}
  CacheArbiter(const CacheArbiter&) = delete;
  CacheArbiter& operator=(const CacheArbiter&) = delete;

  /// Starts arbitrating `cache` (attaches this arbiter to it and charges
  /// its current resident bytes). `evict` drops the cache's artifacts when
  /// Rebalance selects it. Re-registering an address replaces its entry.
  void Register(ArtifactCache* cache, std::string name,
                std::function<void()> evict) FAIRHMS_EXCLUDES(mu_);

  /// Stops arbitrating `cache`, refunding whatever it still has charged.
  /// No-op for an unknown address.
  void Unregister(ArtifactCache* cache) FAIRHMS_EXCLUDES(mu_);

  /// Charges (delta > 0) or refunds (delta < 0) bytes for `cache`.
  /// Unknown addresses are ignored (a cache outside catalog control).
  void OnBytesChanged(ArtifactCache* cache, int64_t delta)
      FAIRHMS_EXCLUDES(mu_);

  /// Marks `cache` most-recently-used; Rebalance evicts coldest-first.
  void Touch(ArtifactCache* cache) FAIRHMS_EXCLUDES(mu_);

  /// Evicts cold caches until the charged total fits the budget again.
  /// `prefer_keep` (the cache that just served a query) is only evicted
  /// when it alone still exceeds the budget after everything else is gone.
  /// Call between queries only — never while a solve is in flight.
  void Rebalance(ArtifactCache* prefer_keep = nullptr) FAIRHMS_EXCLUDES(mu_);

  uint64_t budget_bytes() const FAIRHMS_EXCLUDES(mu_);
  /// Bytes currently charged across every registered cache.
  uint64_t total_bytes() const FAIRHMS_EXCLUDES(mu_);
  /// Whole-cache evictions performed by Rebalance (telemetry).
  uint64_t evictions() const FAIRHMS_EXCLUDES(mu_);

  /// Per-session charged bytes plus the global total/budget, one line per
  /// registered cache — the process-wide counterpart of
  /// CacheStats::ToString (the per-session byte figures agree).
  std::string ToString() const FAIRHMS_EXCLUDES(mu_);

  /// Structured form of the ledger for the `stats` op: one entry per
  /// registered cache, sorted by name. `last_touch` is the logical
  /// recency tick Rebalance evicts by (higher = warmer).
  struct LedgerEntry {
    std::string name;
    uint64_t charged_bytes = 0;
    uint64_t last_touch = 0;
  };
  std::vector<LedgerEntry> Ledger() const FAIRHMS_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name;
    std::function<void()> evict;
    uint64_t charged = 0;
    uint64_t last_touch = 0;
  };

  // Leaf lock: never held while calling into an ArtifactCache (Rebalance
  // copies the evict callback out and runs it unlocked; Register/Unregister
  // talk to the cache outside their locked scopes).
  mutable Mutex mu_;
  uint64_t budget_ FAIRHMS_GUARDED_BY(mu_);
  uint64_t total_ FAIRHMS_GUARDED_BY(mu_) = 0;
  uint64_t touch_seq_ FAIRHMS_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ FAIRHMS_GUARDED_BY(mu_) = 0;
  std::map<ArtifactCache*, Entry> entries_ FAIRHMS_GUARDED_BY(mu_);
};

/// Cache-optional conveniences: with a cache they memoize, without one they
/// build a transient artifact — either way the bits are identical.
std::shared_ptr<const UtilityNet> GetOrSampleNet(ArtifactCache* cache, int d,
                                                 size_t m, Rng* rng);
std::shared_ptr<const NetEvaluator> GetOrBuildEvaluator(
    ArtifactCache* cache, const Dataset& data,
    std::shared_ptr<const UtilityNet> net, const std::vector<int>& db_rows,
    const std::vector<int>& cache_rows, int threads);

}  // namespace fairhms

#endif  // FAIRHMS_CORE_ARTIFACT_CACHE_H_
