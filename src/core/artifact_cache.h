// ArtifactCache: cross-query memoization of the expensive, immutable
// artifacts FairHMS solves keep rebuilding — sampled utility nets, the
// NetEvaluator denominator/candidate precomputes, global and per-group
// skylines, fair candidate pools and group tables.
//
// A SolverSession (api/session.h) owns one cache and pins it to a dataset +
// grouping; algorithms reach it through SolveContext::cache (or their
// Options struct) and fall back to building artifacts locally when it is
// null, so the cold path and the cached path run the exact same code and
// produce bit-identical results:
//
//   * nets are keyed by (dim, size, full RNG state) and a cache hit
//     restores the generator to its post-sample state, so the caller's
//     stream continues exactly as if it had sampled;
//   * evaluators are keyed by (net identity, denominator rows, cached
//     candidate rows, thread lanes) and their precomputes are already
//     bit-identical across thread counts (PR 2 contract);
//   * skylines / pools / group tables are pure functions of the pinned
//     dataset and grouping, which the cache identifies by address — every
//     keyed object must outlive the cache.
//
// All lookups are mutex-guarded and safe for concurrent queries; Clear()
// must not race in-flight solves (returned references/shared_ptrs stay
// valid only while their entry lives).

#ifndef FAIRHMS_CORE_ARTIFACT_CACHE_H_
#define FAIRHMS_CORE_ARTIFACT_CACHE_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/net_evaluator.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "utility/utility_net.h"

namespace fairhms {

/// Hit/miss/byte accounting per artifact class, reported by
/// SolverSession::cache_stats() and the --queries batch driver.
struct CacheStats {
  struct Counter {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bytes = 0;  ///< Resident payload bytes of live entries.
  };
  Counter nets;            ///< Sampled utility nets.
  Counter evaluators;      ///< NetEvaluator denominator + candidate caches.
  Counter skylines;        ///< Global skylines (one per projection key).
  Counter group_skylines;  ///< Per-group skylines.
  Counter pools;           ///< Fair candidate pools.
  Counter groups;          ///< Group counts + member tables.
  Counter projections;     ///< Prepared 2D projections (session-owned).

  uint64_t TotalHits() const;
  uint64_t TotalMisses() const;
  uint64_t TotalBytes() const;

  /// One line per artifact class, e.g. "nets: 5 hits, 3 misses, 1.2 MiB".
  std::string ToString() const;
};

class ArtifactCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The net `UtilityNet::SampleRandom(d, m, rng)` would produce, memoized
  /// on (d, m, rng->StateKey()). On a hit `*rng` is fast-forwarded to its
  /// post-sample state, so callers that keep drawing see no difference.
  std::shared_ptr<const UtilityNet> Net(int d, size_t m, Rng* rng);

  /// A NetEvaluator over (data, net, db_rows) with `cache_rows` candidate
  /// happiness rows pre-filled (skipped when empty), memoized on the net's
  /// identity + row sets + thread lanes. `net` must stay alive through the
  /// shared_ptr (pass the pointer returned by Net()).
  std::shared_ptr<const NetEvaluator> Evaluator(
      const Dataset& data, std::shared_ptr<const UtilityNet> net,
      const std::vector<int>& db_rows, const std::vector<int>& cache_rows,
      int threads);

  /// Global skyline of `data`, memoized per dataset address.
  const std::vector<int>& Skyline(const Dataset& data);

  /// Per-group skylines, memoized per (dataset, grouping) address pair.
  const std::vector<std::vector<int>>& GroupSkylines(const Dataset& data,
                                                     const Grouping& grouping);

  /// Union of per-group skylines (the fair candidate pool), memoized per
  /// (dataset, grouping) address pair.
  const std::vector<int>& FairPool(const Dataset& data,
                                   const Grouping& grouping);

  /// grouping.Counts(), memoized per grouping address.
  const std::vector<int>& GroupCounts(const Grouping& grouping);

  /// grouping.Members(), memoized per grouping address.
  const std::vector<std::vector<int>>& GroupMembers(const Grouping& grouping);

  /// Snapshot of the counters (copied under the lock).
  CacheStats stats() const;

  /// Accounts a session-owned artifact lookup (the prepared 2D projection)
  /// under the cache lock; `bytes` is added on a miss.
  void AccountProjection(bool hit, uint64_t bytes);

  /// Drops every entry (stats counters keep their hit/miss history; bytes
  /// reset). Callers must ensure no solve is in flight.
  void Clear();

 private:
  struct NetKey {
    int d;
    uint64_t m;
    std::array<uint64_t, 6> rng_state;
    bool operator<(const NetKey& o) const;
  };
  struct NetEntry {
    std::shared_ptr<const UtilityNet> net;
    Rng post_state;  ///< Generator state right after sampling.
  };
  struct EvalKey {
    const void* data;
    const UtilityNet* net;
    std::vector<int> db_rows;
    std::vector<int> cache_rows;
    int threads;
    bool operator<(const EvalKey& o) const;
  };
  struct EvalEntry {
    std::shared_ptr<const NetEvaluator> evaluator;
    std::shared_ptr<const UtilityNet> net;  ///< Keeps the raw key pointer live.
  };
  using DataGroupKey = std::pair<const void*, const void*>;

  mutable std::mutex mu_;
  CacheStats stats_;
  std::map<NetKey, NetEntry> nets_;
  std::map<EvalKey, EvalEntry> evaluators_;
  std::map<const void*, std::vector<int>> skylines_;
  std::map<DataGroupKey, std::vector<std::vector<int>>> group_skylines_;
  std::map<DataGroupKey, std::vector<int>> pools_;
  std::map<const void*, std::vector<int>> group_counts_;
  std::map<const void*, std::vector<std::vector<int>>> group_members_;
};

/// Cache-optional conveniences: with a cache they memoize, without one they
/// build a transient artifact — either way the bits are identical.
std::shared_ptr<const UtilityNet> GetOrSampleNet(ArtifactCache* cache, int d,
                                                 size_t m, Rng* rng);
std::shared_ptr<const NetEvaluator> GetOrBuildEvaluator(
    ArtifactCache* cache, const Dataset& data,
    std::shared_ptr<const UtilityNet> net, const std::vector<int>& db_rows,
    const std::vector<int>& cache_rows, int threads);

}  // namespace fairhms

#endif  // FAIRHMS_CORE_ARTIFACT_CACHE_H_
