#include "core/net_evaluator.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "common/thread_pool.h"
#include "geom/vec.h"

namespace fairhms {

namespace {

constexpr size_t kTile = simd::kDirTile;

size_t TileCount(size_t m) { return (m + kTile - 1) / kTile; }

}  // namespace

NetEvaluator::NetEvaluator(const Dataset* data, const UtilityNet* net,
                           std::vector<int> db_rows, int threads)
    : data_(data),
      net_(net),
      threads_(ResolveThreads(threads)),
      db_rows_(std::move(db_rows)),
      net_cols_(data->dim()) {
  assert(data_->dim() == net_->dim());
  const size_t m = net_->size();
  const size_t d = static_cast<size_t>(data_->dim());
  // Dimension-major net block: column k holds attribute k of every
  // direction, so a direction tile (d * kDirTile doubles) stays L1-resident
  // while candidate rows stream past it.
  net_cols_.Reserve(m);
  for (size_t j = 0; j < m; ++j) net_cols_.Append(net_->vec(j));
  db_pts_ = data_->PackRows(db_rows_);
  best_.assign(m, 0.0);
  // Lanes own disjoint direction tiles (tile boundaries are cache-line
  // aligned in best_, so lanes never share a written line); within a tile
  // every db row streams through the L1-resident columns. max over rows is
  // exact and order-independent, so the fill is bit-identical for any lane
  // count and any dispatch level.
  ParallelFor(threads_, TileCount(m), [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      const size_t j0 = t * kTile;
      const size_t j1 = std::min(m, j0 + kTile);
      simd::NetBestRange(net_cols_.cols(), j0, j1, db_pts_.data(),
                         db_rows_.size(), d, best_.data());
    }
  });
}

double NetEvaluator::PointHappiness(size_t j, int row) const {
  if (best_[j] <= kDegenerate) return 1.0;
  const double s =
      Dot(net_->vec(j), data_->point(static_cast<size_t>(row)),
          static_cast<size_t>(data_->dim()));
  return std::min(1.0, s / best_[j]);
}

void NetEvaluator::PointHappinessRow(int row, double* out) const {
  const size_t m = net_->size();
  const double* cached = cached_row(row);
  if (cached != nullptr) {
    std::copy(cached, cached + m, out);
    return;
  }
  simd::HappinessRange(net_cols_.cols(), 0, m,
                       data_->point(static_cast<size_t>(row)),
                       static_cast<size_t>(data_->dim()), best_.data(),
                       kDegenerate, out);
}

double NetEvaluator::Hr(size_t j, const std::vector<int>& rows) const {
  double best = 0.0;
  for (int row : rows) best = std::max(best, PointHappiness(j, row));
  return best;
}

double NetEvaluator::Mhr(const std::vector<int>& rows) const {
  if (rows.empty()) return 0.0;
  const size_t m = net_->size();
  const size_t d = static_cast<size_t>(data_->dim());
  const simd::AlignedVector pts = data_->PackRows(rows);
  // Per tile, MhrRange max-accumulates the raw scores of every row, then
  // divides once per direction: division by a positive denominator is
  // monotone and max selects an element, so this matches the per-row
  // division formulation bit for bit. The early break only skips work — an
  // mhr of 0 cannot rise.
  if (threads_ <= 1) {
    double mhr = 1.0;
    for (size_t t = 0; t < TileCount(m); ++t) {
      const size_t j0 = t * kTile;
      const size_t j1 = std::min(m, j0 + kTile);
      mhr = std::min(mhr, simd::MhrRange(net_cols_.cols(), j0, j1,
                                         best_.data(), kDegenerate,
                                         pts.data(), rows.size(), d));
      if (mhr <= 0.0) break;
    }
    return mhr;
  }
  // Tile-local minima merged with exact min, which is order-independent,
  // so the result is identical to the serial sweep.
  std::mutex mu;
  double mhr = 1.0;
  ParallelFor(threads_, TileCount(m), [&](size_t t0, size_t t1) {
    double local = 1.0;
    for (size_t t = t0; t < t1; ++t) {
      const size_t j0 = t * kTile;
      const size_t j1 = std::min(m, j0 + kTile);
      local = std::min(local, simd::MhrRange(net_cols_.cols(), j0, j1,
                                             best_.data(), kDegenerate,
                                             pts.data(), rows.size(), d));
      if (local <= 0.0) break;
    }
    std::lock_guard<std::mutex> lock(mu);
    mhr = std::min(mhr, local);
  });
  return mhr;
}

void NetEvaluator::CacheCandidates(const std::vector<int>& rows,
                                   size_t max_entries) {
  const size_t m = net_->size();
  if (rows.size() * m > max_entries) return;
  const size_t d = static_cast<size_t>(data_->dim());
  cache_offset_.assign(data_->size(), -1);
  // Uninitialized on purpose: the tile loop below writes every cell
  // (tiles cover [0, m), the row loop covers every i).
  cache_.ResizeUninitialized(rows.size() * m);
  for (size_t i = 0; i < rows.size(); ++i) {
    cache_offset_[static_cast<size_t>(rows[i])] =
        static_cast<int64_t>(i * m);
  }
  const simd::AlignedVector pts = data_->PackRows(rows);
  // Direction tiles on the outside so one L1-resident net tile serves every
  // candidate row before the next tile is touched; lanes own disjoint tile
  // ranges, i.e. disjoint column stripes of the matrix.
  ParallelFor(threads_, TileCount(m), [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      const size_t j0 = t * kTile;
      const size_t j1 = std::min(m, j0 + kTile);
      for (size_t i = 0; i < rows.size(); ++i) {
        simd::HappinessRange(net_cols_.cols(), j0, j1, &pts[i * d], d,
                             best_.data(), kDegenerate, &cache_[i * m]);
      }
    }
  });
}

TruncatedMhrState::TruncatedMhrState(const NetEvaluator* eval)
    : eval_(eval), cur_(eval->net_size(), 0.0) {}

void TruncatedMhrState::Reset() { std::fill(cur_.begin(), cur_.end(), 0.0); }

double TruncatedMhrState::MarginalGain(int row, double tau) const {
  const size_t m = cur_.size();
  const double* hrow = eval_->cached_row(row);
  double gain;
  if (hrow != nullptr) {
    gain = simd::TruncGainCached(hrow, cur_.data(), m, tau);
  } else {
    gain = simd::TruncGainEval(
        eval_->net_columns().cols(), m,
        eval_->data().point(static_cast<size_t>(row)),
        static_cast<size_t>(eval_->data().dim()), eval_->best_data(),
        NetEvaluator::kDegenerate, cur_.data(), tau);
  }
  return gain / static_cast<double>(m);
}

void TruncatedMhrState::Add(int row) {
  const size_t m = cur_.size();
  const double* hrow = eval_->cached_row(row);
  if (hrow != nullptr) {
    simd::MaxAccumulate(hrow, cur_.data(), m);
  } else {
    simd::AddHappinessMax(eval_->net_columns().cols(), 0, m,
                          eval_->data().point(static_cast<size_t>(row)),
                          static_cast<size_t>(eval_->data().dim()),
                          eval_->best_data(), NetEvaluator::kDegenerate,
                          cur_.data());
  }
}

double TruncatedMhrState::TruncatedValue(double tau) const {
  return simd::TruncSum(cur_.data(), cur_.size(), tau) /
         static_cast<double>(cur_.size());
}

double TruncatedMhrState::NetMhr() const {
  return simd::MinReduce(cur_.data(), cur_.size());
}

}  // namespace fairhms
