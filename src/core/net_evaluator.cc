#include "core/net_evaluator.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "common/thread_pool.h"
#include "geom/vec.h"

namespace fairhms {

namespace {
constexpr double kDegenerate = 1e-12;
}  // namespace

NetEvaluator::NetEvaluator(const Dataset* data, const UtilityNet* net,
                           std::vector<int> db_rows, int threads)
    : data_(data),
      net_(net),
      threads_(ResolveThreads(threads)),
      db_rows_(std::move(db_rows)) {
  assert(data_->dim() == net_->dim());
  const size_t m = net_->size();
  const size_t d = static_cast<size_t>(data_->dim());
  best_.assign(m, 0.0);
  // Lanes own disjoint direction blocks; max over rows is exact and
  // order-independent, so the fill is bit-identical for any lane count.
  ParallelFor(threads_, m, [&](size_t j_begin, size_t j_end) {
    for (int row : db_rows_) {
      const double* p = data_->point(static_cast<size_t>(row));
      for (size_t j = j_begin; j < j_end; ++j) {
        const double s = Dot(net_->vec(j), p, d);
        if (s > best_[j]) best_[j] = s;
      }
    }
  });
}

double NetEvaluator::PointHappiness(size_t j, int row) const {
  if (best_[j] <= kDegenerate) return 1.0;
  const double s =
      Dot(net_->vec(j), data_->point(static_cast<size_t>(row)),
          static_cast<size_t>(data_->dim()));
  return std::min(1.0, s / best_[j]);
}

void NetEvaluator::PointHappinessRow(int row, double* out) const {
  const size_t m = net_->size();
  const double* cached = cached_row(row);
  if (cached != nullptr) {
    std::copy(cached, cached + m, out);
    return;
  }
  for (size_t j = 0; j < m; ++j) out[j] = PointHappiness(j, row);
}

double NetEvaluator::Hr(size_t j, const std::vector<int>& rows) const {
  double best = 0.0;
  for (int row : rows) best = std::max(best, PointHappiness(j, row));
  return best;
}

double NetEvaluator::Mhr(const std::vector<int>& rows) const {
  if (rows.empty()) return 0.0;
  const size_t m = net_->size();
  if (threads_ <= 1) {
    double mhr = 1.0;
    for (size_t j = 0; j < m; ++j) {
      mhr = std::min(mhr, Hr(j, rows));
      if (mhr <= 0.0) break;
    }
    return mhr;
  }
  // Block-local minima merged with exact min, which is order-independent,
  // so the result is identical to the serial sweep (whose early break only
  // skips work, never changes the minimum).
  std::mutex mu;
  double mhr = 1.0;
  ParallelFor(threads_, m, [&](size_t j_begin, size_t j_end) {
    double local = 1.0;
    for (size_t j = j_begin; j < j_end; ++j) {
      local = std::min(local, Hr(j, rows));
      if (local <= 0.0) break;
    }
    std::lock_guard<std::mutex> lock(mu);
    mhr = std::min(mhr, local);
  });
  return mhr;
}

void NetEvaluator::CacheCandidates(const std::vector<int>& rows,
                                   size_t max_entries) {
  const size_t m = net_->size();
  if (rows.size() * m > max_entries) return;
  cache_offset_.assign(data_->size(), -1);
  cache_.resize(rows.size() * m);
  for (size_t i = 0; i < rows.size(); ++i) {
    cache_offset_[static_cast<size_t>(rows[i])] =
        static_cast<int64_t>(i * m);
  }
  // Each row owns one disjoint slice of the matrix.
  ParallelFor(threads_, rows.size(), [&](size_t i_begin, size_t i_end) {
    for (size_t i = i_begin; i < i_end; ++i) {
      double* out = &cache_[i * m];
      for (size_t j = 0; j < m; ++j) out[j] = PointHappiness(j, rows[i]);
    }
  });
}

TruncatedMhrState::TruncatedMhrState(const NetEvaluator* eval)
    : eval_(eval),
      cur_(eval->net_size(), 0.0),
      scratch_(eval->net_size(), 0.0) {}

void TruncatedMhrState::Reset() { std::fill(cur_.begin(), cur_.end(), 0.0); }

double TruncatedMhrState::MarginalGain(int row, double tau) const {
  const size_t m = cur_.size();
  const double* hrow = eval_->cached_row(row);
  double gain = 0.0;
  if (hrow != nullptr) {
    for (size_t j = 0; j < m; ++j) {
      const double before = std::min(cur_[j], tau);
      const double after = std::min(std::max(cur_[j], hrow[j]), tau);
      gain += after - before;
    }
  } else {
    for (size_t j = 0; j < m; ++j) {
      const double before = std::min(cur_[j], tau);
      if (before >= tau) continue;  // Already capped; no possible gain.
      const double h = eval_->PointHappiness(j, row);
      const double after = std::min(std::max(cur_[j], h), tau);
      gain += after - before;
    }
  }
  return gain / static_cast<double>(m);
}

void TruncatedMhrState::Add(int row) {
  const size_t m = cur_.size();
  const double* hrow = eval_->cached_row(row);
  if (hrow != nullptr) {
    for (size_t j = 0; j < m; ++j) cur_[j] = std::max(cur_[j], hrow[j]);
  } else {
    for (size_t j = 0; j < m; ++j) {
      cur_[j] = std::max(cur_[j], eval_->PointHappiness(j, row));
    }
  }
}

double TruncatedMhrState::TruncatedValue(double tau) const {
  double sum = 0.0;
  for (double c : cur_) sum += std::min(c, tau);
  return sum / static_cast<double>(cur_.size());
}

double TruncatedMhrState::NetMhr() const {
  double mhr = 1.0;
  for (double c : cur_) mhr = std::min(mhr, c);
  return mhr;
}

}  // namespace fairhms
