// Solution: the output of every FairHMS / HMS algorithm.

#ifndef FAIRHMS_CORE_SOLUTION_H_
#define FAIRHMS_CORE_SOLUTION_H_

#include <string>
#include <vector>

namespace fairhms {

/// A selected subset plus bookkeeping. `rows` index the original dataset.
struct Solution {
  std::vector<int> rows;
  /// Minimum happiness ratio as evaluated by the producing algorithm (its
  /// internal estimate; benches re-evaluate with a reference evaluator).
  double mhr = 0.0;
  /// Wall-clock of the solve in milliseconds (filled by the algorithms).
  double elapsed_ms = 0.0;
  /// Producing algorithm, e.g. "IntCov", "BiGreedy+".
  std::string algorithm;
};

}  // namespace fairhms

#endif  // FAIRHMS_CORE_SOLUTION_H_
