// Net-based happiness evaluation: happiness ratios measured against a finite
// utility net N instead of the continuous sphere (Lemma 4.1 bounds the gap).

#ifndef FAIRHMS_CORE_NET_EVALUATOR_H_
#define FAIRHMS_CORE_NET_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/simd.h"
#include "data/dataset.h"
#include "utility/utility_net.h"

namespace fairhms {

/// Precomputes, per net direction, the best database score (the happiness
/// denominators), and answers hr / mhr queries against the net.
///
/// `db_rows` defines the denominator population — pass the global skyline
/// (scores of dominated points never attain the max, so this is exact).
///
/// Storage is structure-of-arrays: net directions live in a dimension-major
/// ColumnBlock and candidate coordinates in dense row-major packs, so the
/// hot loops (denominator fill, candidate-cache fill, mhr sweep) run on the
/// common/simd.h kernel layer in L1-sized direction tiles (simd::kDirTile).
/// Every result is bit-identical across thread counts AND across SIMD
/// dispatch levels (see the bit-identity contract in common/simd.h);
/// threads = 1 takes the exact serial path.
class NetEvaluator {
 public:
  /// Degenerate-denominator cutoff: directions whose best database score is
  /// at or below this evaluate to happiness 1.0.
  static constexpr double kDegenerate = 1e-12;

  NetEvaluator(const Dataset* data, const UtilityNet* net,
               std::vector<int> db_rows, int threads = 0);

  const Dataset& data() const { return *data_; }
  const UtilityNet& net() const { return *net_; }
  size_t net_size() const { return net_->size(); }
  int threads() const { return threads_; }

  /// Best database score for direction j (denominator).
  double best(size_t j) const { return best_[j]; }
  /// Dense denominator array (net_size() doubles).
  const double* best_data() const { return best_.data(); }
  /// Dimension-major net directions (column j of the block holds attribute
  /// j of every direction).
  const simd::ColumnBlock& net_columns() const { return net_cols_; }

  /// Happiness of a single point under direction j:
  /// <u_j, p> / best(j), clamped to [0, 1]; 1 on degenerate directions.
  double PointHappiness(size_t j, int row) const;

  /// Fills out[0..m) with the happiness of `row` under every direction.
  void PointHappinessRow(int row, double* out) const;

  /// hr(u_j, S): best happiness among S under direction j (0 if S empty).
  double Hr(size_t j, const std::vector<int>& rows) const;

  /// mhr(S | N): minimum over the net of Hr.
  double Mhr(const std::vector<int>& rows) const;

  /// Optionally caches the happiness rows of the given candidate rows for
  /// O(m) lookups inside greedy loops. Caching is skipped when it would
  /// exceed `max_entries` matrix cells.
  void CacheCandidates(const std::vector<int>& rows,
                       size_t max_entries = 40'000'000);

  /// Cached happiness row of `row`, or nullptr when not cached.
  const double* cached_row(int row) const {
    if (cache_offset_.empty()) return nullptr;
    const int64_t off = cache_offset_[static_cast<size_t>(row)];
    return off < 0 ? nullptr : &cache_[static_cast<size_t>(off)];
  }

  /// Resident bytes of the candidate cache (0 when CacheCandidates was
  /// never called or declined because of its entry budget).
  size_t CandidateCacheBytes() const {
    return cache_.size() * sizeof(double) +
           cache_offset_.size() * sizeof(int64_t);
  }

  /// Total resident bytes: denominators, the dimension-major net block, the
  /// packed db rows, and the candidate cache. ArtifactCache charges this.
  size_t ResidentBytes() const {
    return best_.capacity() * sizeof(double) + net_cols_.bytes() +
           db_pts_.capacity() * sizeof(double) +
           db_rows_.capacity() * sizeof(int) + CandidateCacheBytes();
  }

 private:
  const Dataset* data_;
  const UtilityNet* net_;
  int threads_;  ///< Effective lane count (already resolved, >= 1).
  std::vector<int> db_rows_;
  simd::ColumnBlock net_cols_;  ///< Dimension-major net directions.
  simd::AlignedVector db_pts_;  ///< db_rows_ coords, dense row-major.
  simd::AlignedVector best_;
  std::vector<int64_t> cache_offset_;  // Per dataset row; -1 = not cached.
  /// Concatenated happiness rows. A pooled ScratchBuffer, not a vector:
  /// the fill in CacheCandidates writes every cell, so zero-initialization
  /// would only double the memory traffic, and recycling the allocation
  /// across evaluator rebuilds skips the first-touch page faults that
  /// otherwise dominate the fill (see simd.h).
  simd::ScratchBuffer cache_;
};

/// Incremental state for greedy maximization of the truncated MHR
///   mhr_tau(S | N) = (1/m) * sum_j min(hr(u_j, S), tau)
/// (monotone submodular for any cap tau; paper Lemma 4.3).
///
/// Gain and value sums run through the kernel layer's canonical reduction
/// order (common/simd.h), so they are bit-identical across dispatch levels.
class TruncatedMhrState {
 public:
  explicit TruncatedMhrState(const NetEvaluator* eval);

  /// Clears back to the empty set.
  void Reset();

  /// mhr_tau gain of adding `row` to the current set.
  double MarginalGain(int row, double tau) const;

  /// Commits `row` into the current set.
  void Add(int row);

  /// Current truncated value mhr_tau(S | N).
  double TruncatedValue(double tau) const;

  /// Current (untruncated) net mhr: min_j hr(u_j, S).
  double NetMhr() const;

 private:
  const NetEvaluator* eval_;
  simd::AlignedVector cur_;  // Best happiness per direction over current S.
};

}  // namespace fairhms

#endif  // FAIRHMS_CORE_NET_EVALUATOR_H_
