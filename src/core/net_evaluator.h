// Net-based happiness evaluation: happiness ratios measured against a finite
// utility net N instead of the continuous sphere (Lemma 4.1 bounds the gap).

#ifndef FAIRHMS_CORE_NET_EVALUATOR_H_
#define FAIRHMS_CORE_NET_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "utility/utility_net.h"

namespace fairhms {

/// Precomputes, per net direction, the best database score (the happiness
/// denominators), and answers hr / mhr queries against the net.
///
/// `db_rows` defines the denominator population — pass the global skyline
/// (scores of dominated points never attain the max, so this is exact).
///
/// The denominator precompute, candidate-cache fill and mhr sweep fan out
/// over `threads` lanes (0 = DefaultThreads()); every result is
/// bit-identical across thread counts, and threads = 1 takes the exact
/// serial path.
class NetEvaluator {
 public:
  NetEvaluator(const Dataset* data, const UtilityNet* net,
               std::vector<int> db_rows, int threads = 0);

  const Dataset& data() const { return *data_; }
  const UtilityNet& net() const { return *net_; }
  size_t net_size() const { return net_->size(); }
  int threads() const { return threads_; }

  /// Best database score for direction j (denominator).
  double best(size_t j) const { return best_[j]; }

  /// Happiness of a single point under direction j:
  /// <u_j, p> / best(j), clamped to [0, 1]; 1 on degenerate directions.
  double PointHappiness(size_t j, int row) const;

  /// Fills out[0..m) with the happiness of `row` under every direction.
  void PointHappinessRow(int row, double* out) const;

  /// hr(u_j, S): best happiness among S under direction j (0 if S empty).
  double Hr(size_t j, const std::vector<int>& rows) const;

  /// mhr(S | N): minimum over the net of Hr.
  double Mhr(const std::vector<int>& rows) const;

  /// Optionally caches the happiness rows of the given candidate rows for
  /// O(m) lookups inside greedy loops. Caching is skipped when it would
  /// exceed `max_entries` matrix cells.
  void CacheCandidates(const std::vector<int>& rows,
                       size_t max_entries = 40'000'000);

  /// Cached happiness row of `row`, or nullptr when not cached.
  const double* cached_row(int row) const {
    if (cache_offset_.empty()) return nullptr;
    const int64_t off = cache_offset_[static_cast<size_t>(row)];
    return off < 0 ? nullptr : &cache_[static_cast<size_t>(off)];
  }

  /// Resident bytes of the candidate cache (0 when CacheCandidates was
  /// never called or declined because of its entry budget).
  size_t CandidateCacheBytes() const {
    return cache_.size() * sizeof(double) +
           cache_offset_.size() * sizeof(int64_t);
  }

 private:
  const Dataset* data_;
  const UtilityNet* net_;
  int threads_;  ///< Effective lane count (already resolved, >= 1).
  std::vector<int> db_rows_;
  std::vector<double> best_;
  std::vector<int64_t> cache_offset_;  // Per dataset row; -1 = not cached.
  std::vector<double> cache_;          // Concatenated happiness rows.
};

/// Incremental state for greedy maximization of the truncated MHR
///   mhr_tau(S | N) = (1/m) * sum_j min(hr(u_j, S), tau)
/// (monotone submodular for any cap tau; paper Lemma 4.3).
class TruncatedMhrState {
 public:
  explicit TruncatedMhrState(const NetEvaluator* eval);

  /// Clears back to the empty set.
  void Reset();

  /// mhr_tau gain of adding `row` to the current set.
  double MarginalGain(int row, double tau) const;

  /// Commits `row` into the current set.
  void Add(int row);

  /// Current truncated value mhr_tau(S | N).
  double TruncatedValue(double tau) const;

  /// Current (untruncated) net mhr: min_j hr(u_j, S).
  double NetMhr() const;

 private:
  const NetEvaluator* eval_;
  std::vector<double> cur_;  // Best happiness per direction over current S.
  mutable std::vector<double> scratch_;
};

}  // namespace fairhms

#endif  // FAIRHMS_CORE_NET_EVALUATOR_H_
