// Unified solution evaluation used by benches, examples and tests.

#ifndef FAIRHMS_CORE_EVALUATE_H_
#define FAIRHMS_CORE_EVALUATE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// How to measure mhr(S).
enum class MhrMethod {
  kAuto,     ///< Exact2D for d = 2; ExactLp for small skylines; Net otherwise.
  kExact2D,  ///< Geometric envelope evaluator (d = 2 only).
  kExactLp,  ///< Witness LPs (exact, any d).
  kNet,      ///< High-resolution random evaluation net (upper bound on mhr).
};

/// Options for EvaluateMhr.
struct EvalOptions {
  MhrMethod method = MhrMethod::kAuto;
  /// Direction count for MhrMethod::kNet.
  size_t net_size = 20000;
  /// kAuto falls back from ExactLp to Net above this witness count.
  size_t lp_witness_limit = 4000;
  uint64_t seed = 0xE7A1u;
  /// Evaluation lanes (0 = DefaultThreads(), 1 = exact serial path). The
  /// result is bit-identical across thread counts.
  int threads = 0;
  /// Cross-query memoization of the MhrMethod::kNet net + denominators
  /// (not owned; null = build per call). Results are bit-identical either
  /// way.
  ArtifactCache* cache = nullptr;
};

/// Evaluates mhr(S) against the database represented by `db_rows` (pass the
/// global skyline). Choice of engine per `opts`.
double EvaluateMhr(const Dataset& data, const std::vector<int>& db_rows,
                   const std::vector<int>& solution,
                   const EvalOptions& opts = {});

}  // namespace fairhms

#endif  // FAIRHMS_CORE_EVALUATE_H_
