// Exact minimum-happiness-ratio evaluation.
//
// * d = 2: geometric, via the lambda-space upper envelope (O((n+|S|) log n)).
// * any d: LP-based. For every potential witness w (a skyline point of the
//   database) solve
//       max x   s.t.  <u, w> = 1,  <u, s> + x <= 1  for all s in S,  u,x >= 0
//   The max over witnesses is the maximum regret ratio; mhr = 1 - mrr.
//   (One small LP per witness — the classical evaluation scheme of
//   Nanongkai et al., also the engine behind RDP-Greedy / F-Greedy.)

#ifndef FAIRHMS_CORE_EXACT_EVALUATOR_H_
#define FAIRHMS_CORE_EXACT_EVALUATOR_H_

#include <vector>

#include "data/dataset.h"
#include "geom/envelope2d.h"

namespace fairhms {

/// Builds the lambda-space upper envelope of the given rows (d = 2 only).
Envelope2D BuildEnvelope2D(const Dataset& data, const std::vector<int>& rows);

/// Exact 2D mhr of S against the database rows `db_rows` (the skyline
/// suffices). Returns 0 for an empty S.
double MhrExact2D(const Dataset& data, const std::vector<int>& db_rows,
                  const std::vector<int>& solution);

/// Result of a max-regret witness search.
struct RegretWitness {
  int row = -1;              ///< Witness with the maximum regret (-1: none).
  double regret = 0.0;       ///< Maximum regret ratio (>= 0).
  std::vector<double> utility;  ///< A utility vector attaining it.
};

/// LP-based max-regret witness over `db_rows` against solution S. S may be
/// empty (regret 1 with an arbitrary witness). Witnesses that are members
/// of S or weakly dominated by a member of S are skipped (regret 0).
///
/// The witness LPs are independent and fan out over `threads` lanes
/// (0 = DefaultThreads(), 1 = exact serial path); the winning witness is
/// picked by a serial first-maximum scan, so the result is bit-identical
/// for every thread count.
RegretWitness MaxRegretWitnessLp(const Dataset& data,
                                 const std::vector<int>& db_rows,
                                 const std::vector<int>& solution,
                                 int threads = 0);

/// Exact mhr via witness LPs: 1 - MaxRegretWitnessLp(...).regret.
double MhrExactLp(const Dataset& data, const std::vector<int>& db_rows,
                  const std::vector<int>& solution, int threads = 0);

/// Per-witness regrets, aligned with `witnesses`. Witnesses that are in S
/// or weakly dominated by a member of S get 0. This is the "one LP per
/// skyline item per iteration" workhorse of RDP-Greedy / F-Greedy. Each
/// lane owns a disjoint slice of the output (same threads contract as
/// MaxRegretWitnessLp).
std::vector<double> AllWitnessRegretsLp(const Dataset& data,
                                        const std::vector<int>& witnesses,
                                        const std::vector<int>& solution,
                                        int threads = 0);

}  // namespace fairhms

#endif  // FAIRHMS_CORE_EXACT_EVALUATOR_H_
