#include "core/exact_evaluator.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "geom/dominance.h"
#include "geom/vec.h"
#include "lp/simplex.h"

namespace fairhms {

namespace {

/// One witness LP: max regret over utilities normalized to <u, w> = 1.
struct WitnessLpResult {
  bool optimal = false;
  double objective = 0.0;      ///< Raw LP objective (unclamped).
  std::vector<double> utility;  ///< Maximizing utility (size d), if optimal.
};

/// Solves the witness LP for `w` against S, or returns a non-optimal result
/// when the witness is skippable (member of S, weakly dominated, or
/// non-positive). `sol_block` is S packed dimension-major (the weak-
/// dominance skip runs on the SIMD kernel layer; a member of S weakly
/// dominates itself, so the membership check is subsumed). Pure function of
/// its arguments — safe to run per-witness in parallel.
WitnessLpResult SolveWitnessLp(const Dataset& data, int w,
                               const std::vector<int>& solution,
                               const simd::ColumnBlock& sol_block,
                               bool want_utility) {
  WitnessLpResult out;
  const int d = data.dim();
  const double* pw = data.point(static_cast<size_t>(w));
  // Cheap skips: members of S and points weakly dominated by S have
  // regret 0 and can never be the (positive) maximum.
  if (simd::AnyWeaklyDominates(sol_block.cols(), solution.size(),
                               static_cast<size_t>(d), pw)) {
    return out;
  }
  if (SumCoords(pw, static_cast<size_t>(d)) <= 0.0) return out;

  // Variables: u[0..d-1], x. Maximize x.
  LpProblem lp(d + 1);
  std::vector<double> obj(static_cast<size_t>(d + 1), 0.0);
  obj[static_cast<size_t>(d)] = 1.0;
  lp.SetObjective(obj);

  std::vector<double> row(static_cast<size_t>(d + 1), 0.0);
  for (int j = 0; j < d; ++j) row[static_cast<size_t>(j)] = pw[j];
  row[static_cast<size_t>(d)] = 0.0;
  lp.AddConstraint(row, RelOp::kEq, 1.0);  // <u, w> = 1.

  for (int s : solution) {
    const double* ps = data.point(static_cast<size_t>(s));
    for (int j = 0; j < d; ++j) row[static_cast<size_t>(j)] = ps[j];
    row[static_cast<size_t>(d)] = 1.0;
    lp.AddConstraint(row, RelOp::kLe, 1.0);  // <u, s> + x <= 1.
  }

  const LpResult res = lp.Solve();
  if (res.status != LpStatus::kOptimal) return out;
  out.optimal = true;
  out.objective = res.objective;
  if (want_utility) out.utility.assign(res.x.begin(), res.x.begin() + d);
  return out;
}

}  // namespace

Envelope2D BuildEnvelope2D(const Dataset& data, const std::vector<int>& rows) {
  assert(data.dim() == 2);
  std::vector<IndexedPoint2> pts;
  pts.reserve(rows.size());
  for (int r : rows) {
    pts.push_back({data.at(static_cast<size_t>(r), 0),
                   data.at(static_cast<size_t>(r), 1), r});
  }
  return Envelope2D::Build(pts);
}

double MhrExact2D(const Dataset& data, const std::vector<int>& db_rows,
                  const std::vector<int>& solution) {
  assert(data.dim() == 2);
  if (solution.empty() || db_rows.empty()) return 0.0;
  const Envelope2D env_d = BuildEnvelope2D(data, db_rows);
  const Envelope2D env_s = BuildEnvelope2D(data, solution);
  return MinHappinessRatio2D(env_d, env_s);
}

RegretWitness MaxRegretWitnessLp(const Dataset& data,
                                 const std::vector<int>& db_rows,
                                 const std::vector<int>& solution,
                                 int threads) {
  const int d = data.dim();
  RegretWitness best;
  if (db_rows.empty()) return best;
  if (solution.empty()) {
    best.row = db_rows.front();
    best.regret = 1.0;
    best.utility.assign(static_cast<size_t>(d), 0.0);
    return best;
  }

  // Every witness LP into its own slot (objectives only — the losing
  // utilities would be discarded), then a serial first-maximum scan in
  // witness order picks the same winner the all-serial loop does, and one
  // targeted re-solve recovers its utility (the LP is deterministic, so
  // the re-solve reproduces the identical optimum).
  const simd::ColumnBlock sol_block = data.PackColumns(solution);
  std::vector<WitnessLpResult> results(db_rows.size());
  ParallelFor(threads, db_rows.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = SolveWitnessLp(data, db_rows[i], solution, sol_block,
                                  /*want_utility=*/false);
    }
  });
  for (size_t i = 0; i < db_rows.size(); ++i) {
    if (results[i].optimal && results[i].objective > best.regret) {
      best.regret = results[i].objective;
      best.row = db_rows[i];
    }
  }
  if (best.row >= 0) {
    best.utility = SolveWitnessLp(data, best.row, solution, sol_block,
                                  /*want_utility=*/true)
                       .utility;
  }
  best.regret = std::clamp(best.regret, 0.0, 1.0);
  return best;
}

double MhrExactLp(const Dataset& data, const std::vector<int>& db_rows,
                  const std::vector<int>& solution, int threads) {
  if (solution.empty()) return 0.0;
  return 1.0 - MaxRegretWitnessLp(data, db_rows, solution, threads).regret;
}

std::vector<double> AllWitnessRegretsLp(const Dataset& data,
                                        const std::vector<int>& witnesses,
                                        const std::vector<int>& solution,
                                        int threads) {
  std::vector<double> regrets(witnesses.size(), 0.0);
  if (solution.empty()) {
    std::fill(regrets.begin(), regrets.end(), 1.0);
    return regrets;
  }
  const simd::ColumnBlock sol_block = data.PackColumns(solution);
  ParallelFor(threads, witnesses.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const WitnessLpResult res = SolveWitnessLp(
          data, witnesses[i], solution, sol_block, /*want_utility=*/false);
      if (res.optimal) regrets[i] = std::clamp(res.objective, 0.0, 1.0);
    }
  });
  return regrets;
}

}  // namespace fairhms
