#include "core/exact_evaluator.h"

#include <algorithm>
#include <cassert>

#include "geom/dominance.h"
#include "geom/vec.h"
#include "lp/simplex.h"

namespace fairhms {

Envelope2D BuildEnvelope2D(const Dataset& data, const std::vector<int>& rows) {
  assert(data.dim() == 2);
  std::vector<IndexedPoint2> pts;
  pts.reserve(rows.size());
  for (int r : rows) {
    pts.push_back({data.at(static_cast<size_t>(r), 0),
                   data.at(static_cast<size_t>(r), 1), r});
  }
  return Envelope2D::Build(pts);
}

double MhrExact2D(const Dataset& data, const std::vector<int>& db_rows,
                  const std::vector<int>& solution) {
  assert(data.dim() == 2);
  if (solution.empty() || db_rows.empty()) return 0.0;
  const Envelope2D env_d = BuildEnvelope2D(data, db_rows);
  const Envelope2D env_s = BuildEnvelope2D(data, solution);
  return MinHappinessRatio2D(env_d, env_s);
}

RegretWitness MaxRegretWitnessLp(const Dataset& data,
                                 const std::vector<int>& db_rows,
                                 const std::vector<int>& solution) {
  const int d = data.dim();
  RegretWitness best;
  if (db_rows.empty()) return best;
  if (solution.empty()) {
    best.row = db_rows.front();
    best.regret = 1.0;
    best.utility.assign(static_cast<size_t>(d), 0.0);
    return best;
  }

  for (int w : db_rows) {
    const double* pw = data.point(static_cast<size_t>(w));
    // Cheap skips: members of S and points weakly dominated by S have
    // regret 0 and can never be the (positive) maximum.
    bool skip = false;
    for (int s : solution) {
      if (s == w ||
          WeaklyDominates(data.point(static_cast<size_t>(s)), pw,
                          static_cast<size_t>(d))) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    if (SumCoords(pw, static_cast<size_t>(d)) <= 0.0) continue;

    // Variables: u[0..d-1], x. Maximize x.
    LpProblem lp(d + 1);
    std::vector<double> obj(static_cast<size_t>(d + 1), 0.0);
    obj[static_cast<size_t>(d)] = 1.0;
    lp.SetObjective(obj);

    std::vector<double> row(static_cast<size_t>(d + 1), 0.0);
    for (int j = 0; j < d; ++j) row[static_cast<size_t>(j)] = pw[j];
    row[static_cast<size_t>(d)] = 0.0;
    lp.AddConstraint(row, RelOp::kEq, 1.0);  // <u, w> = 1.

    for (int s : solution) {
      const double* ps = data.point(static_cast<size_t>(s));
      for (int j = 0; j < d; ++j) row[static_cast<size_t>(j)] = ps[j];
      row[static_cast<size_t>(d)] = 1.0;
      lp.AddConstraint(row, RelOp::kLe, 1.0);  // <u, s> + x <= 1.
    }

    const LpResult res = lp.Solve();
    if (res.status != LpStatus::kOptimal) continue;
    if (res.objective > best.regret) {
      best.regret = res.objective;
      best.row = w;
      best.utility.assign(res.x.begin(), res.x.begin() + d);
    }
  }
  best.regret = std::clamp(best.regret, 0.0, 1.0);
  return best;
}

double MhrExactLp(const Dataset& data, const std::vector<int>& db_rows,
                  const std::vector<int>& solution) {
  if (solution.empty()) return 0.0;
  return 1.0 - MaxRegretWitnessLp(data, db_rows, solution).regret;
}

std::vector<double> AllWitnessRegretsLp(const Dataset& data,
                                        const std::vector<int>& witnesses,
                                        const std::vector<int>& solution) {
  const int d = data.dim();
  std::vector<double> regrets(witnesses.size(), 0.0);
  if (solution.empty()) {
    std::fill(regrets.begin(), regrets.end(), 1.0);
    return regrets;
  }
  std::vector<double> obj(static_cast<size_t>(d + 1), 0.0);
  obj[static_cast<size_t>(d)] = 1.0;
  std::vector<double> row(static_cast<size_t>(d + 1), 0.0);
  for (size_t wi = 0; wi < witnesses.size(); ++wi) {
    const int w = witnesses[wi];
    const double* pw = data.point(static_cast<size_t>(w));
    bool skip = false;
    for (int s : solution) {
      if (s == w ||
          WeaklyDominates(data.point(static_cast<size_t>(s)), pw,
                          static_cast<size_t>(d))) {
        skip = true;
        break;
      }
    }
    if (skip || SumCoords(pw, static_cast<size_t>(d)) <= 0.0) continue;

    LpProblem lp(d + 1);
    lp.SetObjective(obj);
    for (int j = 0; j < d; ++j) row[static_cast<size_t>(j)] = pw[j];
    row[static_cast<size_t>(d)] = 0.0;
    lp.AddConstraint(row, RelOp::kEq, 1.0);
    for (int s : solution) {
      const double* ps = data.point(static_cast<size_t>(s));
      for (int j = 0; j < d; ++j) row[static_cast<size_t>(j)] = ps[j];
      row[static_cast<size_t>(d)] = 1.0;
      lp.AddConstraint(row, RelOp::kLe, 1.0);
    }
    const LpResult res = lp.Solve();
    if (res.status == LpStatus::kOptimal) {
      regrets[wi] = std::clamp(res.objective, 0.0, 1.0);
    }
  }
  return regrets;
}

}  // namespace fairhms
