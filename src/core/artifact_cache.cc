#include "core/artifact_cache.h"

#include <tuple>
#include <utility>

#include "common/string_util.h"
#include "skyline/skyline.h"

namespace fairhms {

namespace {

uint64_t VectorBytes(const std::vector<int>& v) {
  return v.size() * sizeof(int);
}

uint64_t NestedVectorBytes(const std::vector<std::vector<int>>& v) {
  uint64_t bytes = 0;
  for (const auto& inner : v) bytes += VectorBytes(inner);
  return bytes;
}

std::string CounterLine(const char* name, const CacheStats::Counter& c) {
  return StrFormat("%s: %llu hits, %llu misses, %.1f KiB",
                   name, static_cast<unsigned long long>(c.hits),
                   static_cast<unsigned long long>(c.misses),
                   static_cast<double>(c.bytes) / 1024.0);
}

}  // namespace

uint64_t CacheStats::TotalHits() const {
  return nets.hits + evaluators.hits + skylines.hits + group_skylines.hits +
         pools.hits + groups.hits + projections.hits;
}

uint64_t CacheStats::TotalMisses() const {
  return nets.misses + evaluators.misses + skylines.misses +
         group_skylines.misses + pools.misses + groups.misses +
         projections.misses;
}

uint64_t CacheStats::TotalBytes() const {
  return nets.bytes + evaluators.bytes + skylines.bytes +
         group_skylines.bytes + pools.bytes + groups.bytes +
         projections.bytes;
}

std::string CacheStats::ToString() const {
  std::string out = CounterLine("nets", nets);
  out += "; " + CounterLine("evaluators", evaluators);
  out += "; " + CounterLine("skylines", skylines);
  out += "; " + CounterLine("group_skylines", group_skylines);
  out += "; " + CounterLine("pools", pools);
  out += "; " + CounterLine("groups", groups);
  out += "; " + CounterLine("projections", projections);
  return out;
}

bool ArtifactCache::NetKey::operator<(const NetKey& o) const {
  return std::tie(d, m, rng_state) < std::tie(o.d, o.m, o.rng_state);
}

bool ArtifactCache::EvalKey::operator<(const EvalKey& o) const {
  return std::tie(data, net, threads, db_rows, cache_rows) <
         std::tie(o.data, o.net, o.threads, o.db_rows, o.cache_rows);
}

std::shared_ptr<const UtilityNet> ArtifactCache::Net(int d, size_t m,
                                                     Rng* rng) {
  NetKey key{d, static_cast<uint64_t>(m), rng->StateKey()};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nets_.find(key);
  if (it != nets_.end()) {
    ++stats_.nets.hits;
    *rng = it->second.post_state;  // Continue the stream past the sample.
    return it->second.net;
  }
  ++stats_.nets.misses;
  auto net = std::make_shared<const UtilityNet>(
      UtilityNet::SampleRandom(d, m, rng));
  stats_.nets.bytes += m * static_cast<uint64_t>(d) * sizeof(double);
  nets_.emplace(std::move(key), NetEntry{net, *rng});
  return net;
}

std::shared_ptr<const NetEvaluator> ArtifactCache::Evaluator(
    const Dataset& data, std::shared_ptr<const UtilityNet> net,
    const std::vector<int>& db_rows, const std::vector<int>& cache_rows,
    int threads) {
  EvalKey key{&data, net.get(), db_rows, cache_rows, threads};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = evaluators_.find(key);
  if (it != evaluators_.end()) {
    ++stats_.evaluators.hits;
    // Still valid at this version (coordinates are immutable, so a key
    // match means identical precomputes): refresh the stamp so the entry
    // survives the superseded-version sweep below.
    it->second.data_version = data.version();
    return it->second.evaluator;
  }
  ++stats_.evaluators.misses;
  // Evict this dataset's entries stranded at older versions: their row
  // sets never recur once the table mutated, so under churn they would
  // pile up one working set per version. Never-mutated datasets never
  // evict — a static sweep keeps its full evaluator cache (in-flight
  // solves must not race mutations, per the class contract, so nothing
  // holds an evicted reference).
  for (auto sweep = evaluators_.begin(); sweep != evaluators_.end();) {
    if (sweep->first.data == &data &&
        sweep->second.data_version < data.version()) {
      stats_.evaluators.bytes -= sweep->second.bytes;
      sweep = evaluators_.erase(sweep);
    } else {
      ++sweep;
    }
  }
  auto eval = std::make_shared<NetEvaluator>(&data, net.get(), db_rows,
                                             threads);
  if (!cache_rows.empty()) eval->CacheCandidates(cache_rows);
  // CandidateCacheBytes reports what CacheCandidates actually allocated
  // (it declines oversized pools), so the stats never overstate memory.
  const uint64_t entry_bytes =
      net->size() * sizeof(double) + eval->CandidateCacheBytes();
  stats_.evaluators.bytes += entry_bytes;
  std::shared_ptr<const NetEvaluator> stored = std::move(eval);
  evaluators_.emplace(std::move(key),
                      EvalEntry{stored, std::move(net), entry_bytes,
                                data.version()});
  return stored;
}

namespace {

/// Byte size of a map value, for the pruning helper below.
uint64_t EntryBytes(const std::vector<int>& v) { return VectorBytes(v); }
uint64_t EntryBytes(const std::vector<std::vector<int>>& v) {
  return NestedVectorBytes(v);
}

}  // namespace

// Erases every entry of `map` whose key matches `same_object` — the
// superseded versions of a mutated dataset/grouping, plus any entry the
// caller is about to overwrite — refunding their bytes. Called under the
// cache lock right before the store.
template <class Map, class SameObject>
static void PruneSuperseded(Map* map, const SameObject& same_object,
                            uint64_t* bytes) {
  for (auto it = map->begin(); it != map->end();) {
    if (same_object(it->first)) {
      *bytes -= EntryBytes(it->second);
      it = map->erase(it);
    } else {
      ++it;
    }
  }
}

const std::vector<int>& ArtifactCache::Skyline(const Dataset& data) {
  const DataKey key{&data, data.version()};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = skylines_.find(key);
  if (it != skylines_.end()) {
    ++stats_.skylines.hits;
    return it->second;
  }
  ++stats_.skylines.misses;
  PruneSuperseded(
      &skylines_, [&](const DataKey& k) { return k.first == &data; },
      &stats_.skylines.bytes);
  auto [pos, inserted] = skylines_.emplace(key, ComputeSkyline(data));
  (void)inserted;
  stats_.skylines.bytes += VectorBytes(pos->second);
  return pos->second;
}

void ArtifactCache::PutSkyline(const Dataset& data, std::vector<int> skyline) {
  const DataKey key{&data, data.version()};
  std::lock_guard<std::mutex> lock(mu_);
  PruneSuperseded(
      &skylines_, [&](const DataKey& k) { return k.first == &data; },
      &stats_.skylines.bytes);
  auto [pos, inserted] = skylines_.insert_or_assign(key, std::move(skyline));
  (void)inserted;
  stats_.skylines.bytes += VectorBytes(pos->second);
}

namespace {

/// True when a quad key references the same (dataset, grouping) objects.
struct SamePair {
  const void* data;
  const void* grouping;
  bool operator()(const std::tuple<const void*, const void*, uint64_t,
                                   uint64_t>& k) const {
    return std::get<0>(k) == data && std::get<1>(k) == grouping;
  }
};

}  // namespace

const std::vector<std::vector<int>>& ArtifactCache::GroupSkylines(
    const Dataset& data, const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_skylines_.find(key);
  if (it != group_skylines_.end()) {
    ++stats_.group_skylines.hits;
    return it->second;
  }
  ++stats_.group_skylines.misses;
  PruneSuperseded(&group_skylines_, SamePair{&data, &grouping},
                  &stats_.group_skylines.bytes);
  auto [pos, inserted] =
      group_skylines_.emplace(key, ComputeGroupSkylines(data, grouping));
  (void)inserted;
  stats_.group_skylines.bytes += NestedVectorBytes(pos->second);
  return pos->second;
}

const std::vector<int>& ArtifactCache::FairPool(const Dataset& data,
                                                const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(key);
  if (it != pools_.end()) {
    ++stats_.pools.hits;
    return it->second;
  }
  ++stats_.pools.misses;
  PruneSuperseded(&pools_, SamePair{&data, &grouping},
                  &stats_.pools.bytes);
  auto [pos, inserted] =
      pools_.emplace(key, ComputeFairCandidatePool(data, grouping));
  (void)inserted;
  stats_.pools.bytes += VectorBytes(pos->second);
  return pos->second;
}

const std::vector<int>& ArtifactCache::GroupCounts(const Dataset& data,
                                                   const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_counts_.find(key);
  if (it != group_counts_.end()) {
    ++stats_.groups.hits;
    return it->second;
  }
  ++stats_.groups.misses;
  PruneSuperseded(&group_counts_, SamePair{&data, &grouping},
                  &stats_.groups.bytes);
  auto [pos, inserted] = group_counts_.emplace(key, grouping.LiveCounts(data));
  (void)inserted;
  stats_.groups.bytes += VectorBytes(pos->second);
  return pos->second;
}

const std::vector<std::vector<int>>& ArtifactCache::GroupMembers(
    const Dataset& data, const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_members_.find(key);
  if (it != group_members_.end()) {
    ++stats_.groups.hits;
    return it->second;
  }
  ++stats_.groups.misses;
  PruneSuperseded(&group_members_, SamePair{&data, &grouping},
                  &stats_.groups.bytes);
  auto [pos, inserted] =
      group_members_.emplace(key, grouping.MembersLive(data));
  (void)inserted;
  stats_.groups.bytes += NestedVectorBytes(pos->second);
  return pos->second;
}

void ArtifactCache::PutGroupArtifacts(
    const Dataset& data, const Grouping& grouping,
    std::vector<std::vector<int>> group_skylines, std::vector<int> fair_pool,
    std::vector<int> live_counts,
    std::vector<std::vector<int>> live_members) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  const SamePair same{&data, &grouping};
  std::lock_guard<std::mutex> lock(mu_);
  PruneSuperseded(&group_skylines_, same, &stats_.group_skylines.bytes);
  PruneSuperseded(&pools_, same, &stats_.pools.bytes);
  PruneSuperseded(&group_counts_, same, &stats_.groups.bytes);
  PruneSuperseded(&group_members_, same, &stats_.groups.bytes);
  stats_.group_skylines.bytes += NestedVectorBytes(group_skylines);
  group_skylines_.insert_or_assign(key, std::move(group_skylines));
  stats_.pools.bytes += VectorBytes(fair_pool);
  pools_.insert_or_assign(key, std::move(fair_pool));
  stats_.groups.bytes += VectorBytes(live_counts);
  group_counts_.insert_or_assign(key, std::move(live_counts));
  stats_.groups.bytes += NestedVectorBytes(live_members);
  group_members_.insert_or_assign(key, std::move(live_members));
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::AccountProjection(bool hit, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++stats_.projections.hits;
  } else {
    ++stats_.projections.misses;
    stats_.projections.bytes += bytes;
  }
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  nets_.clear();
  evaluators_.clear();
  skylines_.clear();
  group_skylines_.clear();
  pools_.clear();
  group_counts_.clear();
  group_members_.clear();
  stats_.nets.bytes = 0;
  stats_.evaluators.bytes = 0;
  stats_.skylines.bytes = 0;
  stats_.group_skylines.bytes = 0;
  stats_.pools.bytes = 0;
  stats_.groups.bytes = 0;
  stats_.projections.bytes = 0;
}

std::shared_ptr<const UtilityNet> GetOrSampleNet(ArtifactCache* cache, int d,
                                                 size_t m, Rng* rng) {
  if (cache != nullptr) return cache->Net(d, m, rng);
  return std::make_shared<const UtilityNet>(
      UtilityNet::SampleRandom(d, m, rng));
}

namespace {

/// Transient evaluator bundled with the net it points into (NetEvaluator
/// holds a raw net pointer).
struct EvalWithNet {
  std::shared_ptr<const UtilityNet> net;
  NetEvaluator eval;
  EvalWithNet(std::shared_ptr<const UtilityNet> n, const Dataset& data,
              const std::vector<int>& db_rows, int threads)
      : net(std::move(n)), eval(&data, net.get(), db_rows, threads) {}
};

}  // namespace

std::shared_ptr<const NetEvaluator> GetOrBuildEvaluator(
    ArtifactCache* cache, const Dataset& data,
    std::shared_ptr<const UtilityNet> net, const std::vector<int>& db_rows,
    const std::vector<int>& cache_rows, int threads) {
  if (cache != nullptr) {
    return cache->Evaluator(data, std::move(net), db_rows, cache_rows,
                            threads);
  }
  auto holder =
      std::make_shared<EvalWithNet>(std::move(net), data, db_rows, threads);
  if (!cache_rows.empty()) holder->eval.CacheCandidates(cache_rows);
  return std::shared_ptr<const NetEvaluator>(holder, &holder->eval);
}

}  // namespace fairhms
