#include "core/artifact_cache.h"

#include <tuple>
#include <utility>

#include "common/string_util.h"
#include "skyline/skyline.h"

namespace fairhms {

namespace {

uint64_t VectorBytes(const std::vector<int>& v) {
  return v.size() * sizeof(int);
}

uint64_t NestedVectorBytes(const std::vector<std::vector<int>>& v) {
  uint64_t bytes = 0;
  for (const auto& inner : v) bytes += VectorBytes(inner);
  return bytes;
}

std::string CounterLine(const char* name, const CacheStats::Counter& c) {
  return StrFormat("%s: %llu hits, %llu misses, %.1f KiB",
                   name, static_cast<unsigned long long>(c.hits),
                   static_cast<unsigned long long>(c.misses),
                   static_cast<double>(c.bytes) / 1024.0);
}

}  // namespace

uint64_t CacheStats::TotalHits() const {
  return nets.hits + evaluators.hits + skylines.hits + group_skylines.hits +
         pools.hits + groups.hits + projections.hits;
}

uint64_t CacheStats::TotalMisses() const {
  return nets.misses + evaluators.misses + skylines.misses +
         group_skylines.misses + pools.misses + groups.misses +
         projections.misses;
}

uint64_t CacheStats::TotalBytes() const {
  return nets.bytes + evaluators.bytes + skylines.bytes +
         group_skylines.bytes + pools.bytes + groups.bytes +
         projections.bytes;
}

std::string CacheStats::ToString() const {
  std::string out = CounterLine("nets", nets);
  out += "; " + CounterLine("evaluators", evaluators);
  out += "; " + CounterLine("skylines", skylines);
  out += "; " + CounterLine("group_skylines", group_skylines);
  out += "; " + CounterLine("pools", pools);
  out += "; " + CounterLine("groups", groups);
  out += "; " + CounterLine("projections", projections);
  return out;
}

bool ArtifactCache::NetKey::operator<(const NetKey& o) const {
  return std::tie(d, m, rng_state) < std::tie(o.d, o.m, o.rng_state);
}

bool ArtifactCache::EvalKey::operator<(const EvalKey& o) const {
  return std::tie(data, net, threads, db_rows, cache_rows) <
         std::tie(o.data, o.net, o.threads, o.db_rows, o.cache_rows);
}

std::shared_ptr<const UtilityNet> ArtifactCache::Net(int d, size_t m,
                                                     Rng* rng) {
  NetKey key{d, static_cast<uint64_t>(m), rng->StateKey()};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nets_.find(key);
  if (it != nets_.end()) {
    ++stats_.nets.hits;
    *rng = it->second.post_state;  // Continue the stream past the sample.
    return it->second.net;
  }
  ++stats_.nets.misses;
  auto net = std::make_shared<const UtilityNet>(
      UtilityNet::SampleRandom(d, m, rng));
  stats_.nets.bytes += m * static_cast<uint64_t>(d) * sizeof(double);
  nets_.emplace(std::move(key), NetEntry{net, *rng});
  return net;
}

std::shared_ptr<const NetEvaluator> ArtifactCache::Evaluator(
    const Dataset& data, std::shared_ptr<const UtilityNet> net,
    const std::vector<int>& db_rows, const std::vector<int>& cache_rows,
    int threads) {
  EvalKey key{&data, net.get(), db_rows, cache_rows, threads};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = evaluators_.find(key);
  if (it != evaluators_.end()) {
    ++stats_.evaluators.hits;
    return it->second.evaluator;
  }
  ++stats_.evaluators.misses;
  auto eval = std::make_shared<NetEvaluator>(&data, net.get(), db_rows,
                                             threads);
  if (!cache_rows.empty()) eval->CacheCandidates(cache_rows);
  // CandidateCacheBytes reports what CacheCandidates actually allocated
  // (it declines oversized pools), so the stats never overstate memory.
  stats_.evaluators.bytes +=
      net->size() * sizeof(double) + eval->CandidateCacheBytes();
  std::shared_ptr<const NetEvaluator> stored = std::move(eval);
  evaluators_.emplace(std::move(key), EvalEntry{stored, std::move(net)});
  return stored;
}

const std::vector<int>& ArtifactCache::Skyline(const Dataset& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = skylines_.find(&data);
  if (it != skylines_.end()) {
    ++stats_.skylines.hits;
    return it->second;
  }
  ++stats_.skylines.misses;
  auto [pos, inserted] = skylines_.emplace(&data, ComputeSkyline(data));
  (void)inserted;
  stats_.skylines.bytes += VectorBytes(pos->second);
  return pos->second;
}

const std::vector<std::vector<int>>& ArtifactCache::GroupSkylines(
    const Dataset& data, const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_skylines_.find(key);
  if (it != group_skylines_.end()) {
    ++stats_.group_skylines.hits;
    return it->second;
  }
  ++stats_.group_skylines.misses;
  auto [pos, inserted] =
      group_skylines_.emplace(key, ComputeGroupSkylines(data, grouping));
  (void)inserted;
  stats_.group_skylines.bytes += NestedVectorBytes(pos->second);
  return pos->second;
}

const std::vector<int>& ArtifactCache::FairPool(const Dataset& data,
                                                const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(key);
  if (it != pools_.end()) {
    ++stats_.pools.hits;
    return it->second;
  }
  ++stats_.pools.misses;
  auto [pos, inserted] =
      pools_.emplace(key, ComputeFairCandidatePool(data, grouping));
  (void)inserted;
  stats_.pools.bytes += VectorBytes(pos->second);
  return pos->second;
}

const std::vector<int>& ArtifactCache::GroupCounts(const Grouping& grouping) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_counts_.find(&grouping);
  if (it != group_counts_.end()) {
    ++stats_.groups.hits;
    return it->second;
  }
  ++stats_.groups.misses;
  auto [pos, inserted] = group_counts_.emplace(&grouping, grouping.Counts());
  (void)inserted;
  stats_.groups.bytes += VectorBytes(pos->second);
  return pos->second;
}

const std::vector<std::vector<int>>& ArtifactCache::GroupMembers(
    const Grouping& grouping) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_members_.find(&grouping);
  if (it != group_members_.end()) {
    ++stats_.groups.hits;
    return it->second;
  }
  ++stats_.groups.misses;
  auto [pos, inserted] = group_members_.emplace(&grouping, grouping.Members());
  (void)inserted;
  stats_.groups.bytes += NestedVectorBytes(pos->second);
  return pos->second;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::AccountProjection(bool hit, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++stats_.projections.hits;
  } else {
    ++stats_.projections.misses;
    stats_.projections.bytes += bytes;
  }
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  nets_.clear();
  evaluators_.clear();
  skylines_.clear();
  group_skylines_.clear();
  pools_.clear();
  group_counts_.clear();
  group_members_.clear();
  stats_.nets.bytes = 0;
  stats_.evaluators.bytes = 0;
  stats_.skylines.bytes = 0;
  stats_.group_skylines.bytes = 0;
  stats_.pools.bytes = 0;
  stats_.groups.bytes = 0;
  stats_.projections.bytes = 0;
}

std::shared_ptr<const UtilityNet> GetOrSampleNet(ArtifactCache* cache, int d,
                                                 size_t m, Rng* rng) {
  if (cache != nullptr) return cache->Net(d, m, rng);
  return std::make_shared<const UtilityNet>(
      UtilityNet::SampleRandom(d, m, rng));
}

namespace {

/// Transient evaluator bundled with the net it points into (NetEvaluator
/// holds a raw net pointer).
struct EvalWithNet {
  std::shared_ptr<const UtilityNet> net;
  NetEvaluator eval;
  EvalWithNet(std::shared_ptr<const UtilityNet> n, const Dataset& data,
              const std::vector<int>& db_rows, int threads)
      : net(std::move(n)), eval(&data, net.get(), db_rows, threads) {}
};

}  // namespace

std::shared_ptr<const NetEvaluator> GetOrBuildEvaluator(
    ArtifactCache* cache, const Dataset& data,
    std::shared_ptr<const UtilityNet> net, const std::vector<int>& db_rows,
    const std::vector<int>& cache_rows, int threads) {
  if (cache != nullptr) {
    return cache->Evaluator(data, std::move(net), db_rows, cache_rows,
                            threads);
  }
  auto holder =
      std::make_shared<EvalWithNet>(std::move(net), data, db_rows, threads);
  if (!cache_rows.empty()) holder->eval.CacheCandidates(cache_rows);
  return std::shared_ptr<const NetEvaluator>(holder, &holder->eval);
}

}  // namespace fairhms
