#include "core/artifact_cache.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

#include "common/simd.h"
#include "common/string_util.h"
#include "skyline/skyline.h"

namespace fairhms {

namespace {

uint64_t VectorBytes(const std::vector<int>& v) {
  return v.size() * sizeof(int);
}

uint64_t NestedVectorBytes(const std::vector<std::vector<int>>& v) {
  uint64_t bytes = 0;
  for (const auto& inner : v) bytes += VectorBytes(inner);
  return bytes;
}

std::string CounterLine(const char* name, const CacheStats::Counter& c) {
  return StrFormat("%s: %llu hits, %llu misses, %.1f KiB",
                   name, static_cast<unsigned long long>(c.hits),
                   static_cast<unsigned long long>(c.misses),
                   static_cast<double>(c.bytes) / 1024.0);
}

}  // namespace

uint64_t CacheStats::TotalHits() const {
  return nets.hits + evaluators.hits + skylines.hits + group_skylines.hits +
         pools.hits + groups.hits + projections.hits;
}

uint64_t CacheStats::TotalMisses() const {
  return nets.misses + evaluators.misses + skylines.misses +
         group_skylines.misses + pools.misses + groups.misses +
         projections.misses;
}

uint64_t CacheStats::TotalBytes() const {
  return nets.bytes + evaluators.bytes + skylines.bytes +
         group_skylines.bytes + pools.bytes + groups.bytes +
         projections.bytes;
}

std::string CacheStats::ToString() const {
  std::string out = CounterLine("nets", nets);
  out += "; " + CounterLine("evaluators", evaluators);
  out += "; " + CounterLine("skylines", skylines);
  out += "; " + CounterLine("group_skylines", group_skylines);
  out += "; " + CounterLine("pools", pools);
  out += "; " + CounterLine("groups", groups);
  out += "; " + CounterLine("projections", projections);
  Counter total;
  total.hits = TotalHits();
  total.misses = TotalMisses();
  total.bytes = TotalBytes();
  out += "; " + CounterLine("total", total);
  return out;
}

bool ArtifactCache::NetKey::operator<(const NetKey& o) const {
  return std::tie(d, m, rng_state) < std::tie(o.d, o.m, o.rng_state);
}

bool ArtifactCache::EvalKey::operator<(const EvalKey& o) const {
  return std::tie(data, net, threads, layout, db_rows, cache_rows) <
         std::tie(o.data, o.net, o.threads, o.layout, o.db_rows,
                  o.cache_rows);
}

void ArtifactCache::SetArbiter(CacheArbiter* arbiter) {
  MutexLock lock(&mu_);
  arbiter_ = arbiter;
}

std::shared_ptr<const UtilityNet> ArtifactCache::Net(int d, size_t m,
                                                     Rng* rng) {
  NetKey key{d, static_cast<uint64_t>(m), rng->StateKey()};
  std::shared_ptr<const UtilityNet> result;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = nets_.find(key);
    if (it != nets_.end()) {
      ++stats_.nets.hits;
      *rng = it->second.post_state;  // Continue the stream past the sample.
      return it->second.net;
    }
    ++stats_.nets.misses;
    auto net = std::make_shared<const UtilityNet>(
        UtilityNet::SampleRandom(d, m, rng));
    delta = static_cast<int64_t>(m * static_cast<uint64_t>(d) *
                                 sizeof(double));
    stats_.nets.bytes += static_cast<uint64_t>(delta);
    nets_.emplace(std::move(key), NetEntry{net, *rng});
    result = std::move(net);
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return result;
}

std::shared_ptr<const NetEvaluator> ArtifactCache::Evaluator(
    const Dataset& data, std::shared_ptr<const UtilityNet> net,
    const std::vector<int>& db_rows, const std::vector<int>& cache_rows,
    int threads) {
  EvalKey key{&data,      net.get(), db_rows,
              cache_rows, threads,   simd::LayoutKey()};
  std::shared_ptr<const NetEvaluator> result;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = evaluators_.find(key);
    if (it != evaluators_.end()) {
      ++stats_.evaluators.hits;
      // Still valid at this version (coordinates are immutable, so a key
      // match means identical precomputes): refresh the stamp so the entry
      // survives the superseded-version sweep below.
      it->second.data_version = data.version();
      return it->second.evaluator;
    }
    ++stats_.evaluators.misses;
    // Evict this dataset's entries stranded at older versions: their row
    // sets never recur once the table mutated, so under churn they would
    // pile up one working set per version. Never-mutated datasets never
    // evict — a static sweep keeps its full evaluator cache (in-flight
    // solves must not race mutations, per the class contract, so nothing
    // holds an evicted reference).
    for (auto sweep = evaluators_.begin(); sweep != evaluators_.end();) {
      if (sweep->first.data == &data &&
          sweep->second.data_version < data.version()) {
        stats_.evaluators.bytes -= sweep->second.bytes;
        delta -= static_cast<int64_t>(sweep->second.bytes);
        sweep = evaluators_.erase(sweep);
      } else {
        ++sweep;
      }
    }
    auto eval = std::make_shared<NetEvaluator>(&data, net.get(), db_rows,
                                               threads);
    if (!cache_rows.empty()) eval->CacheCandidates(cache_rows);
    // ResidentBytes covers the denominators, the dimension-major net block,
    // the packed db rows, and whatever CacheCandidates actually allocated
    // (it declines oversized pools), so the stats never overstate memory.
    const uint64_t entry_bytes = eval->ResidentBytes();
    stats_.evaluators.bytes += entry_bytes;
    delta += static_cast<int64_t>(entry_bytes);
    std::shared_ptr<const NetEvaluator> stored = std::move(eval);
    evaluators_.emplace(std::move(key),
                        EvalEntry{stored, std::move(net), entry_bytes,
                                  data.version()});
    result = std::move(stored);
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return result;
}

namespace {

/// Byte size of a map value, for the pruning helper below.
uint64_t EntryBytes(const std::vector<int>& v) { return VectorBytes(v); }
uint64_t EntryBytes(const std::vector<std::vector<int>>& v) {
  return NestedVectorBytes(v);
}

}  // namespace

// Erases every entry of `map` whose key matches `same_object` — the
// superseded versions of a mutated dataset/grouping, plus any entry the
// caller is about to overwrite — refunding their bytes. Called under the
// cache lock right before the store; the refunded bytes accumulate into
// `*delta` so the caller can settle with the arbiter after unlocking.
template <class Map, class SameObject>
static void PruneSuperseded(Map* map, const SameObject& same_object,
                            uint64_t* bytes, int64_t* delta) {
  for (auto it = map->begin(); it != map->end();) {
    if (same_object(it->first)) {
      *bytes -= EntryBytes(it->second);
      *delta -= static_cast<int64_t>(EntryBytes(it->second));
      it = map->erase(it);
    } else {
      ++it;
    }
  }
}

const std::vector<int>& ArtifactCache::Skyline(const Dataset& data) {
  const DataKey key{&data, data.version()};
  const std::vector<int>* result = nullptr;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = skylines_.find(key);
    if (it != skylines_.end()) {
      ++stats_.skylines.hits;
      return it->second;
    }
    ++stats_.skylines.misses;
    PruneSuperseded(
        &skylines_, [&](const DataKey& k) { return k.first == &data; },
        &stats_.skylines.bytes, &delta);
    auto [pos, inserted] = skylines_.emplace(key, ComputeSkyline(data));
    (void)inserted;
    stats_.skylines.bytes += VectorBytes(pos->second);
    delta += static_cast<int64_t>(VectorBytes(pos->second));
    result = &pos->second;
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return *result;
}

void ArtifactCache::PutSkyline(const Dataset& data, std::vector<int> skyline) {
  const DataKey key{&data, data.version()};
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    PruneSuperseded(
        &skylines_, [&](const DataKey& k) { return k.first == &data; },
        &stats_.skylines.bytes, &delta);
    auto [pos, inserted] = skylines_.insert_or_assign(key, std::move(skyline));
    (void)inserted;
    stats_.skylines.bytes += VectorBytes(pos->second);
    delta += static_cast<int64_t>(VectorBytes(pos->second));
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
}

namespace {

/// True when a quad key references the same (dataset, grouping) objects.
struct SamePair {
  const void* data;
  const void* grouping;
  bool operator()(const std::tuple<const void*, const void*, uint64_t,
                                   uint64_t>& k) const {
    return std::get<0>(k) == data && std::get<1>(k) == grouping;
  }
};

}  // namespace

const std::vector<std::vector<int>>& ArtifactCache::GroupSkylines(
    const Dataset& data, const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  const std::vector<std::vector<int>>* result = nullptr;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = group_skylines_.find(key);
    if (it != group_skylines_.end()) {
      ++stats_.group_skylines.hits;
      return it->second;
    }
    ++stats_.group_skylines.misses;
    PruneSuperseded(&group_skylines_, SamePair{&data, &grouping},
                    &stats_.group_skylines.bytes, &delta);
    auto [pos, inserted] =
        group_skylines_.emplace(key, ComputeGroupSkylines(data, grouping));
    (void)inserted;
    stats_.group_skylines.bytes += NestedVectorBytes(pos->second);
    delta += static_cast<int64_t>(NestedVectorBytes(pos->second));
    result = &pos->second;
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return *result;
}

const std::vector<int>& ArtifactCache::FairPool(const Dataset& data,
                                                const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  const std::vector<int>* result = nullptr;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = pools_.find(key);
    if (it != pools_.end()) {
      ++stats_.pools.hits;
      return it->second;
    }
    ++stats_.pools.misses;
    PruneSuperseded(&pools_, SamePair{&data, &grouping}, &stats_.pools.bytes,
                    &delta);
    auto [pos, inserted] =
        pools_.emplace(key, ComputeFairCandidatePool(data, grouping));
    (void)inserted;
    stats_.pools.bytes += VectorBytes(pos->second);
    delta += static_cast<int64_t>(VectorBytes(pos->second));
    result = &pos->second;
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return *result;
}

const std::vector<int>& ArtifactCache::GroupCounts(const Dataset& data,
                                                   const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  const std::vector<int>* result = nullptr;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = group_counts_.find(key);
    if (it != group_counts_.end()) {
      ++stats_.groups.hits;
      return it->second;
    }
    ++stats_.groups.misses;
    PruneSuperseded(&group_counts_, SamePair{&data, &grouping},
                    &stats_.groups.bytes, &delta);
    auto [pos, inserted] =
        group_counts_.emplace(key, grouping.LiveCounts(data));
    (void)inserted;
    stats_.groups.bytes += VectorBytes(pos->second);
    delta += static_cast<int64_t>(VectorBytes(pos->second));
    result = &pos->second;
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return *result;
}

const std::vector<std::vector<int>>& ArtifactCache::GroupMembers(
    const Dataset& data, const Grouping& grouping) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  const std::vector<std::vector<int>>* result = nullptr;
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    auto it = group_members_.find(key);
    if (it != group_members_.end()) {
      ++stats_.groups.hits;
      return it->second;
    }
    ++stats_.groups.misses;
    PruneSuperseded(&group_members_, SamePair{&data, &grouping},
                    &stats_.groups.bytes, &delta);
    auto [pos, inserted] =
        group_members_.emplace(key, grouping.MembersLive(data));
    (void)inserted;
    stats_.groups.bytes += NestedVectorBytes(pos->second);
    delta += static_cast<int64_t>(NestedVectorBytes(pos->second));
    result = &pos->second;
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
  return *result;
}

void ArtifactCache::PutGroupArtifacts(
    const Dataset& data, const Grouping& grouping,
    std::vector<std::vector<int>> group_skylines, std::vector<int> fair_pool,
    std::vector<int> live_counts,
    std::vector<std::vector<int>> live_members) {
  const DataGroupKey key{&data, &grouping, data.version(), grouping.version};
  const SamePair same{&data, &grouping};
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    PruneSuperseded(&group_skylines_, same, &stats_.group_skylines.bytes,
                    &delta);
    PruneSuperseded(&pools_, same, &stats_.pools.bytes, &delta);
    PruneSuperseded(&group_counts_, same, &stats_.groups.bytes, &delta);
    PruneSuperseded(&group_members_, same, &stats_.groups.bytes, &delta);
    stats_.group_skylines.bytes += NestedVectorBytes(group_skylines);
    delta += static_cast<int64_t>(NestedVectorBytes(group_skylines));
    group_skylines_.insert_or_assign(key, std::move(group_skylines));
    stats_.pools.bytes += VectorBytes(fair_pool);
    delta += static_cast<int64_t>(VectorBytes(fair_pool));
    pools_.insert_or_assign(key, std::move(fair_pool));
    stats_.groups.bytes += VectorBytes(live_counts);
    delta += static_cast<int64_t>(VectorBytes(live_counts));
    group_counts_.insert_or_assign(key, std::move(live_counts));
    stats_.groups.bytes += NestedVectorBytes(live_members);
    delta += static_cast<int64_t>(NestedVectorBytes(live_members));
    group_members_.insert_or_assign(key, std::move(live_members));
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
}

CacheStats ArtifactCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ArtifactCache::AccountProjection(bool hit, uint64_t bytes) {
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    if (hit) {
      ++stats_.projections.hits;
    } else {
      ++stats_.projections.misses;
      stats_.projections.bytes += bytes;
      delta = static_cast<int64_t>(bytes);
    }
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
}

void ArtifactCache::Clear() {
  CacheArbiter* arbiter = nullptr;
  int64_t delta = 0;
  {
    MutexLock lock(&mu_);
    delta = -static_cast<int64_t>(stats_.TotalBytes());
    nets_.clear();
    evaluators_.clear();
    skylines_.clear();
    group_skylines_.clear();
    pools_.clear();
    group_counts_.clear();
    group_members_.clear();
    stats_.nets.bytes = 0;
    stats_.evaluators.bytes = 0;
    stats_.skylines.bytes = 0;
    stats_.group_skylines.bytes = 0;
    stats_.pools.bytes = 0;
    stats_.groups.bytes = 0;
    stats_.projections.bytes = 0;
    arbiter = arbiter_;
  }
  if (arbiter != nullptr && delta != 0) arbiter->OnBytesChanged(this, delta);
}

void CacheArbiter::Register(ArtifactCache* cache, std::string name,
                            std::function<void()> evict) {
  const uint64_t resident = cache->stats().TotalBytes();
  {
    MutexLock lock(&mu_);
    Entry& entry = entries_[cache];
    total_ -= entry.charged;  // Zero for a fresh registration.
    entry.name = std::move(name);
    entry.evict = std::move(evict);
    entry.charged = resident;
    entry.last_touch = ++touch_seq_;
    total_ += resident;
  }
  cache->SetArbiter(this);
}

void CacheArbiter::Unregister(ArtifactCache* cache) {
  cache->SetArbiter(nullptr);
  MutexLock lock(&mu_);
  auto it = entries_.find(cache);
  if (it == entries_.end()) return;
  total_ -= it->second.charged;
  entries_.erase(it);
}

void CacheArbiter::OnBytesChanged(ArtifactCache* cache, int64_t delta) {
  MutexLock lock(&mu_);
  auto it = entries_.find(cache);
  if (it == entries_.end()) return;
  // Clamp refunds at zero: the charged figure must never wrap, even if a
  // cache was registered mid-life with bytes it later refunds twice.
  const uint64_t refund =
      delta < 0 ? std::min(static_cast<uint64_t>(-delta), it->second.charged)
                : 0;
  if (delta < 0) {
    it->second.charged -= refund;
    total_ -= refund;
  } else {
    it->second.charged += static_cast<uint64_t>(delta);
    total_ += static_cast<uint64_t>(delta);
  }
}

void CacheArbiter::Touch(ArtifactCache* cache) {
  MutexLock lock(&mu_);
  auto it = entries_.find(cache);
  if (it != entries_.end()) it->second.last_touch = ++touch_seq_;
}

void CacheArbiter::Rebalance(ArtifactCache* prefer_keep) {
  // Evict one victim per pass, callbacks outside the lock (they re-enter
  // OnBytesChanged to refund). A victim that somehow refunds nothing is
  // remembered so the loop always terminates.
  std::set<ArtifactCache*> already;
  for (;;) {
    std::function<void()> evict;
    {
      MutexLock lock(&mu_);
      if (budget_ == 0 || total_ <= budget_) return;
      ArtifactCache* victim = nullptr;
      uint64_t coldest = 0;
      for (auto& [addr, entry] : entries_) {
        if (addr == prefer_keep || entry.charged == 0 ||
            already.count(addr) != 0) {
          continue;
        }
        if (victim == nullptr || entry.last_touch < coldest) {
          victim = addr;
          coldest = entry.last_touch;
        }
      }
      if (victim == nullptr) {
        // Everything cold is gone; the preferred cache only goes when it
        // alone still exceeds the budget.
        auto it = prefer_keep != nullptr ? entries_.find(prefer_keep)
                                         : entries_.end();
        if (it == entries_.end() || it->second.charged == 0 ||
            already.count(prefer_keep) != 0) {
          return;
        }
        victim = prefer_keep;
      }
      evict = entries_[victim].evict;
      already.insert(victim);
      ++evictions_;
    }
    if (evict) evict();
  }
}

uint64_t CacheArbiter::budget_bytes() const {
  MutexLock lock(&mu_);
  return budget_;
}

uint64_t CacheArbiter::total_bytes() const {
  MutexLock lock(&mu_);
  return total_;
}

uint64_t CacheArbiter::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

std::string CacheArbiter::ToString() const {
  MutexLock lock(&mu_);
  std::string out = StrFormat(
      "global cache: %.1f KiB charged across %zu sessions, budget %s, "
      "%llu evictions",
      static_cast<double>(total_) / 1024.0, entries_.size(),
      budget_ == 0
          ? std::string("unlimited").c_str()
          : StrFormat("%.1f KiB", static_cast<double>(budget_) / 1024.0)
                .c_str(),
      static_cast<unsigned long long>(evictions_));
  for (const auto& [addr, entry] : entries_) {
    (void)addr;
    out += StrFormat("\n  %s: %.1f KiB charged", entry.name.c_str(),
                     static_cast<double>(entry.charged) / 1024.0);
  }
  return out;
}

std::vector<CacheArbiter::LedgerEntry> CacheArbiter::Ledger() const {
  MutexLock lock(&mu_);
  std::vector<LedgerEntry> ledger;
  ledger.reserve(entries_.size());
  for (const auto& [addr, entry] : entries_) {
    (void)addr;
    ledger.push_back({entry.name, entry.charged, entry.last_touch});
  }
  std::sort(ledger.begin(), ledger.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return a.name < b.name;
            });
  return ledger;
}

std::shared_ptr<const UtilityNet> GetOrSampleNet(ArtifactCache* cache, int d,
                                                 size_t m, Rng* rng) {
  if (cache != nullptr) return cache->Net(d, m, rng);
  return std::make_shared<const UtilityNet>(
      UtilityNet::SampleRandom(d, m, rng));
}

namespace {

/// Transient evaluator bundled with the net it points into (NetEvaluator
/// holds a raw net pointer).
struct EvalWithNet {
  std::shared_ptr<const UtilityNet> net;
  NetEvaluator eval;
  EvalWithNet(std::shared_ptr<const UtilityNet> n, const Dataset& data,
              const std::vector<int>& db_rows, int threads)
      : net(std::move(n)), eval(&data, net.get(), db_rows, threads) {}
};

}  // namespace

std::shared_ptr<const NetEvaluator> GetOrBuildEvaluator(
    ArtifactCache* cache, const Dataset& data,
    std::shared_ptr<const UtilityNet> net, const std::vector<int>& db_rows,
    const std::vector<int>& cache_rows, int threads) {
  if (cache != nullptr) {
    return cache->Evaluator(data, std::move(net), db_rows, cache_rows,
                            threads);
  }
  auto holder =
      std::make_shared<EvalWithNet>(std::move(net), data, db_rows, threads);
  if (!cache_rows.empty()) holder->eval.CacheCandidates(cache_rows);
  return std::shared_ptr<const NetEvaluator>(holder, &holder->eval);
}

}  // namespace fairhms
