#include "skyline/incremental.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "geom/dominance.h"
#include "geom/vec.h"

namespace fairhms {

namespace {

/// Inserts `value` into sorted `v` (keeps ascending order).
void InsertSorted(std::vector<int>* v, int value) {
  v->insert(std::lower_bound(v->begin(), v->end(), value), value);
}

/// Removes `value` from sorted `v`; returns false when absent.
bool RemoveSorted(std::vector<int>* v, int value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it == v->end() || *it != value) return false;
  v->erase(it);
  return true;
}

}  // namespace

IncrementalSkyline::IncrementalSkyline(const Dataset* data,
                                       IncrementalSkylineOptions opts)
    : data_(data), opts_(opts) {
  assert(data_ != nullptr);
  assert(opts_.skyline.exact);
}

void IncrementalSkyline::Reset(const std::vector<int>& universe_rows) {
  sky_ = ComputeSkyline(*data_, universe_rows, opts_.skyline);
  dominator_.clear();
  bucket_.clear();
  const size_t d = static_cast<size_t>(data_->dim());
  for (int r : universe_rows) {
    // Tombstoned rows are not part of any universe (ComputeSkyline already
    // excluded them from sky_).
    if (!data_->live(static_cast<size_t>(r))) continue;
    if (std::binary_search(sky_.begin(), sky_.end(), r)) continue;
    // Every non-skyline member has a dominator; record the first found.
    const double* p = data_->point(static_cast<size_t>(r));
    int dom = -1;
    for (int s : sky_) {
      if (Dominates(data_->point(static_cast<size_t>(s)), p, d)) {
        dom = s;
        break;
      }
    }
    assert(dom >= 0);
    dominator_[r] = dom;
    bucket_[dom].push_back(r);
  }
  ops_since_rebuild_ = 0;
}

int IncrementalSkyline::FindDominator(const double* p) const {
  const size_t d = static_cast<size_t>(data_->dim());
  for (int s : sky_) {
    if (Dominates(data_->point(static_cast<size_t>(s)), p, d)) return s;
  }
  return -1;
}

void IncrementalSkyline::Insert(int row) {
  const size_t d = static_cast<size_t>(data_->dim());
  const double* p = data_->point(static_cast<size_t>(row));
  // One sweep: either some skyline member dominates the new point (then no
  // member can be dominated by it — both at once would put a dominance
  // pair inside the skyline), or we collect everything it knocks out.
  int dominator = -1;
  std::vector<int> killed;
  for (int s : sky_) {
    const double* ps = data_->point(static_cast<size_t>(s));
    if (Dominates(ps, p, d)) {
      dominator = s;
      break;
    }
    if (Dominates(p, ps, d)) killed.push_back(s);
  }
  if (dominator >= 0) {
    dominator_[row] = dominator;
    bucket_[dominator].push_back(row);
  } else {
    std::vector<int>& own = bucket_[row];
    for (int s : killed) {
      RemoveSorted(&sky_, s);
      // p dominates s dominates m => p dominates m: the whole bucket moves.
      if (auto it = bucket_.find(s); it != bucket_.end()) {
        for (int m : it->second) {
          dominator_[m] = row;
          own.push_back(m);
        }
        bucket_.erase(it);
      }
      dominator_[s] = row;
      own.push_back(s);
    }
    if (own.empty()) bucket_.erase(row);
    InsertSorted(&sky_, row);
  }
  ++ops_since_rebuild_;
  MaybeRebuild();
}

Status IncrementalSkyline::EraseBatch(const std::vector<int>& rows) {
  for (int row : rows) {
    FAIRHMS_RETURN_IF_ERROR(EraseOne(row));
  }
  ops_since_rebuild_ += rows.size();
  MaybeRebuild();
  return Status::OK();
}

Status IncrementalSkyline::EraseOne(int row) {
  if (auto dit = dominator_.find(row); dit != dominator_.end()) {
    std::vector<int>& b = bucket_[dit->second];
    b.erase(std::find(b.begin(), b.end(), row));
    if (b.empty()) bucket_.erase(dit->second);
    dominator_.erase(dit);
  } else if (std::binary_search(sky_.begin(), sky_.end(), row)) {
    RemoveSorted(&sky_, row);
    std::vector<int> orphans;
    if (auto it = bucket_.find(row); it != bucket_.end()) {
      orphans = std::move(it->second);
      bucket_.erase(it);
    }
    for (int m : orphans) dominator_.erase(m);
    // Re-promote in coordinate-sum order: a dominator has a strictly
    // larger sum, so by the time an orphan is examined every point that
    // could dominate it — surviving skyline member or earlier orphan — is
    // already settled in sky_.
    const size_t d = static_cast<size_t>(data_->dim());
    std::sort(orphans.begin(), orphans.end(), [&](int a, int b) {
      const double sa = SumCoords(data_->point(static_cast<size_t>(a)), d);
      const double sb = SumCoords(data_->point(static_cast<size_t>(b)), d);
      if (sa != sb) return sa > sb;
      return a < b;
    });
    for (int m : orphans) {
      const int dom = FindDominator(data_->point(static_cast<size_t>(m)));
      if (dom >= 0) {
        dominator_[m] = dom;
        bucket_[dom].push_back(m);
      } else {
        InsertSorted(&sky_, m);
      }
    }
  } else {
    return Status::NotFound(
        StrFormat("row %d is not in this skyline's universe", row));
  }
  return Status::OK();
}

IncrementalSkylineState IncrementalSkyline::SaveState() const {
  IncrementalSkylineState state;
  state.skyline = sky_;
  state.dominated.reserve(dominator_.size());
  for (const auto& [row, dom] : dominator_) {
    state.dominated.emplace_back(row, dom);
  }
  std::sort(state.dominated.begin(), state.dominated.end());
  return state;
}

Status IncrementalSkyline::RestoreState(const IncrementalSkylineState& state) {
  // Build into locals first so a rejected state leaves *this untouched.
  const size_t n = data_->size();
  std::vector<char> seen(n, 0);
  auto claim_row = [&](int r) -> Status {
    if (r < 0 || static_cast<size_t>(r) >= n) {
      return Status::InvalidArgument(
          StrFormat("skyline state row %d out of range (table size %zu)", r,
                    n));
    }
    if (!data_->live(static_cast<size_t>(r))) {
      return Status::InvalidArgument(
          StrFormat("skyline state row %d is tombstoned", r));
    }
    if (seen[static_cast<size_t>(r)]) {
      return Status::InvalidArgument(
          StrFormat("skyline state row %d appears twice", r));
    }
    seen[static_cast<size_t>(r)] = 1;
    return Status::OK();
  };
  for (size_t i = 0; i < state.skyline.size(); ++i) {
    FAIRHMS_RETURN_IF_ERROR(claim_row(state.skyline[i]));
    if (i > 0 && state.skyline[i - 1] >= state.skyline[i]) {
      return Status::InvalidArgument(
          "skyline state members not sorted ascending");
    }
  }
  std::unordered_map<int, int> dominator;
  std::unordered_map<int, std::vector<int>> bucket;
  dominator.reserve(state.dominated.size());
  for (const auto& [row, dom] : state.dominated) {
    FAIRHMS_RETURN_IF_ERROR(claim_row(row));
    if (!std::binary_search(state.skyline.begin(), state.skyline.end(), dom)) {
      return Status::InvalidArgument(StrFormat(
          "dominator %d of row %d is not a skyline member", dom, row));
    }
    dominator[row] = dom;
    bucket[dom].push_back(row);
  }
  sky_ = state.skyline;
  dominator_ = std::move(dominator);
  bucket_ = std::move(bucket);
  ops_since_rebuild_ = 0;
  return Status::OK();
}

void IncrementalSkyline::MaybeRebuild() {
  if (opts_.churn_rebuild_factor <= 0.0) return;
  const double threshold =
      opts_.churn_rebuild_factor *
      static_cast<double>(std::max<size_t>(universe_size(), 64));
  if (static_cast<double>(ops_since_rebuild_) > threshold) Rebuild();
}

void IncrementalSkyline::Rebuild() {
  std::vector<int> universe;
  universe.reserve(universe_size());
  universe.insert(universe.end(), sky_.begin(), sky_.end());
  for (const auto& [row, dom] : dominator_) {
    (void)dom;
    universe.push_back(row);
  }
  std::sort(universe.begin(), universe.end());
  Reset(universe);
  ++rebuilds_;
}

SkylineIndex::SkylineIndex(const Dataset* data, const Grouping* grouping,
                           IncrementalSkylineOptions opts)
    : data_(data), grouping_(grouping), opts_(opts), global_(data, opts) {
  assert(data_ != nullptr && grouping_ != nullptr);
  assert(grouping_->group_of.size() == data_->size());
  global_.Reset(data_->LiveRows());
  live_counts_.assign(static_cast<size_t>(grouping_->num_groups), 0);
  live_members_ = grouping_->MembersLive(*data_);
  for (int c = 0; c < grouping_->num_groups; ++c) {
    per_group_.emplace_back(data_, opts_);
    per_group_.back().Reset(live_members_[static_cast<size_t>(c)]);
    live_counts_[static_cast<size_t>(c)] =
        static_cast<int>(live_members_[static_cast<size_t>(c)].size());
  }
  data_version_ = data_->version();
  grouping_version_ = grouping_->version;
}

SkylineIndex::SkylineIndex(RestoreTag, const Dataset* data,
                           const Grouping* grouping,
                           IncrementalSkylineOptions opts)
    : data_(data), grouping_(grouping), opts_(opts), global_(data, opts) {}

SkylineIndexState SkylineIndex::SaveState() const {
  SkylineIndexState state;
  state.global = global_.SaveState();
  state.per_group.reserve(per_group_.size());
  for (const auto& g : per_group_) state.per_group.push_back(g.SaveState());
  return state;
}

StatusOr<std::unique_ptr<SkylineIndex>> SkylineIndex::Restore(
    const Dataset* data, const Grouping* grouping,
    const SkylineIndexState& state, IncrementalSkylineOptions opts) {
  if (data == nullptr || grouping == nullptr) {
    return Status::InvalidArgument(
        "SkylineIndex::Restore requires a dataset and a grouping");
  }
  if (grouping->group_of.size() != data->size()) {
    return Status::InvalidArgument(
        StrFormat("grouping covers %zu rows, dataset has %zu",
                  grouping->group_of.size(), data->size()));
  }
  if (state.per_group.size() != static_cast<size_t>(grouping->num_groups)) {
    return Status::InvalidArgument(
        StrFormat("snapshot carries %zu group skylines, grouping has %d groups",
                  state.per_group.size(), grouping->num_groups));
  }
  auto index = std::unique_ptr<SkylineIndex>(
      new SkylineIndex(RestoreTag{}, data, grouping, opts));
  FAIRHMS_RETURN_IF_ERROR(index->global_.RestoreState(state.global));
  // Each restored universe holds unique live rows, so an exact size match
  // against the live tables means exact coverage.
  const size_t live_total = data->LiveRows().size();
  if (index->global_.universe_size() != live_total) {
    return Status::InvalidArgument(
        StrFormat("global skyline state covers %zu rows, dataset has %zu live",
                  index->global_.universe_size(), live_total));
  }
  index->live_members_ = grouping->MembersLive(*data);
  index->live_counts_.assign(static_cast<size_t>(grouping->num_groups), 0);
  for (int c = 0; c < grouping->num_groups; ++c) {
    const size_t ci = static_cast<size_t>(c);
    const std::vector<int>& members = index->live_members_[ci];
    auto in_group = [&](int r) -> Status {
      if (!std::binary_search(members.begin(), members.end(), r)) {
        return Status::InvalidArgument(StrFormat(
            "group %d skyline state claims row %d of another group", c, r));
      }
      return Status::OK();
    };
    for (int r : state.per_group[ci].skyline) {
      FAIRHMS_RETURN_IF_ERROR(in_group(r));
    }
    for (const auto& [row, dom] : state.per_group[ci].dominated) {
      (void)dom;
      FAIRHMS_RETURN_IF_ERROR(in_group(row));
    }
    index->per_group_.emplace_back(data, opts);
    FAIRHMS_RETURN_IF_ERROR(
        index->per_group_.back().RestoreState(state.per_group[ci]));
    if (index->per_group_.back().universe_size() != members.size()) {
      return Status::InvalidArgument(
          StrFormat("group %d skyline state covers %zu rows, group has %zu "
                    "live members",
                    c, index->per_group_.back().universe_size(),
                    members.size()));
    }
    index->live_counts_[ci] = static_cast<int>(members.size());
  }
  index->data_version_ = data->version();
  index->grouping_version_ = grouping->version;
  return index;
}

void SkylineIndex::SyncGroupCount() {
  while (per_group_.size() < static_cast<size_t>(grouping_->num_groups)) {
    per_group_.emplace_back(data_, opts_);
    live_counts_.push_back(0);
    live_members_.emplace_back();
  }
}

Status SkylineIndex::OnAppend(size_t first, size_t end) {
  if (end > data_->size() || end > grouping_->group_of.size()) {
    return Status::InvalidArgument(
        StrFormat("OnAppend range [%zu, %zu) exceeds the table", first, end));
  }
  SyncGroupCount();
  for (size_t i = first; i < end; ++i) {
    if (!data_->live(i)) continue;
    const int g = grouping_->group_of[i];
    if (g < 0 || static_cast<size_t>(g) >= per_group_.size()) {
      return Status::Internal(
          StrFormat("appended row %zu has group %d out of range", i, g));
    }
    const int row = static_cast<int>(i);
    global_.Insert(row);
    per_group_[static_cast<size_t>(g)].Insert(row);
    // Appended rows carry the largest indices, so push_back keeps the
    // member lists ascending.
    live_members_[static_cast<size_t>(g)].push_back(row);
    ++live_counts_[static_cast<size_t>(g)];
  }
  data_version_ = data_->version();
  grouping_version_ = grouping_->version;
  views_dirty_ = true;
  return Status::OK();
}

Status SkylineIndex::OnErase(const std::vector<int>& rows) {
  // Partition by group first, then erase whole batches: a churn-triggered
  // rebuild inside a maintainer must never run while some of the batch's
  // (already tombstoned) rows are still in its universe.
  std::vector<std::vector<int>> by_group(per_group_.size());
  for (int r : rows) {
    if (r < 0 || static_cast<size_t>(r) >= grouping_->group_of.size()) {
      return Status::OutOfRange(StrFormat("erased row %d out of range", r));
    }
    const int g = grouping_->group_of[static_cast<size_t>(r)];
    by_group[static_cast<size_t>(g)].push_back(r);
  }
  FAIRHMS_RETURN_IF_ERROR(global_.EraseBatch(rows));
  for (size_t g = 0; g < by_group.size(); ++g) {
    if (by_group[g].empty()) continue;
    FAIRHMS_RETURN_IF_ERROR(per_group_[g].EraseBatch(by_group[g]));
    for (int r : by_group[g]) {
      RemoveSorted(&live_members_[g], r);
      --live_counts_[g];
    }
  }
  data_version_ = data_->version();
  views_dirty_ = true;
  return Status::OK();
}

const std::vector<std::vector<int>>& SkylineIndex::group_skylines() const {
  if (views_dirty_) {
    group_skylines_view_.assign(per_group_.size(), {});
    fair_pool_view_.clear();
    for (size_t c = 0; c < per_group_.size(); ++c) {
      group_skylines_view_[c] = per_group_[c].skyline();
      fair_pool_view_.insert(fair_pool_view_.end(),
                             group_skylines_view_[c].begin(),
                             group_skylines_view_[c].end());
    }
    std::sort(fair_pool_view_.begin(), fair_pool_view_.end());
    views_dirty_ = false;
  }
  return group_skylines_view_;
}

const std::vector<int>& SkylineIndex::fair_pool() const {
  group_skylines();  // Assembles both views.
  return fair_pool_view_;
}

size_t SkylineIndex::rebuilds() const {
  size_t total = global_.rebuilds();
  for (const auto& g : per_group_) total += g.rebuilds();
  return total;
}

}  // namespace fairhms
