#include "skyline/skyline.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "common/random.h"
#include "common/simd.h"
#include "geom/dominance.h"
#include "geom/vec.h"

namespace fairhms {

namespace {

/// Exact 2D skyline: sort by (x desc, y desc) and sweep with a running max y.
std::vector<int> Skyline2D(const Dataset& data, std::vector<int> rows) {
  std::sort(rows.begin(), rows.end(), [&](int a, int b) {
    const double ax = data.at(static_cast<size_t>(a), 0);
    const double bx = data.at(static_cast<size_t>(b), 0);
    if (ax != bx) return ax > bx;
    const double ay = data.at(static_cast<size_t>(a), 1);
    const double by = data.at(static_cast<size_t>(b), 1);
    if (ay != by) return ay > by;
    return a < b;
  });
  std::vector<int> sky;
  double best_y = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  while (i < rows.size()) {
    const double x = data.at(static_cast<size_t>(rows[i]), 0);
    // Within an equal-x block the sort puts the maximal y first; only points
    // attaining that y can survive (exact duplicates do not dominate each
    // other, so all ties are kept), and only if the y strictly beats every
    // point with larger x.
    const double block_max_y = data.at(static_cast<size_t>(rows[i]), 1);
    size_t j = i;
    if (block_max_y > best_y) {
      while (j < rows.size() &&
             data.at(static_cast<size_t>(rows[j]), 0) == x &&
             data.at(static_cast<size_t>(rows[j]), 1) == block_max_y) {
        sky.push_back(rows[j]);
        ++j;
      }
      best_y = block_max_y;
    }
    while (j < rows.size() && data.at(static_cast<size_t>(rows[j]), 0) == x) {
      ++j;
    }
    i = j;
  }
  std::sort(sky.begin(), sky.end());
  return sky;
}

/// Sum-sorted block-nested-loop over `rows`; exact for any d. Sums come
/// from the SIMD row-sum kernel over a dimension-major pack (same
/// accumulation chain as SumCoords, so the sort order is unchanged), and
/// incremental dominance checks run against a dimension-major block of the
/// growing skyline.
std::vector<int> SkylineBnl(const Dataset& data, std::vector<int> rows) {
  const size_t d = static_cast<size_t>(data.dim());
  const simd::ColumnBlock block = data.PackColumns(rows);
  simd::AlignedVector sums(block.padded_rows(), 0.0);
  simd::RowSums(block.cols(), rows.size(), d, sums.data());
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), static_cast<size_t>(0));
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (sums[a] != sums[b]) return sums[a] > sums[b];
    return rows[a] < rows[b];
  });
  // A dominator always has a strictly larger coordinate sum, so points can
  // only be dominated by earlier entries of the sorted order.
  std::vector<int> sky;
  simd::ColumnBlock sky_block(data.dim());
  for (size_t i : order) {
    const int r = rows[i];
    const double* p = data.point(static_cast<size_t>(r));
    if (!simd::AnyDominates(sky_block.cols(), sky.size(), d, p)) {
      sky.push_back(r);
      sky_block.Append(p);
    }
  }
  std::sort(sky.begin(), sky.end());
  return sky;
}

/// Removes rows dominated by a small elite set (the skyline of a random
/// sample). Returns a superset of the true skyline.
std::vector<int> PrefilterByElite(const Dataset& data, std::vector<int> rows,
                                  const SkylineOptions& opts) {
  if (rows.size() <= opts.prefilter_sample * 2) return rows;
  Rng rng(opts.seed);
  std::vector<int> sample = rows;
  rng.Shuffle(&sample);
  sample.resize(opts.prefilter_sample);
  const std::vector<int> elite = SkylineBnl(data, std::move(sample));
  const size_t d = static_cast<size_t>(data.dim());
  const simd::ColumnBlock elite_block = data.PackColumns(elite);
  std::vector<int> survivors;
  survivors.reserve(rows.size());
  for (int r : rows) {
    const double* p = data.point(static_cast<size_t>(r));
    if (!simd::AnyDominates(elite_block.cols(), elite.size(), d, p)) {
      survivors.push_back(r);
    }
  }
  return survivors;
}

}  // namespace

std::vector<int> ComputeSkyline(const Dataset& data,
                                const std::vector<int>& rows,
                                const SkylineOptions& opts) {
  // Tombstoned rows never participate: an erased dominator must not prune
  // live points, and an erased point must not re-enter a candidate pool.
  std::vector<int> live_rows;
  if (data.has_tombstones()) {
    live_rows.reserve(rows.size());
    for (int r : rows) {
      if (data.live(static_cast<size_t>(r))) live_rows.push_back(r);
    }
  }
  const std::vector<int>& input = data.has_tombstones() ? live_rows : rows;
  if (input.empty()) return {};
  if (data.dim() == 2) return Skyline2D(data, input);
  std::vector<int> filtered = PrefilterByElite(data, input, opts);
  if (!opts.exact) {
    std::sort(filtered.begin(), filtered.end());
    return filtered;
  }
  return SkylineBnl(data, std::move(filtered));
}

std::vector<int> ComputeSkyline(const Dataset& data,
                                const SkylineOptions& opts) {
  std::vector<int> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0);
  return ComputeSkyline(data, rows, opts);
}

std::vector<std::vector<int>> ComputeGroupSkylines(const Dataset& data,
                                                   const Grouping& grouping,
                                                   const SkylineOptions& opts) {
  assert(grouping.group_of.size() == data.size());
  std::vector<std::vector<int>> result;
  result.reserve(static_cast<size_t>(grouping.num_groups));
  for (const auto& members : grouping.Members()) {
    result.push_back(ComputeSkyline(data, members, opts));
  }
  return result;
}

std::vector<int> ComputeFairCandidatePool(const Dataset& data,
                                          const Grouping& grouping,
                                          const SkylineOptions& opts) {
  std::vector<int> pool;
  for (const auto& sky : ComputeGroupSkylines(data, grouping, opts)) {
    pool.insert(pool.end(), sky.begin(), sky.end());
  }
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace fairhms
