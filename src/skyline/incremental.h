// Incremental skyline maintenance for dynamic datasets.
//
// The paper's pipeline feeds every algorithm from skylines (global for
// unconstrained HMS, per-group unions for FairHMS), which makes skyline
// maintenance the one seam a dynamic-update subsystem has to get right:
// keep those sets exact while tuples churn, without recomputing from
// scratch per mutation.
//
// IncrementalSkyline maintains one exact skyline over one row universe:
//
//   * insert = one dominance sweep over the current skyline — either the
//     new point is dominated (it drops into its dominator's bucket) or it
//     joins the skyline and newly dominated members (plus their whole
//     buckets, by transitivity) move under it;
//   * erase of a dominated point = O(1) bucket removal; erase of a skyline
//     point re-promotes its bucket in coordinate-sum order (a dominator
//     always has a strictly larger sum, so each orphan only needs the
//     already-settled skyline);
//   * past a churn threshold the structure rebuilds itself from a full
//     ComputeSkyline pass, bounding bucket skew from adversarial streams.
//
// The maintained set is bit-identical to ComputeSkyline over the live
// universe after every operation (the skyline of a fixed point set is
// unique; tests/skyline/incremental_test.cc holds this invariant over
// thousands of interleaved ops).
//
// SkylineIndex bundles the global skyline, the per-group skylines, the
// fair candidate pool and the live group tables for one (Dataset,
// Grouping) pair — exactly the artifact set ArtifactCache memoizes — and
// keeps them all current under AppendRows/ErasePoints.

#ifndef FAIRHMS_SKYLINE_INCREMENTAL_H_
#define FAIRHMS_SKYLINE_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "skyline/skyline.h"

namespace fairhms {

struct IncrementalSkylineOptions {
  /// Rebuild the bucket structure from a full ComputeSkyline pass once the
  /// operations since the last rebuild exceed
  /// `churn_rebuild_factor * max(universe_size, 64)`. 0 disables rebuilds.
  double churn_rebuild_factor = 8.0;
  /// Options for full (re)builds. `exact` must stay true — an inexact
  /// superset would diverge from the incrementally maintained set.
  SkylineOptions skyline;
};

/// Portable snapshot of one IncrementalSkyline: the maintained skyline plus
/// the dominator assignment of every non-skyline universe member. Enough to
/// reconstruct the structure without a single dominance test — the point of
/// binary snapshot restore (data/snapshot.h) versus a cold rebuild.
struct IncrementalSkylineState {
  std::vector<int> skyline;  ///< Ascending.
  /// (row, dominator) per non-skyline member, ascending by row. The
  /// recorded dominator must be a skyline member; which one is an internal
  /// detail and never affects the maintained set.
  std::vector<std::pair<int, int>> dominated;
};

/// One exact, incrementally maintained skyline over a row universe.
class IncrementalSkyline {
 public:
  explicit IncrementalSkyline(const Dataset* data,
                              IncrementalSkylineOptions opts = {});

  /// Replaces the universe (rows must be live) and rebuilds from scratch.
  void Reset(const std::vector<int>& universe_rows);

  /// Adds `row` (readable in the dataset, not yet in the universe).
  void Insert(int row);

  /// Removes `row` from the universe. Fails when it was never inserted.
  Status Erase(int row) { return EraseBatch({row}); }

  /// Removes several rows. All rows leave the structures before the churn
  /// threshold is consulted, so a triggered rebuild never sees a
  /// half-erased batch (the batch's tombstoned rows must not re-enter the
  /// rebuilt skyline, and a rebuild drops them from the universe for
  /// good).
  Status EraseBatch(const std::vector<int>& rows);

  /// The current skyline, ascending. Bit-identical to
  /// ComputeSkyline(data, universe) at every point in time.
  const std::vector<int>& skyline() const { return sky_; }

  /// Deterministic export of the maintained state (dominated rows sorted
  /// ascending, so two equal structures serialize byte-identically).
  IncrementalSkylineState SaveState() const;

  /// Replaces the structure with a previously exported state without any
  /// dominance computation. Validates cheaply — every row readable and
  /// live, every dominator a skyline member, no duplicates across the
  /// universe — and rejects with InvalidArgument leaving the structure
  /// untouched (geometric consistency is the snapshot checksum's job).
  Status RestoreState(const IncrementalSkylineState& state);

  size_t universe_size() const { return sky_.size() + dominator_.size(); }
  /// Full rebuilds triggered by the churn threshold (telemetry).
  size_t rebuilds() const { return rebuilds_; }

 private:
  /// First skyline member dominating `row`, or -1.
  int FindDominator(const double* p) const;
  /// Removes one row without touching the churn accounting.
  Status EraseOne(int row);
  void MaybeRebuild();
  void Rebuild();

  const Dataset* data_;
  IncrementalSkylineOptions opts_;
  std::vector<int> sky_;  ///< Sorted ascending.
  /// Non-skyline universe member -> the skyline member recorded as its
  /// dominator (any one of them; which one is an internal detail).
  std::unordered_map<int, int> dominator_;
  /// Skyline member -> the members it is recorded as dominating.
  std::unordered_map<int, std::vector<int>> bucket_;
  size_t ops_since_rebuild_ = 0;
  size_t rebuilds_ = 0;
};

/// Portable snapshot of a whole SkylineIndex: the global skyline plus one
/// state per group, in group-id order. Restoring re-derives the live group
/// tables from the Dataset/Grouping pair (cheap, no dominance tests).
struct SkylineIndexState {
  IncrementalSkylineState global;
  std::vector<IncrementalSkylineState> per_group;
};

/// Every skyline-derived artifact of one (Dataset, Grouping) pair, kept
/// current under mutation: global skyline, per-group skylines, the fair
/// candidate pool and the live group count/member tables.
class SkylineIndex {
 public:
  /// Builds from the current live rows. `data` and `grouping` are not
  /// owned and must outlive the index; the caller routes every mutation
  /// through OnAppend/OnErase (SolverSession does this automatically).
  SkylineIndex(const Dataset* data, const Grouping* grouping,
               IncrementalSkylineOptions opts = {});

  /// Deterministic export of the maintained state for snapshotting.
  SkylineIndexState SaveState() const;

  /// Rebuilds an index from an exported state without recomputing any
  /// skyline. Validates that the state's universes exactly cover the live
  /// rows of `data` (globally and per group); InvalidArgument otherwise.
  static StatusOr<std::unique_ptr<SkylineIndex>> Restore(
      const Dataset* data, const Grouping* grouping,
      const SkylineIndexState& state, IncrementalSkylineOptions opts = {});

  /// Rows [first, end) were appended to the dataset and the grouping.
  Status OnAppend(size_t first, size_t end);

  /// `rows` were just tombstoned via Dataset::ErasePoints.
  Status OnErase(const std::vector<int>& rows);

  const std::vector<int>& skyline() const { return global_.skyline(); }
  /// Per-group skylines, indexed by group id (empty for empty groups).
  const std::vector<std::vector<int>>& group_skylines() const;
  /// Union of the per-group skylines, ascending.
  const std::vector<int>& fair_pool() const;
  /// Live rows per group, like Grouping::LiveCounts.
  const std::vector<int>& live_counts() const { return live_counts_; }
  /// Live member rows per group, ascending, like Grouping::MembersLive.
  const std::vector<std::vector<int>>& live_members() const {
    return live_members_;
  }

  /// Dataset version the index reflects (== data->version() after every
  /// routed mutation).
  uint64_t data_version() const { return data_version_; }
  uint64_t grouping_version() const { return grouping_version_; }
  /// Total churn-threshold rebuilds across all maintained skylines.
  size_t rebuilds() const;

 private:
  /// Tag ctor for Restore: wires the pointers but computes nothing.
  struct RestoreTag {};
  SkylineIndex(RestoreTag, const Dataset* data, const Grouping* grouping,
               IncrementalSkylineOptions opts);

  /// Grows the per-group structures to the grouping's current group count.
  void SyncGroupCount();

  const Dataset* data_;
  const Grouping* grouping_;
  IncrementalSkylineOptions opts_;
  IncrementalSkyline global_;
  std::vector<IncrementalSkyline> per_group_;
  std::vector<int> live_counts_;
  std::vector<std::vector<int>> live_members_;
  uint64_t data_version_ = 0;
  uint64_t grouping_version_ = 0;
  /// Assembled lazily; invalidated by every mutation.
  mutable std::vector<std::vector<int>> group_skylines_view_;
  mutable std::vector<int> fair_pool_view_;
  mutable bool views_dirty_ = true;
};

}  // namespace fairhms

#endif  // FAIRHMS_SKYLINE_INCREMENTAL_H_
