// Skyline (Pareto-maxima) computation.
//
// The paper pre-computes skylines as the input to every algorithm: for
// unconstrained HMS the global skyline suffices, while under group fairness
// the candidate pool is the union of *per-group* skylines (a point dominated
// globally can still be its group's best choice. Table 2's "#skylines"
// column is exactly this union's size).

#ifndef FAIRHMS_SKYLINE_SKYLINE_H_
#define FAIRHMS_SKYLINE_SKYLINE_H_

#include <vector>

#include "data/dataset.h"
#include "data/grouping.h"

namespace fairhms {

/// Options for skyline computation.
struct SkylineOptions {
  /// When false, only the sample-elite prefilter runs, returning a
  /// dominance-reduced *superset* of the skyline. This is sound as algorithm
  /// input (extra dominated points are simply never selected) and avoids the
  /// quadratic exact pass on huge anti-correlated inputs where nearly every
  /// point is a skyline point anyway.
  bool exact = true;
  /// Sample size of the elite prefilter (d >= 3 only).
  size_t prefilter_sample = 2048;
  /// Deterministic seed for the prefilter sample.
  uint64_t seed = 0x5EEDu;
};

/// Skyline of the rows in `rows` (indices into `data`). Output is sorted
/// ascending. Exact O(n log n) sweep for d = 2; sum-sorted block-nested-loop
/// with sample prefilter for d >= 3.
std::vector<int> ComputeSkyline(const Dataset& data,
                                const std::vector<int>& rows,
                                const SkylineOptions& opts = {});

/// Skyline of the whole dataset.
std::vector<int> ComputeSkyline(const Dataset& data,
                                const SkylineOptions& opts = {});

/// Per-group skylines, indexed by group id.
std::vector<std::vector<int>> ComputeGroupSkylines(
    const Dataset& data, const Grouping& grouping,
    const SkylineOptions& opts = {});

/// Union of the per-group skylines, sorted ascending — the fair candidate
/// pool used by every FairHMS algorithm.
std::vector<int> ComputeFairCandidatePool(const Dataset& data,
                                          const Grouping& grouping,
                                          const SkylineOptions& opts = {});

}  // namespace fairhms

#endif  // FAIRHMS_SKYLINE_SKYLINE_H_
