// Grouping: a partition of a dataset's rows into C disjoint fairness groups.

#ifndef FAIRHMS_DATA_GROUPING_H_
#define FAIRHMS_DATA_GROUPING_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"

namespace fairhms {

/// A partition of rows 0..n-1 into groups 0..num_groups-1.
struct Grouping {
  std::vector<int> group_of;       ///< Size n; group id per row.
  int num_groups = 0;
  std::vector<std::string> names;  ///< Size num_groups.
  /// Monotonic mutation counter, bumped by AppendRow/AddGroup. Caches key
  /// grouping-derived artifacts on (address, version).
  uint64_t version = 0;

  /// Number of rows in each group (including erased rows; constraint
  /// building and feasibility checks should use LiveCounts).
  std::vector<int> Counts() const;

  /// Row indices per group (including erased rows).
  std::vector<std::vector<int>> Members() const;

  /// Number of live rows of `data` in each group. Identical to Counts()
  /// while `data` has no tombstones.
  std::vector<int> LiveCounts(const Dataset& data) const;

  /// Live row indices of `data` per group, ascending. Identical to
  /// Members() while `data` has no tombstones.
  std::vector<std::vector<int>> MembersLive(const Dataset& data) const;

  /// Extends the partition by one row in group `group` (must exist).
  void AppendRow(int group);

  /// Registers a new empty group; returns its id.
  int AddGroup(std::string name);
};

/// Everything in one group (vanilla HMS as the C = 1 special case).
Grouping SingleGroup(size_t n);

/// Groups by one categorical column.
StatusOr<Grouping> GroupByCategorical(const Dataset& data,
                                      const std::string& column);

/// Groups by the cross product of several categorical columns (e.g. the
/// paper's "G+R" = gender x race partitions). Only combinations that occur
/// are materialized.
StatusOr<Grouping> GroupByCategoricalProduct(
    const Dataset& data, const std::vector<std::string>& columns);

/// The paper's synthetic-data scheme: sort rows by the sum of their numeric
/// attributes and split into C equal-sized groups.
Grouping GroupBySumRank(const Dataset& data, int num_groups);

}  // namespace fairhms

#endif  // FAIRHMS_DATA_GROUPING_H_
