// Grouping: a partition of a dataset's rows into C disjoint fairness groups.

#ifndef FAIRHMS_DATA_GROUPING_H_
#define FAIRHMS_DATA_GROUPING_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"

namespace fairhms {

/// A partition of rows 0..n-1 into groups 0..num_groups-1.
struct Grouping {
  std::vector<int> group_of;       ///< Size n; group id per row.
  int num_groups = 0;
  std::vector<std::string> names;  ///< Size num_groups.

  /// Number of rows in each group.
  std::vector<int> Counts() const;

  /// Row indices per group.
  std::vector<std::vector<int>> Members() const;
};

/// Everything in one group (vanilla HMS as the C = 1 special case).
Grouping SingleGroup(size_t n);

/// Groups by one categorical column.
StatusOr<Grouping> GroupByCategorical(const Dataset& data,
                                      const std::string& column);

/// Groups by the cross product of several categorical columns (e.g. the
/// paper's "G+R" = gender x race partitions). Only combinations that occur
/// are materialized.
StatusOr<Grouping> GroupByCategoricalProduct(
    const Dataset& data, const std::vector<std::string>& columns);

/// The paper's synthetic-data scheme: sort rows by the sum of their numeric
/// attributes and split into C equal-sized groups.
Grouping GroupBySumRank(const Dataset& data, int num_groups);

}  // namespace fairhms

#endif  // FAIRHMS_DATA_GROUPING_H_
