#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace fairhms {

Dataset::Dataset(int dim) : dim_(dim), soa_(dim) {
  assert(dim >= 1);
  attr_names_.reserve(static_cast<size_t>(dim));
  for (int j = 0; j < dim; ++j) {
    attr_names_.push_back(StrFormat("attr%d", j));
  }
}

Dataset::Dataset(std::vector<std::string> attr_names)
    : dim_(static_cast<int>(attr_names.size())),
      soa_(static_cast<int>(attr_names.size())),
      attr_names_(std::move(attr_names)) {
  assert(dim_ >= 1);
}

void Dataset::Reserve(size_t n) {
  values_.reserve(n * static_cast<size_t>(dim_));
  soa_.Reserve(n);
  for (auto& c : cats_) c.codes.reserve(n);
}

void Dataset::AddPoint(const std::vector<double>& coords) {
  assert(static_cast<int>(coords.size()) == dim_);
  values_.insert(values_.end(), coords.begin(), coords.end());
  soa_.Append(coords.data());
  for (auto& c : cats_) c.codes.push_back(0);
  if (!dead_.empty()) dead_.push_back(0);
  ++n_;
  ++live_count_;
  ++version_;
}

void Dataset::AddRow(const std::vector<double>& coords,
                     const std::vector<int>& codes) {
  assert(static_cast<int>(coords.size()) == dim_);
  assert(codes.size() == cats_.size());
  values_.insert(values_.end(), coords.begin(), coords.end());
  soa_.Append(coords.data());
  for (size_t c = 0; c < cats_.size(); ++c) cats_[c].codes.push_back(codes[c]);
  if (!dead_.empty()) dead_.push_back(0);
  ++n_;
  ++live_count_;
  ++version_;
}

int Dataset::AddCategoricalColumn(std::string name,
                                  std::vector<std::string> labels) {
  CategoricalColumn col;
  col.name = std::move(name);
  col.labels = std::move(labels);
  col.codes.assign(n_, 0);
  cats_.push_back(std::move(col));
  ++version_;
  return static_cast<int>(cats_.size()) - 1;
}

int Dataset::AddCategoricalLabel(int c, std::string label) {
  auto& labels = cats_[static_cast<size_t>(c)].labels;
  labels.push_back(std::move(label));
  ++version_;
  return static_cast<int>(labels.size()) - 1;
}

StatusOr<int> Dataset::AppendRows(
    const std::vector<std::vector<double>>& coords,
    const std::vector<std::vector<int>>& codes) {
  if (coords.empty()) {
    return Status::InvalidArgument("AppendRows needs at least one row");
  }
  if (codes.size() != coords.size()) {
    return Status::InvalidArgument(
        StrFormat("AppendRows got %zu coordinate rows but %zu code rows",
                  coords.size(), codes.size()));
  }
  // Validate everything up front so a bad row leaves the table untouched.
  for (size_t r = 0; r < coords.size(); ++r) {
    if (static_cast<int>(coords[r].size()) != dim_) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu coordinates but the dataset is %d-d", r,
                    coords[r].size(), dim_));
    }
    for (int j = 0; j < dim_; ++j) {
      const double v = coords[r][static_cast<size_t>(j)];
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrFormat("non-finite value at appended row %zu attr %d", r, j));
      }
      if (v < 0.0) {
        return Status::InvalidArgument(StrFormat(
            "negative value %g at appended row %zu attr %d (FairHMS assumes "
            "nonnegative attributes)",
            v, r, j));
      }
    }
    if (codes[r].size() != cats_.size()) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu categorical codes but the dataset has "
                    "%zu categorical columns",
                    r, codes[r].size(), cats_.size()));
    }
    for (size_t c = 0; c < cats_.size(); ++c) {
      const int code = codes[r][c];
      if (code < 0 || static_cast<size_t>(code) >= cats_[c].labels.size()) {
        return Status::InvalidArgument(
            StrFormat("row %zu: code %d out of range for column '%s'", r,
                      code, cats_[c].name.c_str()));
      }
    }
  }
  const int first = static_cast<int>(n_);
  for (size_t r = 0; r < coords.size(); ++r) {
    values_.insert(values_.end(), coords[r].begin(), coords[r].end());
    soa_.Append(coords[r].data());
    for (size_t c = 0; c < cats_.size(); ++c) {
      cats_[c].codes.push_back(codes[r][c]);
    }
    if (!dead_.empty()) dead_.push_back(0);
  }
  n_ += coords.size();
  live_count_ += coords.size();
  ++version_;
  return first;
}

Status Dataset::ErasePoints(const std::vector<int>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("ErasePoints needs at least one row");
  }
  std::vector<uint8_t> marked(n_, 0);
  for (int r : rows) {
    if (r < 0 || static_cast<size_t>(r) >= n_) {
      return Status::OutOfRange(
          StrFormat("cannot erase row %d of a %zu-row dataset", r, n_));
    }
    if (!live(static_cast<size_t>(r))) {
      return Status::InvalidArgument(
          StrFormat("row %d is already erased", r));
    }
    if (marked[static_cast<size_t>(r)]) {
      return Status::InvalidArgument(
          StrFormat("row %d listed twice in ErasePoints", r));
    }
    marked[static_cast<size_t>(r)] = 1;
  }
  if (dead_.empty()) dead_.assign(n_, 0);
  for (int r : rows) dead_[static_cast<size_t>(r)] = 1;
  live_count_ -= rows.size();
  ++version_;
  return Status::OK();
}

std::vector<int> Dataset::LiveRows() const {
  std::vector<int> rows;
  rows.reserve(live_count_);
  for (size_t i = 0; i < n_; ++i) {
    if (live(i)) rows.push_back(static_cast<int>(i));
  }
  return rows;
}

StatusOr<int> Dataset::FindCategorical(const std::string& name) const {
  for (size_t c = 0; c < cats_.size(); ++c) {
    if (cats_[c].name == name) return static_cast<int>(c);
  }
  return Status::NotFound("no categorical column named '" + name + "'");
}

Status Dataset::Validate() const {
  for (size_t i = 0; i < n_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      const double v = at(i, j);
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrFormat("non-finite value at row %zu attr %d", i, j));
      }
      if (v < 0.0) {
        return Status::InvalidArgument(
            StrFormat("negative value %g at row %zu attr %d (FairHMS assumes "
                      "nonnegative attributes; normalize first)",
                      v, i, j));
      }
    }
  }
  for (const auto& c : cats_) {
    if (c.codes.size() != n_) {
      return Status::Internal("categorical column '" + c.name +
                              "' has wrong length");
    }
    for (int code : c.codes) {
      if (code < 0 || static_cast<size_t>(code) >= c.labels.size()) {
        return Status::InvalidArgument("categorical code out of range in '" +
                                       c.name + "'");
      }
    }
  }
  return Status::OK();
}

Dataset Dataset::NormalizedMinMax() const {
  Dataset out = *this;
  for (int j = 0; j < dim_; ++j) {
    // Column stats come from live rows only so erased outliers cannot skew
    // the scaling; erased rows are rescaled with everything else (their
    // values are never read, but stay finite). Stats stream the contiguous
    // column view; without tombstones the whole column goes through the
    // kernel layer.
    const double* col = column(j);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    if (!has_tombstones()) {
      simd::ColMinMax(col, n_, &lo, &hi);
    } else {
      for (size_t i = 0; i < n_; ++i) {
        if (!live(i)) continue;
        lo = std::min(lo, col[i]);
        hi = std::max(hi, col[i]);
      }
    }
    if (live_count_ == 0) lo = hi = 0.0;
    const double span = hi - lo;
    double* out_col = out.soa_.mutable_col(j);
    for (size_t i = 0; i < n_; ++i) {
      double& v = out.values_[i * static_cast<size_t>(dim_) + static_cast<size_t>(j)];
      v = span > 0 ? (v - lo) / span : 1.0;
      out_col[i] = v;
    }
  }
  return out;
}

Dataset Dataset::ScaledByMax() const {
  Dataset out = *this;
  for (int j = 0; j < dim_; ++j) {
    const double* col = column(j);
    double hi = 0.0;
    if (!has_tombstones()) {
      double lo = 0.0;
      double mx = 0.0;
      simd::ColMinMax(col, n_, &lo, &mx);
      hi = std::max(hi, mx);
    } else {
      for (size_t i = 0; i < n_; ++i) {
        if (live(i)) hi = std::max(hi, col[i]);
      }
    }
    double* out_col = out.soa_.mutable_col(j);
    for (size_t i = 0; i < n_; ++i) {
      double& v = out.values_[i * static_cast<size_t>(dim_) + static_cast<size_t>(j)];
      v = hi > 0 ? v / hi : 0.0;
      out_col[i] = v;
    }
  }
  return out;
}

simd::ColumnBlock Dataset::PackColumns(const std::vector<int>& rows) const {
  simd::ColumnBlock block(dim_);
  block.ResizeRows(rows.size());
  for (int j = 0; j < dim_; ++j) {
    const double* src = column(j);
    double* dst = block.mutable_col(j);
    for (size_t i = 0; i < rows.size(); ++i) {
      dst[i] = src[rows[i]];
    }
  }
  return block;
}

simd::AlignedVector Dataset::PackRows(const std::vector<int>& rows) const {
  const size_t d = static_cast<size_t>(dim_);
  simd::AlignedVector pts(rows.size() * d);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* p = point(static_cast<size_t>(rows[i]));
    std::copy(p, p + d, pts.begin() + static_cast<int64_t>(i * d));
  }
  return pts;
}

Dataset Dataset::Subset(const std::vector<int>& rows) const {
  Dataset out(attr_names_);
  for (const auto& c : cats_) {
    out.AddCategoricalColumn(c.name, c.labels);
  }
  out.Reserve(rows.size());
  std::vector<double> coords(static_cast<size_t>(dim_));
  std::vector<int> codes(cats_.size());
  for (int r : rows) {
    assert(r >= 0 && static_cast<size_t>(r) < n_);
    const double* p = point(static_cast<size_t>(r));
    std::copy(p, p + dim_, coords.begin());
    for (size_t c = 0; c < cats_.size(); ++c) {
      codes[c] = cats_[c].codes[static_cast<size_t>(r)];
    }
    out.AddRow(coords, codes);
  }
  return out;
}

}  // namespace fairhms
