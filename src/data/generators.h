// Synthetic dataset generators.
//
// * GenAntiCorrelated / GenIndependent / GenCorrelated reproduce the classic
//   skyline-benchmark distributions of Boerzsoenyi et al. (ICDE'01), which
//   the paper uses for its synthetic experiments.
// * Make{Lawschs,Adult,Compas,Credit}Sim are *statistical replicas* of the
//   four real datasets in the paper's Table 2 (see DESIGN.md, substitutions):
//   same dimensionality, cardinality, group structure and skew, and the same
//   qualitative skyline scale. When the real CSVs are available, load them
//   with data/csv.h instead.
//
// All generators return raw-scale data; call Dataset::NormalizedMinMax()
// before feeding algorithms (as the paper normalizes each attribute to
// [0, 1]).

#ifndef FAIRHMS_DATA_GENERATORS_H_
#define FAIRHMS_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"

namespace fairhms {

/// Anti-correlated points: good in one attribute implies bad in others.
/// Points concentrate near the hyperplane sum(x) = d/2 (plus `jitter`
/// noise), so almost every point is on the skyline — the hard case for
/// representative selection (Table 2 reports 0.9n..n skyline sizes).
Dataset GenAntiCorrelated(size_t n, int d, Rng* rng, double jitter = 0.05);

/// Independent uniform points in [0, 1]^d.
Dataset GenIndependent(size_t n, int d, Rng* rng);

/// Correlated points: a common base value plus small independent noise;
/// skylines are tiny.
Dataset GenCorrelated(size_t n, int d, Rng* rng, double noise = 0.15);

/// LSAC law-school replica. d = 2 (LSAT, GPA; positively correlated),
/// categorical columns "gender" (C = 2) and "race" (C = 5).
Dataset MakeLawschsSim(Rng* rng, size_t n = 65494);

/// UCI Adult replica. d = 5 (education_years, capital_gain, capital_loss,
/// hours_per_week, overall_weight), categorical "gender" (C = 2) and
/// "race" (C = 5); gender x race yields the paper's C = 10 "G+R" partition.
Dataset MakeAdultSim(Rng* rng, size_t n = 32561);

/// ProPublica Compas replica. d = 9 score-like attributes, categorical
/// "gender" (C = 2) and "isRecid" (C = 2); the product is the C = 4 "G+iR".
Dataset MakeCompasSim(Rng* rng, size_t n = 4743);

/// German-credit replica. d = 7, categorical "housing" (C = 3), "job"
/// (C = 4) and "working_years" (C = 5).
Dataset MakeCreditSim(Rng* rng, size_t n = 1000);

/// Name-dispatched generator shared by every serving surface (the CLI's
/// --synthetic flag and the protocol's register op): independent |
/// anticorrelated (or anticor) | correlated | lawschs | adult | compas |
/// credit. `n` 0 means the paper-default size for the chosen family; `dim`
/// applies to the three distribution families only. InvalidArgument on an
/// unknown family or out-of-range n/dim.
StatusOr<Dataset> MakeSyntheticDataset(const std::string& name, int64_t n,
                                       int64_t dim, Rng* rng);

/// Name-dispatched normalization (minmax | max | none) applied to a freshly
/// loaded dataset; shared by the --normalize flag and register ops.
StatusOr<Dataset> NormalizeDatasetByName(const std::string& norm,
                                         Dataset raw);

}  // namespace fairhms

#endif  // FAIRHMS_DATA_GENERATORS_H_
