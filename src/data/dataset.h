// Dataset: n points with d nonnegative numeric attributes plus any number
// of categorical (demographic) columns, stored twice: flat row-major
// (`point(i)` — the gather-friendly view a single row reads in one cache
// line) and dimension-major structure-of-arrays (`column(j)` — padded,
// cache-line-aligned columns the SIMD kernel layer in common/simd.h streams
// through). Both views are maintained on every mutation; tombstones give
// live views via LiveRows() + PackColumns()/PackRows().
//
// Numeric attributes drive scoring; categorical columns define the fairness
// groups (see data/grouping.h). Algorithms reference points by row index so
// that solutions remain meaningful against the original table.
//
// Mutation model: storage is append-only. AppendRows adds rows at the end,
// ErasePoints tombstones existing rows (coords stay addressable so solved
// row indices keep their meaning; the rows just leave every live view).
// Every mutation bumps version(), which artifact caches use to detect
// staleness without comparing contents.

#ifndef FAIRHMS_DATA_DATASET_H_
#define FAIRHMS_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/status.h"
#include "common/statusor.h"

namespace fairhms {

/// A categorical column: per-row integer codes plus human-readable labels.
struct CategoricalColumn {
  std::string name;
  std::vector<int> codes;           ///< Size n; values in [0, labels.size()).
  std::vector<std::string> labels;  ///< Code -> display name.
};

/// In-memory table of points. Copyable; cheap moves.
class Dataset {
 public:
  /// Creates an empty dataset with `dim` numeric attributes (dim >= 1).
  explicit Dataset(int dim);

  /// Creates with explicit attribute names (dim = names.size()).
  explicit Dataset(std::vector<std::string> attr_names);

  /// Pre-allocates storage for n rows.
  void Reserve(size_t n);

  /// Appends a row; `coords` must hold exactly dim() values. Categorical
  /// codes for existing columns must be appended separately via
  /// AppendCategorical (or use AddRow).
  void AddPoint(const std::vector<double>& coords);

  /// Appends a row together with codes for every categorical column
  /// (codes.size() must equal num_categorical()).
  void AddRow(const std::vector<double>& coords, const std::vector<int>& codes);

  /// Declares a categorical column. Must be called before rows carry codes
  /// for it; existing rows receive code 0.
  /// Returns the column's index.
  int AddCategoricalColumn(std::string name, std::vector<std::string> labels);

  /// Appends a label to categorical column `c` and returns its code. The
  /// caller is responsible for not duplicating an existing label (lazy
  /// label registration for streaming readers).
  int AddCategoricalLabel(int c, std::string label);

  /// Appends a batch of rows (each with codes for every categorical column)
  /// after validating shape, finiteness/nonnegativity and code ranges.
  /// Returns the index of the first appended row; on error nothing is
  /// appended. One version bump per call.
  StatusOr<int> AppendRows(const std::vector<std::vector<double>>& coords,
                           const std::vector<std::vector<int>>& codes);

  /// Tombstones the given live rows. Fails (appending nothing) when a row is
  /// out of range, already erased, or listed twice. One version bump per
  /// call. Erased rows keep their coordinates addressable — previously
  /// returned solutions stay meaningful — but disappear from every live
  /// view (LiveRows, skylines, group tables, happiness denominators).
  Status ErasePoints(const std::vector<int>& rows);

  /// True iff row i has not been erased.
  bool live(size_t i) const { return dead_.empty() || dead_[i] == 0; }
  /// True iff any row has ever been erased.
  bool has_tombstones() const { return live_count_ < n_; }
  /// Number of live (non-erased) rows.
  size_t live_size() const { return live_count_; }
  /// Ascending indices of every live row.
  std::vector<int> LiveRows() const;

  /// Monotonically increasing mutation counter (every AddPoint/AddRow/
  /// AppendRows/ErasePoints/column change bumps it). Two reads returning
  /// the same version saw the same table.
  uint64_t version() const { return version_; }

  /// Snapshot-restore hook (data/snapshot.cc): overwrites the mutation
  /// counter so a restored table reports the version it was snapshotted
  /// at, keeping version-keyed artifacts comparable across a restart.
  /// Never call this on a table that any session or cache has seen.
  void set_version(uint64_t v) { version_ = v; }

  size_t size() const { return n_; }
  int dim() const { return dim_; }

  /// Pointer to row i's numeric attributes (dim() doubles).
  const double* point(size_t i) const { return &values_[i * static_cast<size_t>(dim_)]; }
  double at(size_t i, int j) const { return values_[i * static_cast<size_t>(dim_) + static_cast<size_t>(j)]; }

  /// Dimension-major view: attribute j of every row (size() doubles,
  /// cache-line aligned, zero-padded to a multiple of simd::kPadRows).
  /// Includes tombstoned rows — combine with LiveRows()/PackColumns() for a
  /// live view.
  const double* column(int j) const { return soa_.col(j); }
  const simd::ColumnBlock& columns() const { return soa_; }

  /// Gathers the given rows into a fresh dimension-major block (padded,
  /// aligned) for the SIMD dominance/sum kernels. Row order is preserved:
  /// block row i is dataset row rows[i].
  simd::ColumnBlock PackColumns(const std::vector<int>& rows) const;

  /// Gathers the given rows into a dense row-major block (rows.size() * dim
  /// doubles) for kernels that stream points against net columns.
  simd::AlignedVector PackRows(const std::vector<int>& rows) const;

  const std::vector<std::string>& attr_names() const { return attr_names_; }

  int num_categorical() const { return static_cast<int>(cats_.size()); }
  const CategoricalColumn& categorical(int c) const { return cats_[static_cast<size_t>(c)]; }
  /// Finds a categorical column by name.
  StatusOr<int> FindCategorical(const std::string& name) const;

  /// Validates that every numeric value is finite and nonnegative and all
  /// categorical codes are within range.
  Status Validate() const;

  /// Returns a copy with every numeric attribute min-max scaled to [0, 1]
  /// (the paper's normalization; larger preferred). Constant columns map
  /// to 1.0 so that they never dominate the happiness ratio artificially.
  Dataset NormalizedMinMax() const;

  /// Returns a copy with every numeric attribute divided by its maximum
  /// (scale-invariant alternative normalization). Nonpositive-max columns
  /// map to 0.
  Dataset ScaledByMax() const;

  /// Returns the subset given by `rows` (row order preserved, categorical
  /// columns carried over). Out-of-range rows are a programming error.
  Dataset Subset(const std::vector<int>& rows) const;

 private:
  int dim_;
  size_t n_ = 0;
  size_t live_count_ = 0;
  uint64_t version_ = 0;
  std::vector<double> values_;
  simd::ColumnBlock soa_;      ///< Dimension-major mirror of values_.
  std::vector<uint8_t> dead_;  ///< Tombstones; empty until the first erase.
  std::vector<std::string> attr_names_;
  std::vector<CategoricalColumn> cats_;
};

}  // namespace fairhms

#endif  // FAIRHMS_DATA_DATASET_H_
