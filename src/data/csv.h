// CSV import/export for datasets.
//
// The generators in data/generators.h are the offline default; this reader
// exists so the library can run on the *real* Lawschs / Adult / Compas /
// Credit files when a user supplies them (see examples/ for the schemas).

#ifndef FAIRHMS_DATA_CSV_H_
#define FAIRHMS_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"

namespace fairhms {

/// Options for ReadCsv.
struct CsvReadOptions {
  char delimiter = ',';
  /// Header names of the columns to load as numeric attributes, in the order
  /// they should appear in the dataset. Must be non-empty.
  std::vector<std::string> numeric_columns;
  /// Header names of the columns to load as categorical columns. Distinct
  /// cell strings become labels in first-seen order.
  std::vector<std::string> categorical_columns;
  /// Rows with unparsable numeric cells or missing (too-short-row)
  /// categorical cells are skipped when true (otherwise the read fails).
  bool skip_bad_rows = false;
};

/// Reads a headered CSV file into a Dataset, streaming rows in one pass.
///
/// Quoting follows RFC 4180: a field starting with '"' runs to its closing
/// quote — embedded delimiters, quotes ("" decodes to one quote) and line
/// breaks included — and is taken verbatim; unquoted cells are trimmed.
/// Records end at LF, CRLF, CR or EOF.
StatusOr<Dataset> ReadCsv(const std::string& path, const CsvReadOptions& opts);

/// Writes the dataset (numeric and categorical columns) as a headered CSV.
/// Labels and column names containing the delimiter, quotes, line breaks or
/// boundary whitespace are RFC-4180 quoted, and coordinates print with 17
/// significant digits, so the file re-reads to an identical dataset.
Status WriteCsv(const Dataset& data, const std::string& path,
                char delimiter = ',');

}  // namespace fairhms

#endif  // FAIRHMS_DATA_CSV_H_
