#include "data/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace fairhms {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

/// Truncated normal by resampling (falls back to clamping after a few
/// tries; adequate for data synthesis).
double TruncNormal(Rng* rng, double mean, double sd, double lo, double hi) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double v = rng->Normal(mean, sd);
    if (v >= lo && v <= hi) return v;
  }
  return Clamp(rng->Normal(mean, sd), lo, hi);
}

}  // namespace

Dataset GenAntiCorrelated(size_t n, int d, Rng* rng, double jitter) {
  assert(d >= 2);
  Dataset data(d);
  data.Reserve(n);
  std::vector<double> x(static_cast<size_t>(d));
  while (data.size() < n) {
    // Sample around the simplex-like plane sum(x) = d/2, then re-center so
    // the sum is exact, add jitter, and reject anything outside [0,1]^d.
    double sum = 0.0;
    for (int j = 0; j < d; ++j) {
      x[static_cast<size_t>(j)] = rng->Normal(0.5, 0.25);
      sum += x[static_cast<size_t>(j)];
    }
    const double shift = 0.5 - sum / d;
    bool ok = true;
    for (int j = 0; j < d; ++j) {
      double v = x[static_cast<size_t>(j)] + shift;
      if (jitter > 0) v += rng->Normal(0.0, jitter);
      if (v < 0.0 || v > 1.0) {
        ok = false;
        break;
      }
      x[static_cast<size_t>(j)] = v;
    }
    if (ok) data.AddPoint(x);
  }
  return data;
}

Dataset GenIndependent(size_t n, int d, Rng* rng) {
  Dataset data(d);
  data.Reserve(n);
  std::vector<double> x(static_cast<size_t>(d));
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) x[static_cast<size_t>(j)] = rng->Uniform();
    data.AddPoint(x);
  }
  return data;
}

Dataset GenCorrelated(size_t n, int d, Rng* rng, double noise) {
  Dataset data(d);
  data.Reserve(n);
  std::vector<double> x(static_cast<size_t>(d));
  for (size_t i = 0; i < n; ++i) {
    const double base = rng->Uniform();
    for (int j = 0; j < d; ++j) {
      x[static_cast<size_t>(j)] = Clamp(base + rng->Normal(0.0, noise), 0.0, 1.0);
    }
    data.AddPoint(x);
  }
  return data;
}

Dataset MakeLawschsSim(Rng* rng, size_t n) {
  Dataset data(std::vector<std::string>{"lsat", "gpa"});
  data.AddCategoricalColumn("gender", {"Female", "Male"});
  data.AddCategoricalColumn(
      "race", {"White", "Black", "Hispanic", "Asian", "Other"});
  data.Reserve(n);

  const std::vector<double> race_probs = {0.76, 0.07, 0.08, 0.07, 0.02};
  // Group-conditional LSAT means (points on the 120-180 scale); the gaps
  // reproduce the skewed representation at the top of the score range that
  // makes unconstrained HMS solutions unfair.
  const double race_lsat_mean[] = {153.0, 142.5, 146.5, 152.0, 149.0};
  const double race_gpa_shift[] = {0.00, -0.25, -0.15, 0.02, -0.08};

  std::vector<double> x(2);
  std::vector<int> codes(2);
  for (size_t i = 0; i < n; ++i) {
    const int race = static_cast<int>(rng->Categorical(race_probs));
    const int male = rng->Bernoulli(0.56) ? 1 : 0;
    const double lsat =
        TruncNormal(rng, race_lsat_mean[race] + (male ? 1.5 : 0.0), 8.0,
                    120.0, 180.0);
    const double z = (lsat - 150.0) / 8.0;
    const double gpa =
        TruncNormal(rng,
                    3.05 + 0.22 * z + race_gpa_shift[race] +
                        (male ? -0.06 : 0.04),
                    0.32, 0.0, 4.0);
    x[0] = lsat;
    x[1] = gpa;
    codes[0] = male;
    codes[1] = race;
    data.AddRow(x, codes);
  }
  return data;
}

Dataset MakeAdultSim(Rng* rng, size_t n) {
  Dataset data(std::vector<std::string>{"education_years", "capital_gain",
                                        "capital_loss", "hours_per_week",
                                        "overall_weight"});
  data.AddCategoricalColumn("gender", {"Female", "Male"});
  data.AddCategoricalColumn(
      "race", {"White", "Black", "Asian-Pac", "Amer-Indian", "Other"});
  data.Reserve(n);

  const std::vector<double> race_probs = {0.854, 0.096, 0.031, 0.010, 0.009};
  std::vector<double> x(5);
  std::vector<int> codes(2);
  for (size_t i = 0; i < n; ++i) {
    const int male = rng->Bernoulli(0.669) ? 1 : 0;
    const int race = static_cast<int>(rng->Categorical(race_probs));
    const double race_edu_shift = (race == 2) ? 1.0 : (race == 0 ? 0.2 : -0.6);
    x[0] = TruncNormal(rng, 10.0 + (male ? 0.2 : 0.0) + race_edu_shift, 2.6,
                       1.0, 16.0);
    // Capital gain/loss: mostly zero, heavy-tailed otherwise; males draw
    // nonzero gains about twice as often — the main unfairness driver.
    const double gain_p = male ? 0.10 : 0.05;
    x[1] = rng->Bernoulli(gain_p)
               ? Clamp(std::exp(rng->Normal(8.3, 1.1)), 100.0, 99999.0)
               : 0.0;
    x[2] = rng->Bernoulli(0.047)
               ? Clamp(std::exp(rng->Normal(7.45, 0.45)), 100.0, 4356.0)
               : 0.0;
    x[3] = rng->Bernoulli(0.42)
               ? 40.0
               : TruncNormal(rng, male ? 43.0 : 37.0, 11.5, 1.0, 99.0);
    x[4] = std::exp(rng->Normal(12.06, 0.48));  // fnlwgt-like weight.
    codes[0] = male;
    codes[1] = race;
    data.AddRow(x, codes);
  }
  return data;
}

Dataset MakeCompasSim(Rng* rng, size_t n) {
  Dataset data(std::vector<std::string>{
      "age", "juv_fel_count", "juv_misd_count", "juv_other_count",
      "priors_count", "days_b_screening", "days_from_compas", "decile_score",
      "v_decile_score"});
  data.AddCategoricalColumn("gender", {"Female", "Male"});
  data.AddCategoricalColumn("isRecid", {"No", "Yes"});
  data.Reserve(n);

  std::vector<double> x(9);
  std::vector<int> codes(2);
  for (size_t i = 0; i < n; ++i) {
    const int male = rng->Bernoulli(0.81) ? 1 : 0;
    x[0] = Clamp(18.0 + rng->Exponential(1.0 / 11.0), 18.0, 83.0);  // age
    x[1] = rng->Poisson(0.06);                                      // juv fel
    x[2] = rng->Poisson(0.09);                                      // juv misd
    x[3] = rng->Poisson(0.10);                                      // juv other
    const double priors = std::floor(rng->Exponential(1.0 / 3.2));
    x[4] = Clamp(priors, 0.0, 38.0);
    x[5] = Clamp(std::fabs(rng->Normal(0.0, 60.0)), 0.0, 1057.0);
    x[6] = Clamp(rng->Exponential(1.0 / 95.0), 0.0, 9485.0);
    // Risk scores: grow with priors, shrink with age; male offset.
    const double risk =
        2.8 + 0.55 * x[4] - 0.055 * (x[0] - 18.0) + (male ? 0.4 : 0.0);
    x[7] = Clamp(std::round(TruncNormal(rng, risk, 2.2, 1.0, 10.0)), 1.0, 10.0);
    x[8] = Clamp(std::round(TruncNormal(rng, risk - 0.3, 2.4, 1.0, 10.0)), 1.0,
                 10.0);
    const double recid_p = Clamp(0.16 + 0.052 * x[7], 0.0, 0.92);
    codes[0] = male;
    codes[1] = rng->Bernoulli(recid_p) ? 1 : 0;
    data.AddRow(x, codes);
  }
  return data;
}

Dataset MakeCreditSim(Rng* rng, size_t n) {
  Dataset data(std::vector<std::string>{
      "duration", "credit_amount", "installment_rate", "present_residence",
      "age", "existing_credits", "num_dependents"});
  data.AddCategoricalColumn("housing", {"own", "rent", "free"});
  data.AddCategoricalColumn(
      "job", {"unskilled_nonres", "unskilled", "skilled", "management"});
  data.AddCategoricalColumn(
      "working_years", {"unemployed", "lt1", "1to4", "4to7", "ge7"});
  data.Reserve(n);

  const std::vector<double> housing_probs = {0.71, 0.18, 0.11};
  const std::vector<double> job_probs = {0.02, 0.20, 0.63, 0.15};
  const std::vector<double> wy_probs = {0.06, 0.17, 0.34, 0.17, 0.26};

  std::vector<double> x(7);
  std::vector<int> codes(3);
  for (size_t i = 0; i < n; ++i) {
    const int job = static_cast<int>(rng->Categorical(job_probs));
    x[0] = Clamp(std::round(rng->Exponential(1.0 / 20.0)) + 4.0, 4.0, 72.0);
    x[1] = Clamp(std::exp(rng->Normal(7.9 + 0.25 * job, 0.75)), 250.0,
                 18424.0);
    x[2] = 1.0 + static_cast<double>(rng->UniformInt(4));
    x[3] = 1.0 + static_cast<double>(rng->UniformInt(4));
    x[4] = Clamp(19.0 + rng->Exponential(1.0 / 14.0), 19.0, 75.0);
    x[5] = 1.0 + static_cast<double>(rng->Poisson(0.41));
    x[6] = rng->Bernoulli(0.155) ? 2.0 : 1.0;
    codes[0] = static_cast<int>(rng->Categorical(housing_probs));
    codes[1] = job;
    codes[2] = static_cast<int>(rng->Categorical(wy_probs));
    data.AddRow(x, codes);
  }
  return data;
}

StatusOr<Dataset> MakeSyntheticDataset(const std::string& name, int64_t n_raw,
                                       int64_t dim_raw, Rng* rng) {
  if (n_raw < 0) return Status::InvalidArgument("n must be >= 0");
  if (dim_raw < 1 || dim_raw > 1000) {
    return Status::InvalidArgument("dim must be in [1, 1000]");
  }
  const size_t n = static_cast<size_t>(n_raw);
  const int dim = static_cast<int>(dim_raw);
  if (name == "independent") {
    return GenIndependent(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "anticorrelated" || name == "anticor") {
    return GenAntiCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "correlated") {
    return GenCorrelated(n == 0 ? 10000 : n, dim, rng);
  }
  if (name == "lawschs") return n ? MakeLawschsSim(rng, n) : MakeLawschsSim(rng);
  if (name == "adult") return n ? MakeAdultSim(rng, n) : MakeAdultSim(rng);
  if (name == "compas") return n ? MakeCompasSim(rng, n) : MakeCompasSim(rng);
  if (name == "credit") return n ? MakeCreditSim(rng, n) : MakeCreditSim(rng);
  return Status::InvalidArgument(
      StrFormat("unknown synthetic family '%s'", name.c_str()));
}

StatusOr<Dataset> NormalizeDatasetByName(const std::string& norm,
                                         Dataset raw) {
  if (norm == "minmax") return raw.NormalizedMinMax();
  if (norm == "max") return raw.ScaledByMax();
  if (norm == "none") return raw;
  return Status::InvalidArgument(
      StrFormat("unknown normalization '%s' (want minmax, max or none)",
                norm.c_str()));
}

}  // namespace fairhms
