// Versioned, checksummed binary snapshots of one dataset's full serving
// state: the Dataset (coordinates, categorical columns, tombstones,
// mutation version), the Grouping (partition, names, version), the
// dynamic-session provenance (group columns + combination table) and the
// incrementally maintained SkylineIndex state. A restarted process
// restores from the snapshot and serves warm — no CSV re-ingest, not a
// single dominance test to rebuild skylines.
//
// Format (all integers little-endian, fixed width):
//
//   offset 0   8 bytes  magic "FHMSSNAP"
//   offset 8   u32      format version (kSnapshotFormatVersion)
//   offset 12  u32      reserved flags (0)
//   offset 16  u64      payload size in bytes
//   offset 24  payload  sections in order: dataset, grouping, dynamic
//                       provenance, skyline index state
//   trailer    u32      CRC32 (IEEE) over header + payload
//
// The checksum covers every byte before the trailer, so any truncation or
// bit-flip anywhere — header fields included — is caught before a single
// payload byte is interpreted. Strict-reject semantics with a typed error
// taxonomy:
//
//   * truncated / size-field mismatch            -> IOError
//   * bad magic (not a snapshot at all)          -> InvalidArgument
//   * checksum mismatch (corruption)             -> IOError
//   * format version from the future             -> Unimplemented
//   * structurally invalid payload (wrong
//     dimensions, bad codes, bad group ids, ...) -> InvalidArgument
//
// Parsing never partially constructs: every error path returns before the
// caller sees a Snapshot, so a failed load cannot leave a catalog (or
// anything else) half-mutated.

#ifndef FAIRHMS_DATA_SNAPSHOT_H_
#define FAIRHMS_DATA_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "skyline/incremental.h"

namespace fairhms {

/// Current writer format. Readers accept every version <= this and reject
/// newer ones with Unimplemented (a downgrade must never misparse).
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Byte offsets of the fixed header fields, exported so corruption tests
/// can patch specific fields (and reseal with Crc32) instead of guessing.
inline constexpr size_t kSnapshotMagicOffset = 0;
inline constexpr size_t kSnapshotVersionOffset = 8;
inline constexpr size_t kSnapshotPayloadOffset = 24;

/// Everything a dynamic SolverSession needs to warm-start: the table, the
/// partition, insert-routing provenance and the maintained skyline state.
struct Snapshot {
  Dataset data = Dataset(1);
  Grouping grouping;
  /// Names of the categorical columns whose value combination routes
  /// inserted rows to groups (empty when the grouping has no categorical
  /// provenance).
  std::vector<std::string> group_columns;
  /// Combination -> group id table, sorted by combination. Preserved
  /// explicitly because a combination whose rows were all erased is no
  /// longer derivable from the table, yet must keep routing to its
  /// original group after a restore.
  std::vector<std::pair<std::vector<int>, int>> combo_to_group;
  /// Maintained skyline state; absent (has_index == false) when the
  /// snapshotted session never built one.
  bool has_index = false;
  SkylineIndexState index;
};

/// CRC32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the snapshot
/// trailer checksum. Exported so tests can corrupt a payload byte and
/// reseal the trailer, proving a later reject is structural rather than a
/// checksum artifact.
uint32_t Crc32(const void* data, size_t n);

/// Serializes to the binary format (header + payload + CRC trailer).
std::string SerializeSnapshot(const Snapshot& snapshot);

/// Parses and fully validates a serialized snapshot (see the taxonomy in
/// the header comment). The returned snapshot's Dataset passes Validate()
/// and its grouping/provenance/index references are internally consistent;
/// SkylineIndex::Restore re-checks the index state against the table.
StatusOr<Snapshot> ParseSnapshot(std::string_view bytes);

/// Writes atomically: serializes, writes `path` + ".tmp", then renames
/// over `path`, so a crash mid-write never leaves a torn snapshot behind.
Status WriteSnapshotFile(const Snapshot& snapshot, const std::string& path);

/// Reads and parses `path`. A missing file is NotFound; everything else
/// follows the ParseSnapshot taxonomy.
StatusOr<Snapshot> ReadSnapshotFile(const std::string& path);

}  // namespace fairhms

#endif  // FAIRHMS_DATA_SNAPSHOT_H_
