#include "data/grouping.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

#include "common/string_util.h"
#include "geom/vec.h"

namespace fairhms {

std::vector<int> Grouping::Counts() const {
  std::vector<int> counts(static_cast<size_t>(num_groups), 0);
  for (int g : group_of) ++counts[static_cast<size_t>(g)];
  return counts;
}

std::vector<std::vector<int>> Grouping::Members() const {
  std::vector<std::vector<int>> members(static_cast<size_t>(num_groups));
  for (size_t i = 0; i < group_of.size(); ++i) {
    members[static_cast<size_t>(group_of[i])].push_back(static_cast<int>(i));
  }
  return members;
}

std::vector<int> Grouping::LiveCounts(const Dataset& data) const {
  assert(group_of.size() == data.size());
  std::vector<int> counts(static_cast<size_t>(num_groups), 0);
  for (size_t i = 0; i < group_of.size(); ++i) {
    if (data.live(i)) ++counts[static_cast<size_t>(group_of[i])];
  }
  return counts;
}

std::vector<std::vector<int>> Grouping::MembersLive(const Dataset& data) const {
  assert(group_of.size() == data.size());
  std::vector<std::vector<int>> members(static_cast<size_t>(num_groups));
  for (size_t i = 0; i < group_of.size(); ++i) {
    if (data.live(i)) {
      members[static_cast<size_t>(group_of[i])].push_back(static_cast<int>(i));
    }
  }
  return members;
}

void Grouping::AppendRow(int group) {
  assert(group >= 0 && group < num_groups);
  group_of.push_back(group);
  ++version;
}

int Grouping::AddGroup(std::string name) {
  names.push_back(std::move(name));
  ++version;
  return num_groups++;
}

Grouping SingleGroup(size_t n) {
  Grouping g;
  g.group_of.assign(n, 0);
  g.num_groups = 1;
  g.names = {"all"};
  return g;
}

StatusOr<Grouping> GroupByCategorical(const Dataset& data,
                                      const std::string& column) {
  return GroupByCategoricalProduct(data, {column});
}

StatusOr<Grouping> GroupByCategoricalProduct(
    const Dataset& data, const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("no grouping columns given");
  }
  std::vector<int> col_idx;
  for (const auto& name : columns) {
    FAIRHMS_ASSIGN_OR_RETURN(int idx, data.FindCategorical(name));
    col_idx.push_back(idx);
  }
  // Map each occurring code combination to a dense group id.
  std::map<std::vector<int>, int> combo_to_group;
  Grouping g;
  g.group_of.resize(data.size());
  std::vector<int> combo(col_idx.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t c = 0; c < col_idx.size(); ++c) {
      combo[c] = data.categorical(col_idx[c]).codes[i];
    }
    auto [it, inserted] =
        combo_to_group.emplace(combo, static_cast<int>(combo_to_group.size()));
    g.group_of[i] = it->second;
    if (inserted) {
      std::vector<std::string> parts;
      for (size_t c = 0; c < col_idx.size(); ++c) {
        parts.push_back(
            data.categorical(col_idx[c]).labels[static_cast<size_t>(combo[c])]);
      }
      g.names.push_back(Join(parts, "+"));
    }
  }
  g.num_groups = static_cast<int>(combo_to_group.size());
  return g;
}

Grouping GroupBySumRank(const Dataset& data, int num_groups) {
  assert(num_groups >= 1);
  const size_t n = data.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = SumCoords(data.point(static_cast<size_t>(a)), static_cast<size_t>(data.dim()));
    const double sb = SumCoords(data.point(static_cast<size_t>(b)), static_cast<size_t>(data.dim()));
    if (sa != sb) return sa < sb;
    return a < b;
  });
  Grouping g;
  g.group_of.resize(n);
  g.num_groups = num_groups;
  for (int c = 0; c < num_groups; ++c) {
    g.names.push_back(StrFormat("G%d", c));
  }
  for (size_t r = 0; r < n; ++r) {
    const int grp = std::min<int>(
        num_groups - 1,
        static_cast<int>(r * static_cast<size_t>(num_groups) / (n == 0 ? 1 : n)));
    g.group_of[static_cast<size_t>(order[r])] = grp;
  }
  return g;
}

}  // namespace fairhms
