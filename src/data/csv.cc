#include "data/csv.h"

#include <fstream>
#include <map>

#include "common/string_util.h"

namespace fairhms {

StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& opts) {
  if (opts.numeric_columns.empty()) {
    return Status::InvalidArgument("numeric_columns must not be empty");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");

  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty file: " + path);
  const std::vector<std::string> header = Split(line, opts.delimiter);

  auto find_col = [&](const std::string& name) -> int {
    for (size_t i = 0; i < header.size(); ++i) {
      if (std::string(Trim(header[i])) == name) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<int> num_idx;
  for (const auto& name : opts.numeric_columns) {
    const int idx = find_col(name);
    if (idx < 0) return Status::NotFound("numeric column '" + name + "' not in header");
    num_idx.push_back(idx);
  }
  std::vector<int> cat_idx;
  for (const auto& name : opts.categorical_columns) {
    const int idx = find_col(name);
    if (idx < 0) return Status::NotFound("categorical column '" + name + "' not in header");
    cat_idx.push_back(idx);
  }

  Dataset data(opts.numeric_columns);
  std::vector<std::map<std::string, int>> label_maps(cat_idx.size());
  for (const auto& name : opts.categorical_columns) {
    data.AddCategoricalColumn(name, {});
  }

  // Labels are registered lazily; collect codes and labels, then rebuild.
  std::vector<std::vector<std::string>> labels(cat_idx.size());
  std::vector<double> coords(num_idx.size());
  std::vector<int> codes(cat_idx.size());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, opts.delimiter);
    bool ok = true;
    for (size_t j = 0; j < num_idx.size(); ++j) {
      const size_t c = static_cast<size_t>(num_idx[j]);
      if (c >= cells.size() || !ParseDouble(cells[c], &coords[j])) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      if (opts.skip_bad_rows) continue;
      return Status::IOError(
          StrFormat("unparsable numeric cell on line %zu of %s", line_no,
                    path.c_str()));
    }
    for (size_t j = 0; j < cat_idx.size(); ++j) {
      const size_t c = static_cast<size_t>(cat_idx[j]);
      const std::string cell =
          c < cells.size() ? std::string(Trim(cells[c])) : std::string("?");
      auto [it, inserted] =
          label_maps[j].emplace(cell, static_cast<int>(label_maps[j].size()));
      if (inserted) labels[j].push_back(cell);
      codes[j] = it->second;
    }
    data.AddRow(coords, codes);
  }

  // Install collected labels. AddRow stored the codes already; rebuild the
  // categorical columns with proper label tables.
  Dataset out(opts.numeric_columns);
  for (size_t j = 0; j < cat_idx.size(); ++j) {
    out.AddCategoricalColumn(opts.categorical_columns[j], labels[j]);
  }
  out.Reserve(data.size());
  std::vector<int> row_codes(cat_idx.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<double> c(data.point(i), data.point(i) + data.dim());
    for (size_t j = 0; j < cat_idx.size(); ++j) {
      row_codes[j] = data.categorical(static_cast<int>(j)).codes[i];
    }
    out.AddRow(c, row_codes);
  }
  return out;
}

Status WriteCsv(const Dataset& data, const std::string& path, char delimiter) {
  std::ofstream outf(path);
  if (!outf) return Status::IOError("cannot open '" + path + "' for writing");
  // Header.
  for (int j = 0; j < data.dim(); ++j) {
    if (j > 0) outf << delimiter;
    outf << data.attr_names()[static_cast<size_t>(j)];
  }
  for (int c = 0; c < data.num_categorical(); ++c) {
    outf << delimiter << data.categorical(c).name;
  }
  outf << '\n';
  // Rows.
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < data.dim(); ++j) {
      if (j > 0) outf << delimiter;
      outf << data.at(i, j);
    }
    for (int c = 0; c < data.num_categorical(); ++c) {
      const auto& col = data.categorical(c);
      outf << delimiter << col.labels[static_cast<size_t>(col.codes[i])];
    }
    outf << '\n';
  }
  if (!outf) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace fairhms
