#include "data/csv.h"

#include <cctype>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace fairhms {

namespace {

/// One parsed CSV record: decoded fields plus, per field, whether it was
/// quoted in the file. Quoted fields are taken verbatim; unquoted fields
/// keep the raw text and are trimmed (or numerically parsed) by the caller,
/// matching the reader's historical whitespace tolerance.
struct CsvRecord {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  size_t first_line = 0;  ///< 1-based line the record starts on.
};

/// Reads the next record, RFC-4180 style: fields separated by `delim`,
/// records ended by LF / CRLF / CR / EOF, and a field starting with '"'
/// runs — delimiters and newlines included — until its closing quote, with
/// "" decoding to one literal quote. Returns false at end of input with no
/// record; an unterminated quote is an error.
StatusOr<bool> ReadCsvRecord(std::istream& in, char delim, size_t* line_no,
                             CsvRecord* rec) {
  rec->fields.clear();
  rec->quoted.clear();
  rec->first_line = *line_no + 1;

  int ch = in.get();
  if (ch == EOF) return false;
  ++*line_no;

  std::string field;
  bool field_quoted = false;
  bool in_quotes = false;
  auto end_field = [&] {
    rec->fields.push_back(std::move(field));
    rec->quoted.push_back(field_quoted);
    field.clear();
    field_quoted = false;
  };

  for (;; ch = in.get()) {
    if (in_quotes) {
      if (ch == EOF) {
        return Status::IOError(StrFormat(
            "unterminated quoted field in record starting on line %zu",
            rec->first_line));
      }
      if (ch == '"') {
        if (in.peek() == '"') {
          field.push_back('"');
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        if (ch == '\n') ++*line_no;
        field.push_back(static_cast<char>(ch));
      }
      continue;
    }
    if (ch == EOF) break;
    if (ch == '"' && field.empty() && !field_quoted) {
      in_quotes = true;
      field_quoted = true;
      continue;
    }
    if (ch == delim) {
      end_field();
      continue;
    }
    if (ch == '\r') {
      if (in.peek() == '\n') in.get();
      break;
    }
    if (ch == '\n') break;
    field.push_back(static_cast<char>(ch));
  }
  end_field();
  return true;
}

/// A record whose only field is unquoted whitespace is a blank line.
bool IsBlankRecord(const CsvRecord& rec) {
  return rec.fields.size() == 1 && !rec.quoted[0] &&
         Trim(rec.fields[0]).empty();
}

/// The decoded cell text: quoted fields verbatim, unquoted fields trimmed.
std::string CellText(const CsvRecord& rec, size_t c) {
  return rec.quoted[c] ? rec.fields[c] : std::string(Trim(rec.fields[c]));
}

/// True when `field` must be quoted to survive a write/read round trip:
/// it contains the delimiter, a quote or a line break, carries leading or
/// trailing whitespace (the reader trims unquoted cells), or is empty (an
/// unquoted empty cell is indistinguishable from whitespace).
bool NeedsQuoting(const std::string& field, char delim) {
  if (field.empty()) return true;
  if (std::isspace(static_cast<unsigned char>(field.front())) ||
      std::isspace(static_cast<unsigned char>(field.back()))) {
    return true;
  }
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

/// Writes `field`, quoting and doubling quotes when required.
void WriteField(std::ostream& out, const std::string& field, char delim) {
  if (!NeedsQuoting(field, delim)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& opts) {
  if (opts.numeric_columns.empty()) {
    return Status::InvalidArgument("numeric_columns must not be empty");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");

  size_t line_no = 0;
  CsvRecord header;
  {
    FAIRHMS_ASSIGN_OR_RETURN(const bool got,
                             ReadCsvRecord(in, opts.delimiter, &line_no,
                                           &header));
    if (!got) return Status::IOError("empty file: " + path);
  }

  auto find_col = [&](const std::string& name) -> int {
    for (size_t i = 0; i < header.fields.size(); ++i) {
      if (CellText(header, i) == name) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<int> num_idx;
  for (const auto& name : opts.numeric_columns) {
    const int idx = find_col(name);
    if (idx < 0) return Status::NotFound("numeric column '" + name + "' not in header");
    num_idx.push_back(idx);
  }
  std::vector<int> cat_idx;
  for (const auto& name : opts.categorical_columns) {
    const int idx = find_col(name);
    if (idx < 0) return Status::NotFound("categorical column '" + name + "' not in header");
    cat_idx.push_back(idx);
  }

  // Single-pass build: rows stream straight into the final dataset, with
  // labels registered lazily in first-seen order as they appear.
  Dataset data(opts.numeric_columns);
  std::vector<std::map<std::string, int>> label_maps(cat_idx.size());
  for (const auto& name : opts.categorical_columns) {
    data.AddCategoricalColumn(name, {});
  }

  std::vector<double> coords(num_idx.size());
  std::vector<std::string> cells(cat_idx.size());
  std::vector<int> codes(cat_idx.size());
  CsvRecord rec;
  for (;;) {
    FAIRHMS_ASSIGN_OR_RETURN(const bool got,
                             ReadCsvRecord(in, opts.delimiter, &line_no,
                                           &rec));
    if (!got) break;
    if (IsBlankRecord(rec)) continue;
    // Validate every cell of the row before mutating any label table, so a
    // row rejected (or skipped) late cannot leave a half-registered label.
    bool ok = true;
    for (size_t j = 0; ok && j < num_idx.size(); ++j) {
      const size_t c = static_cast<size_t>(num_idx[j]);
      if (c >= rec.fields.size() ||
          !ParseDouble(rec.fields[c], &coords[j])) {
        ok = false;
      }
    }
    if (!ok) {
      if (opts.skip_bad_rows) continue;
      return Status::IOError(
          StrFormat("unparsable numeric cell on line %zu of %s",
                    rec.first_line, path.c_str()));
    }
    for (size_t j = 0; ok && j < cat_idx.size(); ++j) {
      const size_t c = static_cast<size_t>(cat_idx[j]);
      if (c >= rec.fields.size()) {
        ok = false;
        break;
      }
      cells[j] = CellText(rec, c);
    }
    if (!ok) {
      // A row too short to carry the categorical cell follows the same
      // policy as an unparsable numeric cell (no silent placeholder group).
      if (opts.skip_bad_rows) continue;
      return Status::IOError(
          StrFormat("missing categorical cell on line %zu of %s",
                    rec.first_line, path.c_str()));
    }
    for (size_t j = 0; j < cat_idx.size(); ++j) {
      auto [it, inserted] = label_maps[j].emplace(
          cells[j], static_cast<int>(label_maps[j].size()));
      if (inserted) data.AddCategoricalLabel(static_cast<int>(j), cells[j]);
      codes[j] = it->second;
    }
    data.AddRow(coords, codes);
  }
  return data;
}

Status WriteCsv(const Dataset& data, const std::string& path, char delimiter) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) return Status::IOError("cannot open '" + path + "' for writing");
  // Header.
  for (int j = 0; j < data.dim(); ++j) {
    if (j > 0) outf << delimiter;
    WriteField(outf, data.attr_names()[static_cast<size_t>(j)], delimiter);
  }
  for (int c = 0; c < data.num_categorical(); ++c) {
    outf << delimiter;
    WriteField(outf, data.categorical(c).name, delimiter);
  }
  outf << '\n';
  // Rows. Coordinates print with 17 significant digits so every double
  // round-trips bit-exactly through ReadCsv.
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < data.dim(); ++j) {
      if (j > 0) outf << delimiter;
      outf << StrFormat("%.17g", data.at(i, j));
    }
    for (int c = 0; c < data.num_categorical(); ++c) {
      const auto& col = data.categorical(c);
      outf << delimiter;
      WriteField(outf, col.labels[static_cast<size_t>(col.codes[i])],
                 delimiter);
    }
    outf << '\n';
  }
  if (!outf) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace fairhms
