#include "data/snapshot.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace fairhms {

namespace {

constexpr char kMagic[8] = {'F', 'H', 'M', 'S', 'S', 'N', 'A', 'P'};

// ---- little-endian writers -------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutSkylineState(std::string* out, const IncrementalSkylineState& state) {
  PutU64(out, state.skyline.size());
  for (int r : state.skyline) PutI32(out, r);
  PutU64(out, state.dominated.size());
  for (const auto& [row, dom] : state.dominated) {
    PutI32(out, row);
    PutI32(out, dom);
  }
}

// ---- little-endian reader --------------------------------------------------

/// Bounds-checked cursor over the (already checksum-verified) payload.
/// Every overrun is a structural error — the writer never produces one —
/// so cursor failures surface as InvalidArgument.
class Cursor {
 public:
  Cursor(const uint8_t* p, size_t n) : p_(p), end_(p + n) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  Status U8(uint8_t* out) {
    FAIRHMS_RETURN_IF_ERROR(Need(1, "byte"));
    *out = *p_++;
    return Status::OK();
  }

  Status U32(uint32_t* out) {
    FAIRHMS_RETURN_IF_ERROR(Need(4, "u32"));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    *out = v;
    return Status::OK();
  }

  Status U64(uint64_t* out) {
    FAIRHMS_RETURN_IF_ERROR(Need(8, "u64"));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    *out = v;
    return Status::OK();
  }

  Status I32(int* out) {
    uint32_t v = 0;
    FAIRHMS_RETURN_IF_ERROR(U32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }

  Status F64(double* out) {
    uint64_t bits = 0;
    FAIRHMS_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status String(std::string* out) {
    uint32_t len = 0;
    FAIRHMS_RETURN_IF_ERROR(U32(&len));
    FAIRHMS_RETURN_IF_ERROR(Need(len, "string body"));
    out->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return Status::OK();
  }

  /// Fails up front when `count` elements of `elem_size` bytes cannot fit
  /// in the remaining payload — so a corrupt count never drives a huge
  /// allocation before the overrun is noticed.
  Status CheckCount(uint64_t count, size_t elem_size, const char* what) {
    if (elem_size != 0 && count > remaining() / elem_size) {
      return Status::InvalidArgument(
          StrFormat("snapshot payload truncated: %llu %s entries do not fit "
                    "in the %zu remaining bytes",
                    static_cast<unsigned long long>(count), what, remaining()));
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n, const char* what) {
    if (remaining() < n) {
      return Status::InvalidArgument(StrFormat(
          "snapshot payload truncated while reading a %s (%zu bytes left)",
          what, remaining()));
    }
    return Status::OK();
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

Status ReadSkylineState(Cursor* c, IncrementalSkylineState* state) {
  uint64_t count = 0;
  FAIRHMS_RETURN_IF_ERROR(c->U64(&count));
  FAIRHMS_RETURN_IF_ERROR(c->CheckCount(count, 4, "skyline row"));
  state->skyline.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    FAIRHMS_RETURN_IF_ERROR(c->I32(&state->skyline[i]));
  }
  FAIRHMS_RETURN_IF_ERROR(c->U64(&count));
  FAIRHMS_RETURN_IF_ERROR(c->CheckCount(count, 8, "dominated pair"));
  state->dominated.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    FAIRHMS_RETURN_IF_ERROR(c->I32(&state->dominated[i].first));
    FAIRHMS_RETURN_IF_ERROR(c->I32(&state->dominated[i].second));
  }
  return Status::OK();
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string SerializeSnapshot(const Snapshot& snapshot) {
  const Dataset& d = snapshot.data;
  std::string payload;

  // Dataset section.
  PutI32(&payload, d.dim());
  PutU64(&payload, d.size());
  PutU64(&payload, d.version());
  for (const std::string& name : d.attr_names()) PutString(&payload, name);
  for (size_t i = 0; i < d.size(); ++i) {
    for (int j = 0; j < d.dim(); ++j) PutF64(&payload, d.at(i, j));
  }
  std::vector<int> dead;
  for (size_t i = 0; i < d.size(); ++i) {
    if (!d.live(i)) dead.push_back(static_cast<int>(i));
  }
  PutU64(&payload, dead.size());
  for (int r : dead) PutI32(&payload, r);
  PutU32(&payload, static_cast<uint32_t>(d.num_categorical()));
  for (int c = 0; c < d.num_categorical(); ++c) {
    const CategoricalColumn& col = d.categorical(c);
    PutString(&payload, col.name);
    PutU32(&payload, static_cast<uint32_t>(col.labels.size()));
    for (const std::string& label : col.labels) PutString(&payload, label);
    for (int code : col.codes) PutI32(&payload, code);
  }

  // Grouping section.
  const Grouping& g = snapshot.grouping;
  PutI32(&payload, g.num_groups);
  PutU64(&payload, g.version);
  for (const std::string& name : g.names) PutString(&payload, name);
  PutU64(&payload, g.group_of.size());
  for (int v : g.group_of) PutI32(&payload, v);

  // Dynamic provenance section.
  PutU32(&payload, static_cast<uint32_t>(snapshot.group_columns.size()));
  for (const std::string& name : snapshot.group_columns) {
    PutString(&payload, name);
  }
  PutU64(&payload, snapshot.combo_to_group.size());
  for (const auto& [combo, group] : snapshot.combo_to_group) {
    PutU32(&payload, static_cast<uint32_t>(combo.size()));
    for (int v : combo) PutI32(&payload, v);
    PutI32(&payload, group);
  }

  // Skyline index section.
  PutU8(&payload, snapshot.has_index ? 1 : 0);
  if (snapshot.has_index) {
    PutSkylineState(&payload, snapshot.index.global);
    PutU32(&payload, static_cast<uint32_t>(snapshot.index.per_group.size()));
    for (const IncrementalSkylineState& state : snapshot.index.per_group) {
      PutSkylineState(&payload, state);
    }
  }

  std::string out;
  out.reserve(kSnapshotPayloadOffset + payload.size() + 4);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kSnapshotFormatVersion);
  PutU32(&out, 0);  // Reserved flags.
  PutU64(&out, payload.size());
  out.append(payload);
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

StatusOr<Snapshot> ParseSnapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotPayloadOffset + 4) {
    return Status::IOError(
        StrFormat("snapshot truncated: %zu bytes is smaller than the %zu-byte "
                  "header + checksum trailer",
                  bytes.size(), kSnapshotPayloadOffset + 4));
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(bytes.data());
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a FairHMS snapshot (bad magic)");
  }
  uint64_t payload_size = 0;
  for (int i = 0; i < 8; ++i) {
    payload_size |= static_cast<uint64_t>(base[16 + i]) << (8 * i);
  }
  if (payload_size > bytes.size() - kSnapshotPayloadOffset - 4) {
    return Status::IOError(StrFormat(
        "snapshot truncated: header declares a %llu-byte payload but only "
        "%zu bytes follow the header",
        static_cast<unsigned long long>(payload_size),
        bytes.size() - kSnapshotPayloadOffset - 4));
  }
  const size_t total = kSnapshotPayloadOffset + payload_size + 4;
  if (bytes.size() != total) {
    return Status::IOError(
        StrFormat("snapshot has %zu trailing bytes after the checksum",
                  bytes.size() - total));
  }
  const uint32_t stored_crc = LoadU32(base + total - 4);
  const uint32_t actual_crc = Crc32(base, total - 4);
  if (stored_crc != actual_crc) {
    return Status::IOError(
        StrFormat("snapshot checksum mismatch (stored %08x, computed %08x): "
                  "the file is corrupt",
                  stored_crc, actual_crc));
  }
  const uint32_t format_version = LoadU32(base + kSnapshotVersionOffset);
  if (format_version > kSnapshotFormatVersion) {
    return Status::Unimplemented(
        StrFormat("snapshot format version %u is newer than this build "
                  "supports (%u); upgrade before restoring",
                  format_version, kSnapshotFormatVersion));
  }

  Cursor c(base + kSnapshotPayloadOffset, payload_size);

  // Dataset section.
  int dim = 0;
  uint64_t n = 0;
  uint64_t data_version = 0;
  FAIRHMS_RETURN_IF_ERROR(c.I32(&dim));
  FAIRHMS_RETURN_IF_ERROR(c.U64(&n));
  FAIRHMS_RETURN_IF_ERROR(c.U64(&data_version));
  if (dim < 1) {
    return Status::InvalidArgument(
        StrFormat("snapshot declares %d numeric attributes (need >= 1)", dim));
  }
  std::vector<std::string> attr_names(static_cast<size_t>(dim));
  for (auto& name : attr_names) FAIRHMS_RETURN_IF_ERROR(c.String(&name));
  FAIRHMS_RETURN_IF_ERROR(
      c.CheckCount(n, static_cast<size_t>(dim) * 8, "coordinate row"));
  std::vector<double> values(n * static_cast<uint64_t>(dim));
  for (double& v : values) FAIRHMS_RETURN_IF_ERROR(c.F64(&v));
  uint64_t dead_count = 0;
  FAIRHMS_RETURN_IF_ERROR(c.U64(&dead_count));
  FAIRHMS_RETURN_IF_ERROR(c.CheckCount(dead_count, 4, "tombstone"));
  if (dead_count > n) {
    return Status::InvalidArgument(
        StrFormat("snapshot lists %llu tombstones for %llu rows",
                  static_cast<unsigned long long>(dead_count),
                  static_cast<unsigned long long>(n)));
  }
  std::vector<int> dead(dead_count);
  for (int& r : dead) FAIRHMS_RETURN_IF_ERROR(c.I32(&r));
  uint32_t cat_count = 0;
  FAIRHMS_RETURN_IF_ERROR(c.U32(&cat_count));
  FAIRHMS_RETURN_IF_ERROR(c.CheckCount(cat_count, 8, "categorical column"));
  std::vector<CategoricalColumn> cats(cat_count);
  for (CategoricalColumn& col : cats) {
    FAIRHMS_RETURN_IF_ERROR(c.String(&col.name));
    uint32_t label_count = 0;
    FAIRHMS_RETURN_IF_ERROR(c.U32(&label_count));
    FAIRHMS_RETURN_IF_ERROR(c.CheckCount(label_count, 4, "label"));
    col.labels.resize(label_count);
    for (auto& label : col.labels) FAIRHMS_RETURN_IF_ERROR(c.String(&label));
    FAIRHMS_RETURN_IF_ERROR(c.CheckCount(n, 4, "categorical code"));
    col.codes.resize(n);
    for (int& code : col.codes) {
      FAIRHMS_RETURN_IF_ERROR(c.I32(&code));
      if (code < 0 || static_cast<size_t>(code) >= col.labels.size()) {
        return Status::InvalidArgument(
            StrFormat("snapshot column '%s' carries code %d outside its %zu "
                      "labels",
                      col.name.c_str(), code, col.labels.size()));
      }
    }
  }

  Snapshot snapshot;
  snapshot.data = Dataset(std::move(attr_names));
  Dataset& data = snapshot.data;
  for (CategoricalColumn& col : cats) {
    data.AddCategoricalColumn(std::move(col.name), std::move(col.labels));
  }
  data.Reserve(n);
  std::vector<double> coords(static_cast<size_t>(dim));
  std::vector<int> codes(cats.size());
  for (uint64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      coords[static_cast<size_t>(j)] =
          values[i * static_cast<uint64_t>(dim) + static_cast<uint64_t>(j)];
    }
    for (size_t cc = 0; cc < cats.size(); ++cc) {
      codes[cc] = cats[cc].codes[i];
    }
    data.AddRow(coords, codes);
  }
  if (!dead.empty()) {
    // ErasePoints validates range / duplicates / order for us; its failure
    // here means the snapshot's tombstone list is structurally bad.
    const Status st = data.ErasePoints(dead);
    if (!st.ok()) {
      return Status::InvalidArgument(
          StrFormat("snapshot tombstone list invalid: %s",
                    st.message().c_str()));
    }
  }
  {
    const Status st = data.Validate();
    if (!st.ok()) {
      return Status::InvalidArgument(StrFormat(
          "snapshot dataset fails validation: %s", st.message().c_str()));
    }
  }
  data.set_version(data_version);

  // Grouping section.
  Grouping& grouping = snapshot.grouping;
  FAIRHMS_RETURN_IF_ERROR(c.I32(&grouping.num_groups));
  FAIRHMS_RETURN_IF_ERROR(c.U64(&grouping.version));
  if (grouping.num_groups < 0) {
    return Status::InvalidArgument(
        StrFormat("snapshot declares %d groups", grouping.num_groups));
  }
  FAIRHMS_RETURN_IF_ERROR(c.CheckCount(
      static_cast<uint64_t>(grouping.num_groups), 4, "group name"));
  grouping.names.resize(static_cast<size_t>(grouping.num_groups));
  for (auto& name : grouping.names) FAIRHMS_RETURN_IF_ERROR(c.String(&name));
  uint64_t group_of_count = 0;
  FAIRHMS_RETURN_IF_ERROR(c.U64(&group_of_count));
  if (group_of_count != n) {
    return Status::InvalidArgument(
        StrFormat("snapshot grouping covers %llu rows, dataset has %llu",
                  static_cast<unsigned long long>(group_of_count),
                  static_cast<unsigned long long>(n)));
  }
  FAIRHMS_RETURN_IF_ERROR(c.CheckCount(group_of_count, 4, "group id"));
  grouping.group_of.resize(group_of_count);
  for (int& g : grouping.group_of) {
    FAIRHMS_RETURN_IF_ERROR(c.I32(&g));
    if (g < 0 || g >= grouping.num_groups) {
      return Status::InvalidArgument(StrFormat(
          "snapshot grouping maps a row to group %d of %d", g,
          grouping.num_groups));
    }
  }

  // Dynamic provenance section.
  uint32_t group_col_count = 0;
  FAIRHMS_RETURN_IF_ERROR(c.U32(&group_col_count));
  FAIRHMS_RETURN_IF_ERROR(c.CheckCount(group_col_count, 4, "group column"));
  snapshot.group_columns.resize(group_col_count);
  for (auto& name : snapshot.group_columns) {
    FAIRHMS_RETURN_IF_ERROR(c.String(&name));
    if (!data.FindCategorical(name).ok()) {
      return Status::InvalidArgument(StrFormat(
          "snapshot group column '%s' does not exist in the dataset",
          name.c_str()));
    }
  }
  uint64_t combo_count = 0;
  FAIRHMS_RETURN_IF_ERROR(c.U64(&combo_count));
  FAIRHMS_RETURN_IF_ERROR(c.CheckCount(combo_count, 8, "combination"));
  snapshot.combo_to_group.resize(combo_count);
  for (uint64_t i = 0; i < combo_count; ++i) {
    auto& [combo, group] = snapshot.combo_to_group[i];
    uint32_t combo_len = 0;
    FAIRHMS_RETURN_IF_ERROR(c.U32(&combo_len));
    if (combo_len != group_col_count) {
      return Status::InvalidArgument(
          StrFormat("snapshot combination %llu has %u values for %u group "
                    "columns",
                    static_cast<unsigned long long>(i), combo_len,
                    group_col_count));
    }
    combo.resize(combo_len);
    for (int& v : combo) FAIRHMS_RETURN_IF_ERROR(c.I32(&v));
    FAIRHMS_RETURN_IF_ERROR(c.I32(&group));
    if (group < 0 || group >= grouping.num_groups) {
      return Status::InvalidArgument(StrFormat(
          "snapshot combination maps to group %d of %d", group,
          grouping.num_groups));
    }
    if (i > 0 && !(snapshot.combo_to_group[i - 1].first < combo)) {
      return Status::InvalidArgument(
          "snapshot combination table is not strictly sorted");
    }
  }

  // Skyline index section. Row-level validation against the table happens
  // in SkylineIndex::Restore; here the numbers only need to parse.
  uint8_t has_index = 0;
  FAIRHMS_RETURN_IF_ERROR(c.U8(&has_index));
  if (has_index > 1) {
    return Status::InvalidArgument("snapshot index flag is neither 0 nor 1");
  }
  snapshot.has_index = has_index == 1;
  if (snapshot.has_index) {
    FAIRHMS_RETURN_IF_ERROR(ReadSkylineState(&c, &snapshot.index.global));
    uint32_t group_state_count = 0;
    FAIRHMS_RETURN_IF_ERROR(c.U32(&group_state_count));
    FAIRHMS_RETURN_IF_ERROR(
        c.CheckCount(group_state_count, 16, "group skyline state"));
    snapshot.index.per_group.resize(group_state_count);
    for (auto& state : snapshot.index.per_group) {
      FAIRHMS_RETURN_IF_ERROR(ReadSkylineState(&c, &state));
    }
  }

  if (c.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "snapshot payload has %zu unconsumed bytes", c.remaining()));
  }
  return snapshot;
}

Status WriteSnapshotFile(const Snapshot& snapshot, const std::string& path) {
  const std::string bytes = SerializeSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError(StrFormat("cannot open '%s' for writing",
                                       tmp.c_str()));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError(StrFormat("write to '%s' failed", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(
        StrFormat("cannot rename '%s' over '%s'", tmp.c_str(), path.c_str()));
  }
  return Status::OK();
}

StatusOr<Snapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("snapshot file '%s' does not exist or is unreadable",
                  path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError(StrFormat("error reading '%s'", path.c_str()));
  }
  return ParseSnapshot(bytes);
}

}  // namespace fairhms
