#include "algo/fair_greedy.h"

#include <algorithm>
#include <numeric>

#include "api/registry.h"

#include "algo/algo_util.h"
#include "common/stopwatch.h"
#include "core/exact_evaluator.h"
#include "fairness/matroid.h"
#include "geom/vec.h"

namespace fairhms {

StatusOr<Solution> FairGreedy(const Dataset& data, const Grouping& grouping,
                              const GroupBounds& bounds,
                              const FairGreedyOptions& opts) {
  Stopwatch timer;
  FAIRHMS_ASSIGN_OR_RETURN(
      ProblemInput input,
      PrepareProblem(data, grouping, bounds, opts.pool, opts.db_rows,
                     opts.cache));
  if (input.pool.empty()) return Status::InvalidArgument("empty pool");

  const FairnessMatroid matroid(bounds);
  FairSelection sel(&matroid, &grouping);

  // Seed: the feasible pool point with the best first-dimension value
  // (mirrors RDP-Greedy's start).
  {
    int seed_row = -1;
    for (int r : input.pool) {
      if (!sel.CanAdd(r)) continue;
      if (seed_row < 0 || data.at(static_cast<size_t>(r), 0) >
                              data.at(static_cast<size_t>(seed_row), 0)) {
        seed_row = r;
      }
    }
    if (seed_row < 0) return Status::Infeasible("no addable pool point");
    sel.Add(seed_row);
  }

  while (!sel.IsMaximal()) {
    const std::vector<double> regrets =
        AllWitnessRegretsLp(data, input.pool, sel.rows(), opts.threads);
    // Highest-regret feasible candidate.
    int best_row = -1;
    double best_regret = -1.0;
    for (size_t i = 0; i < input.pool.size(); ++i) {
      const int r = input.pool[i];
      if (regrets[i] > best_regret && sel.CanAdd(r)) {
        // Skip rows already selected (their regret is 0 anyway, but be
        // explicit for the degenerate all-zero case).
        if (std::find(sel.rows().begin(), sel.rows().end(), r) !=
            sel.rows().end()) {
          continue;
        }
        best_regret = regrets[i];
        best_row = r;
      }
    }
    if (best_row < 0 || best_regret <= opts.regret_tolerance) break;
    sel.Add(best_row);
  }

  // Regret hit zero early (or pool exhausted): pad to a fair size-k set.
  std::vector<int> solution = sel.rows();
  FAIRHMS_RETURN_IF_ERROR(PadSolution(input, &solution));

  Solution out;
  out.rows = std::move(solution);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr = MhrExactLp(data, input.db_rows, out.rows, opts.threads);
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "F-Greedy";
  return out;
}

namespace {

const AlgorithmRegistrar fair_greedy_registrar([] {
  AlgorithmInfo info;
  info.name = "fair_greedy";
  info.display_name = "F-Greedy";
  info.summary =
      "matroid-greedy max-regret insertion (one witness LP per candidate "
      "per round)";
  info.caps.fairness_aware = true;
  info.params = {
      {"regret_tolerance", ParamType::kDouble,
       "stop early when the max regret drops below this", "1e-9", 0.0, 1e308,
       false, false, {}},
  };
  info.solve = [](const SolveContext& ctx) {
    FairGreedyOptions opts;
    opts.regret_tolerance =
        ctx.params->DoubleOr("regret_tolerance", opts.regret_tolerance);
    opts.threads = ctx.threads;
    opts.cache = ctx.cache;
    return FairGreedy(*ctx.data, *ctx.grouping, *ctx.bounds, opts);
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoFairGreedy() { return 0; }
}  // namespace internal

}  // namespace fairhms
