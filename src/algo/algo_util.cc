#include "algo/algo_util.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "core/artifact_cache.h"
#include "geom/vec.h"
#include "skyline/skyline.h"

namespace fairhms {

StatusOr<ProblemInput> PrepareProblem(const Dataset& data,
                                      const Grouping& grouping,
                                      const GroupBounds& bounds,
                                      std::vector<int> pool_override,
                                      std::vector<int> db_override,
                                      ArtifactCache* cache) {
  if (grouping.group_of.size() != data.size()) {
    return Status::InvalidArgument("grouping does not match dataset size");
  }
  if (bounds.num_groups() != grouping.num_groups) {
    return Status::InvalidArgument(
        StrFormat("bounds cover %d groups but grouping has %d",
                  bounds.num_groups(), grouping.num_groups));
  }
  FAIRHMS_RETURN_IF_ERROR(
      bounds.Validate(grouping.LiveCounts(data), &grouping.names));

  ProblemInput input;
  input.data = &data;
  input.grouping = &grouping;
  input.bounds = bounds;
  if (pool_override.empty()) {
    input.pool = cache != nullptr ? cache->FairPool(data, grouping)
                                  : ComputeFairCandidatePool(data, grouping);
  } else {
    input.pool = std::move(pool_override);
  }
  if (db_override.empty()) {
    input.db_rows = cache != nullptr ? cache->Skyline(data)
                                     : ComputeSkyline(data);
  } else {
    input.db_rows = std::move(db_override);
  }
  input.pool_by_group.assign(static_cast<size_t>(grouping.num_groups), {});
  for (int row : input.pool) {
    if (row < 0 || static_cast<size_t>(row) >= data.size()) {
      return Status::OutOfRange(StrFormat("pool row %d out of range", row));
    }
    input.pool_by_group[static_cast<size_t>(
                            grouping.group_of[static_cast<size_t>(row)])]
        .push_back(row);
  }
  return input;
}

void DedupRows(std::vector<int>* rows) {
  std::unordered_set<int> seen;
  std::vector<int> out;
  out.reserve(rows->size());
  for (int r : *rows) {
    if (seen.insert(r).second) out.push_back(r);
  }
  rows->swap(out);
}

Status PadSolution(const ProblemInput& input, std::vector<int>* solution) {
  DedupRows(solution);
  const Grouping& grouping = *input.grouping;
  const GroupBounds& bounds = input.bounds;
  const Dataset& data = *input.data;
  const int c_num = grouping.num_groups;

  std::vector<int> counts = SolutionGroupCounts(*solution, grouping);
  // If some group exceeds its upper bound the producing algorithm is buggy;
  // report rather than silently drop points.
  for (int c = 0; c < c_num; ++c) {
    if (counts[static_cast<size_t>(c)] > bounds.upper[static_cast<size_t>(c)]) {
      return Status::Internal(
          StrFormat("solution exceeds upper bound for group %d", c));
    }
  }

  // Target counts: start from max(count, lower), then distribute the rest.
  // Live members only: padding must never resurrect an erased row.
  const std::vector<std::vector<int>> members = grouping.MembersLive(data);
  std::vector<int> target(static_cast<size_t>(c_num));
  long long total = 0;
  for (int c = 0; c < c_num; ++c) {
    target[static_cast<size_t>(c)] = std::max(
        counts[static_cast<size_t>(c)], bounds.lower[static_cast<size_t>(c)]);
    total += target[static_cast<size_t>(c)];
  }
  if (total > bounds.k) {
    return Status::Internal("solution cannot be padded within k");
  }
  long long remaining = bounds.k - total;
  for (int c = 0; c < c_num && remaining > 0; ++c) {
    const int cap =
        std::min(bounds.upper[static_cast<size_t>(c)],
                 static_cast<int>(members[static_cast<size_t>(c)].size()));
    const int take = std::min<long long>(remaining,
                                         cap - target[static_cast<size_t>(c)]);
    if (take > 0) {
      target[static_cast<size_t>(c)] += take;
      remaining -= take;
    }
  }
  if (remaining > 0) {
    return Status::Infeasible("not enough tuples to reach k under bounds");
  }

  // Fill each group to its target: pool members first (they are group
  // skyline points), then arbitrary members, both by descending attribute
  // sum for a deterministic, quality-leaning choice.
  std::unordered_set<int> chosen(solution->begin(), solution->end());
  const size_t d = static_cast<size_t>(data.dim());
  auto sum_desc = [&](int a, int b) {
    const double sa = SumCoords(data.point(static_cast<size_t>(a)), d);
    const double sb = SumCoords(data.point(static_cast<size_t>(b)), d);
    if (sa != sb) return sa > sb;
    return a < b;
  };
  for (int c = 0; c < c_num; ++c) {
    int need = target[static_cast<size_t>(c)] - counts[static_cast<size_t>(c)];
    if (need <= 0) continue;
    std::vector<int> candidates = input.pool_by_group[static_cast<size_t>(c)];
    std::sort(candidates.begin(), candidates.end(), sum_desc);
    std::vector<int> fallback = members[static_cast<size_t>(c)];
    std::sort(fallback.begin(), fallback.end(), sum_desc);
    candidates.insert(candidates.end(), fallback.begin(), fallback.end());
    for (int r : candidates) {
      if (need == 0) break;
      if (chosen.insert(r).second) {
        solution->push_back(r);
        --need;
      }
    }
    if (need > 0) {
      return Status::Internal(
          StrFormat("group %d ran out of members while padding", c));
    }
  }
  return Status::OK();
}

}  // namespace fairhms
