// Fair interval cover: the decision engine inside IntCov (paper Sec. 3,
// Algorithm 2).
//
// Instance: each candidate point contributes one interval of [0, 1] (where
// its score line clears the tau-envelope), tagged with its group. Question:
// is there a selection of intervals covering [0, 1] whose per-group counts
// admit a fair size-k completion (count_c <= h_c and
// sum_c max(count_c, l_c) <= k)?
//
// Solved by a dynamic program over per-group pick counts: the state value is
// the furthest coverage reach achievable with exactly those counts, computed
// greedily (Eq. 1) — for every count vector the greedy extension is optimal,
// so scanning all feasible count vectors decides the instance exactly.

#ifndef FAIRHMS_ALGO_FAIR_INTERVAL_COVER_H_
#define FAIRHMS_ALGO_FAIR_INTERVAL_COVER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "fairness/group_bounds.h"

namespace fairhms {

/// One candidate interval: point `row` is useful on [lo, hi].
struct CoverInterval {
  double lo;
  double hi;
  int row;
};

/// One group's intervals, preprocessed for O(log n) "best extension from
/// reach r" queries: sorted by lo with prefix-max over hi.
class GroupIntervalIndex {
 public:
  /// Builds the index (consumes the intervals).
  void Build(std::vector<CoverInterval> intervals);

  /// Best extension among intervals starting at or before `reach + tol`.
  /// Returns false when no interval is eligible.
  bool Query(double reach, double tol, double* hi, int* row) const;

  size_t size() const { return lo_.size(); }

 private:
  std::vector<double> lo_;       // Sorted ascending.
  std::vector<double> best_hi_;  // Prefix max of hi over the sorted order.
  std::vector<int> best_row_;    // Row attaining best_hi.
};

/// The decision DP. Reusable across thresholds (IntCov calls Decide once per
/// binary-search step, re-using the allocated state tables).
class FairIntervalCoverDp {
 public:
  /// Creates the DP for the given bounds; fails with ResourceExhausted when
  /// the state space prod_c (min(h_c, k) + 1) exceeds `max_states`.
  static StatusOr<FairIntervalCoverDp> Create(const GroupBounds& bounds,
                                              uint64_t max_states);

  /// Runs the decision DP against per-group interval indexes (size must be
  /// bounds.num_groups()). On success fills `solution` with the chosen rows
  /// (deduplicated; possibly fewer than k — pad separately) and returns
  /// true.
  bool Decide(const std::vector<GroupIntervalIndex>& groups, double tol,
              std::vector<int>* solution);

  uint64_t num_states() const { return num_states_; }

 private:
  FairIntervalCoverDp(GroupBounds bounds, uint64_t num_states,
                      std::vector<uint64_t> strides, std::vector<int> dims);

  bool Feasible(const std::vector<int>& digits) const;
  void Reconstruct(uint64_t s, std::vector<int>* solution) const;

  static constexpr double kUnreachable = -1.0;

  GroupBounds bounds_;
  uint64_t num_states_;
  std::vector<uint64_t> strides_;
  std::vector<int> dims_;
  std::vector<double> value_;
  std::vector<int8_t> parent_group_;
  std::vector<int> parent_row_;
};

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_FAIR_INTERVAL_COVER_H_
