// G-adapter: turns any fairness-unaware HMS baseline into a fair algorithm
// by running one instance per group and unioning the results (the paper's
// "G-" prefix: G-Greedy, G-DMM, G-Sphere, G-HS).
//
// Per-group budgets k_c are allocated within [l_c, h_c] proportionally to
// group sizes (sum k_c = k), each instance runs on its group's skyline with
// group-local happiness denominators, and the union is returned. The
// adaptation inherits the paper's caveat: per-group selections are mutually
// redundant, so the union's global MHR trails the native fair algorithms.
//
// The adapted variants are registered in the unified solver registry
// (api/registry.h) as "g_greedy", "g_dmm", "g_sphere" and "g_hs" from the
// respective baseline .cc files.

#ifndef FAIRHMS_ALGO_GROUP_ADAPTER_H_
#define FAIRHMS_ALGO_GROUP_ADAPTER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// A fairness-unaware HMS solver: (data, candidate rows, k) -> Solution.
using BaseSolver = std::function<StatusOr<Solution>(
    const Dataset&, const std::vector<int>&, int)>;

/// Options for GroupAdapt.
struct GroupAdapterOptions {
  /// Denominator rows for the final MHR evaluation (default: global
  /// skyline). Does not influence the per-group runs.
  std::vector<int> db_rows;
  /// Lanes for the final MHR evaluation (0 = DefaultThreads(), 1 = exact
  /// serial path). The per-group solvers carry their own threads knobs.
  int threads = 0;
  /// Cross-query memoization of group tables / skylines and the final
  /// evaluation net (not owned; null = compute per call). Results are
  /// bit-identical either way.
  ArtifactCache* cache = nullptr;
};

/// Runs `solver` once per group with quota k_c and unions the solutions.
/// Fails if quota allocation fails or any per-group run fails (e.g. Sphere
/// with h_c < d, DMM out of memory) — matching the missing bars in the
/// paper's plots.
StatusOr<Solution> GroupAdapt(const BaseSolver& solver,
                              const std::string& name, const Dataset& data,
                              const Grouping& grouping,
                              const GroupBounds& bounds,
                              const GroupAdapterOptions& opts = {});

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_GROUP_ADAPTER_H_
