// BiGreedy / BiGreedy+: bicriteria approximation for FairHMS in any
// dimension (paper Sec. 4).
//
// FairHMS restricted to a delta-net N of m directions is multi-objective
// submodular maximization under the fairness matroid. For a capped value
// tau, the truncated objective mhr_tau(S|N) = (1/m) sum_u min(hr(u,S), tau)
// is monotone submodular; MRGreedy runs up to gamma = ceil(log2(2m/eps))
// matroid-greedy rounds and succeeds when mhr_tau >= (1 - eps/2m) tau. The
// outer loop searches the capped value over the geometric grid
// (1 - eps/2)^j. BiGreedy+ repeats BiGreedy with doubling net sizes until
// the capped value stabilizes (adaptive sampling, Sec. 4.3).
//
// Registered in the unified solver registry (api/registry.h) as "bigreedy"
// and "bigreedy+"; Solver::Solve (api/solver.h) is the stable entry point.

#ifndef FAIRHMS_ALGO_BIGREEDY_H_
#define FAIRHMS_ALGO_BIGREEDY_H_

#include <cstdint>
#include <vector>

#include "algo/algo_util.h"
#include "common/statusor.h"
#include "core/net_evaluator.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

/// How the outer loop visits the capped-value grid.
enum class TauSearch {
  /// Binary search on the grid index (success is monotone in tau in
  /// practice); ~log2(#grid) MRGreedy calls. Default.
  kBinary,
  /// The paper's literal descending scan; identical grid, ~50x more calls.
  kLinear,
};

/// Options shared by BiGreedy and BiGreedy+.
struct BiGreedyOptions {
  /// Net size m. 0 derives the paper's experimental default 10 * k * d.
  size_t net_size = 0;
  /// When > 0 (and net_size == 0), m is derived from this delta via
  /// UtilityNet::DeltaToSampleSize on the (delta / d(2-delta))-net rule.
  double delta = 0.0;
  /// Capped-value search granularity (paper default 0.02).
  double eps = 0.02;
  TauSearch tau_search = TauSearch::kBinary;
  /// Feasible mode (default): only single-round solutions (exactly k rows,
  /// fair) are eligible — the variant used in all of the paper's
  /// experiments. When false, MRGreedy may return the multi-round union of
  /// size <= gamma * k with gamma-scaled bounds (the bicriteria object of
  /// Lemma 4.5).
  bool strict_feasible = true;
  /// Lazy (priority-queue) marginal-gain evaluation. The plain variant
  /// re-scans every candidate per insertion; identical output, kept as an
  /// ablation knob.
  bool lazy = true;
  uint64_t seed = 13;
  /// Evaluation-engine lanes for the net denominator precompute, candidate
  /// cache fill and mhr sweeps (0 = DefaultThreads(), 1 = exact serial
  /// path). Selected rows and mhr are bit-identical across thread counts.
  int threads = 0;
  /// Candidate pool / denominator overrides (default: fair pool / skyline).
  std::vector<int> pool;
  std::vector<int> db_rows;
  /// Cross-query memoization of nets / evaluators / pools (not owned; null
  /// = build per call). Results are bit-identical either way.
  ArtifactCache* cache = nullptr;
  /// Warm-start hint: the certified capped-value grid index of a previous
  /// compatible solution (-1 = cold). Only honored by the binary tau
  /// search, which walks the grid outward from the hint instead of binary
  /// searching; the walk re-certifies every step, so an accepted warm
  /// solve lands on the same grid index — and therefore the same rows —
  /// as the cold search, and a stale hint degrades to the cold search.
  int warm_tau_index = -1;
};

/// Options specific to BiGreedy+.
struct BiGreedyPlusOptions {
  BiGreedyOptions base;
  /// Maximum net size M. 0 derives 10 * k * d.
  size_t max_net_size = 0;
  /// Initial size m0 = max(d + 1, m0_fraction * M) (paper uses 0.05 M).
  double m0_fraction = 0.05;
  /// Stop doubling when tau_{i-1} - tau_i < lambda (paper default 0.04).
  double lambda = 0.04;
};

/// Diagnostics of a single BiGreedy run (exposed for BiGreedy+ and tests).
struct BiGreedyRunInfo {
  double tau = 0.0;       ///< Capped value of the returned solution.
  size_t net_size = 0;    ///< m actually used.
  int rounds_used = 0;    ///< Greedy rounds of the returned solution.
  int mrgreedy_calls = 0; ///< Outer-loop decision calls.
  int tau_index = -1;     ///< Certified grid index (-1 = greedy fallback).
  bool warm_start_used = false;  ///< Warm hint accepted; cold search skipped.
};

/// Runs BiGreedy end to end (builds the net internally).
StatusOr<Solution> BiGreedy(const Dataset& data, const Grouping& grouping,
                            const GroupBounds& bounds,
                            const BiGreedyOptions& opts = {},
                            BiGreedyRunInfo* info = nullptr);

/// Runs BiGreedy on a caller-supplied evaluator/net (shared machinery for
/// BiGreedy+, ablations and tests). The evaluator is only read — it may be
/// a shared cross-query artifact.
StatusOr<Solution> BiGreedyOnNet(const ProblemInput& input,
                                 const NetEvaluator* eval,
                                 const BiGreedyOptions& opts,
                                 BiGreedyRunInfo* info = nullptr);

/// Runs BiGreedy+ (adaptive net doubling).
StatusOr<Solution> BiGreedyPlus(const Dataset& data, const Grouping& grouping,
                                const GroupBounds& bounds,
                                const BiGreedyPlusOptions& opts = {},
                                BiGreedyRunInfo* info = nullptr);

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_BIGREEDY_H_
