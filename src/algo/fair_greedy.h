// F-Greedy: the matroid-greedy adaptation of RDP-Greedy (paper Sec. 5.1).
//
// Each iteration scores every candidate with its witness LP (max regret if
// that candidate were the best point) and inserts the highest-regret
// candidate whose addition keeps the selection independent in the fairness
// matroid; insertion continues until the selection is a maximal independent
// set (exactly k rows, fair). One LP per skyline item per iteration — the
// cost profile the paper reports (slowest fair baseline).
//
// Registered in the unified solver registry (api/registry.h) as
// "fair_greedy"; Solver::Solve (api/solver.h) is the stable entry point.

#ifndef FAIRHMS_ALGO_FAIR_GREEDY_H_
#define FAIRHMS_ALGO_FAIR_GREEDY_H_

#include <vector>

#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// Options for FairGreedy.
struct FairGreedyOptions {
  std::vector<int> pool;     ///< Default: union of per-group skylines.
  std::vector<int> db_rows;  ///< Default: global skyline.
  double regret_tolerance = 1e-9;
  /// Witness-LP lanes (0 = DefaultThreads(), 1 = exact serial path); output
  /// is bit-identical across thread counts.
  int threads = 0;
  /// Cross-query memoization of the default pool/skyline (not owned; null =
  /// compute per call). Results are bit-identical either way.
  ArtifactCache* cache = nullptr;
};

/// Runs F-Greedy; the result is always fair and of size k.
StatusOr<Solution> FairGreedy(const Dataset& data, const Grouping& grouping,
                              const GroupBounds& bounds,
                              const FairGreedyOptions& opts = {});

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_FAIR_GREEDY_H_
