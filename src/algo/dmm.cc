#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>

#include "algo/baselines.h"
#include "algo/group_adapter.h"
#include "api/registry.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/exact_evaluator.h"
#include "geom/vec.h"

namespace fairhms {

namespace {

/// Spherical-coordinate lattice on S^{d-1}_+: gamma steps per angle, all
/// angles in [0, pi/2]. Returns row-major unit vectors.
std::vector<double> AngleGrid(int d, int gamma) {
  const int num_angles = d - 1;
  std::vector<double> dirs;
  std::vector<int> idx(static_cast<size_t>(num_angles), 0);
  std::vector<double> u(static_cast<size_t>(d));
  const double step =
      gamma > 1 ? (3.14159265358979323846 / 2.0) / (gamma - 1) : 0.0;
  for (;;) {
    // Spherical to Cartesian with all angles nonnegative.
    double sin_prod = 1.0;
    for (int a = 0; a < num_angles; ++a) {
      const double theta = idx[static_cast<size_t>(a)] * step;
      u[static_cast<size_t>(a)] = sin_prod * std::cos(theta);
      sin_prod *= std::sin(theta);
    }
    u[static_cast<size_t>(d - 1)] = sin_prod;
    dirs.insert(dirs.end(), u.begin(), u.end());
    // Odometer.
    int a = 0;
    while (a < num_angles && ++idx[static_cast<size_t>(a)] == gamma) {
      idx[static_cast<size_t>(a)] = 0;
      ++a;
    }
    if (a == num_angles) break;
  }
  return dirs;
}

}  // namespace

StatusOr<Solution> Dmm(const Dataset& data, const std::vector<int>& rows,
                       int k, const DmmOptions& opts) {
  if (rows.empty()) return Status::InvalidArgument("empty candidate set");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const int d = data.dim();
  Stopwatch timer;

  const size_t target = opts.target_net_size > 0
                            ? opts.target_net_size
                            : static_cast<size_t>(10) * k * d;
  int gamma = static_cast<int>(std::ceil(
      std::pow(static_cast<double>(target), 1.0 / std::max(1, d - 1))));
  gamma = std::clamp(gamma, opts.min_grid_per_axis, opts.max_grid_per_axis);

  // The matrix is the method's defining cost: refuse when it cannot fit.
  double m_dirs = 1.0;
  for (int a = 0; a < d - 1; ++a) m_dirs *= gamma;
  const double matrix_bytes = m_dirs * static_cast<double>(rows.size()) *
                              sizeof(float);
  if (matrix_bytes > static_cast<double>(opts.memory_budget_bytes)) {
    return Status::ResourceExhausted(
        StrFormat("DMM matrix needs %.2f GB (gamma=%d, d=%d) — exceeds the "
                  "%.2f GB budget",
                  matrix_bytes / 1e9, gamma, d,
                  static_cast<double>(opts.memory_budget_bytes) / 1e9));
  }

  const std::vector<double> dirs = AngleGrid(d, gamma);
  const size_t m = dirs.size() / static_cast<size_t>(d);
  const size_t n = rows.size();

  // Happiness matrix, point-major: H[i*m + j] = hr(u_j, {p_i}). Raw scores
  // fill per-point slices in parallel; denominators come from block-local
  // maxima merged with exact max, then the normalize pass splits over
  // directions — every value bit-identical for any lane count.
  std::vector<float> happiness(n * m);
  {
    std::vector<double> best(m, 0.0);
    std::mutex best_mu;
    ParallelFor(opts.threads, n, [&](size_t i_begin, size_t i_end) {
      std::vector<double> local_best(m, 0.0);
      for (size_t i = i_begin; i < i_end; ++i) {
        const double* p = data.point(static_cast<size_t>(rows[i]));
        for (size_t j = 0; j < m; ++j) {
          const double s = Dot(&dirs[j * static_cast<size_t>(d)], p,
                               static_cast<size_t>(d));
          happiness[i * m + j] = static_cast<float>(s);
          if (s > local_best[j]) local_best[j] = s;
        }
      }
      std::lock_guard<std::mutex> lock(best_mu);
      for (size_t j = 0; j < m; ++j) {
        if (local_best[j] > best[j]) best[j] = local_best[j];
      }
    });
    ParallelFor(opts.threads, m, [&](size_t j_begin, size_t j_end) {
      for (size_t j = j_begin; j < j_end; ++j) {
        const float inv = best[j] > 1e-12 ? static_cast<float>(1.0 / best[j])
                                          : 0.0f;
        for (size_t i = 0; i < n; ++i) {
          happiness[i * m + j] =
              inv > 0 ? std::min(1.0f, happiness[i * m + j] * inv) : 1.0f;
        }
      }
    });
  }

  // Threshold candidates: the distinct matrix values (strided subsample when
  // the matrix is huge).
  std::vector<float> cand;
  const size_t total = n * m;
  const size_t stride = std::max<size_t>(1, total / opts.max_threshold_candidates);
  cand.reserve(total / stride + 1);
  for (size_t t = 0; t < total; t += stride) cand.push_back(happiness[t]);
  cand.push_back(1.0f);
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

  // Greedy set cover at threshold tau; returns rows or empty when > k sets
  // are needed.
  std::vector<int> uncovered;
  auto cover_at = [&](float tau) -> std::vector<int> {
    uncovered.resize(m);
    std::iota(uncovered.begin(), uncovered.end(), 0);
    std::vector<int> picked;
    while (!uncovered.empty() && static_cast<int>(picked.size()) < k) {
      size_t best_i = 0;
      size_t best_cnt = 0;
      for (size_t i = 0; i < n; ++i) {
        const float* hrow = &happiness[i * m];
        size_t cnt = 0;
        for (int j : uncovered) {
          if (hrow[static_cast<size_t>(j)] >= tau) ++cnt;
        }
        if (cnt > best_cnt) {
          best_cnt = cnt;
          best_i = i;
        }
      }
      if (best_cnt == 0) return {};  // Some direction unreachable at tau.
      picked.push_back(rows[best_i]);
      const float* hrow = &happiness[best_i * m];
      size_t w = 0;
      for (int j : uncovered) {
        if (hrow[static_cast<size_t>(j)] < tau) uncovered[w++] = j;
      }
      uncovered.resize(w);
    }
    return uncovered.empty() ? picked : std::vector<int>{};
  };

  // Binary search the largest feasible threshold.
  std::vector<int> best_rows;
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(cand.size()) - 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    std::vector<int> picked = cover_at(cand[static_cast<size_t>(mid)]);
    if (!picked.empty()) {
      best_rows = std::move(picked);
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  if (best_rows.empty()) {
    best_rows = cover_at(0.0f);
    if (best_rows.empty()) best_rows.push_back(rows.front());
  }

  // Pad to k with the best unused rows by attribute sum.
  if (static_cast<int>(best_rows.size()) < k) {
    std::vector<int> order = rows;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double sa =
          SumCoords(data.point(static_cast<size_t>(a)), static_cast<size_t>(d));
      const double sb =
          SumCoords(data.point(static_cast<size_t>(b)), static_cast<size_t>(d));
      if (sa != sb) return sa > sb;
      return a < b;
    });
    for (int r : order) {
      if (static_cast<int>(best_rows.size()) >= k) break;
      if (std::find(best_rows.begin(), best_rows.end(), r) == best_rows.end()) {
        best_rows.push_back(r);
      }
    }
  }

  Solution out;
  out.rows = std::move(best_rows);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr =
      rows.size() <= 4000 ? MhrExactLp(data, rows, out.rows, opts.threads) : 0.0;
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "DMM";
  return out;
}

namespace {

DmmOptions DmmOptionsFromContext(const SolveContext& ctx) {
  DmmOptions opts;
  opts.target_net_size = static_cast<size_t>(ctx.params->IntOr(
      "net_size", static_cast<int64_t>(opts.target_net_size)));
  opts.memory_budget_bytes = static_cast<uint64_t>(ctx.params->IntOr(
      "memory_budget_bytes", static_cast<int64_t>(opts.memory_budget_bytes)));
  opts.threads = ctx.threads;
  return opts;
}

std::vector<ParamSpec> DmmParamSchema() {
  return {
      {"net_size", ParamType::kInt,
       "target direction count (per-axis grid resolution is derived)",
       "auto (10*k*d)", 1, 1e308, false, false, {}},
      {"memory_budget_bytes", ParamType::kInt,
       "the happiness matrix must fit here, else ResourceExhausted",
       "2000000000", 1, 1e308, false, false, {}},
  };
}

const AlgorithmRegistrar dmm_registrar([] {
  AlgorithmInfo info;
  info.name = "dmm";
  info.display_name = "DMM";
  info.summary =
      "discretized matrix min-max baseline (unconstrained; memory-bound "
      "above d ~ 6-7)";
  info.params = DmmParamSchema();
  info.solve = [](const SolveContext& ctx) {
    return Dmm(*ctx.data, *ctx.skyline, ctx.bounds->k,
               DmmOptionsFromContext(ctx));
  };
  return info;
}());

const AlgorithmRegistrar g_dmm_registrar([] {
  AlgorithmInfo info;
  info.name = "g_dmm";
  info.display_name = "G-DMM";
  info.summary = "DMM run per group and unioned (fair by quotas)";
  info.caps.fairness_aware = true;
  info.params = DmmParamSchema();
  info.solve = [](const SolveContext& ctx) {
    const DmmOptions opts = DmmOptionsFromContext(ctx);
    GroupAdapterOptions adapter_opts;
    adapter_opts.threads = ctx.threads;
    adapter_opts.cache = ctx.cache;
    return GroupAdapt(
        [opts](const Dataset& d, const std::vector<int>& rows, int k) {
          return Dmm(d, rows, k, opts);
        },
        "DMM", *ctx.data, *ctx.grouping, *ctx.bounds, adapter_opts);
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoDmm() { return 0; }
}  // namespace internal

}  // namespace fairhms
