// IntCov: exact FairHMS on two-dimensional databases (paper Sec. 3).
//
// The decision version ("is there a fair size-k set with mhr >= tau?") is
// reduced to fair interval cover: a point is useful at tau exactly on the
// lambda-interval where its score line clears the tau-envelope; a fair set
// with mhr >= tau exists iff a fair selection of intervals covers [0, 1].
// The decision problem is solved by a dynamic program over per-group
// selection counts; the optimal tau is found by binary search over the
// O(n^2) candidate MHR values (single-point happiness at the axis utilities
// plus every pairwise line crossing — Asudeh et al. Thm 2 guarantees the
// optimum is among them).
//
// Registered in the unified solver registry (api/registry.h) as "intcov";
// prefer Solver::Solve (api/solver.h) over calling IntCov directly — the
// facade applies the 2D-projection fallback for higher-D data.

#ifndef FAIRHMS_ALGO_INTCOV_H_
#define FAIRHMS_ALGO_INTCOV_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// Tuning knobs for IntCov.
struct IntCovOptions {
  /// Candidate pool override (default: union of per-group skylines).
  std::vector<int> pool;
  /// Denominator rows override (default: global skyline).
  std::vector<int> db_rows;
  /// Abort when the DP state space prod_c (h_c + 1) exceeds this (the DP is
  /// exponential in the number of groups, as in the paper).
  uint64_t max_states = 50'000'000;
  /// When the pool would generate more pairwise crossing candidates than
  /// this, fall back to continuous bisection on tau (precision ~1e-12
  /// instead of exact rational candidates; memory stays bounded).
  uint64_t max_pair_candidates = 20'000'000;
  /// Coverage / eligibility tolerance.
  double tolerance = 1e-9;
  /// Lanes for the O(n^2) pairwise candidate enumeration and the final
  /// exact evaluation (0 = DefaultThreads(), 1 = exact serial path). The
  /// candidate set is sorted and deduplicated, so the selected rows and mhr
  /// are bit-identical across thread counts.
  int threads = 0;
  /// Cross-query memoization of the default pool/skyline (not owned; null =
  /// compute per call). Results are bit-identical either way.
  ArtifactCache* cache = nullptr;
};

/// Runs IntCov. Requires data.dim() == 2. Returns the optimal fair set (its
/// mhr field holds the exact 2D mhr).
StatusOr<Solution> IntCov(const Dataset& data, const Grouping& grouping,
                          const GroupBounds& bounds,
                          const IntCovOptions& opts = {});

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_INTCOV_H_
