#include "algo/intcov.h"

#include <algorithm>

#include "api/registry.h"
#include <cassert>
#include <cmath>
#include <mutex>

#include "algo/algo_util.h"
#include "algo/fair_interval_cover.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/exact_evaluator.h"
#include "geom/envelope2d.h"

namespace fairhms {

StatusOr<Solution> IntCov(const Dataset& data, const Grouping& grouping,
                          const GroupBounds& bounds,
                          const IntCovOptions& opts) {
  if (data.dim() != 2) {
    return Status::InvalidArgument("IntCov requires a 2-dimensional dataset");
  }
  Stopwatch timer;
  FAIRHMS_ASSIGN_OR_RETURN(
      ProblemInput input,
      PrepareProblem(data, grouping, bounds, opts.pool, opts.db_rows,
                     opts.cache));
  if (input.pool.empty()) return Status::InvalidArgument("empty pool");

  const int c_num = grouping.num_groups;
  FAIRHMS_ASSIGN_OR_RETURN(
      FairIntervalCoverDp dp,
      FairIntervalCoverDp::Create(bounds, opts.max_states));

  const Envelope2D env_db = BuildEnvelope2D(data, input.db_rows);

  // Decision procedure for one tau.
  std::vector<GroupIntervalIndex> group_index(static_cast<size_t>(c_num));
  std::vector<std::vector<CoverInterval>> group_intervals(
      static_cast<size_t>(c_num));
  auto decide = [&](double tau, std::vector<int>* solution) -> bool {
    for (auto& v : group_intervals) v.clear();
    for (int row : input.pool) {
      const double x = data.at(static_cast<size_t>(row), 0);
      const double y = data.at(static_cast<size_t>(row), 1);
      double lo, hi;
      if (env_db.IntervalAbove(x, y, tau, &lo, &hi)) {
        const int g = grouping.group_of[static_cast<size_t>(row)];
        group_intervals[static_cast<size_t>(g)].push_back({lo, hi, row});
      }
    }
    for (int c = 0; c < c_num; ++c) {
      group_index[static_cast<size_t>(c)].Build(
          std::move(group_intervals[static_cast<size_t>(c)]));
      group_intervals[static_cast<size_t>(c)].clear();
    }
    return dp.Decide(group_index, opts.tolerance, solution);
  };

  std::vector<int> best_solution;
  double best_tau = -1.0;

  const uint64_t pool_n = input.pool.size();
  const uint64_t pair_count = pool_n * (pool_n - 1) / 2;
  if (pair_count <= opts.max_pair_candidates) {
    // Exact candidate enumeration (paper Algorithm 1, lines 1-8).
    std::vector<double> cand;
    cand.reserve(pool_n * 2 + pair_count + 1);
    const double max_x = env_db.Eval(1.0);
    const double max_y = env_db.Eval(0.0);
    for (int row : input.pool) {
      const double x = data.at(static_cast<size_t>(row), 0);
      const double y = data.at(static_cast<size_t>(row), 1);
      if (max_x > 0) cand.push_back(std::min(1.0, x / max_x));
      if (max_y > 0) cand.push_back(std::min(1.0, y / max_y));
    }
    // Pairwise line crossings, fanned out over blocks of outer rows. Each
    // block collects into its own vector; the sort + unique below erases
    // any ordering differences, so the candidate set is bit-identical for
    // every thread count.
    {
      std::mutex cand_mu;
      ParallelFor(opts.threads, pool_n, [&](size_t i_begin, size_t i_end) {
        std::vector<double> local;
        for (size_t i = i_begin; i < i_end; ++i) {
          const double xi = data.at(static_cast<size_t>(input.pool[i]), 0);
          const double yi = data.at(static_cast<size_t>(input.pool[i]), 1);
          for (size_t j = i + 1; j < pool_n; ++j) {
            const double xj = data.at(static_cast<size_t>(input.pool[j]), 0);
            const double yj = data.at(static_cast<size_t>(input.pool[j]), 1);
            const double denom = (xi - yi) - (xj - yj);
            if (std::fabs(denom) < 1e-15) continue;
            const double lambda = (yj - yi) / denom;
            if (lambda < 0.0 || lambda > 1.0) continue;
            const double env = env_db.Eval(lambda);
            if (env <= 0.0) continue;
            const double score = yi + (xi - yi) * lambda;
            local.push_back(std::clamp(score / env, 0.0, 1.0));
          }
        }
        std::lock_guard<std::mutex> lock(cand_mu);
        cand.insert(cand.end(), local.begin(), local.end());
      });
    }
    cand.push_back(1.0);
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

    // Binary search for the largest feasible candidate (feasibility is
    // monotone decreasing in tau).
    int64_t lo = 0;
    int64_t hi = static_cast<int64_t>(cand.size()) - 1;
    std::vector<int> sol;
    while (lo <= hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (decide(cand[static_cast<size_t>(mid)], &sol)) {
        best_tau = cand[static_cast<size_t>(mid)];
        best_solution = sol;
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
  } else {
    // Continuous bisection fallback for very large pools.
    double lo = 0.0;
    double hi = 1.0;
    std::vector<int> sol;
    if (decide(1.0, &sol)) {
      best_tau = 1.0;
      best_solution = sol;
    } else {
      for (int it = 0; it < 45; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (decide(mid, &sol)) {
          best_tau = mid;
          best_solution = sol;
          lo = mid;
        } else {
          hi = mid;
        }
      }
      if (best_tau < 0.0 && decide(0.0, &sol)) {
        best_tau = 0.0;
        best_solution = sol;
      }
    }
  }

  if (best_tau < 0.0) {
    return Status::Infeasible("no fair solution found at any threshold");
  }
  FAIRHMS_RETURN_IF_ERROR(PadSolution(input, &best_solution));

  Solution out;
  out.rows = std::move(best_solution);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr = MhrExact2D(data, input.db_rows, out.rows);
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "IntCov";
  return out;
}

namespace {

IntCovOptions IntCovOptionsFromContext(const SolveContext& ctx) {
  IntCovOptions opts;
  opts.max_states = static_cast<uint64_t>(ctx.params->IntOr(
      "max_states", static_cast<int64_t>(opts.max_states)));
  opts.max_pair_candidates = static_cast<uint64_t>(ctx.params->IntOr(
      "max_pair_candidates", static_cast<int64_t>(opts.max_pair_candidates)));
  opts.tolerance = ctx.params->DoubleOr("tolerance", opts.tolerance);
  opts.threads = ctx.threads;
  opts.cache = ctx.cache;
  return opts;
}

const AlgorithmRegistrar intcov_registrar([] {
  AlgorithmInfo info;
  info.name = "intcov";
  info.display_name = "IntCov";
  info.summary =
      "exact FairHMS via fair interval cover (2D; higher-D requests are "
      "solved on a 2-attribute projection)";
  info.caps.exact_2d = true;
  info.caps.fairness_aware = true;
  info.params = {
      {"max_states", ParamType::kInt,
       "abort when the DP state space exceeds this", "50000000", 1, 1e308,
       false, false, {}},
      {"max_pair_candidates", ParamType::kInt,
       "above this many pairwise tau candidates, fall back to bisection",
       "20000000", 1, 1e308, false, false, {}},
      {"tolerance", ParamType::kDouble, "coverage/eligibility tolerance",
       "1e-9", 0.0, 1.0, true, false, {}},
  };
  info.solve = [](const SolveContext& ctx) {
    return IntCov(*ctx.data, *ctx.grouping, *ctx.bounds,
                  IntCovOptionsFromContext(ctx));
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoIntCov() { return 0; }
}  // namespace internal

}  // namespace fairhms
