#include "algo/bigreedy.h"

#include <algorithm>

#include "api/registry.h"
#include <cassert>
#include <cmath>
#include <queue>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/artifact_cache.h"
#include "fairness/matroid.h"
#include "geom/vec.h"

namespace fairhms {

namespace {

/// Lazy-greedy priority queue entry: a candidate with its (possibly stale)
/// marginal gain and the selection size at which the gain was computed.
struct LazyEntry {
  double gain;
  int row;
  int stamp;
  bool operator<(const LazyEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return row > other.row;  // Deterministic tie-break: smaller row first.
  }
};

/// One MRGreedy invocation (paper Algorithm 3, lines 10-22).
///
/// Returns true when the capped target was certified; `out_rows` then holds
/// the solution: the single-round set in strict mode, the multi-round union
/// otherwise. In strict mode a failing first round aborts immediately
/// (multi-round unions would be infeasible anyway).
bool MrGreedy(const ProblemInput& input, const NetEvaluator* eval, double tau,
              int gamma, double eps, bool strict, bool lazy,
              std::vector<int>* out_rows, int* rounds_used) {
  const Grouping& grouping = *input.grouping;
  const FairnessMatroid matroid(input.bounds);
  const double m = static_cast<double>(eval->net_size());
  const double target = (1.0 - eps / (2.0 * m)) * tau;

  TruncatedMhrState union_state(eval);
  std::vector<int> union_rows;
  std::vector<bool> used(input.data->size(), false);

  const int max_rounds = strict ? 1 : gamma;
  for (int round = 1; round <= max_rounds; ++round) {
    TruncatedMhrState round_state(eval);
    FairSelection sel(&matroid, &grouping);

    if (lazy) {
      std::priority_queue<LazyEntry> pq;
      for (int row : input.pool) {
        if (used[static_cast<size_t>(row)]) continue;
        pq.push({round_state.MarginalGain(row, tau), row, 0});
      }

      while (!pq.empty() && !sel.IsMaximal()) {
        LazyEntry top = pq.top();
        pq.pop();
        if (!sel.CanAdd(top.row)) continue;  // Permanently infeasible now.
        if (top.stamp == sel.size()) {
          sel.Add(top.row);
          round_state.Add(top.row);
          union_state.Add(top.row);
        } else {
          top.gain = round_state.MarginalGain(top.row, tau);
          top.stamp = sel.size();
          pq.push(top);
        }
      }
    } else {
      // Plain greedy: full candidate re-scan per insertion (ablation).
      while (!sel.IsMaximal()) {
        int best_row = -1;
        double best_gain = -1.0;
        for (int row : input.pool) {
          if (used[static_cast<size_t>(row)] || !sel.CanAdd(row)) continue;
          const double gain = round_state.MarginalGain(row, tau);
          if (gain > best_gain ||
              (gain == best_gain && best_row >= 0 && row < best_row)) {
            best_gain = gain;
            best_row = row;
          }
        }
        if (best_row < 0) break;
        sel.Add(best_row);
        round_state.Add(best_row);
        union_state.Add(best_row);
      }
    }

    for (int row : sel.rows()) {
      used[static_cast<size_t>(row)] = true;
      union_rows.push_back(row);
    }
    *rounds_used = round;

    if (union_state.TruncatedValue(tau) >= target) {
      *out_rows = strict ? sel.rows() : union_rows;
      return true;
    }
  }
  return false;
}

/// Fallback when no capped value certifies (degenerate nets / tiny pools):
/// a single matroid-greedy fill on the untruncated average happiness.
std::vector<int> GreedyFill(const ProblemInput& input,
                            const NetEvaluator* eval) {
  const FairnessMatroid matroid(input.bounds);
  FairSelection sel(&matroid, input.grouping);
  TruncatedMhrState state(eval);
  std::priority_queue<LazyEntry> pq;
  for (int row : input.pool) pq.push({state.MarginalGain(row, 1.0), row, 0});
  while (!pq.empty() && !sel.IsMaximal()) {
    LazyEntry top = pq.top();
    pq.pop();
    if (!sel.CanAdd(top.row)) continue;
    if (top.stamp == sel.size()) {
      sel.Add(top.row);
      state.Add(top.row);
    } else {
      top.gain = state.MarginalGain(top.row, 1.0);
      top.stamp = sel.size();
      pq.push(top);
    }
  }
  return sel.rows();
}

size_t DefaultNetSize(const BiGreedyOptions& opts, int k, int d) {
  if (opts.net_size > 0) return opts.net_size;
  if (opts.delta > 0.0) {
    // Lemma 4.1 requires a (delta / d(2-delta))-net for error <= delta.
    const double net_delta = opts.delta / (d * (2.0 - opts.delta));
    return UtilityNet::DeltaToSampleSize(net_delta, d);
  }
  return static_cast<size_t>(10) * static_cast<size_t>(k) *
         static_cast<size_t>(d);
}

}  // namespace

StatusOr<Solution> BiGreedyOnNet(const ProblemInput& input,
                                 const NetEvaluator* eval,
                                 const BiGreedyOptions& opts,
                                 BiGreedyRunInfo* info) {
  Stopwatch timer;
  const double m = static_cast<double>(eval->net_size());
  const int gamma =
      std::max(1, static_cast<int>(std::ceil(std::log2(2.0 * m / opts.eps))));

  // Capped-value grid tau_j = (1 - eps/2)^j down to 1/m.
  const double ratio = 1.0 - opts.eps / 2.0;
  const int grid_size = std::max(
      1, static_cast<int>(std::ceil(std::log(1.0 / m) / std::log(ratio))) + 1);
  auto tau_at = [&](int j) { return std::pow(ratio, j); };

  BiGreedyRunInfo run;
  run.net_size = eval->net_size();

  std::vector<int> best_rows;
  double best_tau = -1.0;
  int best_rounds = 0;

  auto attempt = [&](int j, std::vector<int>* rows, int* rounds) {
    ++run.mrgreedy_calls;
    return MrGreedy(input, eval, tau_at(j), gamma, opts.eps,
                    opts.strict_feasible, opts.lazy, rows, rounds);
  };

  if (opts.tau_search == TauSearch::kBinary) {
    // Warm path: walk the grid outward from the hinted index, looking for
    // the smallest certifying index — the same index the cold binary
    // search below lands on (both rely on certification being monotone in
    // tau). Successive session queries move the certified index by at most
    // a step or two, so the walk typically resolves in 2-3 MRGreedy calls
    // versus ~log2(grid) cold. A hint that drifted beyond the walk budget
    // is discarded and the solve falls through to the cold search, keeping
    // results bit-identical either way.
    bool resolved = false;
    if (opts.warm_tau_index >= 0 && grid_size > 0) {
      constexpr int kWarmWalkBudget = 4;  // Probes after the first.
      int j = std::min(opts.warm_tau_index, grid_size - 1);
      std::vector<int> rows;
      int rounds = 0;
      bool certified = attempt(j, &rows, &rounds);
      int extra = 0;
      if (certified) {
        // Walk towards larger tau (smaller index) until j - 1 fails.
        while (j > 0 && extra < kWarmWalkBudget) {
          std::vector<int> below_rows;
          int below_rounds = 0;
          ++extra;
          if (attempt(j - 1, &below_rows, &below_rounds)) {
            --j;
            rows = std::move(below_rows);
            rounds = below_rounds;
          } else {
            resolved = true;
            break;
          }
        }
        if (j == 0) resolved = true;
      } else {
        while (j + 1 < grid_size && extra < kWarmWalkBudget) {
          ++j;
          ++extra;
          if (attempt(j, &rows, &rounds)) {
            certified = true;
            resolved = true;
            break;
          }
        }
      }
      if (resolved && certified) {
        best_rows = std::move(rows);
        best_tau = tau_at(j);
        best_rounds = rounds;
        run.tau_index = j;
        run.warm_start_used = true;
      } else {
        resolved = false;
      }
    }
    if (!resolved) {
      // Cold path: binary search for the smallest grid index (largest
      // tau) that certifies.
      int lo = 0;
      int hi = grid_size - 1;
      while (lo <= hi) {
        const int mid = lo + (hi - lo) / 2;
        std::vector<int> rows;
        int rounds = 0;
        if (attempt(mid, &rows, &rounds)) {
          best_rows = std::move(rows);
          best_tau = tau_at(mid);
          best_rounds = rounds;
          run.tau_index = mid;
          hi = mid - 1;
        } else {
          lo = mid + 1;
        }
      }
      run.warm_start_used = false;
    }
  } else {
    // Paper's literal scan: try every tau descending, keep the best by net
    // mhr among certified solutions.
    double best_quality = -1.0;
    for (int j = 0; j < grid_size; ++j) {
      std::vector<int> rows;
      int rounds = 0;
      if (!attempt(j, &rows, &rounds)) continue;
      const double quality = eval->Mhr(rows);
      if (quality > best_quality) {
        best_quality = quality;
        best_rows = std::move(rows);
        best_tau = tau_at(j);
        best_rounds = rounds;
        run.tau_index = j;
      }
    }
  }

  if (best_tau < 0.0) {
    best_rows = GreedyFill(input, eval);
    best_tau = 0.0;
    best_rounds = 1;
  }

  if (opts.strict_feasible) {
    FAIRHMS_RETURN_IF_ERROR(PadSolution(input, &best_rows));
  }

  run.tau = best_tau;
  run.rounds_used = best_rounds;
  if (info != nullptr) *info = run;

  Solution out;
  out.rows = std::move(best_rows);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr = eval->Mhr(out.rows);
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = opts.strict_feasible ? "BiGreedy" : "BiGreedy(union)";
  return out;
}

StatusOr<Solution> BiGreedy(const Dataset& data, const Grouping& grouping,
                            const GroupBounds& bounds,
                            const BiGreedyOptions& opts,
                            BiGreedyRunInfo* info) {
  Stopwatch timer;
  FAIRHMS_ASSIGN_OR_RETURN(
      ProblemInput input,
      PrepareProblem(data, grouping, bounds, opts.pool, opts.db_rows,
                     opts.cache));
  const size_t m = DefaultNetSize(opts, bounds.k, data.dim());
  Rng rng(opts.seed);
  const std::shared_ptr<const UtilityNet> net =
      GetOrSampleNet(opts.cache, data.dim(), m, &rng);
  const std::shared_ptr<const NetEvaluator> eval = GetOrBuildEvaluator(
      opts.cache, data, net, input.db_rows, input.pool, opts.threads);
  FAIRHMS_ASSIGN_OR_RETURN(Solution out,
                           BiGreedyOnNet(input, eval.get(), opts, info));
  out.elapsed_ms = timer.ElapsedMillis();  // Include net construction.
  return out;
}

StatusOr<Solution> BiGreedyPlus(const Dataset& data, const Grouping& grouping,
                                const GroupBounds& bounds,
                                const BiGreedyPlusOptions& opts,
                                BiGreedyRunInfo* info) {
  Stopwatch timer;
  FAIRHMS_ASSIGN_OR_RETURN(
      ProblemInput input,
      PrepareProblem(data, grouping, bounds, opts.base.pool,
                     opts.base.db_rows, opts.base.cache));
  const int d = data.dim();
  const size_t cap =
      opts.max_net_size > 0
          ? opts.max_net_size
          : static_cast<size_t>(10) * static_cast<size_t>(bounds.k) *
                static_cast<size_t>(d);
  size_t m = std::max<size_t>(
      static_cast<size_t>(d) + 1,
      static_cast<size_t>(std::ceil(opts.m0_fraction * static_cast<double>(cap))));
  m = std::min(m, cap);

  Rng rng(opts.base.seed);

  // Shared evaluation net for the final argmax across rounds.
  Rng eval_rng = rng.Fork();
  const std::shared_ptr<const UtilityNet> eval_net = GetOrSampleNet(
      opts.base.cache, d, std::max<size_t>(2 * cap, 2000), &eval_rng);
  const std::shared_ptr<const NetEvaluator> final_eval =
      GetOrBuildEvaluator(opts.base.cache, data, eval_net, input.db_rows, {},
                          opts.base.threads);

  Solution best;
  double best_quality = -1.0;
  BiGreedyRunInfo best_info;
  double prev_tau = 2.0;  // Larger than any capped value.

  for (int round = 0;; ++round) {
    Rng net_rng = rng.Fork();
    const std::shared_ptr<const UtilityNet> net =
        GetOrSampleNet(opts.base.cache, d, m, &net_rng);
    const std::shared_ptr<const NetEvaluator> eval =
        GetOrBuildEvaluator(opts.base.cache, data, net, input.db_rows,
                            input.pool, opts.base.threads);
    BiGreedyRunInfo run;
    FAIRHMS_ASSIGN_OR_RETURN(
        Solution sol, BiGreedyOnNet(input, eval.get(), opts.base, &run));
    const double quality = final_eval->Mhr(sol.rows);
    if (quality > best_quality) {
      best_quality = quality;
      best = std::move(sol);
      best_info = run;
    }
    const bool converged = round > 0 && (prev_tau - run.tau) < opts.lambda;
    prev_tau = run.tau;
    if (converged || m >= cap) break;
    m = std::min(2 * m, cap);
  }

  if (info != nullptr) *info = best_info;
  best.mhr = best_quality;
  best.elapsed_ms = timer.ElapsedMillis();
  best.algorithm = "BiGreedy+";
  return best;
}

namespace {

BiGreedyOptions BiGreedyOptionsFromContext(const SolveContext& ctx) {
  BiGreedyOptions opts;
  opts.net_size = static_cast<size_t>(
      ctx.params->IntOr("net_size", static_cast<int64_t>(opts.net_size)));
  opts.delta = ctx.params->DoubleOr("delta", opts.delta);
  opts.eps = ctx.params->DoubleOr("eps", opts.eps);
  opts.tau_search = ctx.params->StringOr("tau_search", "binary") == "linear"
                        ? TauSearch::kLinear
                        : TauSearch::kBinary;
  opts.strict_feasible =
      ctx.params->BoolOr("strict_feasible", opts.strict_feasible);
  opts.lazy = ctx.params->BoolOr("lazy", opts.lazy);
  opts.seed = ctx.seed;
  opts.threads = ctx.threads;
  opts.cache = ctx.cache;
  opts.warm_tau_index = ctx.warm_tau_index;
  return opts;
}

/// Schema shared by bigreedy and bigreedy+ (the latter appends its own).
std::vector<ParamSpec> BiGreedyParamSchema() {
  return {
      {"net_size", ParamType::kInt, "direction-net size m", "auto (10*k*d)",
       1, 1e308, false, false, {}},
      {"delta", ParamType::kDouble,
       "derive m from a delta-net rule instead (used when net_size unset)",
       "unset", 0.0, 1.0, true, true, {}},
      {"eps", ParamType::kDouble, "capped-value search granularity", "0.02",
       0.0, 1.0, true, true, {}},
      {"tau_search", ParamType::kString,
       "capped-value grid traversal", "binary", -1e308, 1e308, false, false,
       {"binary", "linear"}},
      {"strict_feasible", ParamType::kBool,
       "only accept single-round (exactly k, fair) solutions", "true", -1e308,
       1e308, false, false, {}},
      {"lazy", ParamType::kBool, "priority-queue marginal gains", "true",
       -1e308, 1e308, false, false, {}},
  };
}

const AlgorithmRegistrar bigreedy_registrar([] {
  AlgorithmInfo info;
  info.name = "bigreedy";
  info.display_name = "BiGreedy";
  info.summary =
      "bicriteria matroid-greedy over a sampled direction net (any "
      "dimension)";
  info.caps.fairness_aware = true;
  info.caps.randomized = true;
  info.caps.warm_startable = true;
  info.params = BiGreedyParamSchema();
  info.solve = [](const SolveContext& ctx) -> StatusOr<Solution> {
    BiGreedyRunInfo run;
    FAIRHMS_ASSIGN_OR_RETURN(
        Solution sol, BiGreedy(*ctx.data, *ctx.grouping, *ctx.bounds,
                               BiGreedyOptionsFromContext(ctx), &run));
    if (ctx.run_info != nullptr) {
      ctx.run_info->tau_index = run.tau_index;
      ctx.run_info->warm_start_used = run.warm_start_used;
    }
    return sol;
  };
  return info;
}());

const AlgorithmRegistrar bigreedy_plus_registrar([] {
  AlgorithmInfo info;
  info.name = "bigreedy+";
  info.display_name = "BiGreedy+";
  info.summary = "BiGreedy with adaptive net-size doubling (Sec. 4.3)";
  info.caps.fairness_aware = true;
  info.caps.randomized = true;
  info.caps.supports_lambda = true;
  info.params = BiGreedyParamSchema();
  info.params.push_back({"max_net_size", ParamType::kInt,
                         "net-size doubling ceiling M", "auto (10*k*d)", 1,
                         1e308, false, false, {}});
  info.params.push_back({"m0_fraction", ParamType::kDouble,
                         "initial net size as a fraction of M", "0.05", 0.0,
                         1.0, true, false, {}});
  info.params.push_back({"lambda", ParamType::kDouble,
                         "stop doubling when tau improves by less than this",
                         "0.04", 0.0, 1e308, false, false, {}});
  info.solve = [](const SolveContext& ctx) {
    BiGreedyPlusOptions opts;
    opts.base = BiGreedyOptionsFromContext(ctx);
    // Net-doubling rounds each solve a different net; a tau index from a
    // previous run is meaningless across them, so BiGreedy+ always runs
    // cold (and does not declare warm_startable).
    opts.base.warm_tau_index = -1;
    opts.max_net_size = static_cast<size_t>(ctx.params->IntOr(
        "max_net_size", static_cast<int64_t>(opts.max_net_size)));
    opts.m0_fraction = ctx.params->DoubleOr("m0_fraction", opts.m0_fraction);
    opts.lambda = ctx.params->DoubleOr("lambda", opts.lambda);
    return BiGreedyPlus(*ctx.data, *ctx.grouping, *ctx.bounds, opts);
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoBiGreedy() { return 0; }
}  // namespace internal

}  // namespace fairhms
