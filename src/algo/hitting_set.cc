#include <algorithm>
#include <cmath>
#include <numeric>

#include "algo/baselines.h"
#include "algo/group_adapter.h"
#include "api/registry.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/artifact_cache.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "geom/vec.h"
#include "utility/utility_net.h"

namespace fairhms {

StatusOr<Solution> HittingSet(const Dataset& data,
                              const std::vector<int>& rows, int k,
                              const HittingSetOptions& opts) {
  if (rows.empty()) return Status::InvalidArgument("empty candidate set");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const int d = data.dim();
  Stopwatch timer;

  const size_t m_val = opts.validation_net_size > 0
                           ? opts.validation_net_size
                           : static_cast<size_t>(20) * k * d;
  Rng rng(opts.seed);
  // Denominators over the sub-database come from the (possibly shared)
  // evaluator; its precompute is bit-identical across thread counts.
  const std::shared_ptr<const UtilityNet> net =
      GetOrSampleNet(opts.cache, d, m_val, &rng);
  const std::shared_ptr<const NetEvaluator> eval_ptr =
      GetOrBuildEvaluator(opts.cache, data, net, rows, {}, opts.threads);
  const NetEvaluator& eval = *eval_ptr;

  // Greedy cover of the working direction set at threshold tau; empty result
  // = more than k points needed.
  auto cover = [&](const std::vector<int>& dirs,
                   double tau) -> std::vector<int> {
    std::vector<int> uncovered = dirs;
    std::vector<int> picked;
    while (!uncovered.empty() && static_cast<int>(picked.size()) < k) {
      int best_row = -1;
      size_t best_cnt = 0;
      for (int r : rows) {
        if (std::find(picked.begin(), picked.end(), r) != picked.end()) {
          continue;
        }
        size_t cnt = 0;
        for (int j : uncovered) {
          if (eval.PointHappiness(static_cast<size_t>(j), r) >= tau) {
            ++cnt;
          }
        }
        if (cnt > best_cnt) {
          best_cnt = cnt;
          best_row = r;
        }
      }
      if (best_row < 0) return {};
      picked.push_back(best_row);
      size_t w = 0;
      for (int j : uncovered) {
        if (eval.PointHappiness(static_cast<size_t>(j), best_row) < tau) {
          uncovered[w++] = j;
        }
      }
      uncovered.resize(w);
    }
    return uncovered.empty() ? picked : std::vector<int>{};
  };

  // Lazy constraint generation: certify tau against the full validation net,
  // growing the working set with violated directions.
  auto feasible = [&](double tau, std::vector<int>* out) -> bool {
    std::vector<int> working;
    working.reserve(opts.initial_directions);
    for (size_t j = 0; j < std::min(opts.initial_directions, m_val); ++j) {
      working.push_back(static_cast<int>(j));
    }
    std::vector<bool> in_working(m_val, false);
    for (int j : working) in_working[static_cast<size_t>(j)] = true;

    for (int round = 0; round < opts.max_rounds; ++round) {
      std::vector<int> picked = cover(working, tau);
      if (picked.empty()) return false;
      // Validate on the full net.
      size_t added = 0;
      for (size_t j = 0; j < m_val && added < opts.violations_per_round; ++j) {
        if (in_working[j]) continue;
        double best_h = 0.0;
        for (int r : picked) {
          best_h = std::max(best_h, eval.PointHappiness(j, r));
          if (best_h >= tau) break;
        }
        if (best_h < tau) {
          working.push_back(static_cast<int>(j));
          in_working[j] = true;
          ++added;
        }
      }
      if (added == 0) {
        *out = std::move(picked);
        return true;
      }
    }
    return false;
  };

  // Binary search on tau.
  std::vector<int> best_rows;
  double lo = 0.0;
  double hi = 1.0;
  std::vector<int> sol;
  if (feasible(1.0, &sol)) {
    best_rows = sol;
  } else {
    for (int it = 0; it < opts.binary_search_steps; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (feasible(mid, &sol)) {
        best_rows = sol;
        lo = mid;
      } else {
        hi = mid;
      }
    }
    if (best_rows.empty()) {
      best_rows.push_back(rows.front());
    }
  }

  // Pad to k with the best unused rows by attribute sum.
  if (static_cast<int>(best_rows.size()) < k) {
    std::vector<int> order = rows;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double sa =
          SumCoords(data.point(static_cast<size_t>(a)), static_cast<size_t>(d));
      const double sb =
          SumCoords(data.point(static_cast<size_t>(b)), static_cast<size_t>(d));
      if (sa != sb) return sa > sb;
      return a < b;
    });
    for (int r : order) {
      if (static_cast<int>(best_rows.size()) >= k) break;
      if (std::find(best_rows.begin(), best_rows.end(), r) ==
          best_rows.end()) {
        best_rows.push_back(r);
      }
    }
  }

  Solution out;
  out.rows = std::move(best_rows);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr =
      rows.size() <= 4000 ? MhrExactLp(data, rows, out.rows, opts.threads) : 0.0;
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "HS";
  return out;
}

namespace {

HittingSetOptions HittingSetOptionsFromContext(const SolveContext& ctx) {
  HittingSetOptions opts;
  opts.validation_net_size = static_cast<size_t>(ctx.params->IntOr(
      "net_size", static_cast<int64_t>(opts.validation_net_size)));
  opts.max_rounds = static_cast<int>(
      ctx.params->IntOr("max_rounds", opts.max_rounds));
  opts.seed = ctx.seed;
  opts.threads = ctx.threads;
  opts.cache = ctx.cache;
  return opts;
}

std::vector<ParamSpec> HittingSetParamSchema() {
  return {
      {"net_size", ParamType::kInt, "validation direction-net size",
       "auto (20*k*d)", 1, 1e308, false, false, {}},
      {"max_rounds", ParamType::kInt,
       "lazy constraint-generation round limit", "64", 1, 1e308, false,
       false, {}},
  };
}

const AlgorithmRegistrar hs_registrar([] {
  AlgorithmInfo info;
  info.name = "hs";
  info.display_name = "HS";
  info.summary =
      "lazy hitting-set baseline: threshold + greedy cover with constraint "
      "generation (unconstrained, memory-light)";
  info.caps.randomized = true;
  info.params = HittingSetParamSchema();
  info.solve = [](const SolveContext& ctx) {
    return HittingSet(*ctx.data, *ctx.skyline, ctx.bounds->k,
                      HittingSetOptionsFromContext(ctx));
  };
  return info;
}());

const AlgorithmRegistrar g_hs_registrar([] {
  AlgorithmInfo info;
  info.name = "g_hs";
  info.display_name = "G-HS";
  info.summary = "HS run per group and unioned (fair by quotas)";
  info.caps.fairness_aware = true;
  info.caps.randomized = true;
  info.params = HittingSetParamSchema();
  info.solve = [](const SolveContext& ctx) {
    const HittingSetOptions opts = HittingSetOptionsFromContext(ctx);
    GroupAdapterOptions adapter_opts;
    adapter_opts.threads = ctx.threads;
    adapter_opts.cache = ctx.cache;
    return GroupAdapt(
        [opts](const Dataset& d, const std::vector<int>& rows, int k) {
          return HittingSet(d, rows, k, opts);
        },
        "HS", *ctx.data, *ctx.grouping, *ctx.bounds, adapter_opts);
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoHittingSet() { return 0; }
}  // namespace internal

}  // namespace fairhms
