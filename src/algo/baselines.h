// Prior-art RMS/HMS baselines (paper Sec. 5.1), all fairness-unaware.
//
// Every baseline solves vanilla HMS on the sub-database given by `rows`
// (candidate pool, witness set and happiness denominators alike): pass the
// global skyline to reproduce the unconstrained runs of Fig. 3, or one
// group's skyline when driven by the G-adapter (algo/group_adapter.h).
//
//  * RdpGreedy — Nanongkai et al. [35]: repeatedly insert the max-regret
//    witness (one LP per skyline item per iteration).
//  * Dmm      — Asudeh et al. [5]: discretized matrix of happiness values
//    over a per-axis angle grid; binary search over thresholds, greedy set
//    cover as the feasibility test. Keeps the full matrix in memory, which
//    is exactly why it dies above d ~ 6-7 (ResourceExhausted), as reported
//    in the paper.
//  * SphereAlgo — Xie et al. [55]: dimension-extreme points first (requires
//    k >= d), then covers the worst-served sampled directions.
//  * HittingSet — Agarwal et al. / Kumar & Sintos [2, 29]: threshold + greedy
//    cover with lazy constraint generation over directions (memory-light).
//
// Registered in the unified solver registry (api/registry.h) both plain
// ("rdp_greedy", "dmm", "sphere", "hs" — run on the global skyline,
// violations reported) and G-adapted ("g_greedy", "g_dmm", "g_sphere",
// "g_hs" — fair by per-group quotas). Solver::Solve (api/solver.h) is the
// stable entry point.

#ifndef FAIRHMS_ALGO_BASELINES_H_
#define FAIRHMS_ALGO_BASELINES_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// Options for RdpGreedy.
struct RdpGreedyOptions {
  /// Stop early when the max regret drops below this (remaining slots are
  /// filled with the best unused rows by attribute sum).
  double regret_tolerance = 1e-9;
  /// Witness-LP lanes (0 = DefaultThreads(), 1 = exact serial path); output
  /// is bit-identical across thread counts.
  int threads = 0;
};

/// RDP-Greedy. `rows` must be non-empty; k >= 1.
StatusOr<Solution> RdpGreedy(const Dataset& data, const std::vector<int>& rows,
                             int k, const RdpGreedyOptions& opts = {});

/// Options for Dmm.
struct DmmOptions {
  /// Target total direction count; the per-axis grid resolution is derived
  /// as ceil(target^(1/(d-1))). 0 derives the 10 * k * d default.
  size_t target_net_size = 0;
  int min_grid_per_axis = 6;
  int max_grid_per_axis = 4096;
  /// The happiness matrix (float) must fit here, else ResourceExhausted.
  uint64_t memory_budget_bytes = 2'000'000'000;
  /// At most this many matrix values become binary-search candidates
  /// (uniformly strided subsample above).
  size_t max_threshold_candidates = 2'000'000;
  /// Matrix-fill / evaluation lanes (0 = DefaultThreads(), 1 = exact serial
  /// path); output is bit-identical across thread counts.
  int threads = 0;
};

/// DMM.
StatusOr<Solution> Dmm(const Dataset& data, const std::vector<int>& rows,
                       int k, const DmmOptions& opts = {});

/// Options for SphereAlgo.
struct SphereOptions {
  size_t net_size = 0;  ///< 0 -> 10 * k * d sampled directions.
  uint64_t seed = 29;
  /// Evaluation lanes (0 = DefaultThreads(), 1 = exact serial path); output
  /// is bit-identical across thread counts.
  int threads = 0;
  /// Cross-query memoization of nets / evaluators (not owned; null = build
  /// per call). Results are bit-identical either way.
  ArtifactCache* cache = nullptr;
};

/// Sphere. Fails with InvalidArgument when k < d (as the original does).
StatusOr<Solution> SphereAlgo(const Dataset& data,
                              const std::vector<int>& rows, int k,
                              const SphereOptions& opts = {});

/// Options for HittingSet.
struct HittingSetOptions {
  size_t validation_net_size = 0;  ///< 0 -> 20 * k * d.
  size_t initial_directions = 64;
  size_t violations_per_round = 32;
  int max_rounds = 64;
  int binary_search_steps = 24;
  uint64_t seed = 31;
  /// Evaluation lanes (0 = DefaultThreads(), 1 = exact serial path); output
  /// is bit-identical across thread counts.
  int threads = 0;
  /// Cross-query memoization of nets / denominator precomputes (not owned;
  /// null = build per call). Results are bit-identical either way.
  ArtifactCache* cache = nullptr;
};

/// HS (lazy hitting set).
StatusOr<Solution> HittingSet(const Dataset& data,
                              const std::vector<int>& rows, int k,
                              const HittingSetOptions& opts = {});

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_BASELINES_H_
