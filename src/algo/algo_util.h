// Shared preprocessing and post-processing for FairHMS algorithms.

#ifndef FAIRHMS_ALGO_ALGO_UTIL_H_
#define FAIRHMS_ALGO_ALGO_UTIL_H_

#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// Preprocessed FairHMS instance shared by all algorithms.
struct ProblemInput {
  const Dataset* data = nullptr;
  const Grouping* grouping = nullptr;
  GroupBounds bounds;
  /// Candidate rows (default: union of per-group skylines).
  std::vector<int> pool;
  /// Candidate rows split by group.
  std::vector<std::vector<int>> pool_by_group;
  /// Rows defining happiness denominators (default: global skyline).
  std::vector<int> db_rows;
};

/// Validates the instance and fills defaults. `pool_override` /
/// `db_override` may be empty to request the defaults; a non-null `cache`
/// memoizes the default pool/skyline across queries (bit-identical either
/// way).
StatusOr<ProblemInput> PrepareProblem(const Dataset& data,
                                      const Grouping& grouping,
                                      const GroupBounds& bounds,
                                      std::vector<int> pool_override = {},
                                      std::vector<int> db_override = {},
                                      ArtifactCache* cache = nullptr);

/// Extends `solution` (deduplicated) to exactly bounds.k rows satisfying the
/// group bounds, drawing first from the pool and then from any group member.
/// Padding never decreases mhr. Fails only when the instance itself is
/// infeasible.
Status PadSolution(const ProblemInput& input, std::vector<int>* solution);

/// Removes duplicate rows, preserving first occurrence order.
void DedupRows(std::vector<int>* rows);

}  // namespace fairhms

#endif  // FAIRHMS_ALGO_ALGO_UTIL_H_
