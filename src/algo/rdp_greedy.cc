#include <algorithm>

#include "algo/algo_util.h"
#include "algo/baselines.h"
#include "algo/group_adapter.h"
#include "api/registry.h"
#include "common/stopwatch.h"
#include "core/exact_evaluator.h"
#include "geom/vec.h"

namespace fairhms {

namespace {

/// Unused rows sorted by descending attribute sum (deterministic filler).
std::vector<int> FillerOrder(const Dataset& data, const std::vector<int>& rows) {
  std::vector<int> order = rows;
  const size_t d = static_cast<size_t>(data.dim());
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = SumCoords(data.point(static_cast<size_t>(a)), d);
    const double sb = SumCoords(data.point(static_cast<size_t>(b)), d);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

}  // namespace

StatusOr<Solution> RdpGreedy(const Dataset& data, const std::vector<int>& rows,
                             int k, const RdpGreedyOptions& opts) {
  if (rows.empty()) return Status::InvalidArgument("empty candidate set");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Stopwatch timer;

  // Seed with the best point in the first dimension (the original's start).
  int seed_row = rows.front();
  for (int r : rows) {
    if (data.at(static_cast<size_t>(r), 0) >
        data.at(static_cast<size_t>(seed_row), 0)) {
      seed_row = r;
    }
  }
  std::vector<int> solution = {seed_row};

  const int target = std::min<int>(k, static_cast<int>(rows.size()));
  while (static_cast<int>(solution.size()) < target) {
    const RegretWitness witness =
        MaxRegretWitnessLp(data, rows, solution, opts.threads);
    if (witness.row < 0 || witness.regret <= opts.regret_tolerance) break;
    solution.push_back(witness.row);
  }

  // Zero regret (or exhausted witnesses): fill remaining slots.
  if (static_cast<int>(solution.size()) < target) {
    for (int r : FillerOrder(data, rows)) {
      if (static_cast<int>(solution.size()) >= target) break;
      if (std::find(solution.begin(), solution.end(), r) == solution.end()) {
        solution.push_back(r);
      }
    }
  }

  Solution out;
  out.rows = std::move(solution);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr = MhrExactLp(data, rows, out.rows, opts.threads);
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "Greedy";
  return out;
}

namespace {

RdpGreedyOptions RdpGreedyOptionsFromContext(const SolveContext& ctx) {
  RdpGreedyOptions opts;
  opts.regret_tolerance =
      ctx.params->DoubleOr("regret_tolerance", opts.regret_tolerance);
  opts.threads = ctx.threads;
  return opts;
}

std::vector<ParamSpec> RdpGreedyParamSchema() {
  return {
      {"regret_tolerance", ParamType::kDouble,
       "stop early when the max regret drops below this", "1e-9", 0.0, 1e308,
       false, false, {}},
  };
}

const AlgorithmRegistrar rdp_greedy_registrar([] {
  AlgorithmInfo info;
  info.name = "rdp_greedy";
  info.display_name = "Greedy";
  info.summary =
      "RDP-Greedy baseline: repeatedly insert the max-regret witness "
      "(unconstrained, runs on the global skyline)";
  info.params = RdpGreedyParamSchema();
  info.solve = [](const SolveContext& ctx) {
    return RdpGreedy(*ctx.data, *ctx.skyline, ctx.bounds->k,
                     RdpGreedyOptionsFromContext(ctx));
  };
  return info;
}());

const AlgorithmRegistrar g_greedy_registrar([] {
  AlgorithmInfo info;
  info.name = "g_greedy";
  info.display_name = "G-Greedy";
  info.summary = "RDP-Greedy run per group and unioned (fair by quotas)";
  info.caps.fairness_aware = true;
  info.params = RdpGreedyParamSchema();
  info.solve = [](const SolveContext& ctx) {
    const RdpGreedyOptions opts = RdpGreedyOptionsFromContext(ctx);
    GroupAdapterOptions adapter_opts;
    adapter_opts.threads = ctx.threads;
    adapter_opts.cache = ctx.cache;
    return GroupAdapt(
        [opts](const Dataset& d, const std::vector<int>& rows, int k) {
          return RdpGreedy(d, rows, k, opts);
        },
        "Greedy", *ctx.data, *ctx.grouping, *ctx.bounds, adapter_opts);
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoRdpGreedy() { return 0; }
}  // namespace internal

}  // namespace fairhms
