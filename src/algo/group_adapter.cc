#include "algo/group_adapter.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/artifact_cache.h"
#include "core/evaluate.h"
#include "skyline/skyline.h"

namespace fairhms {

StatusOr<Solution> GroupAdapt(const BaseSolver& solver,
                              const std::string& name, const Dataset& data,
                              const Grouping& grouping,
                              const GroupBounds& bounds,
                              const GroupAdapterOptions& opts) {
  if (grouping.group_of.size() != data.size()) {
    return Status::InvalidArgument("grouping does not match dataset size");
  }
  if (bounds.num_groups() != grouping.num_groups) {
    return Status::InvalidArgument("bounds/grouping group count mismatch");
  }
  Stopwatch timer;
  const std::vector<int> group_counts =
      opts.cache != nullptr ? opts.cache->GroupCounts(data, grouping)
                            : grouping.LiveCounts(data);
  FAIRHMS_RETURN_IF_ERROR(bounds.Validate(group_counts, &grouping.names));

  // Quotas proportional to group sizes, capped by what each group holds.
  std::vector<double> weights(group_counts.begin(), group_counts.end());
  FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> quotas,
                           AllocateQuotas(bounds, weights, group_counts));

  // Group tables and skylines are pure functions of (data, grouping);
  // borrow the session's copies when a cache is attached.
  std::vector<std::vector<int>> local_group_skylines;
  std::vector<std::vector<int>> local_members;
  const std::vector<std::vector<int>>& group_skylines =
      opts.cache != nullptr
          ? opts.cache->GroupSkylines(data, grouping)
          : (local_group_skylines = ComputeGroupSkylines(data, grouping));
  const std::vector<std::vector<int>>& members =
      opts.cache != nullptr ? opts.cache->GroupMembers(data, grouping)
                            : (local_members = grouping.MembersLive(data));

  Solution out;
  for (int c = 0; c < grouping.num_groups; ++c) {
    const int kc = quotas[static_cast<size_t>(c)];
    if (kc == 0) continue;
    // Candidates: the group skyline, widened to all members when the
    // skyline alone cannot fill the quota.
    const std::vector<int>& pool =
        static_cast<int>(group_skylines[static_cast<size_t>(c)].size()) >= kc
            ? group_skylines[static_cast<size_t>(c)]
            : members[static_cast<size_t>(c)];
    auto sub = solver(data, pool, kc);
    if (!sub.ok()) {
      return Status(sub.status().code(),
                    StrFormat("G-%s failed on group %d: %s", name.c_str(), c,
                              sub.status().message().c_str()));
    }
    out.rows.insert(out.rows.end(), sub->rows.begin(), sub->rows.end());
  }

  std::sort(out.rows.begin(), out.rows.end());
  std::vector<int> local_db_rows;
  const std::vector<int>& db_rows =
      !opts.db_rows.empty()
          ? opts.db_rows
          : (opts.cache != nullptr
                 ? opts.cache->Skyline(data)
                 : (local_db_rows = ComputeSkyline(data)));
  EvalOptions eval_opts;
  eval_opts.threads = opts.threads;
  eval_opts.cache = opts.cache;
  out.mhr = EvaluateMhr(data, db_rows, out.rows, eval_opts);
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "G-" + name;
  return out;
}

}  // namespace fairhms
