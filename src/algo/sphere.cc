#include <algorithm>
#include <cmath>

#include "algo/baselines.h"
#include "algo/group_adapter.h"
#include "api/registry.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/artifact_cache.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "geom/vec.h"
#include "utility/utility_net.h"

namespace fairhms {

StatusOr<Solution> SphereAlgo(const Dataset& data,
                              const std::vector<int>& rows, int k,
                              const SphereOptions& opts) {
  if (rows.empty()) return Status::InvalidArgument("empty candidate set");
  const int d = data.dim();
  if (k < d) {
    // The original Sphere seeds with the d per-dimension extremes and cannot
    // produce smaller solutions; the paper omits its bars in this regime.
    return Status::InvalidArgument(
        StrFormat("Sphere requires k >= d (k=%d, d=%d)", k, d));
  }
  Stopwatch timer;

  // Phase 1: the "boundary" points — best in each dimension.
  std::vector<int> solution;
  for (int j = 0; j < d; ++j) {
    int best = rows.front();
    for (int r : rows) {
      if (data.at(static_cast<size_t>(r), j) >
          data.at(static_cast<size_t>(best), j)) {
        best = r;
      }
    }
    if (std::find(solution.begin(), solution.end(), best) == solution.end()) {
      solution.push_back(best);
    }
  }

  // Phase 2: repeatedly serve the worst-covered sampled direction with its
  // best available point.
  const size_t m = opts.net_size > 0
                       ? opts.net_size
                       : static_cast<size_t>(10) * k * d;
  Rng rng(opts.seed);
  const std::shared_ptr<const UtilityNet> net =
      GetOrSampleNet(opts.cache, d, m, &rng);
  const std::shared_ptr<const NetEvaluator> eval_ptr =
      GetOrBuildEvaluator(opts.cache, data, net, rows, {}, opts.threads);
  const NetEvaluator& eval = *eval_ptr;

  std::vector<double> cur(m, 0.0);
  for (int r : solution) {
    for (size_t j = 0; j < m; ++j) {
      cur[j] = std::max(cur[j], eval.PointHappiness(j, r));
    }
  }
  std::vector<bool> exhausted(m, false);
  const int target = std::min<int>(k, static_cast<int>(rows.size()));
  while (static_cast<int>(solution.size()) < target) {
    // Worst-served direction that can still improve.
    int worst = -1;
    double worst_hr = 2.0;
    for (size_t j = 0; j < m; ++j) {
      if (!exhausted[j] && cur[j] < worst_hr) {
        worst_hr = cur[j];
        worst = static_cast<int>(j);
      }
    }
    if (worst < 0) break;
    // Best point for that direction not already selected.
    int best = -1;
    double best_h = -1.0;
    for (int r : rows) {
      if (std::find(solution.begin(), solution.end(), r) != solution.end()) {
        continue;
      }
      const double h = eval.PointHappiness(static_cast<size_t>(worst), r);
      if (h > best_h) {
        best_h = h;
        best = r;
      }
    }
    if (best < 0 || best_h <= worst_hr + 1e-12) {
      exhausted[static_cast<size_t>(worst)] = true;
      continue;
    }
    solution.push_back(best);
    for (size_t j = 0; j < m; ++j) {
      cur[j] = std::max(cur[j], eval.PointHappiness(j, best));
    }
  }

  Solution out;
  out.rows = std::move(solution);
  std::sort(out.rows.begin(), out.rows.end());
  out.mhr = rows.size() <= 4000 ? MhrExactLp(data, rows, out.rows, opts.threads)
                                : eval.Mhr(out.rows);
  out.elapsed_ms = timer.ElapsedMillis();
  out.algorithm = "Sphere";
  return out;
}

namespace {

SphereOptions SphereOptionsFromContext(const SolveContext& ctx) {
  SphereOptions opts;
  opts.net_size = static_cast<size_t>(
      ctx.params->IntOr("net_size", static_cast<int64_t>(opts.net_size)));
  opts.seed = ctx.seed;
  opts.threads = ctx.threads;
  opts.cache = ctx.cache;
  return opts;
}

std::vector<ParamSpec> SphereParamSchema() {
  return {
      {"net_size", ParamType::kInt, "sampled direction count",
       "auto (10*k*d)", 1, 1e308, false, false, {}},
  };
}

const AlgorithmRegistrar sphere_registrar([] {
  AlgorithmInfo info;
  info.name = "sphere";
  info.display_name = "Sphere";
  info.summary =
      "Sphere baseline: dimension extremes + worst-served sampled "
      "directions (unconstrained; needs k >= d)";
  info.caps.randomized = true;
  info.params = SphereParamSchema();
  info.solve = [](const SolveContext& ctx) {
    return SphereAlgo(*ctx.data, *ctx.skyline, ctx.bounds->k,
                      SphereOptionsFromContext(ctx));
  };
  return info;
}());

const AlgorithmRegistrar g_sphere_registrar([] {
  AlgorithmInfo info;
  info.name = "g_sphere";
  info.display_name = "G-Sphere";
  info.summary =
      "Sphere run per group and unioned (fair by quotas; needs every "
      "per-group quota >= d)";
  info.caps.fairness_aware = true;
  info.caps.randomized = true;
  info.params = SphereParamSchema();
  info.solve = [](const SolveContext& ctx) {
    const SphereOptions opts = SphereOptionsFromContext(ctx);
    GroupAdapterOptions adapter_opts;
    adapter_opts.threads = ctx.threads;
    adapter_opts.cache = ctx.cache;
    return GroupAdapt(
        [opts](const Dataset& d, const std::vector<int>& rows, int k) {
          return SphereAlgo(d, rows, k, opts);
        },
        "Sphere", *ctx.data, *ctx.grouping, *ctx.bounds, adapter_opts);
  };
  return info;
}());

}  // namespace

namespace internal {
int LinkAlgoSphere() { return 0; }
}  // namespace internal

}  // namespace fairhms
