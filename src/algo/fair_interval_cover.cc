#include "algo/fair_interval_cover.h"

#include <algorithm>
#include <cassert>

#include "algo/algo_util.h"
#include "common/string_util.h"

namespace fairhms {

void GroupIntervalIndex::Build(std::vector<CoverInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const CoverInterval& a, const CoverInterval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi > b.hi;
            });
  lo_.clear();
  best_hi_.clear();
  best_row_.clear();
  lo_.reserve(intervals.size());
  double run_hi = -1.0;
  int run_row = -1;
  for (const auto& iv : intervals) {
    if (iv.hi > run_hi) {
      run_hi = iv.hi;
      run_row = iv.row;
    }
    lo_.push_back(iv.lo);
    best_hi_.push_back(run_hi);
    best_row_.push_back(run_row);
  }
}

bool GroupIntervalIndex::Query(double reach, double tol, double* hi,
                               int* row) const {
  const auto it = std::upper_bound(lo_.begin(), lo_.end(), reach + tol);
  if (it == lo_.begin()) return false;
  const size_t idx = static_cast<size_t>(it - lo_.begin()) - 1;
  *hi = best_hi_[idx];
  *row = best_row_[idx];
  return true;
}

FairIntervalCoverDp::FairIntervalCoverDp(GroupBounds bounds,
                                         uint64_t num_states,
                                         std::vector<uint64_t> strides,
                                         std::vector<int> dims)
    : bounds_(std::move(bounds)),
      num_states_(num_states),
      strides_(std::move(strides)),
      dims_(std::move(dims)),
      value_(num_states),
      parent_group_(num_states),
      parent_row_(num_states) {}

StatusOr<FairIntervalCoverDp> FairIntervalCoverDp::Create(
    const GroupBounds& bounds, uint64_t max_states) {
  const int c_num = bounds.num_groups();
  std::vector<int> dims(static_cast<size_t>(c_num));
  uint64_t num_states = 1;
  for (int c = 0; c < c_num; ++c) {
    dims[static_cast<size_t>(c)] =
        std::min(bounds.upper[static_cast<size_t>(c)], bounds.k) + 1;
    if (num_states > max_states /
                         static_cast<uint64_t>(dims[static_cast<size_t>(c)]) +
                         1) {
      return Status::ResourceExhausted(
          StrFormat("fair interval cover DP needs more than %llu states "
                    "(C=%d); the DP is exponential in the number of groups",
                    static_cast<unsigned long long>(max_states), c_num));
    }
    num_states *= static_cast<uint64_t>(dims[static_cast<size_t>(c)]);
  }
  if (num_states > max_states) {
    return Status::ResourceExhausted("DP state space too large");
  }
  std::vector<uint64_t> strides(static_cast<size_t>(c_num));
  uint64_t stride = 1;
  for (int c = 0; c < c_num; ++c) {
    strides[static_cast<size_t>(c)] = stride;
    stride *= static_cast<uint64_t>(dims[static_cast<size_t>(c)]);
  }
  return FairIntervalCoverDp(bounds, num_states, std::move(strides),
                             std::move(dims));
}

bool FairIntervalCoverDp::Feasible(const std::vector<int>& digits) const {
  long long needed = 0;
  for (size_t c = 0; c < digits.size(); ++c) {
    needed += std::max(digits[c], bounds_.lower[c]);
  }
  return needed <= bounds_.k;
}

void FairIntervalCoverDp::Reconstruct(uint64_t s,
                                      std::vector<int>* solution) const {
  solution->clear();
  while (s != 0) {
    const int c = parent_group_[s];
    const int row = parent_row_[s];
    if (row >= 0) solution->push_back(row);
    s -= strides_[static_cast<size_t>(c)];
  }
  DedupRows(solution);
}

bool FairIntervalCoverDp::Decide(const std::vector<GroupIntervalIndex>& groups,
                                 double tol, std::vector<int>* solution) {
  const int c_num = static_cast<int>(dims_.size());
  assert(static_cast<int>(groups.size()) == c_num);
  std::fill(value_.begin(), value_.end(), kUnreachable);
  value_[0] = 0.0;
  std::vector<int> digits(static_cast<size_t>(c_num), 0);

  // Ascending linear index order processes every predecessor (index minus
  // one stride) first.
  for (uint64_t s = 1; s < num_states_; ++s) {
    uint64_t rest = s;
    for (int c = c_num - 1; c >= 0; --c) {
      digits[static_cast<size_t>(c)] =
          static_cast<int>(rest / strides_[static_cast<size_t>(c)]);
      rest %= strides_[static_cast<size_t>(c)];
    }
    // Infeasible states cannot lead to feasible ones (counts only grow);
    // prune them exactly as the paper's Algorithm 2 does.
    if (!Feasible(digits)) continue;
    double best = kUnreachable;
    int best_group = -1;
    int best_row = -1;
    for (int c = 0; c < c_num; ++c) {
      if (digits[static_cast<size_t>(c)] == 0) continue;
      const uint64_t pred = s - strides_[static_cast<size_t>(c)];
      const double pv = value_[pred];
      if (pv <= kUnreachable) continue;
      // Carry (wasted pick): keeps reach, lets the DP spend a slot.
      if (pv > best) {
        best = pv;
        best_group = c;
        best_row = -1;
      }
      double hi;
      int row;
      if (groups[static_cast<size_t>(c)].Query(pv, tol, &hi, &row) &&
          hi > best) {
        best = hi;
        best_group = c;
        best_row = row;
      }
    }
    if (best_group < 0) continue;
    value_[s] = best;
    parent_group_[s] = static_cast<int8_t>(best_group);
    parent_row_[s] = best_row;

    if (best >= 1.0 - tol) {
      Reconstruct(s, solution);
      return true;
    }
  }
  return false;
}

}  // namespace fairhms
