// Umbrella header: everything a downstream user of the FairHMS library
// needs. Individual module headers remain includable on their own.

#ifndef FAIRHMS_FAIRHMS_H_
#define FAIRHMS_FAIRHMS_H_

#include "algo/algo_util.h"
#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/group_adapter.h"
#include "algo/intcov.h"
#include "api/catalog.h"
#include "api/params.h"
#include "api/registry.h"
#include "api/session.h"
#include "api/solver.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/artifact_cache.h"
#include "core/evaluate.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "core/solution.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "data/snapshot.h"
#include "fairness/group_bounds.h"
#include "fairness/matroid.h"
#include "skyline/incremental.h"
#include "skyline/skyline.h"
#include "utility/utility_net.h"

#endif  // FAIRHMS_FAIRHMS_H_
