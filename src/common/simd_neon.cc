// NEON (aarch64) kernel table. float64x2_t is baseline on aarch64, so no
// special compile flags are needed; on other targets this TU collapses to
// a nullptr stub. Two hardware lanes pair into the canonical four-virtual-
// lane sum order exactly like the SSE2 table (see simd.cc). Compiled with
// -ffp-contract=off; vfmaq is never used.

#include "common/simd_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace fairhms {
namespace simd {
namespace internal {
namespace {

inline float64x2_t DotPair(const double* const* net, size_t j,
                           const double* p, size_t d) {
  float64x2_t acc = vdupq_n_f64(0.0);
  for (size_t k = 0; k < d; ++k) {
    acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(p[k]), vld1q_f64(net[k] + j)));
  }
  return acc;
}

inline float64x2_t Select(uint64x2_t mask, float64x2_t a, float64x2_t b) {
  return vbslq_f64(mask, a, b);
}

inline float64x2_t HappinessPair(float64x2_t s, float64x2_t b,
                                 float64x2_t epsv, float64x2_t one) {
  const uint64x2_t active = vcgtq_f64(b, epsv);
  const float64x2_t safe = Select(active, b, one);
  const float64x2_t q = vminq_f64(vdivq_f64(s, safe), one);
  return Select(active, q, one);
}

inline bool AnyLane(uint64x2_t m) { return vmaxvq_u32(vreinterpretq_u32_u64(m)) != 0; }
inline bool NoLane(uint64x2_t m) { return vmaxvq_u32(vreinterpretq_u32_u64(m)) == 0; }

void NetBestNeon(const double* const* net, size_t j0, size_t j1,
                 const double* pts, size_t nrows, size_t d, double* best) {
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    size_t j = j0;
    for (; j + 2 <= j1; j += 2) {
      const float64x2_t s = DotPair(net, j, p, d);
      const float64x2_t b = vld1q_f64(best + j);
      vst1q_f64(best + j, vmaxq_f64(b, s));
    }
    for (; j < j1; ++j) {
      const double s = DotDir(net, j, p, d);
      if (s > best[j]) best[j] = s;
    }
  }
}

void HappinessRangeNeon(const double* const* net, size_t j0, size_t j1,
                        const double* p, size_t d, const double* best,
                        double eps, double* out) {
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t epsv = vdupq_n_f64(eps);
  size_t j = j0;
  for (; j + 2 <= j1; j += 2) {
    const float64x2_t s = DotPair(net, j, p, d);
    const float64x2_t b = vld1q_f64(best + j);
    vst1q_f64(out + j, HappinessPair(s, b, epsv, one));
  }
  for (; j < j1; ++j) {
    out[j] = HappinessOf(DotDir(net, j, p, d), best[j], eps);
  }
}

double MhrRangeNeon(const double* const* net, size_t j0, size_t j1,
                    const double* best, double eps, const double* pts,
                    size_t nrows, size_t d) {
  alignas(kAlign) double smax[kDirTile];
  const size_t len = j1 - j0;
  for (size_t jj = 0; jj < len; ++jj) smax[jj] = 0.0;
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    size_t jj = 0;
    for (; jj + 2 <= len; jj += 2) {
      const float64x2_t s = DotPair(net, j0 + jj, p, d);
      const float64x2_t m = vld1q_f64(smax + jj);
      vst1q_f64(smax + jj, vmaxq_f64(m, s));
    }
    for (; jj < len; ++jj) {
      const double s = DotDir(net, j0 + jj, p, d);
      if (s > smax[jj]) smax[jj] = s;
    }
  }
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t epsv = vdupq_n_f64(eps);
  float64x2_t mnv = one;
  size_t jj = 0;
  for (; jj + 2 <= len; jj += 2) {
    const float64x2_t h =
        HappinessPair(vld1q_f64(smax + jj), vld1q_f64(best + j0 + jj), epsv,
                      one);
    mnv = vminq_f64(mnv, h);
  }
  double mn = std::min(vgetq_lane_f64(mnv, 0), vgetq_lane_f64(mnv, 1));
  for (; jj < len; ++jj) {
    mn = std::min(mn, HappinessOf(smax[jj], best[j0 + jj], eps));
  }
  return mn;
}

void AddHappinessMaxNeon(const double* const* net, size_t j0, size_t j1,
                         const double* p, size_t d, const double* best,
                         double eps, double* cur) {
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t epsv = vdupq_n_f64(eps);
  size_t j = j0;
  for (; j + 2 <= j1; j += 2) {
    const float64x2_t h =
        HappinessPair(DotPair(net, j, p, d), vld1q_f64(best + j), epsv, one);
    const float64x2_t c = vld1q_f64(cur + j);
    vst1q_f64(cur + j, vmaxq_f64(c, h));
  }
  for (; j < j1; ++j) {
    const double h = HappinessOf(DotDir(net, j, p, d), best[j], eps);
    if (h > cur[j]) cur[j] = h;
  }
}

void MaxAccumulateNeon(const double* src, double* dst, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vmaxq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

inline float64x2_t TruncGainPairCached(const double* hrow, const double* cur,
                                       size_t j, float64x2_t tauv) {
  const float64x2_t c = vld1q_f64(cur + j);
  const float64x2_t h = vld1q_f64(hrow + j);
  const float64x2_t before = vminq_f64(c, tauv);
  const float64x2_t after = vminq_f64(vmaxq_f64(c, h), tauv);
  return vsubq_f64(after, before);
}

double TruncGainCachedNeon(const double* hrow, const double* cur, size_t n,
                           double tau) {
  const float64x2_t tauv = vdupq_n_f64(tau);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    acc01 = vaddq_f64(acc01, TruncGainPairCached(hrow, cur, j, tauv));
    acc23 = vaddq_f64(acc23, TruncGainPairCached(hrow, cur, j + 2, tauv));
  }
  double total = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
                 (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (size_t j = n4; j < n; ++j) {
    total += TruncGainTermCached(hrow, cur, j, tau);
  }
  return total;
}

inline float64x2_t TruncGainPairEval(const double* const* net,
                                     const double* p, size_t d,
                                     const double* best, float64x2_t epsv,
                                     float64x2_t one, const double* cur,
                                     size_t j, float64x2_t tauv) {
  const float64x2_t c = vld1q_f64(cur + j);
  const float64x2_t h =
      HappinessPair(DotPair(net, j, p, d), vld1q_f64(best + j), epsv, one);
  const float64x2_t before = vminq_f64(c, tauv);
  const float64x2_t after = vminq_f64(vmaxq_f64(c, h), tauv);
  return vsubq_f64(after, before);
}

double TruncGainEvalNeon(const double* const* net, size_t m, const double* p,
                         size_t d, const double* best, double eps,
                         const double* cur, double tau) {
  const float64x2_t tauv = vdupq_n_f64(tau);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t epsv = vdupq_n_f64(eps);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const size_t m4 = m & ~static_cast<size_t>(3);
  for (size_t j = 0; j < m4; j += 4) {
    acc01 = vaddq_f64(acc01,
                      TruncGainPairEval(net, p, d, best, epsv, one, cur, j,
                                        tauv));
    acc23 = vaddq_f64(acc23,
                      TruncGainPairEval(net, p, d, best, epsv, one, cur,
                                        j + 2, tauv));
  }
  double total = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
                 (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (size_t j = m4; j < m; ++j) {
    total += TruncGainTermEval(net, p, d, best, eps, cur, j, tau);
  }
  return total;
}

double TruncSumNeon(const double* cur, size_t n, double tau) {
  const float64x2_t tauv = vdupq_n_f64(tau);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    acc01 = vaddq_f64(acc01, vminq_f64(vld1q_f64(cur + j), tauv));
    acc23 = vaddq_f64(acc23, vminq_f64(vld1q_f64(cur + j + 2), tauv));
  }
  double total = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
                 (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (size_t j = n4; j < n; ++j) total += std::min(cur[j], tau);
  return total;
}

double MinReduceNeon(const double* x, size_t n) {
  float64x2_t mnv = vdupq_n_f64(1.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) mnv = vminq_f64(mnv, vld1q_f64(x + i));
  double mn = std::min(vgetq_lane_f64(mnv, 0), vgetq_lane_f64(mnv, 1));
  for (; i < n; ++i) mn = std::min(mn, x[i]);
  return mn;
}

void RowSumsNeon(const double* const* cols, size_t nrows, size_t d,
                 double* out) {
  size_t i = 0;
  for (; i + 2 <= nrows; i += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (size_t k = 0; k < d; ++k) {
      acc = vaddq_f64(acc, vld1q_f64(cols[k] + i));
    }
    vst1q_f64(out + i, acc);
  }
  for (; i < nrows; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < d; ++k) s += cols[k][i];
    out[i] = s;
  }
}

bool AnyDominatesNeon(const double* const* cols, size_t nrows, size_t d,
                      const double* p) {
  size_t r = 0;
  for (; r + 2 <= nrows; r += 2) {
    uint64x2_t ge = vdupq_n_u64(~0ULL);
    uint64x2_t gt = vdupq_n_u64(0);
    for (size_t k = 0; k < d; ++k) {
      const float64x2_t v = vld1q_f64(cols[k] + r);
      const float64x2_t pk = vdupq_n_f64(p[k]);
      ge = vandq_u64(ge, vcgeq_f64(v, pk));
      gt = vorrq_u64(gt, vcgtq_f64(v, pk));
      if (NoLane(ge)) break;
    }
    if (AnyLane(vandq_u64(ge, gt))) return true;
  }
  for (; r < nrows; ++r) {
    if (DominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

bool AnyWeakDominatesNeon(const double* const* cols, size_t nrows, size_t d,
                          const double* p) {
  size_t r = 0;
  for (; r + 2 <= nrows; r += 2) {
    uint64x2_t ge = vdupq_n_u64(~0ULL);
    for (size_t k = 0; k < d; ++k) {
      ge = vandq_u64(ge, vcgeq_f64(vld1q_f64(cols[k] + r),
                                   vdupq_n_f64(p[k])));
      if (NoLane(ge)) break;
    }
    if (AnyLane(ge)) return true;
  }
  for (; r < nrows; ++r) {
    if (WeaklyDominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

}  // namespace

const KernelTable* NeonKernels() {
  static const KernelTable table = {
      DispatchLevel::kNeon, NetBestNeon,        HappinessRangeNeon,
      MhrRangeNeon,         AddHappinessMaxNeon, MaxAccumulateNeon,
      TruncGainCachedNeon,  TruncGainEvalNeon,   TruncSumNeon,
      MinReduceNeon,        RowSumsNeon,         AnyDominatesNeon,
      AnyWeakDominatesNeon,
      ColMinMaxScalar,  // ±0.0 tie order; see simd.cc.
  };
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace fairhms

#else  // !defined(__aarch64__)

namespace fairhms {
namespace simd {
namespace internal {
const KernelTable* NeonKernels() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace fairhms

#endif
