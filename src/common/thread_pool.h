// Fixed-size worker pool with a blocked ParallelFor, the substrate of the
// parallel happiness-evaluation engine.
//
// Determinism contract: ParallelFor partitions [0, total) into contiguous
// blocks and runs each block exactly once. Callers that (a) write only to
// per-index slots, or (b) reduce with exact order-independent operations
// (min / max / argmax-by-index over a materialized array) get bit-identical
// results for every thread count, including the serial n = 1 path.

#ifndef FAIRHMS_COMMON_THREAD_POOL_H_
#define FAIRHMS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace fairhms {

/// A fixed set of worker threads fed from one task queue. Construction
/// spawns the workers; destruction drains and joins them. ParallelFor may
/// be called repeatedly (and concurrently from different threads); a call
/// issued from inside a worker runs serially on that worker, so nested
/// parallel sections cannot deadlock the pool.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is allowed: every ParallelFor then
  /// runs serially on the calling thread).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(begin, end) over contiguous blocks covering [0, total), at
  /// most `max_chunks` of them, using the workers plus the calling thread.
  /// Blocks until every block finished. The first exception thrown by any
  /// block is rethrown here (remaining blocks still run to completion).
  void ParallelFor(size_t total, size_t max_chunks,
                   const std::function<void(size_t, size_t)>& fn);

  /// Process-wide pool with HardwareThreads() - 1 workers (the caller is
  /// the extra lane), created on first use and never destroyed.
  static ThreadPool* Shared();

 private:
  struct ForState;

  void WorkerLoop();

  // Immutable after the constructor returns; the spawn/join pair gives the
  // happens-before edge, so workers_ needs no lock.
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ FAIRHMS_GUARDED_BY(mu_);
  bool shutdown_ FAIRHMS_GUARDED_BY(mu_) = false;
};

/// max(1, std::thread::hardware_concurrency()).
int HardwareThreads();

/// The process-wide default thread count used when a Threads(n) knob is
/// left at 0. Starts at HardwareThreads().
int DefaultThreads();

/// Overrides DefaultThreads(); n <= 0 resets to HardwareThreads(). This is
/// what --threads=N sets. Not synchronized with concurrently running
/// evaluations — set it up front.
void SetDefaultThreads(int n);

/// Maps a Threads(n) knob value to an effective count: n >= 1 is taken
/// as-is, n <= 0 means DefaultThreads().
int ResolveThreads(int n);

/// Blocked parallel loop over [0, total): fn(begin, end) on contiguous
/// blocks. `threads` follows the ResolveThreads convention; an effective
/// count of 1 (or total <= 1) degrades to the exact serial path
/// fn(0, total) on the calling thread, everything else fans out over
/// ThreadPool::Shared().
void ParallelFor(int threads, size_t total,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace fairhms

#endif  // FAIRHMS_COMMON_THREAD_POOL_H_
