#include "common/random.h"

#include <cassert>
#include <cstring>

namespace fairhms {

namespace {

inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

int Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  int k = 0;
  double prod = Uniform();
  while (prod > limit) {
    ++k;
    prod *= Uniform();
  }
  return k;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return 0;
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next64() ^ 0xA5A5A5A5DEADBEEFull); }

std::array<uint64_t, 6> Rng::StateKey() const {
  uint64_t normal_bits = 0;
  static_assert(sizeof(normal_bits) == sizeof(cached_normal_), "size");
  std::memcpy(&normal_bits, &cached_normal_, sizeof(normal_bits));
  return {state_[0], state_[1], state_[2], state_[3],
          have_cached_normal_ ? 1ull : 0ull,
          have_cached_normal_ ? normal_bits : 0ull};
}

}  // namespace fairhms
