// AVX2 kernel table. This translation unit is compiled with -mavx2 (and
// -ffp-contract=off) on x86-64 targets only, and its kernels are invoked
// solely behind the runtime dispatch in simd.cc after
// __builtin_cpu_supports("avx2") succeeds. Keep everything AVX2-touching
// inside this file.
//
// Four hardware lanes equal the four virtual lanes of the canonical sum
// order, so sum reductions are a plain vector accumulator plus the fixed
// (p0 + p1) + (p2 + p3) horizontal combine. No FMA anywhere: fused
// rounding would break bit-identity with the scalar reference.

#include "common/simd_kernels.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include <immintrin.h>

namespace fairhms {
namespace simd {
namespace internal {
namespace {

inline __m256d DotQuad(const double* const* net, size_t j, const double* p,
                       size_t d) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t k = 0; k < d; ++k) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_set1_pd(p[k]), _mm256_loadu_pd(net[k] + j)));
  }
  return acc;
}

/// Row-coordinate hoisting bound for the hot direction-swept kernels.
/// Re-broadcasting p[k] per direction quad costs more load-port uops than
/// the column loads themselves; the coordinates are invariant per row, so
/// the hot loops broadcast them once into a register array. Dimensions
/// beyond this (no shipped dataset comes close) fall back to DotQuad.
constexpr size_t kHoistDims = 16;

inline void BroadcastRow(const double* p, size_t d, __m256d* pk) {
  for (size_t k = 0; k < d; ++k) pk[k] = _mm256_set1_pd(p[k]);
}

/// Dot of one row against directions [j, j+4) from pre-broadcast coords.
inline __m256d DotQuadHoisted(const double* const* net, size_t j,
                              const __m256d* pk, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t k = 0; k < d; ++k) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(pk[k], _mm256_loadu_pd(net[k] + j)));
  }
  return acc;
}

/// Dots against directions [j, j+8): two independent accumulator chains,
/// so the sequential per-lane add chain (unchanged — bit-identity) no
/// longer serializes the loop on add latency. Each output still sums its
/// d terms in dimension order.
inline void DotOctHoisted(const double* const* net, size_t j,
                          const __m256d* pk, size_t d, __m256d* s0,
                          __m256d* s1) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  for (size_t k = 0; k < d; ++k) {
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(pk[k], _mm256_loadu_pd(net[k] + j)));
    a1 = _mm256_add_pd(a1,
                       _mm256_mul_pd(pk[k], _mm256_loadu_pd(net[k] + j + 4)));
  }
  *s0 = a0;
  *s1 = a1;
}

/// best > eps ? min(1, s / best) : 1, with a blended-safe denominator so
/// inactive lanes never divide by zero.
inline __m256d HappinessQuad(__m256d s, __m256d b, __m256d epsv, __m256d one) {
  const __m256d active = _mm256_cmp_pd(b, epsv, _CMP_GT_OQ);
  const __m256d safe = _mm256_blendv_pd(one, b, active);
  const __m256d q = _mm256_min_pd(_mm256_div_pd(s, safe), one);
  return _mm256_blendv_pd(one, q, active);
}

/// The canonical (p0 + p1) + (p2 + p3) horizontal combine.
inline double CanonicalSum(__m256d acc) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void NetBestAvx2(const double* const* net, size_t j0, size_t j1,
                 const double* pts, size_t nrows, size_t d, double* best) {
  __m256d pk[kHoistDims];
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    size_t j = j0;
    if (d <= kHoistDims) {
      BroadcastRow(p, d, pk);
      for (; j + 8 <= j1; j += 8) {
        __m256d s0, s1;
        DotOctHoisted(net, j, pk, d, &s0, &s1);
        _mm256_storeu_pd(best + j,
                         _mm256_max_pd(_mm256_loadu_pd(best + j), s0));
        _mm256_storeu_pd(best + j + 4,
                         _mm256_max_pd(_mm256_loadu_pd(best + j + 4), s1));
      }
      for (; j + 4 <= j1; j += 4) {
        const __m256d s = DotQuadHoisted(net, j, pk, d);
        const __m256d b = _mm256_loadu_pd(best + j);
        _mm256_storeu_pd(best + j, _mm256_max_pd(b, s));
      }
    }
    for (; j + 4 <= j1; j += 4) {
      const __m256d s = DotQuad(net, j, p, d);
      const __m256d b = _mm256_loadu_pd(best + j);
      _mm256_storeu_pd(best + j, _mm256_max_pd(b, s));
    }
    for (; j < j1; ++j) {
      const double s = DotDir(net, j, p, d);
      if (s > best[j]) best[j] = s;
    }
  }
}

void HappinessRangeAvx2(const double* const* net, size_t j0, size_t j1,
                        const double* p, size_t d, const double* best,
                        double eps, double* out) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d epsv = _mm256_set1_pd(eps);
  size_t j = j0;
  if (d <= kHoistDims) {
    __m256d pk[kHoistDims];
    BroadcastRow(p, d, pk);
    for (; j + 8 <= j1; j += 8) {
      __m256d s0, s1;
      DotOctHoisted(net, j, pk, d, &s0, &s1);
      _mm256_storeu_pd(
          out + j, HappinessQuad(s0, _mm256_loadu_pd(best + j), epsv, one));
      _mm256_storeu_pd(
          out + j + 4,
          HappinessQuad(s1, _mm256_loadu_pd(best + j + 4), epsv, one));
    }
    for (; j + 4 <= j1; j += 4) {
      const __m256d s = DotQuadHoisted(net, j, pk, d);
      const __m256d b = _mm256_loadu_pd(best + j);
      _mm256_storeu_pd(out + j, HappinessQuad(s, b, epsv, one));
    }
  }
  for (; j + 4 <= j1; j += 4) {
    const __m256d s = DotQuad(net, j, p, d);
    const __m256d b = _mm256_loadu_pd(best + j);
    _mm256_storeu_pd(out + j, HappinessQuad(s, b, epsv, one));
  }
  for (; j < j1; ++j) {
    out[j] = HappinessOf(DotDir(net, j, p, d), best[j], eps);
  }
}

double MhrRangeAvx2(const double* const* net, size_t j0, size_t j1,
                    const double* best, double eps, const double* pts,
                    size_t nrows, size_t d) {
  alignas(kAlign) double smax[kDirTile];
  const size_t len = j1 - j0;
  for (size_t jj = 0; jj < len; ++jj) smax[jj] = 0.0;
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    size_t jj = 0;
    if (d <= kHoistDims) {
      __m256d pk[kHoistDims];
      BroadcastRow(p, d, pk);
      for (; jj + 8 <= len; jj += 8) {
        __m256d s0, s1;
        DotOctHoisted(net, j0 + jj, pk, d, &s0, &s1);
        _mm256_store_pd(smax + jj,
                        _mm256_max_pd(_mm256_load_pd(smax + jj), s0));
        _mm256_store_pd(smax + jj + 4,
                        _mm256_max_pd(_mm256_load_pd(smax + jj + 4), s1));
      }
    }
    for (; jj + 4 <= len; jj += 4) {
      const __m256d s = DotQuad(net, j0 + jj, p, d);
      const __m256d m = _mm256_load_pd(smax + jj);
      _mm256_store_pd(smax + jj, _mm256_max_pd(m, s));
    }
    for (; jj < len; ++jj) {
      const double s = DotDir(net, j0 + jj, p, d);
      if (s > smax[jj]) smax[jj] = s;
    }
  }
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d epsv = _mm256_set1_pd(eps);
  __m256d mnv = one;
  size_t jj = 0;
  for (; jj + 4 <= len; jj += 4) {
    const __m256d h = HappinessQuad(_mm256_load_pd(smax + jj),
                                    _mm256_loadu_pd(best + j0 + jj), epsv,
                                    one);
    mnv = _mm256_min_pd(mnv, h);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, mnv);
  double mn = std::min(std::min(lanes[0], lanes[1]),
                       std::min(lanes[2], lanes[3]));
  for (; jj < len; ++jj) {
    mn = std::min(mn, HappinessOf(smax[jj], best[j0 + jj], eps));
  }
  return mn;
}

void AddHappinessMaxAvx2(const double* const* net, size_t j0, size_t j1,
                         const double* p, size_t d, const double* best,
                         double eps, double* cur) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d epsv = _mm256_set1_pd(eps);
  size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    const __m256d h = HappinessQuad(DotQuad(net, j, p, d),
                                    _mm256_loadu_pd(best + j), epsv, one);
    const __m256d c = _mm256_loadu_pd(cur + j);
    _mm256_storeu_pd(cur + j, _mm256_max_pd(c, h));
  }
  for (; j < j1; ++j) {
    const double h = HappinessOf(DotDir(net, j, p, d), best[j], eps);
    if (h > cur[j]) cur[j] = h;
  }
}

void MaxAccumulateAvx2(const double* src, double* dst, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d t = _mm256_loadu_pd(dst + i);
    _mm256_storeu_pd(dst + i, _mm256_max_pd(t, s));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

double TruncGainCachedAvx2(const double* hrow, const double* cur, size_t n,
                           double tau) {
  const __m256d tauv = _mm256_set1_pd(tau);
  __m256d acc = _mm256_setzero_pd();
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    const __m256d c = _mm256_loadu_pd(cur + j);
    const __m256d h = _mm256_loadu_pd(hrow + j);
    const __m256d before = _mm256_min_pd(c, tauv);
    const __m256d after = _mm256_min_pd(_mm256_max_pd(c, h), tauv);
    acc = _mm256_add_pd(acc, _mm256_sub_pd(after, before));
  }
  double total = CanonicalSum(acc);
  for (size_t j = n4; j < n; ++j) {
    total += TruncGainTermCached(hrow, cur, j, tau);
  }
  return total;
}

double TruncGainEvalAvx2(const double* const* net, size_t m, const double* p,
                         size_t d, const double* best, double eps,
                         const double* cur, double tau) {
  const __m256d tauv = _mm256_set1_pd(tau);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d epsv = _mm256_set1_pd(eps);
  __m256d acc = _mm256_setzero_pd();
  const size_t m4 = m & ~static_cast<size_t>(3);
  for (size_t j = 0; j < m4; j += 4) {
    const __m256d c = _mm256_loadu_pd(cur + j);
    const __m256d h = HappinessQuad(DotQuad(net, j, p, d),
                                    _mm256_loadu_pd(best + j), epsv, one);
    const __m256d before = _mm256_min_pd(c, tauv);
    const __m256d after = _mm256_min_pd(_mm256_max_pd(c, h), tauv);
    acc = _mm256_add_pd(acc, _mm256_sub_pd(after, before));
  }
  double total = CanonicalSum(acc);
  for (size_t j = m4; j < m; ++j) {
    total += TruncGainTermEval(net, p, d, best, eps, cur, j, tau);
  }
  return total;
}

double TruncSumAvx2(const double* cur, size_t n, double tau) {
  const __m256d tauv = _mm256_set1_pd(tau);
  __m256d acc = _mm256_setzero_pd();
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    acc = _mm256_add_pd(acc, _mm256_min_pd(_mm256_loadu_pd(cur + j), tauv));
  }
  double total = CanonicalSum(acc);
  for (size_t j = n4; j < n; ++j) total += std::min(cur[j], tau);
  return total;
}

double MinReduceAvx2(const double* x, size_t n) {
  __m256d mnv = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) mnv = _mm256_min_pd(mnv, _mm256_loadu_pd(x + i));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, mnv);
  double mn = std::min(std::min(lanes[0], lanes[1]),
                       std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) mn = std::min(mn, x[i]);
  return mn;
}

void RowSumsAvx2(const double* const* cols, size_t nrows, size_t d,
                 double* out) {
  size_t i = 0;
  for (; i + 4 <= nrows; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = 0; k < d; ++k) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(cols[k] + i));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < nrows; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < d; ++k) s += cols[k][i];
    out[i] = s;
  }
}

bool AnyDominatesAvx2(const double* const* cols, size_t nrows, size_t d,
                      const double* p) {
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi32(-1));
  size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    __m256d ge = ones;
    __m256d gt = _mm256_setzero_pd();
    for (size_t k = 0; k < d; ++k) {
      const __m256d v = _mm256_loadu_pd(cols[k] + r);
      const __m256d pk = _mm256_set1_pd(p[k]);
      ge = _mm256_and_pd(ge, _mm256_cmp_pd(v, pk, _CMP_GE_OQ));
      gt = _mm256_or_pd(gt, _mm256_cmp_pd(v, pk, _CMP_GT_OQ));
      if (_mm256_movemask_pd(ge) == 0) break;
    }
    if (_mm256_movemask_pd(_mm256_and_pd(ge, gt)) != 0) return true;
  }
  for (; r < nrows; ++r) {
    if (DominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

bool AnyWeakDominatesAvx2(const double* const* cols, size_t nrows, size_t d,
                          const double* p) {
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi32(-1));
  size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    __m256d ge = ones;
    for (size_t k = 0; k < d; ++k) {
      const __m256d v = _mm256_loadu_pd(cols[k] + r);
      ge = _mm256_and_pd(ge, _mm256_cmp_pd(v, _mm256_set1_pd(p[k]),
                                           _CMP_GE_OQ));
      if (_mm256_movemask_pd(ge) == 0) break;
    }
    if (_mm256_movemask_pd(ge) != 0) return true;
  }
  for (; r < nrows; ++r) {
    if (WeaklyDominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const KernelTable table = {
      DispatchLevel::kAvx2, NetBestAvx2,        HappinessRangeAvx2,
      MhrRangeAvx2,         AddHappinessMaxAvx2, MaxAccumulateAvx2,
      TruncGainCachedAvx2,  TruncGainEvalAvx2,   TruncSumAvx2,
      MinReduceAvx2,        RowSumsAvx2,         AnyDominatesAvx2,
      AnyWeakDominatesAvx2,
      ColMinMaxScalar,  // ±0.0 tie order; see simd.cc.
  };
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace fairhms

#else  // Non-x86-64 build or AVX2 not enabled for this TU.

namespace fairhms {
namespace simd {
namespace internal {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace fairhms

#endif
