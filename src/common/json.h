// Minimal JSON layer of the FairHMS library: a value tree + parser (moved
// up from tools/cli_util, where it served only the --queries batch driver)
// and a deterministic writer.
//
// This is the wire format of the serving surface — api/protocol.h builds
// the versioned request/response envelope on top of it, and both the
// fairhms_cli batch driver and the fairhms_serve daemon speak it — so it
// lives in common/, not in the tools. Scope is deliberately small: the
// JSON core only (objects, arrays, strings, numbers, booleans, null; no
// comments, no NaN/Infinity), which is exactly what newline-delimited
// request streams need.
//
// Writer determinism: WriteJson and JsonWriter emit one canonical byte
// sequence per value — object members in insertion order, numbers via
// %.17g (round-trip exact for doubles), `", "` / `": "` separators — so
// responses can be compared byte-for-byte across runs, threads and
// transports.

#ifndef FAIRHMS_COMMON_JSON_H_
#define FAIRHMS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace fairhms {

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes added).
std::string JsonEscape(const std::string& s);

/// JSON value tree: objects, arrays, strings, numbers, booleans and null.
/// Object member order is preserved; duplicate keys keep the last
/// occurrence (Find returns it).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key (last occurrence), or nullptr when absent or not
  /// an object.
  const JsonValue* Find(const std::string& key) const;

  /// The value as a whole-number int64 — error when not a number or not
  /// integral (e.g. 2.5 where a count is expected).
  StatusOr<int64_t> AsInt64() const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the whole input; trailing garbage is an
/// error). Supports the JSON core: no comments, no NaN/Infinity literals.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Serializes a value tree deterministically (see the header comment).
std::string WriteJson(const JsonValue& value);

/// Streaming builder for JSON documents with the same spacing WriteJson
/// uses (`{"a": 1, "b": [2, 3]}`), plus formatting control the protocol
/// envelope needs: Double emits %.17g (bit round-trip), Fixed emits %.*f
/// (human-scale timings), Raw splices a pre-rendered fragment. The builder
/// trusts its caller to call Key exactly once before every object value;
/// it asserts nothing and simply concatenates, so misuse yields malformed
/// JSON rather than UB.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Emits the member separator (when needed) plus `"name": `.
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(const std::string& v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  /// %.17g, or null when not finite (JSON has no NaN/Infinity).
  JsonWriter& Double(double v);
  /// %.*f with `precision` digits, or null when not finite.
  JsonWriter& Fixed(double v, int precision);
  /// Splices `fragment` verbatim as one value (caller guarantees validity).
  JsonWriter& Raw(std::string_view fragment);

  const std::string& str() const { return out_; }
  /// Moves the built document out; the writer is spent afterwards.
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One flag per open container: true once it holds a value (so the next
  /// one is prefixed with ", ").
  std::vector<bool> has_value_;
  bool after_key_ = false;
};

}  // namespace fairhms

#endif  // FAIRHMS_COMMON_JSON_H_
