// Small string helpers shared by the CSV reader and the bench harnesses.

#ifndef FAIRHMS_COMMON_STRING_UTIL_H_
#define FAIRHMS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairhms {

/// Splits `s` on `delim`. Keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins elements with `sep` using operator<< semantics for strings.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace fairhms

#endif  // FAIRHMS_COMMON_STRING_UTIL_H_
