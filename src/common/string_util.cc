#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>

namespace fairhms {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace fairhms
