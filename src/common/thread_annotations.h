// Clang Thread Safety Analysis support: annotation macros plus annotated
// mutex / lock-scope / condition-variable wrappers over the <mutex> and
// <shared_mutex> primitives. See docs/concurrency.md for the lock inventory
// and the rules for annotating new concurrent code.
//
// Under clang the macros expand to the thread-safety attributes and the CI
// clang legs compile with -Werror=thread-safety, so an access to a
// FAIRHMS_GUARDED_BY member without its lock is a build error (the
// negative-compilation test tests/negative/ proves the check is live).
// Under every other compiler they expand to nothing, keeping the
// -Wall -Wextra -Werror gcc baseline clean.

#ifndef FAIRHMS_COMMON_THREAD_ANNOTATIONS_H_
#define FAIRHMS_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define FAIRHMS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FAIRHMS_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (mutexes below).
#define FAIRHMS_CAPABILITY(x) FAIRHMS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define FAIRHMS_SCOPED_CAPABILITY FAIRHMS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define FAIRHMS_GUARDED_BY(x) FAIRHMS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define FAIRHMS_PT_GUARDED_BY(x) FAIRHMS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares lock-ordering edges; enforced under -Wthread-safety-beta,
/// documentation otherwise. List every mutex legally acquired while this
/// one is held.
#define FAIRHMS_ACQUIRED_BEFORE(...) \
  FAIRHMS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FAIRHMS_ACQUIRED_AFTER(...) \
  FAIRHMS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function precondition: caller must hold the mutex(es) exclusively /
/// shared. The function does not release them.
#define FAIRHMS_REQUIRES(...) \
  FAIRHMS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FAIRHMS_REQUIRES_SHARED(...) \
  FAIRHMS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the mutex(es) itself.
#define FAIRHMS_ACQUIRE(...) \
  FAIRHMS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FAIRHMS_ACQUIRE_SHARED(...) \
  FAIRHMS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FAIRHMS_RELEASE(...) \
  FAIRHMS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FAIRHMS_RELEASE_SHARED(...) \
  FAIRHMS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FAIRHMS_RELEASE_GENERIC(...) \
  FAIRHMS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define FAIRHMS_TRY_ACQUIRE(...) \
  FAIRHMS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT the mutex(es) held (it acquires them
/// internally; calling with one held would self-deadlock).
#define FAIRHMS_EXCLUDES(...) \
  FAIRHMS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define FAIRHMS_ASSERT_CAPABILITY(x) \
  FAIRHMS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given mutex.
#define FAIRHMS_RETURN_CAPABILITY(x) FAIRHMS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment explaining why the code is correct anyway.
#define FAIRHMS_NO_THREAD_SAFETY_ANALYSIS \
  FAIRHMS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fairhms {

class CondVar;

/// std::mutex annotated as a capability. Lock it through MutexLock; the raw
/// lock()/unlock() exist for the rare hand-over-hand or adopt cases.
class FAIRHMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FAIRHMS_ACQUIRE() { mu_.lock(); }
  void unlock() FAIRHMS_RELEASE() { mu_.unlock(); }
  bool try_lock() FAIRHMS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex annotated as a capability: exclusive writers, shared
/// readers. Lock through WriterMutexLock / ReaderMutexLock.
class FAIRHMS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FAIRHMS_ACQUIRE() { mu_.lock(); }
  void unlock() FAIRHMS_RELEASE() { mu_.unlock(); }
  void lock_shared() FAIRHMS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() FAIRHMS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex. The reference form exists so mutexes
/// held through std::unique_ptr can be locked as `MutexLock lock(*mu_)`,
/// which keeps the capability expression equal to the `*mu_` spelling used
/// in FAIRHMS_GUARDED_BY.
class FAIRHMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FAIRHMS_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  explicit MutexLock(Mutex& mu) FAIRHMS_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() FAIRHMS_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock on a SharedMutex.
class FAIRHMS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) FAIRHMS_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  explicit WriterMutexLock(SharedMutex& mu) FAIRHMS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterMutexLock() FAIRHMS_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex. The destructor uses the
/// generic release form, the documented pattern for shared scoped locks.
class FAIRHMS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) FAIRHMS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  explicit ReaderMutexLock(SharedMutex& mu) FAIRHMS_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() FAIRHMS_RELEASE_GENERIC() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with Mutex. Wait takes the Mutex directly (the
/// caller annotates the surrounding scope, so the analysis sees the lock as
/// continuously held across the wait — which is the caller-visible truth).
/// There is deliberately no predicate overload: a predicate lambda reading
/// guarded state would be analyzed as an unannotated function and rejected;
/// write the `while (!cond) cv.Wait(mu);` loop in the annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it before returning.
  ///
  /// The wait is capped at 100 ms, not because callers want a timeout but
  /// because glibc's pthread_cond_signal (through at least 2.36; upstream
  /// bug 25847, fixed in 2.39) can lose a wakeup raced against a
  /// group-switching waiter — observed on this very codebase as a served
  /// request sitting in the admission queue with every worker asleep. The
  /// cap turns that lost notification into one extra trip around the
  /// caller's predicate loop instead of a hang; an idle waiter re-checking
  /// 10x/s costs nothing measurable.
  void Wait(Mutex& mu) FAIRHMS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait_for(lock, std::chrono::milliseconds(100));
    lock.release();  // The caller's scope still owns the mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fairhms

#endif  // FAIRHMS_COMMON_THREAD_ANNOTATIONS_H_
