// StatusOr<T>: either a value or an error Status.

#ifndef FAIRHMS_COMMON_STATUSOR_H_
#define FAIRHMS_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fairhms {

/// Either holds a T (when status().ok()) or a non-OK Status.
///
/// Accessing value() on an error StatusOr is a programming error and aborts
/// in debug builds; callers must check ok() first (or use value_or()).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit on purpose, mirrors absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error. Passing an OK status here is a bug and is
  /// converted into an Internal error to keep the invariant.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fairhms

/// Assigns the value of a StatusOr expression to `lhs` or early-returns the
/// error. Usage: FAIRHMS_ASSIGN_OR_RETURN(auto x, MakeX());
#define FAIRHMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define FAIRHMS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define FAIRHMS_ASSIGN_OR_RETURN_NAME(a, b) FAIRHMS_ASSIGN_OR_RETURN_CONCAT(a, b)
#define FAIRHMS_ASSIGN_OR_RETURN(lhs, expr)                                    \
  FAIRHMS_ASSIGN_OR_RETURN_IMPL(                                               \
      FAIRHMS_ASSIGN_OR_RETURN_NAME(_statusor_, __LINE__), lhs, expr)

#endif  // FAIRHMS_COMMON_STATUSOR_H_
