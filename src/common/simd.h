// Vectorized happiness kernels with runtime CPU dispatch.
//
// This is the data-parallel floor of the evaluation stack: a
// structure-of-arrays block type (`ColumnBlock`) plus flat-range kernels
// over it (dot/max/min reductions, truncated-gain sums, Pareto-dominance
// tests). Every kernel has a scalar reference implementation and, where the
// build targets support it, SSE2 / AVX2 / NEON implementations selected
// once at startup by CPU detection (`DispatchLevel`).
//
// Bit-identity contract
// ---------------------
// All implementations of a kernel produce *bitwise identical* results on
// the same inputs. This is what lets the determinism, warm-vs-cold and
// serve-replay suites pass regardless of the host CPU or the
// `FAIRHMS_SIMD` setting. It is achieved by construction, not tolerance:
//
//  * Per-element kernels vectorize across independent outputs (one net
//    direction per SIMD lane); each lane evaluates the exact scalar
//    expression chain, so lane width cannot change results.
//  * Dot products accumulate over dimensions sequentially per lane —
//    the same chain as `Dot()` in geom/vec.h.
//  * min/max reductions are order-independent for the value domain
//    (finite, non-NaN, and sums of non-negative products are never -0.0).
//  * Sum reductions (`TruncGain*`, `TruncSum`) use one fixed reduction
//    order on every path: four virtual accumulator lanes striped
//    j % 4, combined as (p0 + p1) + (p2 + p3), with the tail (n % 4)
//    added sequentially afterwards. The scalar path simulates the same
//    four lanes.
//  * No FMA, ever — fused multiply-add rounds differently than mul+add.
//    The kernel translation units are compiled with -ffp-contract=off so
//    the compiler cannot contract on its own.
//
// Input contract: coordinates and net directions are finite and
// non-negative (Dataset::Validate and UtilityNet enforce this); `best`
// denominators are >= 0. Kernels do not handle NaN.
//
// Threading: kernels are pure functions over their arguments. Dispatch
// state is a single atomic pointer; `SetMode()` may be called at any time
// (results are bit-identical either way), though the intended use is once
// at startup. The only lock in this layer guards the scratch-buffer pool
// (an annotated Mutex in simd.cc); everything else is lock-free.

#ifndef FAIRHMS_COMMON_SIMD_H_
#define FAIRHMS_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace fairhms {
namespace simd {

// ---------------------------------------------------------------------------
// Layout constants.

/// Bump when the SoA layout or kernel reduction orders change in a way that
/// invalidates cached evaluator artifacts.
constexpr int kLayoutVersion = 1;

/// Column padding granularity, in rows (64 bytes of doubles).
constexpr size_t kPadRows = 8;

/// Alignment of every column allocation, in bytes (one cache line).
constexpr size_t kAlign = 64;

/// Direction-tile width for L1 blocking. One tile of a d=8 net is
/// 8 * kDirTile * 8B = 32 KiB of columns at most; the common d=6 case plus
/// a best[] tile and an output tile stays L1-resident while candidate rows
/// stream through. Callers partition [0, m) into kDirTile chunks; kernels
/// accept arbitrary flat ranges.
constexpr size_t kDirTile = 512;

/// Virtual accumulator lanes of the canonical sum-reduction order. Fixed
/// across all dispatch levels (AVX2 uses exactly 4 hardware lanes; SSE2 and
/// NEON pair two 2-lane accumulators; scalar simulates all four).
constexpr size_t kSumLanes = 4;

// ---------------------------------------------------------------------------
// Aligned storage.

/// Minimal C++17 aligned allocator (std::allocator ignores
/// over-aligned-on-purpose requests pre-C++17 semantics we don't want to
/// rely on across toolchains).
template <typename T, size_t Align = kAlign>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}
  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
};
template <typename T, typename U, size_t A>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) {
  return true;
}
template <typename T, typename U, size_t A>
bool operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) {
  return false;
}

using AlignedVector = std::vector<double, AlignedAllocator<double>>;

// ---------------------------------------------------------------------------
// Pooled scratch storage.

/// Cache-line-aligned double buffer for bulk matrices whose every cell the
/// fill kernels overwrite (e.g. the candidate-happiness cache). Two
/// deliberate differences from AlignedVector:
///
///  * ResizeUninitialized() does not zero-fill. Zeroing a 100+ MB matrix
///    that the very next kernel pass overwrites doubles the write traffic
///    for nothing.
///  * Freed allocations are recycled through a small, bounded,
///    process-wide pool (see simd.cc), so rebuilding an evaluator does not
///    re-pay the page-fault cost of a buffer an evicted evaluator just
///    released — first-touch faults on a fresh 160 MB allocation cost more
///    than the fill kernels themselves.
///
/// Callers must write every cell they later read; reading an
/// uninitialized cell is a bug this class makes possible, which is why it
/// is not a general-purpose container.
class ScratchBuffer {
 public:
  ScratchBuffer() = default;
  ~ScratchBuffer() { Release(); }
  ScratchBuffer(ScratchBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  ScratchBuffer& operator=(ScratchBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
    }
    return *this;
  }
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  /// Sizes the buffer to n doubles with UNINITIALIZED contents (both on
  /// growth and on reuse of the current allocation). Reuses the current or
  /// a pooled allocation when one is large enough.
  void ResizeUninitialized(size_t n);

  /// Returns the allocation to the pool (or frees it when the pool is
  /// full) and empties the buffer.
  void Release();

  double* data() { return data_; }
  const double* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double& operator[](size_t i) { return data_[i]; }
  const double& operator[](size_t i) const { return data_[i]; }

 private:
  double* data_ = nullptr;
  size_t size_ = 0;  // Doubles, as sized by the caller.
  size_t cap_ = 0;   // Doubles, as allocated (>= size_).
};

/// Bytes currently held idle in the scratch pool. Idle scratch is bounded
/// (kScratchPoolMaxBytes in simd.cc) and sits outside the artifact-cache
/// byte accounting, which only tracks live evaluator state.
size_t ScratchPoolIdleBytes();

/// Frees every idle pooled allocation. Memory-pressure and test hook.
void ScratchPoolTrim();

// ---------------------------------------------------------------------------
// ColumnBlock: a dimension-major (structure-of-arrays) coordinate block.

/// `dim` cache-line-aligned columns of `rows` doubles each, padded with
/// zeros to a multiple of kPadRows. Kernels read columns via `cols()`, an
/// array of `dim` pointers. Padding exists for allocation/alignment slack
/// only — kernels handle tails explicitly and never read padded lanes for
/// semantics (a zero pad row would otherwise fake a dominance witness).
class ColumnBlock {
 public:
  ColumnBlock() = default;
  explicit ColumnBlock(int dim) : dim_(dim), cols_(static_cast<size_t>(dim)) {
    RefreshPtrs();
  }

  int dim() const { return dim_; }
  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Logical padded extent: rows() rounded up to kPadRows; entries in
  /// [rows(), padded_rows()) are zero.
  size_t padded_rows() const { return RoundUp(rows_); }

  void Clear() {
    rows_ = 0;
    for (auto& c : cols_) c.clear();
    RefreshPtrs();
  }

  void Reserve(size_t rows) {
    const size_t cap = RoundUp(rows);
    for (auto& c : cols_) c.reserve(cap);
  }

  /// Appends one row (p[0..dim)). Amortized O(dim).
  void Append(const double* p) {
    EnsureCapacity(rows_ + 1);
    for (int j = 0; j < dim_; ++j) cols_[static_cast<size_t>(j)][rows_] = p[j];
    ++rows_;
  }

  /// Sizes the block to `rows` rows (zero-filled, padded); fill columns via
  /// mutable_col(). Used by bulk gather paths.
  void ResizeRows(size_t rows) {
    const size_t cap = RoundUp(rows);
    for (auto& c : cols_) c.assign(cap, 0.0);
    rows_ = rows;
    RefreshPtrs();
  }

  const double* col(int j) const { return cols_[static_cast<size_t>(j)].data(); }
  double* mutable_col(int j) { return cols_[static_cast<size_t>(j)].data(); }

  /// Array of dim() column pointers, stable until the next mutation.
  const double* const* cols() const { return ptrs_.data(); }

  size_t bytes() const {
    size_t b = ptrs_.capacity() * sizeof(const double*);
    for (const auto& c : cols_) b += c.capacity() * sizeof(double);
    return b;
  }

 private:
  static size_t RoundUp(size_t n) {
    return (n + kPadRows - 1) / kPadRows * kPadRows;
  }

  void EnsureCapacity(size_t rows) {
    const size_t need = RoundUp(rows);
    if (!cols_.empty() && cols_[0].size() >= need) return;
    size_t cap = cols_.empty() ? need : cols_[0].size();
    if (cap < kPadRows) cap = kPadRows;
    while (cap < need) cap *= 2;
    for (auto& c : cols_) c.resize(cap, 0.0);
    RefreshPtrs();
  }

  void RefreshPtrs() {
    ptrs_.resize(static_cast<size_t>(dim_));
    for (int j = 0; j < dim_; ++j) {
      ptrs_[static_cast<size_t>(j)] = cols_[static_cast<size_t>(j)].data();
    }
  }

  int dim_ = 0;
  size_t rows_ = 0;
  std::vector<AlignedVector> cols_;
  std::vector<const double*> ptrs_;
};

// ---------------------------------------------------------------------------
// Runtime dispatch.

enum class DispatchLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };
enum class SimdMode { kAuto = 0, kOff = 1 };

/// Parses "auto" / "off" (exact, lowercase). Any other value is refused.
StatusOr<SimdMode> ParseSimdMode(const std::string& text);

/// Validates FAIRHMS_SIMD (unset/empty counts as "auto") without changing
/// state. Tools call this early to refuse bad environments with a clean
/// error; if they don't, lazy initialization warns once on stderr and runs
/// in auto mode.
Status ValidateSimdEnv();

/// Pins the dispatch mode process-wide. kOff forces the scalar reference
/// path. Results are bit-identical in either mode.
void SetMode(SimdMode mode);
SimdMode Mode();

/// Best level the host CPU supports (independent of Mode()).
DispatchLevel DetectedLevel();

/// Level actually used by kernel calls right now (kScalar when Mode() is
/// kOff).
DispatchLevel ActiveLevel();

const char* DispatchLevelName(DispatchLevel level);
const char* SimdModeName(SimdMode mode);

/// Cache-key component: layout version and active dispatch level. Cached
/// evaluator artifacts are keyed on this so a layout change or mode flip
/// can never serve stale precomputes (results are bit-identical across
/// levels, so this is conservative, not load-bearing).
uint32_t LayoutKey();

// ---------------------------------------------------------------------------
// Kernels. All take flat ranges; callers tile with kDirTile where blocking
// matters. `cols` always has `d` column pointers; direction-indexed kernels
// read cols[dim][j], row-indexed kernels read cols[dim][row].

/// best[j] = max(best[j], <u_j, p_r>) for every packed row r, j in [j0, j1).
/// `net` columns are direction-major (net.rows() == direction count);
/// `pts` is a dense row-major block of nrows * d coordinates.
void NetBestRange(const double* const* net, size_t j0, size_t j1,
                  const double* pts, size_t nrows, size_t d, double* best);

/// out[j] = best[j] <= eps ? 1.0 : min(1.0, <u_j, p> / best[j]),
/// for j in [j0, j1).
void HappinessRange(const double* const* net, size_t j0, size_t j1,
                    const double* p, size_t d, const double* best, double eps,
                    double* out);

/// min over j in [j0, j1) of hr(u_j, pts) where
/// hr = best[j] <= eps ? 1.0 : min(1.0, (max_r <u_j, p_r>) / best[j]).
/// Requires j1 - j0 <= kDirTile (callers tile). Bitwise equal to the
/// per-row-division formulation: division by a positive constant is
/// monotone and max selects an element, so max_r min(1, s_r / b) ==
/// min(1, (max_r s_r) / b) exactly.
double MhrRange(const double* const* net, size_t j0, size_t j1,
                const double* best, double eps, const double* pts,
                size_t nrows, size_t d);

/// cur[j] = max(cur[j], happiness_j(p)) for j in [j0, j1) (uncached Add).
void AddHappinessMax(const double* const* net, size_t j0, size_t j1,
                     const double* p, size_t d, const double* best, double eps,
                     double* cur);

/// dst[i] = max(dst[i], src[i]) for i in [0, n).
void MaxAccumulate(const double* src, double* dst, size_t n);

/// Canonical-order sum of min(max(cur[j], hrow[j]), tau) - min(cur[j], tau).
double TruncGainCached(const double* hrow, const double* cur, size_t n,
                       double tau);

/// Same gain, computing happiness on the fly (no scratch, canonical order).
double TruncGainEval(const double* const* net, size_t m, const double* p,
                     size_t d, const double* best, double eps,
                     const double* cur, double tau);

/// Canonical-order sum of min(cur[j], tau).
double TruncSum(const double* cur, size_t n, double tau);

/// Exact minimum of x[0..n); 1.0 when n == 0 (mhr convention).
double MinReduce(const double* x, size_t n);

/// out[i] = sum over dims of cols[dim][i], accumulated in dimension order
/// per row — the exact SumCoords() chain.
void RowSums(const double* const* cols, size_t nrows, size_t d, double* out);

/// True iff some row r of the block strictly Pareto-dominates p:
/// cols[*][r] >= p[*] everywhere and > somewhere.
bool AnyDominates(const double* const* cols, size_t nrows, size_t d,
                  const double* p);

/// True iff some row r weakly dominates p: cols[*][r] >= p[*] everywhere.
bool AnyWeaklyDominates(const double* const* cols, size_t nrows, size_t d,
                        const double* p);

/// Min and max of x[0..n). No-op (outputs untouched) when n == 0.
void ColMinMax(const double* x, size_t n, double* mn, double* mx);

}  // namespace simd
}  // namespace fairhms

#endif  // FAIRHMS_COMMON_SIMD_H_
