#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/simd_kernels.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define FAIRHMS_SIMD_HAVE_SSE2 1
#endif

namespace fairhms {
namespace simd {

namespace internal {

// ---------------------------------------------------------------------------
// Scalar table: the reference semantics, verbatim from simd_kernels.h.

const KernelTable* ScalarKernels() {
  static const KernelTable table = {
      DispatchLevel::kScalar, NetBestScalar,        HappinessRangeScalar,
      MhrRangeScalar,         AddHappinessMaxScalar, MaxAccumulateScalar,
      TruncGainCachedScalar,  TruncGainEvalScalar,   TruncSumScalar,
      MinReduceScalar,        RowSumsScalar,         AnyDominatesScalar,
      AnyWeakDominatesScalar, ColMinMaxScalar,
  };
  return &table;
}

// ---------------------------------------------------------------------------
// SSE2 table (x86-64 baseline). Two hardware lanes; the canonical
// four-virtual-lane sums pair two accumulators so the reduction order
// matches the scalar simulation exactly.

#ifdef FAIRHMS_SIMD_HAVE_SSE2
namespace {

inline __m128d DotPair(const double* const* net, size_t j, const double* p,
                       size_t d) {
  __m128d acc = _mm_setzero_pd();
  for (size_t k = 0; k < d; ++k) {
    acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(p[k]),
                                     _mm_loadu_pd(net[k] + j)));
  }
  return acc;
}

/// mask ? a : b, SSE2-style (no blendv).
inline __m128d Select(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

/// Vector HappinessOf: best > eps ? min(1, s / best) : 1. Division happens
/// against a blended-safe denominator so inactive lanes never divide by
/// zero (the quotient is discarded by the final select).
inline __m128d HappinessPair(__m128d s, __m128d b, __m128d epsv,
                             __m128d one) {
  const __m128d active = _mm_cmpgt_pd(b, epsv);
  const __m128d safe = Select(active, b, one);
  const __m128d q = _mm_min_pd(_mm_div_pd(s, safe), one);
  return Select(active, q, one);
}

void NetBestSse2(const double* const* net, size_t j0, size_t j1,
                 const double* pts, size_t nrows, size_t d, double* best) {
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    size_t j = j0;
    for (; j + 2 <= j1; j += 2) {
      const __m128d s = DotPair(net, j, p, d);
      const __m128d b = _mm_loadu_pd(best + j);
      _mm_storeu_pd(best + j, _mm_max_pd(b, s));
    }
    for (; j < j1; ++j) {
      const double s = DotDir(net, j, p, d);
      if (s > best[j]) best[j] = s;
    }
  }
}

void HappinessRangeSse2(const double* const* net, size_t j0, size_t j1,
                        const double* p, size_t d, const double* best,
                        double eps, double* out) {
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d epsv = _mm_set1_pd(eps);
  size_t j = j0;
  for (; j + 2 <= j1; j += 2) {
    const __m128d s = DotPair(net, j, p, d);
    const __m128d b = _mm_loadu_pd(best + j);
    _mm_storeu_pd(out + j, HappinessPair(s, b, epsv, one));
  }
  for (; j < j1; ++j) {
    out[j] = HappinessOf(DotDir(net, j, p, d), best[j], eps);
  }
}

double MhrRangeSse2(const double* const* net, size_t j0, size_t j1,
                    const double* best, double eps, const double* pts,
                    size_t nrows, size_t d) {
  alignas(kAlign) double smax[kDirTile];
  const size_t len = j1 - j0;
  for (size_t jj = 0; jj < len; ++jj) smax[jj] = 0.0;
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    size_t jj = 0;
    for (; jj + 2 <= len; jj += 2) {
      const __m128d s = DotPair(net, j0 + jj, p, d);
      const __m128d m = _mm_load_pd(smax + jj);
      _mm_store_pd(smax + jj, _mm_max_pd(m, s));
    }
    for (; jj < len; ++jj) {
      const double s = DotDir(net, j0 + jj, p, d);
      if (s > smax[jj]) smax[jj] = s;
    }
  }
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d epsv = _mm_set1_pd(eps);
  __m128d mnv = one;
  size_t jj = 0;
  for (; jj + 2 <= len; jj += 2) {
    const __m128d h = HappinessPair(_mm_load_pd(smax + jj),
                                    _mm_loadu_pd(best + j0 + jj), epsv, one);
    mnv = _mm_min_pd(mnv, h);
  }
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, mnv);
  double mn = std::min(lanes[0], lanes[1]);
  for (; jj < len; ++jj) {
    mn = std::min(mn, HappinessOf(smax[jj], best[j0 + jj], eps));
  }
  return mn;
}

void AddHappinessMaxSse2(const double* const* net, size_t j0, size_t j1,
                         const double* p, size_t d, const double* best,
                         double eps, double* cur) {
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d epsv = _mm_set1_pd(eps);
  size_t j = j0;
  for (; j + 2 <= j1; j += 2) {
    const __m128d h = HappinessPair(DotPair(net, j, p, d),
                                    _mm_loadu_pd(best + j), epsv, one);
    const __m128d c = _mm_loadu_pd(cur + j);
    _mm_storeu_pd(cur + j, _mm_max_pd(c, h));
  }
  for (; j < j1; ++j) {
    const double h = HappinessOf(DotDir(net, j, p, d), best[j], eps);
    if (h > cur[j]) cur[j] = h;
  }
}

void MaxAccumulateSse2(const double* src, double* dst, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d s = _mm_loadu_pd(src + i);
    const __m128d t = _mm_loadu_pd(dst + i);
    _mm_storeu_pd(dst + i, _mm_max_pd(t, s));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

inline __m128d TruncGainPairCached(const double* hrow, const double* cur,
                                   size_t j, __m128d tauv) {
  const __m128d c = _mm_loadu_pd(cur + j);
  const __m128d h = _mm_loadu_pd(hrow + j);
  const __m128d before = _mm_min_pd(c, tauv);
  const __m128d after = _mm_min_pd(_mm_max_pd(c, h), tauv);
  return _mm_sub_pd(after, before);
}

double TruncGainCachedSse2(const double* hrow, const double* cur, size_t n,
                           double tau) {
  const __m128d tauv = _mm_set1_pd(tau);
  __m128d acc01 = _mm_setzero_pd();  // virtual lanes 0,1
  __m128d acc23 = _mm_setzero_pd();  // virtual lanes 2,3
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    acc01 = _mm_add_pd(acc01, TruncGainPairCached(hrow, cur, j, tauv));
    acc23 = _mm_add_pd(acc23, TruncGainPairCached(hrow, cur, j + 2, tauv));
  }
  alignas(16) double a[2], b[2];
  _mm_store_pd(a, acc01);
  _mm_store_pd(b, acc23);
  double total = (a[0] + a[1]) + (b[0] + b[1]);
  for (size_t j = n4; j < n; ++j) {
    total += TruncGainTermCached(hrow, cur, j, tau);
  }
  return total;
}

inline __m128d TruncGainPairEval(const double* const* net, const double* p,
                                 size_t d, const double* best, __m128d epsv,
                                 __m128d one, const double* cur, size_t j,
                                 __m128d tauv) {
  const __m128d c = _mm_loadu_pd(cur + j);
  const __m128d h =
      HappinessPair(DotPair(net, j, p, d), _mm_loadu_pd(best + j), epsv, one);
  const __m128d before = _mm_min_pd(c, tauv);
  const __m128d after = _mm_min_pd(_mm_max_pd(c, h), tauv);
  return _mm_sub_pd(after, before);
}

double TruncGainEvalSse2(const double* const* net, size_t m, const double* p,
                         size_t d, const double* best, double eps,
                         const double* cur, double tau) {
  const __m128d tauv = _mm_set1_pd(tau);
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d epsv = _mm_set1_pd(eps);
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const size_t m4 = m & ~static_cast<size_t>(3);
  for (size_t j = 0; j < m4; j += 4) {
    acc01 = _mm_add_pd(acc01, TruncGainPairEval(net, p, d, best, epsv, one,
                                                cur, j, tauv));
    acc23 = _mm_add_pd(acc23, TruncGainPairEval(net, p, d, best, epsv, one,
                                                cur, j + 2, tauv));
  }
  alignas(16) double a[2], b[2];
  _mm_store_pd(a, acc01);
  _mm_store_pd(b, acc23);
  double total = (a[0] + a[1]) + (b[0] + b[1]);
  for (size_t j = m4; j < m; ++j) {
    total += TruncGainTermEval(net, p, d, best, eps, cur, j, tau);
  }
  return total;
}

double TruncSumSse2(const double* cur, size_t n, double tau) {
  const __m128d tauv = _mm_set1_pd(tau);
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    acc01 = _mm_add_pd(acc01, _mm_min_pd(_mm_loadu_pd(cur + j), tauv));
    acc23 = _mm_add_pd(acc23, _mm_min_pd(_mm_loadu_pd(cur + j + 2), tauv));
  }
  alignas(16) double a[2], b[2];
  _mm_store_pd(a, acc01);
  _mm_store_pd(b, acc23);
  double total = (a[0] + a[1]) + (b[0] + b[1]);
  for (size_t j = n4; j < n; ++j) total += std::min(cur[j], tau);
  return total;
}

double MinReduceSse2(const double* x, size_t n) {
  __m128d mnv = _mm_set1_pd(1.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) mnv = _mm_min_pd(mnv, _mm_loadu_pd(x + i));
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, mnv);
  double mn = std::min(lanes[0], lanes[1]);
  for (; i < n; ++i) mn = std::min(mn, x[i]);
  return mn;
}

void RowSumsSse2(const double* const* cols, size_t nrows, size_t d,
                 double* out) {
  size_t i = 0;
  for (; i + 2 <= nrows; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (size_t k = 0; k < d; ++k) {
      acc = _mm_add_pd(acc, _mm_loadu_pd(cols[k] + i));
    }
    _mm_storeu_pd(out + i, acc);
  }
  for (; i < nrows; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < d; ++k) s += cols[k][i];
    out[i] = s;
  }
}

bool AnyDominatesSse2(const double* const* cols, size_t nrows, size_t d,
                      const double* p) {
  const __m128d ones = _mm_castsi128_pd(_mm_set1_epi32(-1));
  size_t r = 0;
  for (; r + 2 <= nrows; r += 2) {
    __m128d ge = ones;
    __m128d gt = _mm_setzero_pd();
    for (size_t k = 0; k < d; ++k) {
      const __m128d v = _mm_loadu_pd(cols[k] + r);
      const __m128d pk = _mm_set1_pd(p[k]);
      ge = _mm_and_pd(ge, _mm_cmpge_pd(v, pk));
      gt = _mm_or_pd(gt, _mm_cmpgt_pd(v, pk));
      if (_mm_movemask_pd(ge) == 0) break;
    }
    if (_mm_movemask_pd(_mm_and_pd(ge, gt)) != 0) return true;
  }
  for (; r < nrows; ++r) {
    if (DominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

bool AnyWeakDominatesSse2(const double* const* cols, size_t nrows, size_t d,
                          const double* p) {
  const __m128d ones = _mm_castsi128_pd(_mm_set1_epi32(-1));
  size_t r = 0;
  for (; r + 2 <= nrows; r += 2) {
    __m128d ge = ones;
    for (size_t k = 0; k < d; ++k) {
      const __m128d v = _mm_loadu_pd(cols[k] + r);
      ge = _mm_and_pd(ge, _mm_cmpge_pd(v, _mm_set1_pd(p[k])));
      if (_mm_movemask_pd(ge) == 0) break;
    }
    if (_mm_movemask_pd(ge) != 0) return true;
  }
  for (; r < nrows; ++r) {
    if (WeaklyDominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

}  // namespace

const KernelTable* Sse2Kernels() {
  static const KernelTable table = {
      DispatchLevel::kSse2, NetBestSse2,        HappinessRangeSse2,
      MhrRangeSse2,         AddHappinessMaxSse2, MaxAccumulateSse2,
      TruncGainCachedSse2,  TruncGainEvalSse2,   TruncSumSse2,
      MinReduceSse2,        RowSumsSse2,         AnyDominatesSse2,
      AnyWeakDominatesSse2,
      // Min/max over raw coordinates is the one reduction whose result can
      // depend on visit order (±0.0 ties select an operand); it stays on
      // the scalar body at every dispatch level.
      ColMinMaxScalar,
  };
  return &table;
}
#else   // !FAIRHMS_SIMD_HAVE_SSE2
const KernelTable* Sse2Kernels() { return nullptr; }
#endif  // FAIRHMS_SIMD_HAVE_SSE2

}  // namespace internal

// ---------------------------------------------------------------------------
// Dispatch state. A single atomic table pointer; SetMode() stores it, every
// kernel wrapper loads it once per call. Lazy first use reads FAIRHMS_SIMD
// exactly once (tools pre-validate with ValidateSimdEnv so users get a
// clean refusal; the lazy path warns and runs in auto mode on bad values).

namespace {

using internal::KernelTable;

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_mode{static_cast<int>(SimdMode::kAuto)};
std::once_flag g_env_once;

const KernelTable* BestTable() {
  static const KernelTable* const best = [] {
    const KernelTable* t = internal::ScalarKernels();
    if (const KernelTable* s = internal::Sse2Kernels()) t = s;
    if (const KernelTable* n = internal::NeonKernels()) t = n;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx2")) {
      if (const KernelTable* a = internal::Avx2Kernels()) t = a;
    }
#endif
    return t;
  }();
  return best;
}

void ApplyMode(SimdMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  g_table.store(mode == SimdMode::kOff ? internal::ScalarKernels()
                                       : BestTable(),
                std::memory_order_release);
}

/// Consumes the env exactly once. SetMode() runs the no-op branch first so
/// an explicit mode can never be overwritten by a racing lazy init.
void ConsumeEnvOnce(bool from_set_mode) {
  std::call_once(g_env_once, [from_set_mode] {
    if (from_set_mode) return;
    SimdMode mode = SimdMode::kAuto;
    const char* env = std::getenv("FAIRHMS_SIMD");
    if (env != nullptr && *env != '\0') {
      StatusOr<SimdMode> parsed = ParseSimdMode(env);
      if (parsed.ok()) {
        mode = *parsed;
      } else {
        std::fprintf(stderr,
                     "fairhms: ignoring invalid FAIRHMS_SIMD=\"%s\" "
                     "(want \"auto\" or \"off\"); running with auto\n",
                     env);
      }
    }
    ApplyMode(mode);
  });
}

const KernelTable* Active() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  ConsumeEnvOnce(/*from_set_mode=*/false);
  return g_table.load(std::memory_order_acquire);
}

}  // namespace

StatusOr<SimdMode> ParseSimdMode(const std::string& text) {
  if (text == "auto") return SimdMode::kAuto;
  if (text == "off") return SimdMode::kOff;
  return Status::InvalidArgument(
      StrFormat("invalid SIMD mode \"%s\": want \"auto\" or \"off\"",
                text.c_str()));
}

Status ValidateSimdEnv() {
  const char* env = std::getenv("FAIRHMS_SIMD");
  if (env == nullptr || *env == '\0') return Status::OK();
  StatusOr<SimdMode> parsed = ParseSimdMode(env);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrFormat("FAIRHMS_SIMD must be \"auto\" or \"off\", got \"%s\"",
                  env));
  }
  return Status::OK();
}

void SetMode(SimdMode mode) {
  ConsumeEnvOnce(/*from_set_mode=*/true);
  ApplyMode(mode);
}

SimdMode Mode() {
  Active();  // Ensure env-derived mode is resolved.
  return static_cast<SimdMode>(g_mode.load(std::memory_order_relaxed));
}

DispatchLevel DetectedLevel() { return BestTable()->level; }

DispatchLevel ActiveLevel() { return Active()->level; }

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kSse2:
      return "sse2";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kNeon:
      return "neon";
  }
  return "scalar";
}

const char* SimdModeName(SimdMode mode) {
  return mode == SimdMode::kOff ? "off" : "auto";
}

uint32_t LayoutKey() {
  return (static_cast<uint32_t>(kLayoutVersion) << 8) |
         static_cast<uint32_t>(ActiveLevel());
}

// ---------------------------------------------------------------------------
// Public kernel wrappers.

void NetBestRange(const double* const* net, size_t j0, size_t j1,
                  const double* pts, size_t nrows, size_t d, double* best) {
  Active()->net_best(net, j0, j1, pts, nrows, d, best);
}

void HappinessRange(const double* const* net, size_t j0, size_t j1,
                    const double* p, size_t d, const double* best, double eps,
                    double* out) {
  Active()->happiness_range(net, j0, j1, p, d, best, eps, out);
}

double MhrRange(const double* const* net, size_t j0, size_t j1,
                const double* best, double eps, const double* pts,
                size_t nrows, size_t d) {
  return Active()->mhr_range(net, j0, j1, best, eps, pts, nrows, d);
}

void AddHappinessMax(const double* const* net, size_t j0, size_t j1,
                     const double* p, size_t d, const double* best, double eps,
                     double* cur) {
  Active()->add_happiness_max(net, j0, j1, p, d, best, eps, cur);
}

void MaxAccumulate(const double* src, double* dst, size_t n) {
  Active()->max_accumulate(src, dst, n);
}

double TruncGainCached(const double* hrow, const double* cur, size_t n,
                       double tau) {
  return Active()->trunc_gain_cached(hrow, cur, n, tau);
}

double TruncGainEval(const double* const* net, size_t m, const double* p,
                     size_t d, const double* best, double eps,
                     const double* cur, double tau) {
  return Active()->trunc_gain_eval(net, m, p, d, best, eps, cur, tau);
}

double TruncSum(const double* cur, size_t n, double tau) {
  return Active()->trunc_sum(cur, n, tau);
}

double MinReduce(const double* x, size_t n) {
  return Active()->min_reduce(x, n);
}

void RowSums(const double* const* cols, size_t nrows, size_t d, double* out) {
  Active()->row_sums(cols, nrows, d, out);
}

bool AnyDominates(const double* const* cols, size_t nrows, size_t d,
                  const double* p) {
  return Active()->any_dominates(cols, nrows, d, p);
}

bool AnyWeaklyDominates(const double* const* cols, size_t nrows, size_t d,
                        const double* p) {
  return Active()->any_weak_dominates(cols, nrows, d, p);
}

void ColMinMax(const double* x, size_t n, double* mn, double* mx) {
  Active()->col_min_max(x, n, mn, mx);
}

// ---------------------------------------------------------------------------
// Scratch-buffer pool.

namespace {

/// Idle-allocation recycler behind ScratchBuffer. Bounded so evicted
/// buffers cannot accumulate invisibly: at most kScratchPoolMaxEntries
/// allocations and kScratchPoolMaxBytes total. The state is heap-allocated
/// once and intentionally leaked so ScratchBuffers with static storage
/// duration can release safely during process teardown.
constexpr size_t kScratchPoolMaxEntries = 4;
constexpr size_t kScratchPoolMaxBytes = 256u << 20;  // 256 MiB.

struct ScratchPool {
  Mutex mu;
  struct Entry {
    double* ptr;
    size_t cap;  // Doubles.
  };
  Entry entries[kScratchPoolMaxEntries] FAIRHMS_GUARDED_BY(mu);
  size_t count FAIRHMS_GUARDED_BY(mu) = 0;
  size_t bytes FAIRHMS_GUARDED_BY(mu) = 0;
};

ScratchPool& Pool() {
  static ScratchPool* pool = new ScratchPool;
  return *pool;
}

double* ScratchAlloc(size_t cap) {
  return static_cast<double*>(
      ::operator new(cap * sizeof(double), std::align_val_t(kAlign)));
}

void ScratchFree(double* ptr) {
  ::operator delete(ptr, std::align_val_t(kAlign));
}

/// Smallest pooled allocation with capacity >= n, or nullptr.
double* PoolAcquire(size_t n, size_t* cap_out) {
  ScratchPool& pool = Pool();
  MutexLock lock(&pool.mu);
  size_t pick = pool.count;
  for (size_t i = 0; i < pool.count; ++i) {
    if (pool.entries[i].cap < n) continue;
    if (pick == pool.count || pool.entries[i].cap < pool.entries[pick].cap) {
      pick = i;
    }
  }
  if (pick == pool.count) return nullptr;
  const ScratchPool::Entry entry = pool.entries[pick];
  pool.entries[pick] = pool.entries[--pool.count];
  pool.bytes -= entry.cap * sizeof(double);
  *cap_out = entry.cap;
  return entry.ptr;
}

/// True if the allocation was pooled; false means the caller must free it.
bool PoolRelease(double* ptr, size_t cap) {
  ScratchPool& pool = Pool();
  MutexLock lock(&pool.mu);
  if (pool.count == kScratchPoolMaxEntries ||
      pool.bytes + cap * sizeof(double) > kScratchPoolMaxBytes) {
    return false;
  }
  pool.entries[pool.count++] = {ptr, cap};
  pool.bytes += cap * sizeof(double);
  return true;
}

}  // namespace

void ScratchBuffer::ResizeUninitialized(size_t n) {
  if (n <= cap_) {
    size_ = n;
    return;
  }
  Release();
  size_t cap = 0;
  double* ptr = PoolAcquire(n, &cap);
  if (ptr == nullptr) {
    cap = n;
    ptr = ScratchAlloc(cap);
  }
  data_ = ptr;
  cap_ = cap;
  size_ = n;
}

void ScratchBuffer::Release() {
  if (data_ != nullptr && !PoolRelease(data_, cap_)) ScratchFree(data_);
  data_ = nullptr;
  size_ = 0;
  cap_ = 0;
}

size_t ScratchPoolIdleBytes() {
  ScratchPool& pool = Pool();
  MutexLock lock(&pool.mu);
  return pool.bytes;
}

void ScratchPoolTrim() {
  ScratchPool& pool = Pool();
  ScratchPool::Entry drained[kScratchPoolMaxEntries];
  size_t drained_count = 0;
  {
    MutexLock lock(&pool.mu);
    drained_count = pool.count;
    for (size_t i = 0; i < pool.count; ++i) drained[i] = pool.entries[i];
    pool.count = 0;
    pool.bytes = 0;
  }
  for (size_t i = 0; i < drained_count; ++i) ScratchFree(drained[i].ptr);
}

}  // namespace simd
}  // namespace fairhms
