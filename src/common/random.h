// Deterministic, seedable random number generation.
//
// Every randomized component of the library (dataset generators, delta-net
// sampling, adaptive sampling) takes an explicit Rng so that experiments are
// reproducible bit-for-bit given a seed.

#ifndef FAIRHMS_COMMON_RANDOM_H_
#define FAIRHMS_COMMON_RANDOM_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace fairhms {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Small, fast and
/// statistically strong enough for Monte-Carlo style sampling; fully
/// deterministic across platforms (unlike std::normal_distribution, whose
/// algorithm is implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the generator (SplitMix64 expansion of `seed`).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double Normal();

  /// Normal with the given mean / standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Poisson-distributed count (Knuth's method; intended for small means).
  int Poisson(double mean);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to the (nonnegative) weights. Returns 0 when all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng Fork();

  /// Opaque serialization of the full generator state (the xoshiro words
  /// plus the Box-Muller carry). Two generators with equal keys produce
  /// identical streams — used as a memoization key for sampled artifacts.
  std::array<uint64_t, 6> StateKey() const;

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fairhms

#endif  // FAIRHMS_COMMON_RANDOM_H_
