// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef FAIRHMS_COMMON_STOPWATCH_H_
#define FAIRHMS_COMMON_STOPWATCH_H_

#include <chrono>

namespace fairhms {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction / last Reset().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fairhms

#endif  // FAIRHMS_COMMON_STOPWATCH_H_
