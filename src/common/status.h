// Status: lightweight error model used across the FairHMS library.
//
// The library never throws exceptions across its public boundary; fallible
// operations return Status (or StatusOr<T>, see statusor.h) in the style of
// RocksDB / Abseil.

#ifndef FAIRHMS_COMMON_STATUS_H_
#define FAIRHMS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fairhms {

/// Canonical error codes. Keep the list short; codes describe *who* is at
/// fault (caller vs environment), not every possible failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed malformed input.
  kNotFound = 2,          ///< Entity (file, group, column) does not exist.
  kFailedPrecondition = 3,///< Operation not valid in the current state.
  kOutOfRange = 4,        ///< Index / parameter outside the valid range.
  kResourceExhausted = 5, ///< Would exceed an explicit memory/size budget.
  kInternal = 6,          ///< Invariant violation inside the library (a bug).
  kUnimplemented = 7,     ///< Feature intentionally not supported.
  kIOError = 8,           ///< Filesystem / parsing failure.
  kInfeasible = 9,        ///< The optimization instance has no feasible point.
  kDeadlineExceeded = 10, ///< The request's deadline passed before completion.
  kUnavailable = 11,      ///< The service is draining / not accepting work.
};

/// Returns the canonical spelling of a code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error holder. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace fairhms

/// Early-return helper: propagate a non-OK Status to the caller.
#define FAIRHMS_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::fairhms::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // FAIRHMS_COMMON_STATUS_H_
