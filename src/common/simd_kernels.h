// Internal dispatch table for src/common/simd.h — not part of the public
// surface. Each implementation TU (scalar+SSE2 in simd.cc, AVX2 in
// simd_avx2.cc, NEON in simd_neon.cc) fills one KernelTable; simd.cc picks
// the active table once at startup.
//
// The scalar reference implementations live here as inline functions so the
// vector TUs reuse the exact same code for loop tails — tail bits must match
// the scalar path by construction, not by reimplementation.

#ifndef FAIRHMS_COMMON_SIMD_KERNELS_H_
#define FAIRHMS_COMMON_SIMD_KERNELS_H_

#include <algorithm>
#include <cstddef>

#include "common/simd.h"

namespace fairhms {
namespace simd {
namespace internal {

struct KernelTable {
  DispatchLevel level;
  void (*net_best)(const double* const* net, size_t j0, size_t j1,
                   const double* pts, size_t nrows, size_t d, double* best);
  void (*happiness_range)(const double* const* net, size_t j0, size_t j1,
                          const double* p, size_t d, const double* best,
                          double eps, double* out);
  double (*mhr_range)(const double* const* net, size_t j0, size_t j1,
                      const double* best, double eps, const double* pts,
                      size_t nrows, size_t d);
  void (*add_happiness_max)(const double* const* net, size_t j0, size_t j1,
                            const double* p, size_t d, const double* best,
                            double eps, double* cur);
  void (*max_accumulate)(const double* src, double* dst, size_t n);
  double (*trunc_gain_cached)(const double* hrow, const double* cur, size_t n,
                              double tau);
  double (*trunc_gain_eval)(const double* const* net, size_t m,
                            const double* p, size_t d, const double* best,
                            double eps, const double* cur, double tau);
  double (*trunc_sum)(const double* cur, size_t n, double tau);
  double (*min_reduce)(const double* x, size_t n);
  void (*row_sums)(const double* const* cols, size_t nrows, size_t d,
                   double* out);
  bool (*any_dominates)(const double* const* cols, size_t nrows, size_t d,
                        const double* p);
  bool (*any_weak_dominates)(const double* const* cols, size_t nrows,
                             size_t d, const double* p);
  void (*col_min_max)(const double* x, size_t n, double* mn, double* mx);
};

/// Always available. Never returns nullptr.
const KernelTable* ScalarKernels();
/// Return nullptr when the build target lacks the instruction set.
const KernelTable* Sse2Kernels();
const KernelTable* Avx2Kernels();
const KernelTable* NeonKernels();

// ---------------------------------------------------------------------------
// Scalar reference bodies (used verbatim by vector TUs for tails).

/// <u_j, p>: sequential accumulation over dimensions — the canonical
/// per-lane chain (identical to geom/vec.h Dot()).
inline double DotDir(const double* const* net, size_t j, const double* p,
                     size_t d) {
  double s = 0.0;
  for (size_t k = 0; k < d; ++k) s += p[k] * net[k][j];
  return s;
}

inline double HappinessOf(double s, double b, double eps) {
  if (b <= eps) return 1.0;
  return std::min(1.0, s / b);
}

inline void NetBestScalar(const double* const* net, size_t j0, size_t j1,
                          const double* pts, size_t nrows, size_t d,
                          double* best) {
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    for (size_t j = j0; j < j1; ++j) {
      const double s = DotDir(net, j, p, d);
      if (s > best[j]) best[j] = s;
    }
  }
}

inline void HappinessRangeScalar(const double* const* net, size_t j0,
                                 size_t j1, const double* p, size_t d,
                                 const double* best, double eps, double* out) {
  for (size_t j = j0; j < j1; ++j) {
    out[j] = HappinessOf(DotDir(net, j, p, d), best[j], eps);
  }
}

inline double MhrRangeScalar(const double* const* net, size_t j0, size_t j1,
                             const double* best, double eps, const double* pts,
                             size_t nrows, size_t d) {
  double smax[kDirTile];
  const size_t len = j1 - j0;
  for (size_t jj = 0; jj < len; ++jj) smax[jj] = 0.0;
  for (size_t r = 0; r < nrows; ++r) {
    const double* p = pts + r * d;
    for (size_t jj = 0; jj < len; ++jj) {
      const double s = DotDir(net, j0 + jj, p, d);
      if (s > smax[jj]) smax[jj] = s;
    }
  }
  double mn = 1.0;
  for (size_t jj = 0; jj < len; ++jj) {
    mn = std::min(mn, HappinessOf(smax[jj], best[j0 + jj], eps));
  }
  return mn;
}

inline void AddHappinessMaxScalar(const double* const* net, size_t j0,
                                  size_t j1, const double* p, size_t d,
                                  const double* best, double eps,
                                  double* cur) {
  for (size_t j = j0; j < j1; ++j) {
    const double h = HappinessOf(DotDir(net, j, p, d), best[j], eps);
    if (h > cur[j]) cur[j] = h;
  }
}

inline void MaxAccumulateScalar(const double* src, double* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

inline double TruncGainTermCached(const double* hrow, const double* cur,
                                  size_t j, double tau) {
  const double before = std::min(cur[j], tau);
  const double after = std::min(std::max(cur[j], hrow[j]), tau);
  return after - before;
}

/// Canonical 4-virtual-lane sum: lanes stripe j % 4, combine as
/// (p0 + p1) + (p2 + p3), tail added sequentially afterwards. Every
/// dispatch level reproduces exactly this order.
inline double TruncGainCachedScalar(const double* hrow, const double* cur,
                                    size_t n, double tau) {
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    p0 += TruncGainTermCached(hrow, cur, j, tau);
    p1 += TruncGainTermCached(hrow, cur, j + 1, tau);
    p2 += TruncGainTermCached(hrow, cur, j + 2, tau);
    p3 += TruncGainTermCached(hrow, cur, j + 3, tau);
  }
  double total = (p0 + p1) + (p2 + p3);
  for (size_t j = n4; j < n; ++j) {
    total += TruncGainTermCached(hrow, cur, j, tau);
  }
  return total;
}

inline double TruncGainTermEval(const double* const* net, const double* p,
                                size_t d, const double* best, double eps,
                                const double* cur, size_t j, double tau) {
  const double before = std::min(cur[j], tau);
  const double h = HappinessOf(DotDir(net, j, p, d), best[j], eps);
  const double after = std::min(std::max(cur[j], h), tau);
  return after - before;
}

inline double TruncGainEvalScalar(const double* const* net, size_t m,
                                  const double* p, size_t d,
                                  const double* best, double eps,
                                  const double* cur, double tau) {
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  const size_t m4 = m & ~static_cast<size_t>(3);
  for (size_t j = 0; j < m4; j += 4) {
    p0 += TruncGainTermEval(net, p, d, best, eps, cur, j, tau);
    p1 += TruncGainTermEval(net, p, d, best, eps, cur, j + 1, tau);
    p2 += TruncGainTermEval(net, p, d, best, eps, cur, j + 2, tau);
    p3 += TruncGainTermEval(net, p, d, best, eps, cur, j + 3, tau);
  }
  double total = (p0 + p1) + (p2 + p3);
  for (size_t j = m4; j < m; ++j) {
    total += TruncGainTermEval(net, p, d, best, eps, cur, j, tau);
  }
  return total;
}

inline double TruncSumScalar(const double* cur, size_t n, double tau) {
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  const size_t n4 = n & ~static_cast<size_t>(3);
  for (size_t j = 0; j < n4; j += 4) {
    p0 += std::min(cur[j], tau);
    p1 += std::min(cur[j + 1], tau);
    p2 += std::min(cur[j + 2], tau);
    p3 += std::min(cur[j + 3], tau);
  }
  double total = (p0 + p1) + (p2 + p3);
  for (size_t j = n4; j < n; ++j) total += std::min(cur[j], tau);
  return total;
}

inline double MinReduceScalar(const double* x, size_t n) {
  double mn = 1.0;
  for (size_t i = 0; i < n; ++i) mn = std::min(mn, x[i]);
  return mn;
}

inline void RowSumsScalar(const double* const* cols, size_t nrows, size_t d,
                          double* out) {
  for (size_t i = 0; i < nrows; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < d; ++k) s += cols[k][i];
    out[i] = s;
  }
}

inline bool DominatesRow(const double* const* cols, size_t r, size_t d,
                         const double* p) {
  bool gt = false;
  for (size_t k = 0; k < d; ++k) {
    const double v = cols[k][r];
    if (v < p[k]) return false;
    if (v > p[k]) gt = true;
  }
  return gt;
}

inline bool WeaklyDominatesRow(const double* const* cols, size_t r, size_t d,
                               const double* p) {
  for (size_t k = 0; k < d; ++k) {
    if (cols[k][r] < p[k]) return false;
  }
  return true;
}

inline bool AnyDominatesScalar(const double* const* cols, size_t nrows,
                               size_t d, const double* p) {
  for (size_t r = 0; r < nrows; ++r) {
    if (DominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

inline bool AnyWeakDominatesScalar(const double* const* cols, size_t nrows,
                                   size_t d, const double* p) {
  for (size_t r = 0; r < nrows; ++r) {
    if (WeaklyDominatesRow(cols, r, d, p)) return true;
  }
  return false;
}

inline void ColMinMaxScalar(const double* x, size_t n, double* mn,
                            double* mx) {
  if (n == 0) return;
  double lo = x[0], hi = x[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  *mn = lo;
  *mx = hi;
}

}  // namespace internal
}  // namespace simd
}  // namespace fairhms

#endif  // FAIRHMS_COMMON_SIMD_KERNELS_H_
