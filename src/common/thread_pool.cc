#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace fairhms {

namespace {

/// Set while a thread is executing pool work; ParallelFor issued from such
/// a thread runs serially instead of re-entering the queue (nested calls
/// would otherwise wait on workers that are busy waiting on them).
thread_local bool t_inside_pool_work = false;

std::atomic<int> g_default_threads{0};  // 0 = not overridden.

}  // namespace

/// Shared bookkeeping of one ParallelFor call. Chunks are claimed from an
/// atomic cursor so helpers and the caller drain the same fixed partition;
/// the partition itself (and therefore every block boundary) depends only
/// on (total, chunks), never on scheduling.
struct ThreadPool::ForState {
  size_t total = 0;
  size_t chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  Mutex mu;
  CondVar done_cv;
  size_t done FAIRHMS_GUARDED_BY(mu) = 0;
  std::exception_ptr first_error FAIRHMS_GUARDED_BY(mu);

  void RunChunks() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks) return;
      const size_t begin = total * i / chunks;
      const size_t end = total * (i + 1) / chunks;
      std::exception_ptr error;
      try {
        if (begin < end) (*fn)(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(&mu);
      if (error && !first_error) first_error = error;
      if (++done == chunks) done_cv.NotifyAll();
    }
  }
};

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    t_inside_pool_work = true;
    task();
    t_inside_pool_work = false;
  }
}

void ThreadPool::ParallelFor(size_t total, size_t max_chunks,
                             const std::function<void(size_t, size_t)>& fn) {
  if (total == 0) return;
  const size_t chunks = std::max<size_t>(1, std::min(max_chunks, total));
  if (chunks == 1 || workers_.empty() || t_inside_pool_work) {
    fn(0, total);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->total = total;
  state->chunks = chunks;
  state->fn = &fn;

  // One helper task per chunk beyond the caller's own lane; late helpers
  // (queue backlog) find the cursor exhausted and return immediately.
  const size_t helpers = std::min(chunks - 1, workers_.size());
  {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] { state->RunChunks(); });
    }
  }
  if (helpers == 1) {
    work_cv_.NotifyOne();
  } else {
    work_cv_.NotifyAll();
  }

  const bool was_inside = t_inside_pool_work;
  t_inside_pool_work = true;
  state->RunChunks();
  t_inside_pool_work = was_inside;

  MutexLock lock(&state->mu);
  while (state->done != state->chunks) state->done_cv.Wait(state->mu);
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads() - 1);
  return pool;
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int DefaultThreads() {
  const int n = g_default_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : HardwareThreads();
}

void SetDefaultThreads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int ResolveThreads(int n) { return n >= 1 ? n : DefaultThreads(); }

void ParallelFor(int threads, size_t total,
                 const std::function<void(size_t, size_t)>& fn) {
  const size_t n = static_cast<size_t>(ResolveThreads(threads));
  if (n <= 1 || total <= 1) {
    if (total > 0) fn(0, total);
    return;
  }
  ThreadPool::Shared()->ParallelFor(total, n, fn);
}

}  // namespace fairhms
