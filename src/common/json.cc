#include "common/json.h"

#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace fairhms {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) found = &value;
  }
  return found;
}

StatusOr<int64_t> JsonValue::AsInt64() const {
  if (!is_number()) return Status::InvalidArgument("expected a number");
  const double v = number_;
  // Range check before the cast: double -> int64 outside the representable
  // range is undefined behavior. 2^63 is exactly representable as a double.
  if (!(v >= -9223372036854775808.0 && v < 9223372036854775808.0)) {
    return Status::InvalidArgument(
        StrFormat("number %g is out of the 64-bit integer range", v));
  }
  if (v != static_cast<double>(static_cast<int64_t>(v))) {
    return Status::InvalidArgument(
        StrFormat("expected a whole number, got %g", v));
  }
  return static_cast<int64_t>(v);
}

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    FAIRHMS_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeLiteral("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string object key");
      }
      std::string key;
      FAIRHMS_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      FAIRHMS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      FAIRHMS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape digit");
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through individually — labels are treated as opaque bytes).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error(StrFormat("bad escape '\\%c'", esc));
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    if (!ParseDouble(text_.substr(start, pos_ - start), &v)) {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

namespace {

void WriteValue(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += value.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      if (std::isfinite(value.number_value())) {
        *out += StrFormat("%.17g", value.number_value());
      } else {
        *out += "null";
      }
      return;
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(value.string_value());
      *out += '"';
      return;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) *out += ", ";
        first = false;
        WriteValue(item, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) *out += ", ";
        first = false;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\": ";
        WriteValue(member, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ", ";
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_value_.pop_back();
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_value_.pop_back();
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!has_value_.empty() && has_value_.back()) out_ += ", ";
  if (!has_value_.empty()) has_value_.back() = true;
  out_ += '"';
  out_ += JsonEscape(std::string(name));
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(v));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(v));
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  out_ += std::isfinite(v) ? StrFormat("%.17g", v) : std::string("null");
  return *this;
}

JsonWriter& JsonWriter::Fixed(double v, int precision) {
  BeforeValue();
  out_ += std::isfinite(v) ? StrFormat("%.*f", precision, v)
                           : std::string("null");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view fragment) {
  BeforeValue();
  out_ += fragment;
  return *this;
}

}  // namespace fairhms
