// Utility nets: finite direction sets approximating the nonnegative unit
// sphere S^{d-1}_+ (delta-nets, Sec. 4.1 of the paper).
//
// A set N is a delta-net iff every u in S^{d-1}_+ has some v in N with
// <u, v> >= cos(delta). Sampling m = O(delta^{1-d} log(1/delta)) uniform
// directions yields a delta-net with constant probability; the experiments
// control m directly (m = 10kd by default, as in the paper).

#ifndef FAIRHMS_UTILITY_UTILITY_NET_H_
#define FAIRHMS_UTILITY_UTILITY_NET_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace fairhms {

/// An immutable set of unit utility vectors in R^d_+ (row-major flat).
class UtilityNet {
 public:
  /// m directions sampled uniformly on S^{d-1}_+ (|Normal| coordinates,
  /// l2-normalized). Deterministic given the Rng state.
  static UtilityNet SampleRandom(int d, size_t m, Rng* rng);

  /// Evenly spaced directions on the quarter circle (d = 2 only), endpoints
  /// (0,1) and (1,0) included. m >= 2.
  static UtilityNet Grid2D(size_t m);

  /// Sample size that makes a random net a delta-net w.h.p.:
  /// ceil((c/delta)^(d-1) * ln(c/delta)) with c = 2, floored at d.
  static size_t DeltaToSampleSize(double delta, int d);

  /// The delta achieved (in the Lemma 4.1 sense) by m random samples —
  /// inverse of DeltaToSampleSize, up to rounding.
  static double SampleSizeToDelta(size_t m, int d);

  /// Error bound of Lemma 4.1: net-estimated mhr exceeds the true mhr by at
  /// most 2*delta*d / (1 + delta*d).
  static double MhrErrorBound(double delta, int d);

  size_t size() const { return m_; }
  int dim() const { return d_; }
  const double* vec(size_t j) const { return &vecs_[j * static_cast<size_t>(d_)]; }

  /// max over the net of <u, v> — used by tests to verify net coverage of a
  /// direction u (compare against cos(delta)).
  double CoverageCos(const double* u) const;

 private:
  UtilityNet(int d, size_t m) : d_(d), m_(m) {
    vecs_.resize(m * static_cast<size_t>(d));
  }

  int d_;
  size_t m_;
  std::vector<double> vecs_;
};

}  // namespace fairhms

#endif  // FAIRHMS_UTILITY_UTILITY_NET_H_
