#include "utility/utility_net.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geom/vec.h"

namespace fairhms {

UtilityNet UtilityNet::SampleRandom(int d, size_t m, Rng* rng) {
  assert(d >= 1 && m >= 1);
  UtilityNet net(d, m);
  for (size_t j = 0; j < m; ++j) {
    double* v = &net.vecs_[j * static_cast<size_t>(d)];
    double norm_sq = 0.0;
    do {
      norm_sq = 0.0;
      for (int i = 0; i < d; ++i) {
        v[i] = std::fabs(rng->Normal());
        norm_sq += v[i] * v[i];
      }
    } while (norm_sq <= 1e-30);
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (int i = 0; i < d; ++i) v[i] *= inv;
  }
  return net;
}

UtilityNet UtilityNet::Grid2D(size_t m) {
  assert(m >= 2);
  UtilityNet net(2, m);
  for (size_t j = 0; j < m; ++j) {
    const double theta =
        (static_cast<double>(j) / static_cast<double>(m - 1)) *
        (3.14159265358979323846 / 2.0);
    net.vecs_[2 * j] = std::sin(theta);      // Weight on attribute 0.
    net.vecs_[2 * j + 1] = std::cos(theta);  // Weight on attribute 1.
  }
  return net;
}

size_t UtilityNet::DeltaToSampleSize(double delta, int d) {
  assert(delta > 0.0 && delta < 1.0 && d >= 1);
  const double c_over_delta = 2.0 / delta;
  const double m =
      std::pow(c_over_delta, d - 1) * std::log(c_over_delta);
  const double capped = std::min(m, 5e7);
  return std::max<size_t>(static_cast<size_t>(d),
                          static_cast<size_t>(std::ceil(capped)));
}

double UtilityNet::SampleSizeToDelta(size_t m, int d) {
  assert(m >= 1 && d >= 1);
  if (d == 1) return 1e-9;
  // Invert m = (2/delta)^(d-1) * ln(2/delta) by bisection on delta.
  double lo = 1e-9;
  double hi = 0.999999;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (DeltaToSampleSize(mid, d) > m) {
      lo = mid;  // Need larger delta (smaller net).
    } else {
      hi = mid;
    }
  }
  return hi;
}

double UtilityNet::MhrErrorBound(double delta, int d) {
  const double dd = delta * d;
  return 2.0 * dd / (1.0 + dd);
}

double UtilityNet::CoverageCos(const double* u) const {
  double best = -1.0;
  for (size_t j = 0; j < m_; ++j) {
    best = std::max(best, Dot(u, vec(j), static_cast<size_t>(d_)));
  }
  return best;
}

}  // namespace fairhms
