#include "api/protocol.h"

#include <utility>

#include "api/registry.h"
#include "common/string_util.h"

namespace fairhms {

namespace {

/// Fills AlgoParams from the query's "params" object, using the algorithm's
/// schema for int/double disambiguation; keys or types the schema does not
/// know are set by their JSON type so Solver validation reports them with
/// the uniform messages.
Status ParamsFromJson(const JsonValue& params, const AlgorithmInfo* info,
                      AlgoParams* out) {
  if (!params.is_object()) {
    return Status::InvalidArgument("\"params\" must be an object");
  }
  for (const auto& [name, value] : params.members()) {
    const ParamSpec* spec = nullptr;
    if (info != nullptr) {
      for (const ParamSpec& candidate : info->params) {
        if (candidate.name == name) spec = &candidate;
      }
    }
    if (spec != nullptr && value.is_number()) {
      if (spec->type == ParamType::kInt) {
        FAIRHMS_ASSIGN_OR_RETURN(const int64_t v, value.AsInt64());
        out->SetInt(name, v);
      } else {
        out->SetDouble(name, value.number_value());
      }
      continue;
    }
    switch (value.kind()) {
      case JsonValue::Kind::kBool:
        out->SetBool(name, value.bool_value());
        break;
      case JsonValue::Kind::kString:
        out->SetString(name, value.string_value());
        break;
      case JsonValue::Kind::kNumber: {
        const auto as_int = value.AsInt64();
        if (as_int.ok()) {
          out->SetInt(name, *as_int);
        } else {
          out->SetDouble(name, value.number_value());
        }
        break;
      }
      default:
        return Status::InvalidArgument(StrFormat(
            "parameter '%s' must be a number, boolean or string",
            name.c_str()));
    }
  }
  return Status::OK();
}

Status ParseQuery(const JsonValue& line, QueryRequest* out) {
  const JsonValue* algo = line.Find("algorithm");
  if (algo == nullptr) algo = line.Find("algo");
  if (algo == nullptr || !algo->is_string()) {
    return Status::InvalidArgument(
        "each query needs a string \"algorithm\" field");
  }
  out->algorithm = algo->string_value();
  const JsonValue* k_field = line.Find("k");
  if (k_field == nullptr) {
    return Status::InvalidArgument("each query needs an integer \"k\" field");
  }
  FAIRHMS_ASSIGN_OR_RETURN(const int64_t k64, k_field->AsInt64());
  if (k64 < 1 || k64 > 1'000'000) {
    return Status::InvalidArgument(
        StrFormat("k must be in [1, 1000000], got %lld",
                  static_cast<long long>(k64)));
  }
  out->k = static_cast<int>(k64);
  if (const JsonValue* s = line.Find("seed"); s != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t seed, s->AsInt64());
    if (seed < 0) return Status::InvalidArgument("\"seed\" must be >= 0");
    out->has_seed = true;
    out->seed = static_cast<uint64_t>(seed);
  }
  if (const JsonValue* t = line.Find("threads"); t != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t threads, t->AsInt64());
    // Range-check before narrowing so huge values fail like the flag does
    // instead of wrapping into the valid range.
    if (threads < 0 || threads > 4096) {
      return Status::InvalidArgument(StrFormat(
          "\"threads\" must be in [0, 4096] (0 = all hardware threads), "
          "got %lld", static_cast<long long>(threads)));
    }
    out->has_threads = true;
    out->threads = static_cast<int>(threads);
  }
  // Bounds: structural checks here; construction against the live group
  // counts happens in the service.
  std::string kind = "proportional";
  if (const JsonValue* b = line.Find("bounds"); b != nullptr) {
    if (!b->is_string()) {
      return Status::InvalidArgument("\"bounds\" must be a string");
    }
    kind = b->string_value();
  }
  if (const JsonValue* a = line.Find("alpha"); a != nullptr) {
    if (!a->is_number()) {
      return Status::InvalidArgument("\"alpha\" must be a number");
    }
    out->alpha = a->number_value();
  }
  if (kind == "proportional") {
    out->bounds = QueryRequest::Bounds::kProportional;
  } else if (kind == "balanced") {
    out->bounds = QueryRequest::Bounds::kBalanced;
  } else if (kind == "explicit") {
    out->bounds = QueryRequest::Bounds::kExplicit;
    auto int_list = [&line](const char* key) -> StatusOr<std::vector<int>> {
      const JsonValue* v = line.Find(key);
      if (v == nullptr || !v->is_array()) {
        return Status::InvalidArgument(StrFormat(
            "explicit bounds need an integer array \"%s\"", key));
      }
      std::vector<int> out;
      for (const JsonValue& item : v->items()) {
        FAIRHMS_ASSIGN_OR_RETURN(const int64_t value, item.AsInt64());
        out.push_back(static_cast<int>(value));
      }
      return out;
    };
    FAIRHMS_ASSIGN_OR_RETURN(out->lower, int_list("lower"));
    FAIRHMS_ASSIGN_OR_RETURN(out->upper, int_list("upper"));
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown \"bounds\" kind '%s' (want proportional, balanced "
                  "or explicit)", kind.c_str()));
  }
  if (const JsonValue* params = line.Find("params"); params != nullptr) {
    FAIRHMS_RETURN_IF_ERROR(ParamsFromJson(
        *params, AlgorithmRegistry::Instance().Find(out->algorithm),
        &out->params));
  }
  if (const JsonValue* budget = line.Find("latency_budget_ms");
      budget != nullptr) {
    if (!budget->is_number() || budget->number_value() < 0.0) {
      return Status::InvalidArgument(
          "\"latency_budget_ms\" must be a number >= 0");
    }
    out->latency_budget_ms = budget->number_value();
  }
  if (const JsonValue* target = line.Find("quality_target");
      target != nullptr) {
    if (!target->is_number() || target->number_value() < 0.0 ||
        target->number_value() > 1.0) {
      return Status::InvalidArgument(
          "\"quality_target\" must be a number in [0, 1]");
    }
    out->quality_target = target->number_value();
  }
  if (const JsonValue* warm = line.Find("warm_start"); warm != nullptr) {
    if (!warm->is_bool()) {
      return Status::InvalidArgument("\"warm_start\" must be a boolean");
    }
    out->warm_start = warm->bool_value();
  }
  return Status::OK();
}

Status ParseInsert(const JsonValue& line, InsertRequest* out) {
  const JsonValue* point = line.Find("point");
  if (point == nullptr || !point->is_array()) {
    return Status::InvalidArgument(
        "insert needs a \"point\" array of numeric attributes");
  }
  for (const JsonValue& v : point->items()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("\"point\" entries must be numbers");
    }
    out->point.push_back(v.number_value());
  }
  if (const JsonValue* cats = line.Find("cats"); cats != nullptr) {
    if (!cats->is_object()) {
      return Status::InvalidArgument(
          "\"cats\" must be an object mapping column names to labels");
    }
    out->has_cats = true;
    for (const auto& [name, value] : cats->members()) {
      InsertRequest::CatEntry entry;
      entry.column = name;
      entry.label_is_string = value.is_string();
      if (entry.label_is_string) entry.label = value.string_value();
      out->cats.push_back(std::move(entry));
    }
  }
  if (const JsonValue* g = line.Find("group"); g != nullptr) {
    if (g->is_string()) {
      out->group = InsertRequest::Group::kName;
      out->group_name = g->string_value();
    } else {
      FAIRHMS_ASSIGN_OR_RETURN(out->group_id, g->AsInt64());
      out->group = InsertRequest::Group::kId;
    }
  }
  return Status::OK();
}

Status ParseDelete(const JsonValue& line, DeleteRequest* out) {
  const JsonValue* rows_field = line.Find("rows");
  if (rows_field == nullptr || !rows_field->is_array()) {
    return Status::InvalidArgument(
        "delete needs a \"rows\" array of row indices");
  }
  for (const JsonValue& v : rows_field->items()) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t row, v.AsInt64());
    out->rows.push_back(row);
  }
  return Status::OK();
}

Status ParseRegister(const JsonValue& line, RegisterRequest* out) {
  const JsonValue* name_field = line.Find("name");
  if (name_field == nullptr || !name_field->is_string()) {
    return Status::InvalidArgument("register needs a string \"name\"");
  }
  out->name = name_field->string_value();
  const JsonValue* snap = line.Find("snapshot");
  const JsonValue* syn = line.Find("synthetic");
  if (snap != nullptr && syn != nullptr) {
    return Status::InvalidArgument(
        "register takes \"snapshot\" or \"synthetic\", not both");
  }
  if (snap != nullptr) {
    if (!snap->is_string()) {
      return Status::InvalidArgument("\"snapshot\" must be a path string");
    }
    out->source = RegisterRequest::Source::kSnapshot;
    out->snapshot_path = snap->string_value();
    return Status::OK();
  }
  if (syn == nullptr || !syn->is_string()) {
    return Status::InvalidArgument(
        "register needs a string \"synthetic\" (generator family) or "
        "\"snapshot\" (file path) source");
  }
  out->source = RegisterRequest::Source::kSynthetic;
  out->synthetic = syn->string_value();
  if (const JsonValue* v = line.Find("n"); v != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(out->n, v->AsInt64());
  }
  if (const JsonValue* v = line.Find("dim"); v != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(out->dim, v->AsInt64());
  }
  if (const JsonValue* v = line.Find("seed"); v != nullptr) {
    FAIRHMS_ASSIGN_OR_RETURN(const int64_t s, v->AsInt64());
    if (s < 0) return Status::InvalidArgument("\"seed\" must be >= 0");
    out->has_seed = true;
    out->seed = static_cast<uint64_t>(s);
  }
  if (const JsonValue* v = line.Find("normalize"); v != nullptr) {
    if (!v->is_string()) {
      return Status::InvalidArgument("\"normalize\" must be a string");
    }
    out->normalize = v->string_value();
  }
  if (const JsonValue* gb = line.Find("group_by"); gb != nullptr) {
    if (!gb->is_array()) {
      return Status::InvalidArgument(
          "\"group_by\" must be an array of categorical column names");
    }
    out->has_group_by = true;
    for (const JsonValue& item : gb->items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument(
            "\"group_by\" entries must be column-name strings");
      }
      out->group_by.push_back(item.string_value());
    }
  } else if (const JsonValue* v = line.Find("groups"); v != nullptr) {
    // Only consulted without "group_by" (which takes precedence), so a
    // malformed "groups" next to a "group_by" stays ignored.
    FAIRHMS_ASSIGN_OR_RETURN(out->groups, v->AsInt64());
  }
  return Status::OK();
}

Status ParseName(const JsonValue& line, const char* op, std::string* name) {
  const JsonValue* name_field = line.Find("name");
  if (name_field == nullptr || !name_field->is_string()) {
    return Status::InvalidArgument(
        StrFormat("%s needs a string \"name\"", op));
  }
  *name = name_field->string_value();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Rendering.

std::string RenderIntList(const std::vector<int>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    out += StrFormat("%s%d", i == 0 ? "" : ", ", values[i]);
  }
  out += "]";
  return out;
}

std::string RenderQueryBody(const QueryResponse& r) {
  std::string out = StrFormat(
      "\"algorithm\": \"%s\", \"k\": %d, \"seed\": %llu, \"threads\": %d, "
      "\"solution_size\": %zu, \"rows\": ",
      JsonEscape(r.algorithm).c_str(), r.k,
      static_cast<unsigned long long>(r.seed), r.threads, r.rows.size());
  out += RenderIntList(r.rows);
  out += StrFormat(
      ", \"happiness_ratio\": %.17g, \"algo_mhr_estimate\": %.17g, "
      "\"violations\": %d, \"group_counts\": ",
      r.happiness_ratio, r.algo_mhr_estimate, r.violations);
  out += RenderIntList(r.group_counts);
  if (!r.note.empty()) {
    out += StrFormat(", \"note\": \"%s\"", JsonEscape(r.note).c_str());
  }
  if (r.planned) {
    // Prediction and actual cost side by side, so clients can judge the
    // model without correlating fields across the payload.
    out += StrFormat(
        ", \"plan\": {\"requested\": \"auto\", \"algorithm\": \"%s\", "
        "\"predicted_ms\": %.3f, \"predicted_hr\": %.17g, "
        "\"actual_ms\": %.3f, \"reason\": \"%s\"",
        JsonEscape(r.algorithm).c_str(), r.predicted_ms, r.predicted_hr,
        r.solve_ms, JsonEscape(r.plan_reason).c_str());
    if (!r.plan_params.empty()) {
      out += StrFormat(", \"params\": \"%s\"",
                       JsonEscape(r.plan_params).c_str());
    }
    out += "}";
  }
  if (r.warm_start) out += ", \"warm_start\": true";
  out += StrFormat(", \"solve_ms\": %.3f, \"total_ms\": %.3f", r.solve_ms,
                   r.total_ms);
  return out;
}

std::string RenderInsertBody(const InsertResponse& r) {
  return StrFormat(
      "\"op\": \"insert\", \"row\": %d, \"group\": %d, "
      "\"group_name\": \"%s\", \"version\": %llu, \"live_rows\": %zu",
      r.row, r.group, JsonEscape(r.group_name).c_str(),
      static_cast<unsigned long long>(r.version),
      static_cast<size_t>(r.live_rows));
}

std::string RenderDeleteBody(const DeleteResponse& r) {
  return StrFormat(
      "\"op\": \"delete\", \"erased\": %zu, \"version\": %llu, "
      "\"live_rows\": %zu",
      static_cast<size_t>(r.erased),
      static_cast<unsigned long long>(r.version),
      static_cast<size_t>(r.live_rows));
}

std::string RenderRegisterBody(const RegisterResponse& r) {
  return StrFormat(
      "\"op\": \"register\", \"name\": \"%s\", \"rows\": %zu, \"dim\": %d, "
      "\"groups\": %d",
      JsonEscape(r.name).c_str(), static_cast<size_t>(r.rows), r.dim,
      r.groups);
}

std::string RenderSaveBody(const SaveResponse& r) {
  return StrFormat("\"op\": \"save\", \"name\": \"%s\", \"path\": \"%s\"",
                   JsonEscape(r.name).c_str(), JsonEscape(r.path).c_str());
}

std::string RenderDropBody(const DropResponse& r) {
  return StrFormat("\"op\": \"drop\", \"name\": \"%s\"",
                   JsonEscape(r.name).c_str());
}

std::string RenderListBody(const ListResponse& r) {
  std::string out = "\"op\": \"list\", \"datasets\": [";
  bool first = true;
  for (const std::string& name : r.datasets) {
    out += StrFormat("%s\"%s\"", first ? "" : ", ",
                     JsonEscape(name).c_str());
    first = false;
  }
  out += "]";
  return out;
}

std::string RenderStatsBody(const StatsResponse& r) {
  std::string out = StrFormat(
      "\"op\": \"stats\", \"uptime_ms\": %.3f, \"served\": %llu, "
      "\"failed\": %llu, \"qps\": %.3f, "
      "\"simd_level\": \"%s\", \"simd_mode\": \"%s\", \"datasets\": [",
      r.uptime_ms, static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.failed), r.qps,
      JsonEscape(r.simd_level).c_str(), JsonEscape(r.simd_mode).c_str());
  for (size_t i = 0; i < r.datasets.size(); ++i) {
    const StatsResponse::DatasetStats& d = r.datasets[i];
    out += StrFormat(
        "%s{\"name\": \"%s\", \"live_rows\": %llu, \"rows\": %llu, "
        "\"dim\": %d, \"groups\": %d, \"version\": %llu, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, \"cache_bytes\": %llu",
        i == 0 ? "" : ", ", JsonEscape(d.name).c_str(),
        static_cast<unsigned long long>(d.live_rows),
        static_cast<unsigned long long>(d.total_rows), d.dim, d.groups,
        static_cast<unsigned long long>(d.version),
        static_cast<unsigned long long>(d.cache_hits),
        static_cast<unsigned long long>(d.cache_misses),
        static_cast<unsigned long long>(d.cache_bytes));
    if (!d.cache_classes.empty()) {
      out += ", \"cache_classes\": {";
      for (size_t c = 0; c < d.cache_classes.size(); ++c) {
        const auto& cls = d.cache_classes[c];
        out += StrFormat(
            "%s\"%s\": {\"hits\": %llu, \"misses\": %llu, \"bytes\": %llu}",
            c == 0 ? "" : ", ", JsonEscape(cls.name).c_str(),
            static_cast<unsigned long long>(cls.hits),
            static_cast<unsigned long long>(cls.misses),
            static_cast<unsigned long long>(cls.bytes));
      }
      out += "}";
    }
    out += "}";
  }
  out += StrFormat(
      "], \"cache\": {\"budget_bytes\": %llu, \"total_bytes\": %llu, "
      "\"evictions\": %llu, \"sessions\": [",
      static_cast<unsigned long long>(r.cache_budget_bytes),
      static_cast<unsigned long long>(r.cache_total_bytes),
      static_cast<unsigned long long>(r.cache_evictions));
  for (size_t i = 0; i < r.cache_sessions.size(); ++i) {
    const StatsResponse::CacheSessionStats& s = r.cache_sessions[i];
    out += StrFormat(
        "%s{\"name\": \"%s\", \"charged_bytes\": %llu, \"last_touch\": %llu}",
        i == 0 ? "" : ", ", JsonEscape(s.name).c_str(),
        static_cast<unsigned long long>(s.charged_bytes),
        static_cast<unsigned long long>(s.last_touch));
  }
  out += "]}, \"ops\": [";
  for (size_t i = 0; i < r.ops.size(); ++i) {
    const StatsResponse::OpStats& o = r.ops[i];
    out += StrFormat(
        "%s{\"op\": \"%s\", \"count\": %llu, \"errors\": %llu, "
        "\"total_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}",
        i == 0 ? "" : ", ", ProtocolOpName(o.op),
        static_cast<unsigned long long>(o.count),
        static_cast<unsigned long long>(o.errors), o.total_ms, o.p50_ms,
        o.p99_ms);
  }
  out += "]";
  return out;
}

std::string RenderBody(const Response& r) {
  switch (r.op) {
    case ProtocolOp::kQuery:
      return RenderQueryBody(r.query);
    case ProtocolOp::kInsert:
      return RenderInsertBody(r.insert);
    case ProtocolOp::kDelete:
      return RenderDeleteBody(r.erase);
    case ProtocolOp::kRegister:
      return RenderRegisterBody(r.reg);
    case ProtocolOp::kSave:
      return RenderSaveBody(r.save);
    case ProtocolOp::kDrop:
      return RenderDropBody(r.drop);
    case ProtocolOp::kList:
      return RenderListBody(r.list);
    case ProtocolOp::kStats:
      return RenderStatsBody(r.stats);
  }
  return std::string();
}

/// The versioned-envelope prefix after "ok": protocol_version and, when
/// enabled, the linearization sequence number.
std::string VersionedPrefix(const Response& r, const EnvelopeOptions& env) {
  std::string out = StrFormat("\"protocol_version\": %d, ", kProtocolVersion);
  if (env.emit_seq && r.has_seq) {
    out += StrFormat("\"seq\": %llu, ",
                     static_cast<unsigned long long>(r.seq));
  }
  return out;
}

}  // namespace

const char* ProtocolOpName(ProtocolOp op) {
  switch (op) {
    case ProtocolOp::kQuery:
      return "query";
    case ProtocolOp::kInsert:
      return "insert";
    case ProtocolOp::kDelete:
      return "delete";
    case ProtocolOp::kRegister:
      return "register";
    case ProtocolOp::kSave:
      return "save";
    case ProtocolOp::kDrop:
      return "drop";
    case ProtocolOp::kList:
      return "list";
    case ProtocolOp::kStats:
      return "stats";
  }
  return "unknown";
}

namespace {

/// The rendered id token of a parsed line, or "" when absent / non-scalar.
std::string IdToken(const JsonValue& line) {
  if (const JsonValue* id_field = line.Find("id"); id_field != nullptr) {
    if (id_field->is_string()) {
      return "\"" + JsonEscape(id_field->string_value()) + "\"";
    }
    if (id_field->is_number()) {
      return StrFormat("%.17g", id_field->number_value());
    }
  }
  return std::string();
}

}  // namespace

std::string RenderRequestId(std::string_view line, uint64_t line_no) {
  std::string id;
  if (auto parsed = ParseJson(line); parsed.ok() && parsed->is_object()) {
    id = IdToken(*parsed);
  }
  if (id.empty()) {
    id = StrFormat("%llu", static_cast<unsigned long long>(line_no));
  }
  return id;
}

Status ParseRequest(const JsonValue& line, Request* out) {
  // The id is extracted before anything can fail, so rejected lines still
  // echo it. Non-scalar ids fall back to the transport's line number.
  out->id = IdToken(line);
  std::string op = "query";
  if (const JsonValue* op_field = line.Find("op"); op_field != nullptr) {
    // A non-string op forces the unknown-op error below.
    op = op_field->is_string() ? op_field->string_value() : std::string();
  }
  // The dataset-type check outranks the unknown-op error (legacy
  // precedence: routing is validated before dispatch).
  if (const JsonValue* d = line.Find("dataset"); d != nullptr) {
    if (!d->is_string()) {
      return Status::InvalidArgument(
          "\"dataset\" must be a string (a catalog name)");
    }
    out->dataset = d->string_value();
  }
  if (op == "query" || op == "solve") {
    out->op = ProtocolOp::kQuery;
    return ParseQuery(line, &out->query);
  }
  if (op == "insert") {
    out->op = ProtocolOp::kInsert;
    return ParseInsert(line, &out->insert);
  }
  if (op == "delete") {
    out->op = ProtocolOp::kDelete;
    return ParseDelete(line, &out->erase);
  }
  if (op == "register") {
    out->op = ProtocolOp::kRegister;
    return ParseRegister(line, &out->reg);
  }
  if (op == "save") {
    out->op = ProtocolOp::kSave;
    FAIRHMS_RETURN_IF_ERROR(ParseName(line, "save", &out->save.name));
    const JsonValue* path_field = line.Find("path");
    if (path_field == nullptr || !path_field->is_string()) {
      return Status::InvalidArgument("save needs a string \"path\"");
    }
    out->save.path = path_field->string_value();
    return Status::OK();
  }
  if (op == "drop") {
    out->op = ProtocolOp::kDrop;
    return ParseName(line, "drop", &out->drop.name);
  }
  if (op == "list") {
    out->op = ProtocolOp::kList;
    return Status::OK();
  }
  if (op == "stats") {
    out->op = ProtocolOp::kStats;
    return Status::OK();
  }
  return Status::InvalidArgument(StrFormat(
      "unknown \"op\" '%s' (want query, insert, delete, register, "
      "save, drop, list or stats)",
      op.c_str()));
}

std::string RenderResponse(const Response& response,
                           const EnvelopeOptions& envelope) {
  if (!response.ok) {
    if (envelope.version == 0) {
      return StrFormat("{\"id\": %s, \"ok\": false, \"error\": \"%s\"}",
                       response.id.c_str(),
                       JsonEscape(response.error.ToString()).c_str());
    }
    std::string out = StrFormat("{\"id\": %s, \"ok\": false, ",
                                response.id.c_str());
    out += VersionedPrefix(response, envelope);
    if (!response.dataset.empty()) {
      out += StrFormat("\"dataset\": \"%s\", ",
                       JsonEscape(response.dataset).c_str());
    }
    out += StrFormat(
        "\"error\": {\"code\": \"%s\", \"message\": \"%s\"}}",
        StatusCodeToString(response.error.code()),
        JsonEscape(response.error.message()).c_str());
    return out;
  }
  std::string out = StrFormat("{\"id\": %s, \"ok\": true, ",
                              response.id.c_str());
  if (envelope.version != 0) out += VersionedPrefix(response, envelope);
  if (!response.dataset.empty()) {
    out += StrFormat("\"dataset\": \"%s\", ",
                     JsonEscape(response.dataset).c_str());
  }
  if (response.has_catalog_version) {
    out += StrFormat("\"catalog_version\": %llu, ",
                     static_cast<unsigned long long>(
                         response.catalog_version));
  }
  out += RenderBody(response);
  out += "}";
  return out;
}

std::string RenderErrorLine(const std::string& id, const Status& error,
                            const EnvelopeOptions& envelope) {
  Response response;
  response.id = id;
  response.ok = false;
  response.error = error;
  return RenderResponse(response, envelope);
}

}  // namespace fairhms
