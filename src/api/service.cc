#include "api/service.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "data/grouping.h"

namespace fairhms {

namespace {

/// A label an insert op mentions that the column does not know yet; it is
/// registered only once the rest of the op has validated, so a rejected
/// line leaves the table untouched.
struct PendingLabel {
  int col = 0;
  std::string label;
};

/// Converts an insert op's cats entries ({column: label}) into a full code
/// vector without mutating the dataset; columns not mentioned default to
/// code 0, unseen labels land in `pending` with their future codes already
/// in `codes`.
StatusOr<std::vector<int>> CodesFromCats(const InsertRequest& request,
                                         const Dataset& data,
                                         std::vector<PendingLabel>* pending) {
  std::vector<int> codes(static_cast<size_t>(data.num_categorical()), 0);
  if (!request.has_cats) return codes;
  // Future code per column = current label count + pending labels there.
  std::vector<int> next_code(static_cast<size_t>(data.num_categorical()));
  for (int c = 0; c < data.num_categorical(); ++c) {
    next_code[static_cast<size_t>(c)] =
        static_cast<int>(data.categorical(c).labels.size());
  }
  for (const InsertRequest::CatEntry& entry : request.cats) {
    FAIRHMS_ASSIGN_OR_RETURN(const int col,
                             data.FindCategorical(entry.column));
    if (!entry.label_is_string) {
      return Status::InvalidArgument(
          StrFormat("\"cats\" entry '%s' must be a string label",
                    entry.column.c_str()));
    }
    const CategoricalColumn& column = data.categorical(col);
    int code = -1;
    for (size_t i = 0; i < column.labels.size(); ++i) {
      if (column.labels[i] == entry.label) {
        code = static_cast<int>(i);
        break;
      }
    }
    if (code < 0) {
      code = next_code[static_cast<size_t>(col)]++;
      pending->push_back({col, entry.label});
    }
    codes[static_cast<size_t>(col)] = code;
  }
  return codes;
}

bool IsPerDatasetOp(ProtocolOp op) {
  return op == ProtocolOp::kQuery || op == ProtocolOp::kInsert ||
         op == ProtocolOp::kDelete;
}

}  // namespace

ProtocolService::ProtocolService(DatasetCatalog* catalog, ServiceOptions opts)
    : catalog_(catalog), opts_(std::move(opts)) {}

std::string ProtocolService::HandleLine(std::string_view line,
                                        uint64_t line_no) {
  Stopwatch timer;
  Request request;
  Status parse_status;
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    parse_status = parsed.status();
  } else if (!parsed->is_object()) {
    parse_status = Status::InvalidArgument(
        "each query line must be an object");
  } else {
    parse_status = ParseRequest(*parsed, &request);
  }
  if (request.id.empty()) {
    request.id = StrFormat("%llu", static_cast<unsigned long long>(line_no));
  }
  Response response;
  if (parse_status.ok()) {
    response = Execute(request);
  } else {
    response.id = request.id;
    response.op = request.op;
    response.ok = false;
    response.error = parse_status;
    response.has_seq = true;
    response.seq = ++seq_;
    ++failed_;
  }
  metrics_.Record(response.op, response.ok, timer.ElapsedMillis());
  return RenderResponse(response, opts_.envelope);
}

Response ProtocolService::Execute(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  Status status;

  if (IsPerDatasetOp(request.op)) {
    // The envelope labels the routed dataset even when the op fails.
    response.dataset = request.dataset;
    bool mutated = false;
    {
      ReaderMutexLock catalog_lock(&catalog_mu_);
      const std::shared_ptr<SharedMutex> dataset_mu = LockFor(request.dataset);
      // Queries share the dataset lock (the session's cache lookups are
      // internally synchronized); mutations hold it exclusively. Two
      // explicit lock scopes around one shared body — the thread-safety
      // analysis cannot follow a lock acquired on only one branch.
      if (request.op == ProtocolOp::kQuery) {
        ReaderMutexLock dataset_lock(dataset_mu.get());
        status = ExecutePerDataset(request, &response, &mutated);
      } else {
        WriterMutexLock dataset_lock(dataset_mu.get());
        status = ExecutePerDataset(request, &response, &mutated);
      }
    }
    MaybeRebalance(request.dataset);
    if (mutated) ++updates_;
  } else if (request.op == ProtocolOp::kList) {
    ReaderMutexLock catalog_lock(&catalog_mu_);
    response.list.datasets = catalog_->List();
    response.has_seq = true;
    response.seq = ++seq_;
    response.has_catalog_version = true;
    response.catalog_version = catalog_->version();
  } else {
    // Catalog-shape ops quiesce every dataset: register/drop change the
    // entry map under live sessions, save needs a stable table, and stats
    // reads per-session cache counters that in-flight solves would be
    // writing.
    WriterMutexLock catalog_lock(&catalog_mu_);
    switch (request.op) {
      case ProtocolOp::kRegister:
        response.dataset = request.reg.name;
        status = ExecuteRegister(request.reg, &response.reg);
        if (status.ok()) ++updates_;
        break;
      case ProtocolOp::kSave:
        response.dataset = request.save.name;
        status = catalog_->Save(request.save.name, request.save.path);
        response.save.name = request.save.name;
        response.save.path = request.save.path;
        break;
      case ProtocolOp::kDrop:
        response.dataset = request.drop.name;
        status = catalog_->Drop(request.drop.name);
        response.drop.name = request.drop.name;
        if (status.ok()) ++updates_;
        break;
      default:
        ExecuteStats(&response.stats);
        break;
    }
    response.has_seq = true;
    response.seq = ++seq_;
    response.has_catalog_version = true;
    response.catalog_version = catalog_->version();
  }

  if (status.ok()) {
    response.ok = true;
    ++served_;
  } else {
    response.ok = false;
    response.error = status;
    ++failed_;
  }
  return response;
}

Status ProtocolService::ExecutePerDataset(const Request& request,
                                          Response* response, bool* mutated) {
  Status status;
  auto session_or = catalog_->Session(request.dataset);
  if (!session_or.ok()) {
    status = session_or.status();
  } else {
    SolverSession* session = *session_or;
    // Serving marks this session hot; the global budget settles *after*
    // the op, never mid-solve (cache references handed to the algorithm
    // must stay valid).
    {
      MutexLock arbiter_lock(&arbiter_mu_);
      catalog_->arbiter()->Touch(session->cache());
    }
    switch (request.op) {
      case ProtocolOp::kQuery:
        status = ExecuteQuery(request.query, session, &response->query);
        break;
      case ProtocolOp::kInsert:
        status = ExecuteInsert(request.insert, session, &response->insert);
        *mutated = status.ok();
        break;
      default:
        status = ExecuteDelete(request.erase, session, &response->erase);
        *mutated = status.ok();
        break;
    }
  }
  // seq is drawn while the serving locks are still held — the
  // linearization contract replay depends on (docs/concurrency.md).
  response->has_seq = true;
  response->seq = ++seq_;
  response->has_catalog_version = true;
  response->catalog_version = catalog_->version();
  return status;
}

std::shared_ptr<SharedMutex> ProtocolService::LockFor(
    const std::string& name) {
  MutexLock lock(&locks_mu_);
  std::shared_ptr<SharedMutex>& slot = dataset_locks_[name];
  if (slot == nullptr) slot = std::make_shared<SharedMutex>();
  return slot;
}

void ProtocolService::MaybeRebalance(const std::string& route) {
  {
    MutexLock arbiter_lock(&arbiter_mu_);
    const CacheArbiter* arbiter = catalog_->arbiter();
    if (arbiter->budget_bytes() == 0 ||
        arbiter->total_bytes() <= arbiter->budget_bytes()) {
      return;
    }
  }
  // Eviction drops other sessions' caches wholesale — quiesce every
  // dataset so no in-flight solve holds references into one.
  WriterMutexLock catalog_lock(&catalog_mu_);
  MutexLock arbiter_lock(&arbiter_mu_);
  auto session_or = catalog_->Session(route);
  catalog_->arbiter()->Rebalance(
      session_or.ok() ? (*session_or)->cache() : nullptr);
}

Status ProtocolService::ExecuteQuery(const QueryRequest& request,
                                     SolverSession* session,
                                     QueryResponse* out) {
  SolverRequest solve;  // data/grouping stay null: the session pins them.
  solve.algorithm = request.algorithm;
  solve.seed = request.has_seed ? request.seed : opts_.default_seed;
  solve.threads = request.has_threads ? request.threads
                                      : opts_.default_threads;
  switch (request.bounds) {
    case QueryRequest::Bounds::kProportional:
      solve.bounds = GroupBounds::Proportional(
          request.k, session->group_counts(), request.alpha);
      break;
    case QueryRequest::Bounds::kBalanced: {
      FAIRHMS_ASSIGN_OR_RETURN(
          solve.bounds,
          GroupBounds::Balanced(request.k, session->grouping().num_groups,
                                request.alpha));
      break;
    }
    case QueryRequest::Bounds::kExplicit: {
      FAIRHMS_ASSIGN_OR_RETURN(
          solve.bounds,
          GroupBounds::Explicit(request.k, request.lower, request.upper));
      break;
    }
  }
  solve.params = request.params;
  solve.latency_budget_ms = request.latency_budget_ms;
  solve.quality_target = request.quality_target;
  solve.allow_warm_start = request.warm_start;

  FAIRHMS_ASSIGN_OR_RETURN(SolverResult run, session->Solve(solve));

  // Reference evaluation against the pinned dataset's global skyline —
  // both the skyline and any evaluation net come from the session cache.
  const Dataset& data = session->data();
  EvalOptions eval_opts;
  eval_opts.threads = solve.threads;
  eval_opts.cache = session->cache();
  const double mhr = EvaluateMhr(data, session->cache()->Skyline(data),
                                 run.solution.rows, eval_opts);

  out->algorithm = run.algorithm;
  out->k = request.k;
  out->seed = solve.seed;
  out->threads = solve.threads;
  out->rows = run.solution.rows;
  out->happiness_ratio = mhr;
  out->algo_mhr_estimate = run.solution.mhr;
  out->violations = run.violations;
  out->group_counts = run.group_counts;
  out->note = run.note;
  out->planned = run.plan.planned;
  out->predicted_ms = run.plan.predicted_ms;
  out->predicted_hr = run.plan.predicted_hr;
  out->plan_reason = run.plan.reason;
  out->plan_params = run.plan.params;
  out->warm_start = run.warm_start_used;
  out->solve_ms = run.solve_ms;
  out->total_ms = run.total_ms;
  return Status::OK();
}

Status ProtocolService::ExecuteInsert(const InsertRequest& request,
                                      SolverSession* session,
                                      InsertResponse* out) {
  Dataset* data = session->mutable_data();
  const std::vector<double>& coords = request.point;
  // Pre-validate the point so a bad line is rejected before this op
  // mutates anything (in particular before new labels register below).
  if (coords.size() != static_cast<size_t>(data->dim())) {
    return Status::InvalidArgument(
        StrFormat("\"point\" has %zu coordinates but the dataset is %d-d",
                  coords.size(), data->dim()));
  }
  for (size_t j = 0; j < coords.size(); ++j) {
    if (!std::isfinite(coords[j]) || coords[j] < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "\"point\" entry %zu (%g) must be finite and nonnegative", j,
          coords[j]));
    }
  }
  std::vector<PendingLabel> pending;
  FAIRHMS_ASSIGN_OR_RETURN(std::vector<int> codes,
                           CodesFromCats(request, *data, &pending));
  // With grouping columns the column values must always be given — a
  // defaulted code would misroute a derived insert or poison the
  // combination table consulted by explicit ones.
  for (const std::string& col : session->group_column_names()) {
    bool given = false;
    if (request.has_cats) {
      for (const InsertRequest::CatEntry& entry : request.cats) {
        if (entry.column == col) {
          given = true;
          break;
        }
      }
    }
    if (!given) {
      return Status::InvalidArgument(StrFormat(
          "inserts must give \"cats\" values for every --group_by column "
          "(missing '%s')", col.c_str()));
    }
  }
  int group = -1;
  if (request.group == InsertRequest::Group::kName) {
    const Grouping& grouping = session->grouping();
    for (int c = 0; c < grouping.num_groups; ++c) {
      if (grouping.names[static_cast<size_t>(c)] == request.group_name) {
        group = c;
        break;
      }
    }
    if (group < 0) {
      return Status::InvalidArgument(StrFormat(
          "unknown group '%s'", request.group_name.c_str()));
    }
  } else if (request.group == InsertRequest::Group::kId) {
    // Range-check before narrowing so huge values fail instead of
    // wrapping onto a valid group id.
    if (request.group_id < 0 ||
        request.group_id >= session->grouping().num_groups) {
      return Status::InvalidArgument(StrFormat(
          "\"group\" %lld out of range (the grouping has %d groups)",
          static_cast<long long>(request.group_id),
          session->grouping().num_groups));
    }
    group = static_cast<int>(request.group_id);
  }
  // Run the session's own routing checks (contradicting explicit group,
  // missing provenance) before this op mutates anything; only then
  // register the labels it introduced and insert.
  FAIRHMS_RETURN_IF_ERROR(session->ResolveInsertGroup(codes, group).status());
  for (const PendingLabel& p : pending) {
    data->AddCategoricalLabel(p.col, p.label);
  }
  FAIRHMS_ASSIGN_OR_RETURN(const int row,
                           session->Insert(coords, codes, group));
  const int assigned =
      session->grouping().group_of[static_cast<size_t>(row)];
  out->row = row;
  out->group = assigned;
  out->group_name = session->grouping().names[static_cast<size_t>(assigned)];
  out->version = session->version();
  out->live_rows = session->data().live_size();
  return Status::OK();
}

Status ProtocolService::ExecuteDelete(const DeleteRequest& request,
                                      SolverSession* session,
                                      DeleteResponse* out) {
  std::vector<int> rows;
  for (const int64_t row : request.rows) {
    // Range-check before narrowing so huge values fail instead of
    // wrapping onto (and tombstoning) a valid row.
    if (row < 0 || static_cast<size_t>(row) >= session->data().size()) {
      return Status::OutOfRange(StrFormat(
          "cannot erase row %lld of a %zu-row dataset",
          static_cast<long long>(row), session->data().size()));
    }
    rows.push_back(static_cast<int>(row));
  }
  FAIRHMS_RETURN_IF_ERROR(session->Erase(rows));
  out->erased = rows.size();
  out->version = session->version();
  out->live_rows = session->data().live_size();
  return Status::OK();
}

Status ProtocolService::ExecuteRegister(const RegisterRequest& request,
                                        RegisterResponse* out) {
  if (request.source == RegisterRequest::Source::kSnapshot) {
    FAIRHMS_RETURN_IF_ERROR(
        catalog_->Load(request.name, request.snapshot_path));
  } else {
    Rng rng(request.has_seed ? request.seed : opts_.default_seed);
    FAIRHMS_ASSIGN_OR_RETURN(
        Dataset raw, MakeSyntheticDataset(request.synthetic, request.n,
                                          request.dim, &rng));
    FAIRHMS_ASSIGN_OR_RETURN(Dataset data,
                             NormalizeDatasetByName(request.normalize,
                                                    std::move(raw)));
    std::vector<std::string> group_columns;
    Grouping grouping;
    if (request.has_group_by) {
      group_columns = request.group_by;
      FAIRHMS_ASSIGN_OR_RETURN(grouping,
                               GroupByCategoricalProduct(data, group_columns));
    } else {
      if (request.groups < 1 ||
          request.groups > static_cast<int64_t>(data.size())) {
        return Status::InvalidArgument(StrFormat(
            "\"groups\" must be in [1, %zu]", data.size()));
      }
      if (request.groups == 1) {
        grouping = SingleGroup(data.size());
      } else {
        grouping = GroupBySumRank(data, static_cast<int>(request.groups));
      }
    }
    FAIRHMS_RETURN_IF_ERROR(catalog_->Register(
        request.name, std::move(data), std::move(grouping), group_columns));
  }
  FAIRHMS_ASSIGN_OR_RETURN(SolverSession * session,
                           catalog_->Session(request.name));
  out->name = request.name;
  out->rows = session->data().live_size();
  out->dim = session->data().dim();
  out->groups = session->grouping().num_groups;
  return Status::OK();
}

void ProtocolService::ExecuteStats(StatsResponse* out) {
  for (const std::string& name : catalog_->List()) {
    auto session_or = catalog_->Session(name);
    if (!session_or.ok()) continue;
    SolverSession* session = *session_or;
    const CacheStats cache = session->cache_stats();
    StatsResponse::DatasetStats ds;
    ds.name = name;
    ds.live_rows = session->data().live_size();
    ds.total_rows = session->data().size();
    ds.dim = session->data().dim();
    ds.groups = session->grouping().num_groups;
    ds.version = session->version();
    ds.cache_hits = cache.TotalHits();
    ds.cache_misses = cache.TotalMisses();
    ds.cache_bytes = cache.TotalBytes();
    const std::pair<const char*, const CacheStats::Counter*> classes[] = {
        {"nets", &cache.nets},
        {"evaluators", &cache.evaluators},
        {"skylines", &cache.skylines},
        {"group_skylines", &cache.group_skylines},
        {"pools", &cache.pools},
        {"groups", &cache.groups},
        {"projections", &cache.projections},
    };
    for (const auto& [cls_name, counter] : classes) {
      StatsResponse::DatasetStats::CacheClassStats cls;
      cls.name = cls_name;
      cls.hits = counter->hits;
      cls.misses = counter->misses;
      cls.bytes = counter->bytes;
      ds.cache_classes.push_back(std::move(cls));
    }
    out->datasets.push_back(std::move(ds));
  }
  {
    MutexLock arbiter_lock(&arbiter_mu_);
    const CacheArbiter* arbiter = catalog_->arbiter();
    out->cache_budget_bytes = arbiter->budget_bytes();
    out->cache_total_bytes = arbiter->total_bytes();
    out->cache_evictions = arbiter->evictions();
    for (const CacheArbiter::LedgerEntry& entry : arbiter->Ledger()) {
      out->cache_sessions.push_back(
          {entry.name, entry.charged_bytes, entry.last_touch});
    }
  }
  const OpMetrics::Snapshot metrics = metrics_.snapshot();
  out->served = metrics.served;
  out->failed = metrics.failed;
  out->uptime_ms = metrics.uptime_ms;
  out->qps = metrics.qps;
  out->simd_level = simd::DispatchLevelName(simd::ActiveLevel());
  out->simd_mode = simd::SimdModeName(simd::Mode());
  for (int i = 0; i < kNumProtocolOps; ++i) {
    const OpMetrics::OpSnapshot& op = metrics.ops[static_cast<size_t>(i)];
    if (op.count == 0) continue;
    StatsResponse::OpStats stats;
    stats.op = static_cast<ProtocolOp>(i);
    stats.count = op.count;
    stats.errors = op.errors;
    stats.total_ms = op.total_ms;
    stats.p50_ms = op.p50_ms;
    stats.p99_ms = op.p99_ms;
    out->ops.push_back(stats);
  }
}

Status ProtocolService::SnapshotReload(const std::string& dir) {
  WriterMutexLock catalog_lock(&catalog_mu_);
  const std::vector<std::string> names = catalog_->List();
  // Validate and save everything before the first drop, so a bad name or
  // unwritable directory aborts with the catalog untouched.
  std::vector<std::string> paths;
  for (const std::string& name : names) {
    if (name.empty() || name.find('/') != std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "cannot snapshot dataset '%s': names with '/' have no snapshot "
          "file name", name.c_str()));
    }
    paths.push_back(dir + "/" + name + ".snap");
  }
  for (size_t i = 0; i < names.size(); ++i) {
    FAIRHMS_RETURN_IF_ERROR(catalog_->Save(names[i], paths[i]));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    FAIRHMS_RETURN_IF_ERROR(catalog_->Drop(names[i]));
    FAIRHMS_RETURN_IF_ERROR(catalog_->Load(names[i], paths[i]));
  }
  return Status::OK();
}

}  // namespace fairhms
