#include "api/metrics.h"

#include <algorithm>

namespace fairhms {

namespace {

/// Nearest-rank percentile over an unsorted copy of the sample window.
double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

void OpMetrics::Record(ProtocolOp op, bool ok, double ms) {
  MutexLock lock(&mu_);
  PerOp& per_op = ops_[static_cast<size_t>(op)];
  ++per_op.count;
  if (!ok) ++per_op.errors;
  per_op.total_ms += ms;
  if (per_op.window.size() < kLatencyWindow) {
    per_op.window.push_back(ms);
  } else {
    per_op.window[per_op.next] = ms;
    per_op.next = (per_op.next + 1) % kLatencyWindow;
  }
}

OpMetrics::Snapshot OpMetrics::snapshot() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const PerOp& per_op = ops_[i];
    OpSnapshot& out = snap.ops[i];
    out.count = per_op.count;
    out.errors = per_op.errors;
    out.total_ms = per_op.total_ms;
    out.p50_ms = Percentile(per_op.window, 50.0);
    out.p99_ms = Percentile(per_op.window, 99.0);
    snap.served += per_op.count - per_op.errors;
    snap.failed += per_op.errors;
  }
  snap.uptime_ms = uptime_.ElapsedMillis();
  if (snap.uptime_ms > 0.0) {
    snap.qps = static_cast<double>(snap.served + snap.failed) /
               (snap.uptime_ms / 1000.0);
  }
  return snap;
}

}  // namespace fairhms
