// AlgoParams: the typed key-value parameter bag of the unified solver API,
// plus the per-algorithm parameter schema it is validated against.
//
// Algorithms publish a vector<ParamSpec> (name, type, default, range) in
// their registry entry; Solver::Solve validates a request's AlgoParams
// against that schema before the algorithm runs, so every engine rejects
// malformed knobs with the same InvalidArgument shape instead of each one
// improvising (or silently ignoring) its own checks.

#ifndef FAIRHMS_API_PARAMS_H_
#define FAIRHMS_API_PARAMS_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace fairhms {

/// Wire type of one algorithm parameter.
enum class ParamType { kInt, kDouble, kBool, kString };

/// Canonical spelling ("int", "double", "bool", "string").
const char* ParamTypeToString(ParamType type);

/// Schema entry for one algorithm parameter. Ranges apply to numeric types
/// (kInt values are range-checked after conversion to double; the bounds
/// are inclusive unless the matching *_exclusive flag is set). String
/// parameters may restrict values to `choices`.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kDouble;
  std::string description;
  /// Display default, e.g. "0.02" or "auto" (the algorithm's Options struct
  /// remains the source of truth for the actual value).
  std::string default_value;
  double min_value = -1e308;
  double max_value = 1e308;
  bool min_exclusive = false;
  bool max_exclusive = false;
  std::vector<std::string> choices;  ///< Allowed values (kString only).
};

/// Typed key-value bag carried by SolverRequest. Only explicitly-set keys
/// exist; absent keys mean "use the algorithm's built-in default".
class AlgoParams {
 public:
  using Value = std::variant<int64_t, double, bool, std::string>;

  void SetInt(const std::string& name, int64_t v) { values_[name] = v; }
  void SetDouble(const std::string& name, double v) { values_[name] = v; }
  void SetBool(const std::string& name, bool v) { values_[name] = v; }
  void SetString(const std::string& name, std::string v) {
    values_[name] = std::move(v);
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  bool empty() const { return values_.empty(); }

  /// Typed getters with fallback. Numeric getters coerce int <-> double;
  /// a type-mismatched entry returns the fallback (Validate() rejects such
  /// entries before any algorithm reads them).
  int64_t IntOr(const std::string& name, int64_t def) const;
  double DoubleOr(const std::string& name, double def) const;
  bool BoolOr(const std::string& name, bool def) const;
  std::string StringOr(const std::string& name, const std::string& def) const;

  /// Keys in sorted order (std::map iteration order).
  std::vector<std::string> Keys() const;

  const std::map<std::string, Value>& values() const { return values_; }

 private:
  std::map<std::string, Value> values_;
};

/// Validates `params` against `schema` for error messages mentioning
/// `algorithm`: unknown keys (message lists the valid names), type
/// mismatches (int is accepted where double is expected), numeric range
/// violations, and out-of-choice strings all return InvalidArgument.
Status ValidateParams(const std::string& algorithm,
                      const std::vector<ParamSpec>& schema,
                      const AlgoParams& params);

}  // namespace fairhms

#endif  // FAIRHMS_API_PARAMS_H_
