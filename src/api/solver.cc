#include "api/solver.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

/// Copies the first two numeric attributes (exact-2D algorithms select on
/// this projection; evaluation downstream stays full-dimensional).
Dataset ProjectTo2D(const Dataset& data) {
  Dataset proj(std::vector<std::string>{data.attr_names()[0],
                                        data.attr_names()[1]});
  proj.Reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    proj.AddPoint({data.at(i, 0), data.at(i, 1)});
  }
  return proj;
}

Status ValidateShape(const SolverRequest& req, const AlgorithmInfo** info_out) {
  if (req.data == nullptr) {
    return Status::InvalidArgument("request.data must not be null");
  }
  if (req.grouping == nullptr) {
    return Status::InvalidArgument("request.grouping must not be null");
  }
  if (req.data->size() == 0) {
    return Status::InvalidArgument("request.data must not be empty");
  }
  if (req.grouping->group_of.size() != req.data->size()) {
    return Status::InvalidArgument(
        StrFormat("grouping covers %zu rows but the dataset has %zu",
                  req.grouping->group_of.size(), req.data->size()));
  }
  if (req.bounds.k <= 0) {
    return Status::InvalidArgument(
        StrFormat("k must be >= 1, got %d", req.bounds.k));
  }
  if (req.bounds.num_groups() != req.grouping->num_groups) {
    return Status::InvalidArgument(
        StrFormat("bounds list %d groups but the grouping has %d",
                  req.bounds.num_groups(), req.grouping->num_groups));
  }
  if (req.threads < 0 || req.threads > 4096) {
    return Status::InvalidArgument(StrFormat(
        "threads must be in [0, 4096] (0 = all hardware threads), got %d",
        req.threads));
  }
  const AlgorithmRegistry& registry = AlgorithmRegistry::Instance();
  const AlgorithmInfo* info = registry.Find(req.algorithm);
  if (info == nullptr) {
    if (req.algorithm.empty()) {
      return Status::InvalidArgument(StrFormat(
          "no algorithm requested (valid: %s)",
          registry.NamesForError().c_str()));
    }
    return Status::InvalidArgument(
        StrFormat("unknown algorithm '%s' (valid: %s)", req.algorithm.c_str(),
                  registry.NamesForError().c_str()));
  }
  if (info->caps.exact_2d && req.data->dim() < 2) {
    return Status::InvalidArgument(StrFormat(
        "%s needs at least 2 numeric attributes", info->name.c_str()));
  }
  FAIRHMS_RETURN_IF_ERROR(
      ValidateParams(info->name, info->params, req.params));
  FAIRHMS_RETURN_IF_ERROR(req.bounds.Validate(req.grouping->Counts()));
  if (info_out != nullptr) *info_out = info;
  return Status::OK();
}

}  // namespace

Status Solver::Validate(const SolverRequest& request) {
  return ValidateShape(request, nullptr);
}

StatusOr<SolverResult> Solver::Solve(const SolverRequest& request) {
  Stopwatch total;
  const AlgorithmInfo* info = nullptr;
  FAIRHMS_RETURN_IF_ERROR(ValidateShape(request, &info));

  SolverResult result;
  result.algorithm = info->name;
  result.bounds = request.bounds;

  // Exact-2D fallback, applied uniformly for every algorithm that declares
  // the capability: select on the first-two-attribute projection, note it.
  // (dim >= 2 was already enforced by ValidateShape.)
  Dataset projected(1);
  const Dataset* solve_data = request.data;
  if (info->caps.exact_2d && request.data->dim() > 2) {
    projected = ProjectTo2D(*request.data);
    solve_data = &projected;
    result.note = StrFormat(
        "%s is exact-2D; selected on the (%s, %s) projection, evaluated in "
        "full %dD",
        info->name.c_str(), request.data->attr_names()[0].c_str(),
        request.data->attr_names()[1].c_str(), request.data->dim());
  }

  // Unconstrained baselines run on the global skyline; the bounds are only
  // used for the violation report below.
  std::vector<int> skyline;
  if (!info->caps.fairness_aware) {
    skyline = ComputeSkyline(*solve_data);
    if (result.note.empty()) {
      result.note =
          "fairness-unaware baseline; bounds only used for the violation "
          "report";
    }
  }

  SolveContext ctx;
  ctx.data = solve_data;
  ctx.grouping = request.grouping;
  ctx.bounds = &request.bounds;
  ctx.skyline = &skyline;
  ctx.seed = request.seed;
  ctx.threads = request.threads;
  ctx.params = &request.params;

  FAIRHMS_ASSIGN_OR_RETURN(result.solution, info->solve(ctx));
  if (result.solution.algorithm.empty()) {
    result.solution.algorithm = info->display_name;
  }
  // Hand the skyline back so callers need not recompute it — but only when
  // it belongs to the caller's dataset (not a 2D projection).
  if (solve_data == request.data) result.skyline = std::move(skyline);
  result.group_counts =
      SolutionGroupCounts(result.solution.rows, *request.grouping);
  result.violations =
      CountViolations(result.solution.rows, *request.grouping, request.bounds);
  result.solve_ms = result.solution.elapsed_ms;
  result.total_ms = total.ElapsedMillis();
  return result;
}

}  // namespace fairhms
