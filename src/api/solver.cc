#include "api/solver.h"

#include "api/session.h"

namespace fairhms {

Status Solver::Validate(const SolverRequest& request) {
  return internal::ValidateRequestShape(request, nullptr);
}

StatusOr<SolverResult> Solver::Solve(const SolverRequest& request) {
  // One-shot solves are the single-query special case of a session: a
  // throwaway session runs the query cold. Create and Solve emit the same
  // uniform validation messages ValidateRequestShape produces, so no
  // pre-validation pass is needed here. Sweep workloads should hold a
  // SolverSession (api/session.h) instead and reuse its artifact cache.
  FAIRHMS_ASSIGN_OR_RETURN(
      SolverSession session,
      SolverSession::Create(request.data, request.grouping));
  return session.Solve(request);
}

}  // namespace fairhms
