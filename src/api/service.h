// ProtocolService: the one implementation of the FairHMS wire protocol
// (api/protocol.h) over a DatasetCatalog. Both transports — the
// `fairhms_cli --queries` batch driver and the fairhms_serve daemon — feed
// request lines through HandleLine and write the returned response line,
// so protocol behavior cannot fork between them.
//
// Concurrency: the batch CLI calls HandleLine from one thread; the daemon
// calls it from a worker pool. Internally:
//
//   * catalog_mu_ (shared_mutex) — catalog-shape ops (register / save /
//     drop / stats / snapshot-reload) take it exclusively; per-dataset ops
//     and list take it shared, so solves on distinct datasets proceed in
//     parallel but never race a registration.
//   * one shared_mutex per dataset name — queries take it shared (solves
//     on the same dataset may share its ArtifactCache read paths),
//     insert/delete take it exclusively.
//   * seq_ — every response is stamped with a global sequence number drawn
//     while its locks are held. Replaying a merged multi-client log in seq
//     order through a fresh service reproduces the exact responses
//     (queries commute under shared locks; mutations serialize), which is
//     how the concurrent integration test checks linearizability.
//   * CacheArbiter calls are serialized by arbiter_mu_; Rebalance — which
//     may evict *other* sessions' caches — runs only under the exclusive
//     catalog lock, after the serving op released its locks, and only when
//     the global total actually exceeds the budget (equivalent to the
//     legacy unconditional call, which no-ops under budget, but safe to
//     run next to concurrent solves).

#ifndef FAIRHMS_API_SERVICE_H_
#define FAIRHMS_API_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "api/catalog.h"
#include "api/metrics.h"
#include "api/protocol.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace fairhms {

struct ServiceOptions {
  /// Seed for queries / register ops that do not carry their own.
  uint64_t default_seed = 42;
  /// Thread count for queries that do not carry their own (0 = all).
  int default_threads = 0;
  /// Envelope the rendered responses use: the batch CLI keeps the legacy
  /// version-0 envelope (bit-identical output); the daemon serves the
  /// versioned envelope with sequence numbers.
  EnvelopeOptions envelope;
};

class ProtocolService {
 public:
  /// `catalog` must outlive the service and, in concurrent use, must only
  /// be mutated through the service (the locking above is the only writer
  /// coordination).
  ProtocolService(DatasetCatalog* catalog, ServiceOptions opts);

  /// Serves one raw request line: parse, execute, render. `line_no` is the
  /// 1-based line (or per-connection request) number used as the default
  /// id. Returns the response line without a trailing newline; never
  /// throws or crashes on malformed input — errors become error responses.
  /// Thread-safe.
  std::string HandleLine(std::string_view line, uint64_t line_no);

  /// Typed entry: executes one parsed request (id must already be
  /// resolved, i.e. non-empty). Thread-safe.
  Response Execute(const Request& request);

  /// Successful / failed / catalog-mutating (insert, delete, register,
  /// drop) request counts, matching the legacy batch driver's report.
  uint64_t served() const { return served_.load(); }
  uint64_t failed() const { return failed_.load(); }
  uint64_t updates() const { return updates_.load(); }

  OpMetrics* metrics() { return &metrics_; }
  DatasetCatalog* catalog() { return catalog_; }
  const ServiceOptions& options() const { return opts_; }

  /// Quiesces the catalog (exclusive lock), saves every dataset to
  /// `dir/<name>.snap`, then drops and reloads each from its fresh
  /// snapshot — the daemon's SIGHUP handler. Names must be
  /// filesystem-safe (no '/'); saves run for all datasets before any
  /// drop, so a failed save aborts with the catalog untouched.
  Status SnapshotReload(const std::string& dir) FAIRHMS_EXCLUDES(catalog_mu_);

 private:
  std::shared_ptr<SharedMutex> LockFor(const std::string& name)
      FAIRHMS_EXCLUDES(locks_mu_);
  /// Settles the global cache budget after a per-dataset op, outside that
  /// op's locks; prefers keeping `route`'s cache when it must evict.
  void MaybeRebalance(const std::string& route)
      FAIRHMS_EXCLUDES(catalog_mu_, arbiter_mu_);

  /// The locked body of a per-dataset op: session lookup, arbiter Touch,
  /// dispatch, and the seq / catalog_version stamp — all while the caller
  /// holds the catalog lock shared AND the routed dataset's lock (shared
  /// for queries, exclusive for mutations; the dataset lock is dynamic,
  /// so only the catalog capability is expressible here).
  Status ExecutePerDataset(const Request& request, Response* response,
                           bool* mutated)
      FAIRHMS_REQUIRES_SHARED(catalog_mu_);

  Status ExecuteQuery(const QueryRequest& request, SolverSession* session,
                      QueryResponse* out);
  Status ExecuteInsert(const InsertRequest& request, SolverSession* session,
                       InsertResponse* out);
  Status ExecuteDelete(const DeleteRequest& request, SolverSession* session,
                       DeleteResponse* out);
  Status ExecuteRegister(const RegisterRequest& request, RegisterResponse* out)
      FAIRHMS_REQUIRES(catalog_mu_);
  void ExecuteStats(StatsResponse* out) FAIRHMS_REQUIRES(catalog_mu_);

  DatasetCatalog* catalog_;
  const ServiceOptions opts_;
  OpMetrics metrics_;

  // Lock order (docs/concurrency.md): catalog_mu_ -> locks_mu_, and
  // catalog_mu_ -> (per-dataset lock) -> arbiter_mu_. locks_mu_ and
  // arbiter_mu_ are leaves of their chains and never nest with each other.
  SharedMutex catalog_mu_ FAIRHMS_ACQUIRED_BEFORE(locks_mu_, arbiter_mu_);
  Mutex locks_mu_;
  std::map<std::string, std::shared_ptr<SharedMutex>> dataset_locks_
      FAIRHMS_GUARDED_BY(locks_mu_);
  /// Serializes the arbiter's Touch/Rebalance decision windows; the
  /// CacheArbiter itself is internally locked.
  Mutex arbiter_mu_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> updates_{0};
};

}  // namespace fairhms

#endif  // FAIRHMS_API_SERVICE_H_
