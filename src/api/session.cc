#include "api/session.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "skyline/skyline.h"

namespace fairhms {

namespace internal {

Status ValidateRequestShape(const SolverRequest& req,
                            const AlgorithmInfo** info_out,
                            ArtifactCache* cache) {
  if (req.data == nullptr) {
    return Status::InvalidArgument("request.data must not be null");
  }
  if (req.grouping == nullptr) {
    return Status::InvalidArgument("request.grouping must not be null");
  }
  if (req.data->size() == 0) {
    return Status::InvalidArgument("request.data must not be empty");
  }
  if (req.grouping->group_of.size() != req.data->size()) {
    return Status::InvalidArgument(
        StrFormat("grouping covers %zu rows but the dataset has %zu",
                  req.grouping->group_of.size(), req.data->size()));
  }
  if (req.bounds.k <= 0) {
    return Status::InvalidArgument(
        StrFormat("k must be >= 1, got %d", req.bounds.k));
  }
  if (req.bounds.num_groups() != req.grouping->num_groups) {
    return Status::InvalidArgument(
        StrFormat("bounds list %d groups but the grouping has %d",
                  req.bounds.num_groups(), req.grouping->num_groups));
  }
  if (req.threads < 0 || req.threads > 4096) {
    return Status::InvalidArgument(StrFormat(
        "threads must be in [0, 4096] (0 = all hardware threads), got %d",
        req.threads));
  }
  const AlgorithmRegistry& registry = AlgorithmRegistry::Instance();
  const AlgorithmInfo* info = registry.Find(req.algorithm);
  if (info == nullptr) {
    if (req.algorithm.empty()) {
      return Status::InvalidArgument(StrFormat(
          "no algorithm requested (valid: %s)",
          registry.NamesForError().c_str()));
    }
    return Status::InvalidArgument(
        StrFormat("unknown algorithm '%s' (valid: %s)", req.algorithm.c_str(),
                  registry.NamesForError().c_str()));
  }
  if (info->caps.exact_2d && req.data->dim() < 2) {
    return Status::InvalidArgument(StrFormat(
        "%s needs at least 2 numeric attributes", info->name.c_str()));
  }
  FAIRHMS_RETURN_IF_ERROR(
      ValidateParams(info->name, info->params, req.params));
  FAIRHMS_RETURN_IF_ERROR(req.bounds.Validate(
      cache != nullptr ? cache->GroupCounts(*req.grouping)
                       : req.grouping->Counts()));
  if (info_out != nullptr) *info_out = info;
  return Status::OK();
}

}  // namespace internal

SolverSession::SolverSession(const Dataset* data, const Grouping* grouping)
    : data_(data),
      grouping_(grouping),
      cache_(new ArtifactCache()),
      projection_mu_(new std::mutex()) {}

StatusOr<SolverSession> SolverSession::Create(const Dataset* data,
                                              const Grouping* grouping) {
  if (data == nullptr) {
    return Status::InvalidArgument("request.data must not be null");
  }
  if (grouping == nullptr) {
    return Status::InvalidArgument("request.grouping must not be null");
  }
  if (data->size() == 0) {
    return Status::InvalidArgument("request.data must not be empty");
  }
  if (grouping->group_of.size() != data->size()) {
    return Status::InvalidArgument(
        StrFormat("grouping covers %zu rows but the dataset has %zu",
                  grouping->group_of.size(), data->size()));
  }
  return SolverSession(data, grouping);
}

const Dataset& SolverSession::Projection2D() {
  std::lock_guard<std::mutex> lock(*projection_mu_);
  const bool hit = projection2d_ != nullptr;
  cache_->AccountProjection(hit, data_->size() * 2 * sizeof(double));
  if (!hit) {
    auto proj = std::make_unique<Dataset>(std::vector<std::string>{
        data_->attr_names()[0], data_->attr_names()[1]});
    proj->Reserve(data_->size());
    for (size_t i = 0; i < data_->size(); ++i) {
      proj->AddPoint({data_->at(i, 0), data_->at(i, 1)});
    }
    projection2d_ = std::move(proj);
  }
  return *projection2d_;
}

StatusOr<SolverResult> SolverSession::Solve(const SolverRequest& request) {
  Stopwatch total;
  SolverRequest req = request;
  if (req.data == nullptr) req.data = data_;
  if (req.grouping == nullptr) req.grouping = grouping_;
  if (req.data != data_) {
    return Status::InvalidArgument(
        "request.data does not match the session's pinned dataset");
  }
  if (req.grouping != grouping_) {
    return Status::InvalidArgument(
        "request.grouping does not match the session's pinned grouping");
  }

  const AlgorithmInfo* info = nullptr;
  FAIRHMS_RETURN_IF_ERROR(
      internal::ValidateRequestShape(req, &info, cache_.get()));

  SolverResult result;
  result.algorithm = info->name;
  result.bounds = req.bounds;

  // Exact-2D fallback, applied uniformly for every algorithm that declares
  // the capability: select on the first-two-attribute projection, note it.
  // The projection is prepared once per session. (dim >= 2 was already
  // enforced by ValidateRequestShape.)
  const Dataset* solve_data = req.data;
  if (info->caps.exact_2d && req.data->dim() > 2) {
    solve_data = &Projection2D();
    result.note = StrFormat(
        "%s is exact-2D; selected on the (%s, %s) projection, evaluated in "
        "full %dD",
        info->name.c_str(), req.data->attr_names()[0].c_str(),
        req.data->attr_names()[1].c_str(), req.data->dim());
  }

  // Unconstrained baselines run on the global skyline (memoized per
  // projection key); the bounds are only used for the violation report.
  static const std::vector<int> kNoSkyline;
  const std::vector<int>* skyline = &kNoSkyline;
  if (!info->caps.fairness_aware) {
    skyline = &cache_->Skyline(*solve_data);
    if (result.note.empty()) {
      result.note =
          "fairness-unaware baseline; bounds only used for the violation "
          "report";
    }
  }

  SolveContext ctx;
  ctx.data = solve_data;
  ctx.grouping = req.grouping;
  ctx.bounds = &req.bounds;
  ctx.skyline = skyline;
  ctx.seed = req.seed;
  ctx.threads = req.threads;
  ctx.params = &req.params;
  ctx.cache = cache_.get();

  FAIRHMS_ASSIGN_OR_RETURN(result.solution, info->solve(ctx));
  if (result.solution.algorithm.empty()) {
    result.solution.algorithm = info->display_name;
  }
  // Hand the skyline back so callers need not recompute it — but only when
  // it belongs to the caller's dataset (not a 2D projection).
  if (solve_data == req.data) result.skyline = *skyline;
  result.group_counts =
      SolutionGroupCounts(result.solution.rows, *req.grouping);
  result.violations =
      CountViolations(result.solution.rows, *req.grouping, req.bounds);
  result.solve_ms = result.solution.elapsed_ms;
  result.total_ms = total.ElapsedMillis();
  return result;
}

void SolverSession::ClearCache() {
  cache_->Clear();
  std::lock_guard<std::mutex> lock(*projection_mu_);
  projection2d_.reset();
}

}  // namespace fairhms
