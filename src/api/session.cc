#include "api/session.h"

#include <cmath>
#include <cstdlib>
#include <utility>
#include <variant>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "plan/planner.h"
#include "skyline/skyline.h"

namespace fairhms {

namespace internal {

Status ValidateRequestShape(const SolverRequest& req,
                            const AlgorithmInfo** info_out,
                            ArtifactCache* cache) {
  if (req.data == nullptr) {
    return Status::InvalidArgument("request.data must not be null");
  }
  if (req.grouping == nullptr) {
    return Status::InvalidArgument("request.grouping must not be null");
  }
  if (req.data->size() == 0) {
    return Status::InvalidArgument("request.data must not be empty");
  }
  if (req.data->live_size() == 0) {
    return Status::InvalidArgument(
        "request.data has no live rows (everything was erased)");
  }
  if (req.grouping->group_of.size() != req.data->size()) {
    return Status::InvalidArgument(
        StrFormat("grouping covers %zu rows but the dataset has %zu",
                  req.grouping->group_of.size(), req.data->size()));
  }
  if (req.bounds.k <= 0) {
    return Status::InvalidArgument(
        StrFormat("k must be >= 1, got %d", req.bounds.k));
  }
  if (req.bounds.num_groups() != req.grouping->num_groups) {
    return Status::InvalidArgument(
        StrFormat("bounds list %d groups but the grouping has %d",
                  req.bounds.num_groups(), req.grouping->num_groups));
  }
  if (req.threads < 0 || req.threads > 4096) {
    return Status::InvalidArgument(StrFormat(
        "threads must be in [0, 4096] (0 = all hardware threads), got %d",
        req.threads));
  }
  if (req.algorithm == "auto") {
    // Planner placeholder: SolverSession::Solve rewrites it to a concrete
    // registry name (plan/planner.h) and re-validates, so the algorithm-
    // specific checks (schema, exact-2D dimension) run against the actual
    // choice. Only the algorithm-independent checks apply here.
    FAIRHMS_RETURN_IF_ERROR(req.bounds.Validate(
        cache != nullptr ? cache->GroupCounts(*req.data, *req.grouping)
                         : req.grouping->LiveCounts(*req.data),
        &req.grouping->names));
    if (info_out != nullptr) *info_out = nullptr;
    return Status::OK();
  }
  const AlgorithmRegistry& registry = AlgorithmRegistry::Instance();
  const AlgorithmInfo* info = registry.Find(req.algorithm);
  if (info == nullptr) {
    if (req.algorithm.empty()) {
      return Status::InvalidArgument(StrFormat(
          "no algorithm requested (valid: %s)",
          registry.NamesForError().c_str()));
    }
    return Status::InvalidArgument(
        StrFormat("unknown algorithm '%s' (valid: %s)", req.algorithm.c_str(),
                  registry.NamesForError().c_str()));
  }
  if (info->caps.exact_2d && req.data->dim() < 2) {
    return Status::InvalidArgument(StrFormat(
        "%s needs at least 2 numeric attributes", info->name.c_str()));
  }
  FAIRHMS_RETURN_IF_ERROR(
      ValidateParams(info->name, info->params, req.params));
  FAIRHMS_RETURN_IF_ERROR(req.bounds.Validate(
      cache != nullptr ? cache->GroupCounts(*req.data, *req.grouping)
                       : req.grouping->LiveCounts(*req.data),
      &req.grouping->names));
  if (info_out != nullptr) *info_out = info;
  return Status::OK();
}

}  // namespace internal

namespace {

/// How much of the solution the lower bounds pin down, in [0, 1]. The
/// cost-model signature and the planner both bucket on this.
double BoundsTightness(const GroupBounds& bounds) {
  if (bounds.k <= 0) return 0.0;
  long long lower_sum = 0;
  for (const int lo : bounds.lower) lower_sum += lo;
  double t = static_cast<double>(lower_sum) / static_cast<double>(bounds.k);
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return t;
}

/// Deterministic fingerprint of a params bag; warm-start memos compare it
/// so a hint never crosses a parameter change.
std::string ParamsFingerprint(const AlgoParams& params) {
  std::string out;
  for (const auto& [key, value] : params.values()) {
    out += key;
    out += '=';
    if (const auto* i = std::get_if<int64_t>(&value)) {
      out += StrFormat("i%lld", static_cast<long long>(*i));
    } else if (const auto* d = std::get_if<double>(&value)) {
      out += StrFormat("d%.17g", *d);
    } else if (const auto* b = std::get_if<bool>(&value)) {
      out += *b ? "b1" : "b0";
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      out += 's';
      out += *s;
    }
    out += ';';
  }
  return out;
}

}  // namespace

SolverSession::SolverSession(const Dataset* data, const Grouping* grouping)
    : data_(data),
      grouping_(grouping),
      cache_(new ArtifactCache()),
      cost_model_(new CostModel()),
      warm_mu_(new Mutex()),
      projection_mu_(new Mutex()) {}

StatusOr<SolverSession> SolverSession::Create(const Dataset* data,
                                              const Grouping* grouping) {
  if (data == nullptr) {
    return Status::InvalidArgument("request.data must not be null");
  }
  if (grouping == nullptr) {
    return Status::InvalidArgument("request.grouping must not be null");
  }
  if (data->size() == 0) {
    return Status::InvalidArgument("request.data must not be empty");
  }
  if (grouping->group_of.size() != data->size()) {
    return Status::InvalidArgument(
        StrFormat("grouping covers %zu rows but the dataset has %zu",
                  grouping->group_of.size(), data->size()));
  }
  return SolverSession(data, grouping);
}

StatusOr<SolverSession> SolverSession::CreateDynamic(
    Dataset* data, Grouping* grouping,
    const std::vector<std::string>& group_columns) {
  FAIRHMS_ASSIGN_OR_RETURN(SolverSession session, Create(data, grouping));
  session.mutable_data_ = data;
  session.mutable_grouping_ = grouping;
  for (const std::string& name : group_columns) {
    FAIRHMS_ASSIGN_OR_RETURN(int col, data->FindCategorical(name));
    session.group_cols_.push_back(col);
  }
  session.publish_mu_ = std::make_unique<Mutex>();
  // The combo table and SkylineIndex are built lazily on the first actual
  // mutation (EnsureDynamicState): an update-free dynamic session costs
  // exactly what a static one does.
  return session;
}

StatusOr<SolverSession> SolverSession::RestoreDynamic(
    Dataset* data, Grouping* grouping,
    const std::vector<std::string>& group_columns,
    std::vector<std::pair<std::vector<int>, int>> combo_map,
    std::unique_ptr<SkylineIndex> index) {
  FAIRHMS_ASSIGN_OR_RETURN(SolverSession session,
                           CreateDynamic(data, grouping, group_columns));
  for (auto& [combo, group] : combo_map) {
    if (combo.size() != session.group_cols_.size()) {
      return Status::InvalidArgument(
          StrFormat("combination table entry has %zu values for %zu group "
                    "columns",
                    combo.size(), session.group_cols_.size()));
    }
    if (group < 0 || group >= grouping->num_groups) {
      return Status::InvalidArgument(
          StrFormat("combination table maps to group %d of %d", group,
                    grouping->num_groups));
    }
    auto [it, inserted] =
        session.combo_to_group_.emplace(std::move(combo), group);
    if (!inserted && it->second != group) {
      return Status::InvalidArgument(
          "combination table maps one combination to two groups");
    }
  }
  // An adopted index replaces the lazy build entirely; the first query
  // publishes its artifacts (the publish sentinels start stale). Without
  // one, the seeded combination table simply gets revalidated and merged
  // by the replay on the first mutation.
  session.index_ = std::move(index);
  return session;
}

Status SolverSession::EnsureIndex() {
  if (!dynamic()) {
    return Status::FailedPrecondition(
        "session is read-only; create it with SolverSession::CreateDynamic "
        "to maintain a skyline index");
  }
  return EnsureDynamicState();
}

std::vector<std::string> SolverSession::group_column_names() const {
  std::vector<std::string> names;
  names.reserve(group_cols_.size());
  for (int col : group_cols_) names.push_back(data_->categorical(col).name);
  return names;
}

std::vector<std::pair<std::vector<int>, int>> SolverSession::combo_map()
    const {
  return {combo_to_group_.begin(), combo_to_group_.end()};
}

Status SolverSession::EnsureDynamicState() {
  if (index_ != nullptr) return Status::OK();
  // Replay the pinned rows through the column mapping: existing rows both
  // seed the combination table and prove the grouping really is the one
  // the columns induce (a sum-rank grouping with --group_by columns would
  // silently misroute every insert).
  if (!group_cols_.empty()) {
    std::vector<int> combo(group_cols_.size());
    for (size_t i = 0; i < data_->size(); ++i) {
      for (size_t c = 0; c < group_cols_.size(); ++c) {
        combo[c] = data_->categorical(group_cols_[c]).codes[i];
      }
      const int g = grouping_->group_of[i];
      auto [it, inserted] = combo_to_group_.emplace(combo, g);
      if (!inserted && it->second != g) {
        combo_to_group_.clear();
        return Status::InvalidArgument(StrFormat(
            "grouping does not match the given group columns: row %zu maps "
            "to group %d but its column values map to group %d",
            i, g, it->second));
      }
    }
  }
  index_ = std::make_unique<SkylineIndex>(data_, grouping_);
  return Status::OK();
}

void SolverSession::PublishIndexIfStale() {
  // Nothing to publish before the first mutation builds the index; the
  // cache computes (version-keyed) artifacts on miss just like a static
  // session's.
  if (!dynamic() || index_ == nullptr) return;
  MutexLock lock(*publish_mu_);
  if (published_data_version_ == data_->version() &&
      published_grouping_version_ == grouping_->version) {
    return;
  }
  cache_->PutSkyline(*data_, index_->skyline());
  cache_->PutGroupArtifacts(*data_, *grouping_, index_->group_skylines(),
                            index_->fair_pool(), index_->live_counts(),
                            index_->live_members());
  published_data_version_ = data_->version();
  published_grouping_version_ = grouping_->version;
}

const std::vector<int>& SolverSession::group_counts() {
  PublishIndexIfStale();
  return cache_->GroupCounts(*data_, *grouping_);
}

StatusOr<int> SolverSession::ResolveInsertGroup(
    const std::vector<int>& codes, int group) {
  if (!dynamic()) {
    return Status::FailedPrecondition(
        "session is read-only; create it with SolverSession::CreateDynamic "
        "to accept updates");
  }
  FAIRHMS_RETURN_IF_ERROR(EnsureDynamicState());
  // With pinned group columns the combination is always consulted — an
  // explicit id that contradicts it would break the columns-induce-the-
  // grouping invariant for every later derived insert.
  int combo_group = -1;  // The group the column values map to, if known.
  if (!group_cols_.empty()) {
    if (codes.size() != static_cast<size_t>(data_->num_categorical())) {
      return Status::InvalidArgument(StrFormat(
          "row has %zu categorical codes but the dataset has %d columns",
          codes.size(), data_->num_categorical()));
    }
    std::vector<int> combo;
    for (int col : group_cols_) combo.push_back(codes[static_cast<size_t>(col)]);
    auto it = combo_to_group_.find(combo);
    if (it != combo_to_group_.end()) combo_group = it->second;
  }
  if (group < 0) {
    if (!group_cols_.empty()) return combo_group;  // -1 = new group.
    if (grouping_->num_groups == 1) return 0;
    return Status::InvalidArgument(
        "the pinned grouping has no categorical provenance; pass an "
        "explicit group id");
  }
  if (group >= grouping_->num_groups) {
    return Status::InvalidArgument(
        StrFormat("group %d out of range (the grouping has %d groups)", group,
                  grouping_->num_groups));
  }
  if (combo_group >= 0 && combo_group != group) {
    return Status::InvalidArgument(StrFormat(
        "explicit group %d contradicts the pinned group columns, whose "
        "values map to group %d ('%s')",
        group, combo_group,
        grouping_->names[static_cast<size_t>(combo_group)].c_str()));
  }
  return group;
}

StatusOr<int> SolverSession::Insert(const std::vector<double>& coords,
                                    const std::vector<int>& codes,
                                    int group) {
  if (!dynamic()) {
    return Status::FailedPrecondition(
        "session is read-only; create it with SolverSession::CreateDynamic "
        "to accept updates");
  }
  // Resolve the target group before touching the table so a bad request
  // mutates nothing; -1 from the resolver means "new group from an unseen
  // combination", registered only after the append validates the row.
  FAIRHMS_ASSIGN_OR_RETURN(int g, ResolveInsertGroup(codes, group));
  std::vector<int> combo;
  for (int col : group_cols_) combo.push_back(codes[static_cast<size_t>(col)]);
  FAIRHMS_ASSIGN_OR_RETURN(const int first,
                           mutable_data_->AppendRows({coords}, {codes}));
  if (g < 0) {
    std::vector<std::string> parts;
    for (int col : group_cols_) {
      const CategoricalColumn& column = data_->categorical(col);
      parts.push_back(
          column.labels[static_cast<size_t>(codes[static_cast<size_t>(col)])]);
    }
    g = mutable_grouping_->AddGroup(Join(parts, "+"));
    combo_to_group_.emplace(std::move(combo), g);
  } else if (!group_cols_.empty() && combo_to_group_.count(combo) == 0) {
    // Explicit id for an unseen combination: record it so later derived
    // inserts of the same values stay consistent.
    combo_to_group_.emplace(std::move(combo), g);
  }
  mutable_grouping_->AppendRow(g);
  FAIRHMS_RETURN_IF_ERROR(index_->OnAppend(static_cast<size_t>(first),
                                           data_->size()));
  return first;
}

Status SolverSession::Erase(const std::vector<int>& rows) {
  if (!dynamic()) {
    return Status::FailedPrecondition(
        "session is read-only; create it with SolverSession::CreateDynamic "
        "to accept updates");
  }
  // Build the index before tombstoning: built after, it would no longer
  // contain the rows this batch is erasing.
  FAIRHMS_RETURN_IF_ERROR(EnsureDynamicState());
  FAIRHMS_RETURN_IF_ERROR(mutable_data_->ErasePoints(rows));
  FAIRHMS_RETURN_IF_ERROR(index_->OnErase(rows));
  return Status::OK();
}

const Dataset& SolverSession::Projection2D() {
  MutexLock lock(*projection_mu_);
  const bool hit = projection2d_ != nullptr &&
                   projection_synced_version_ == data_->version();
  // Account only the rows added by this (re)build: the projection is one
  // growing buffer, so a resync after a mutation must not re-count what
  // is already resident (inflated stats would trip --cache_budget_mb).
  const uint64_t resident_before =
      projection2d_ == nullptr ? 0 : projection2d_->size() * 2 * sizeof(double);
  cache_->AccountProjection(hit,
                            data_->size() * 2 * sizeof(double) -
                                resident_before);
  if (projection2d_ == nullptr) {
    auto proj = std::make_unique<Dataset>(std::vector<std::string>{
        data_->attr_names()[0], data_->attr_names()[1]});
    proj->Reserve(data_->size());
    for (size_t i = 0; i < data_->size(); ++i) {
      proj->AddPoint({data_->at(i, 0), data_->at(i, 1)});
    }
    projection2d_ = std::move(proj);
  } else if (!hit) {
    // Mutated since the last sync: rows only ever append, so extend
    // one-to-one...
    for (size_t i = projection2d_->size(); i < data_->size(); ++i) {
      projection2d_->AddPoint({data_->at(i, 0), data_->at(i, 1)});
    }
  }
  if (!hit) {
    // ...and mirror tombstones so the projection's live view matches the
    // pinned table row for row (a fresh build can also need this: erased
    // rows are copied to keep indices aligned).
    std::vector<int> newly_dead;
    for (size_t i = 0; i < data_->size(); ++i) {
      if (!data_->live(i) && projection2d_->live(i)) {
        newly_dead.push_back(static_cast<int>(i));
      }
    }
    if (!newly_dead.empty()) {
      // Rows validated live above; ErasePoints cannot fail.
      const Status st = projection2d_->ErasePoints(newly_dead);
      (void)st;
    }
    projection_synced_version_ = data_->version();
  }
  return *projection2d_;
}

StatusOr<SolverResult> SolverSession::Solve(const SolverRequest& request) {
  Stopwatch total;
  SolverRequest req = request;
  if (req.data == nullptr) req.data = data_;
  if (req.grouping == nullptr) req.grouping = grouping_;
  if (req.data != data_) {
    return Status::InvalidArgument(
        "request.data does not match the session's pinned dataset");
  }
  if (req.grouping != grouping_) {
    return Status::InvalidArgument(
        "request.grouping does not match the session's pinned grouping");
  }

  // Mutations since the last query publish their incrementally maintained
  // artifacts now, so the cache lookups below hit instead of recomputing.
  PublishIndexIfStale();

  // Captured before the solve touches the cache: the cost model records
  // each observation under the warmth the solve actually started from.
  const bool cache_warm = cache_->stats().TotalBytes() > 0;

  SolverResult result;
  if (req.algorithm == "auto") {
    // Shape-check first (ValidateRequestShape accepts the "auto"
    // placeholder) so the planner only ever sees well-formed requests,
    // then plan and fall through to the full validation of the choice.
    FAIRHMS_RETURN_IF_ERROR(
        internal::ValidateRequestShape(req, nullptr, cache_.get()));
    PlanRequest plan_req;
    plan_req.d = req.data->dim();
    plan_req.n = req.data->live_size();
    plan_req.k = req.bounds.k;
    plan_req.num_groups = req.grouping->num_groups;
    plan_req.bounds_tightness = BoundsTightness(req.bounds);
    plan_req.cache_warm = cache_warm;
    plan_req.latency_budget_ms = req.latency_budget_ms;
    plan_req.quality_target = req.quality_target;
    plan_req.seed = req.seed;
    FAIRHMS_ASSIGN_OR_RETURN(
        Plan plan, Planner::PlanQuery(plan_req, *cost_model_, &req.params));
    req.algorithm = plan.algorithm;
    result.plan.planned = true;
    result.plan.predicted_ms = plan.predicted_ms;
    result.plan.predicted_hr = plan.predicted_hr;
    result.plan.reason = plan.reason;
    result.plan.params = plan.params_note;
  }

  const AlgorithmInfo* info = nullptr;
  FAIRHMS_RETURN_IF_ERROR(
      internal::ValidateRequestShape(req, &info, cache_.get()));

  result.algorithm = info->name;
  result.bounds = req.bounds;

  // Exact-2D fallback, applied uniformly for every algorithm that declares
  // the capability: select on the first-two-attribute projection, note it.
  // The projection is prepared once per session. (dim >= 2 was already
  // enforced by ValidateRequestShape.)
  const Dataset* solve_data = req.data;
  if (info->caps.exact_2d && req.data->dim() > 2) {
    solve_data = &Projection2D();
    result.note = StrFormat(
        "%s is exact-2D; selected on the (%s, %s) projection, evaluated in "
        "full %dD",
        info->name.c_str(), req.data->attr_names()[0].c_str(),
        req.data->attr_names()[1].c_str(), req.data->dim());
  }

  // Unconstrained baselines run on the global skyline (memoized per
  // projection key); the bounds are only used for the violation report.
  static const std::vector<int> kNoSkyline;
  const std::vector<int>* skyline = &kNoSkyline;
  if (!info->caps.fairness_aware) {
    skyline = &cache_->Skyline(*solve_data);
    if (result.note.empty()) {
      result.note =
          "fairness-unaware baseline; bounds only used for the violation "
          "report";
    }
  }

  // Warm-start hint: hand a warm_startable algorithm the certified grid
  // index of the session's previous compatible solution. Compatible =
  // identical seed/threads/params and at most one k step on the same data
  // version, or the same k across a data/grouping version change. The
  // hint is advisory (the algorithm re-validates and falls back to a cold
  // search), so eligibility only filters out hopeless probes.
  const std::string params_key = ParamsFingerprint(req.params);
  SolveRunInfo run_info;
  int warm_hint = -1;
  if (req.allow_warm_start && info->caps.warm_startable) {
    MutexLock lock(*warm_mu_);
    const auto it = warm_memo_.find(info->name);
    if (it != warm_memo_.end()) {
      const WarmMemo& memo = it->second;
      const bool same_config = memo.seed == req.seed &&
                               memo.threads == req.threads &&
                               memo.params_key == params_key;
      const bool k_step = std::abs(memo.k - req.bounds.k) <= 1 &&
                          memo.data_version == data_->version() &&
                          memo.grouping_version == grouping_->version;
      const bool version_step = memo.k == req.bounds.k;
      if (same_config && memo.tau_index >= 0 && (k_step || version_step)) {
        warm_hint = memo.tau_index;
      }
    }
  }

  SolveContext ctx;
  ctx.data = solve_data;
  ctx.grouping = req.grouping;
  ctx.bounds = &req.bounds;
  ctx.skyline = skyline;
  ctx.seed = req.seed;
  ctx.threads = req.threads;
  ctx.params = &req.params;
  ctx.cache = cache_.get();
  ctx.warm_tau_index = warm_hint;
  ctx.run_info = &run_info;

  FAIRHMS_ASSIGN_OR_RETURN(result.solution, info->solve(ctx));
  if (result.solution.algorithm.empty()) {
    result.solution.algorithm = info->display_name;
  }
  result.warm_start_used = run_info.warm_start_used;
  if (info->caps.warm_startable) {
    MutexLock lock(*warm_mu_);
    WarmMemo& memo = warm_memo_[info->name];
    memo.tau_index = run_info.tau_index;
    memo.k = req.bounds.k;
    memo.seed = req.seed;
    memo.threads = req.threads;
    memo.data_version = data_->version();
    memo.grouping_version = grouping_->version;
    memo.params_key = params_key;
  }
  // Hand the skyline back so callers need not recompute it — but only when
  // it belongs to the caller's dataset (not a 2D projection).
  if (solve_data == req.data) result.skyline = *skyline;
  result.group_counts =
      SolutionGroupCounts(result.solution.rows, *req.grouping);
  result.violations =
      CountViolations(result.solution.rows, *req.grouping, req.bounds);
  result.solve_ms = result.solution.elapsed_ms;
  result.total_ms = total.ElapsedMillis();
  // Every solve feeds the planner's cost model — including explicit
  // algorithm requests, so "auto" learns from mixed workloads.
  cost_model_->Observe(
      info->name,
      CostSignature::Make(req.data->dim(), req.data->live_size(),
                          req.bounds.k, req.grouping->num_groups,
                          BoundsTightness(req.bounds), cache_warm),
      result.solve_ms, result.solution.mhr);
  return result;
}

void SolverSession::ClearCache() {
  cache_->Clear();
  if (publish_mu_ != nullptr) {
    // The drop also removed the published SkylineIndex artifacts: reset
    // the sentinels so the next query republishes them instead of paying
    // a cold recompute.
    MutexLock lock(*publish_mu_);
    published_data_version_ = ~uint64_t{0};
    published_grouping_version_ = ~uint64_t{0};
  }
  MutexLock lock(*projection_mu_);
  projection2d_.reset();
}

}  // namespace fairhms
