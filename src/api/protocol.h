// The FairHMS wire protocol: typed request/response structs for the
// newline-delimited JSON serving surface, plus the versioned response
// envelope shared by every transport.
//
// History: the batch protocol grew inside `fairhms_cli --queries` as
// ad-hoc JSON handling. This header lifts it into the public API so the
// batch CLI and the fairhms_serve daemon are two thin transports over ONE
// implementation (api/service.h executes parsed Requests against a
// DatasetCatalog) — the wire format can no longer fork between them.
//
// Requests: one JSON object per line. `op` selects the operation (default
// "query"; "solve" is an accepted alias), `id` (string or number) is
// echoed verbatim in the response (defaulting to the 1-based line number),
// and `dataset` routes per-dataset ops to a catalog entry (default
// "default"). Ops: query, insert, delete, register, save, drop, list,
// stats.
//
// Responses: one JSON object per line, rendered by RenderResponse under an
// EnvelopeOptions:
//
//   * version 0 — the legacy envelope, byte-identical to what the batch
//     CLI emitted before this layer existed:
//       {"id": 3, "ok": true, "dataset": "d", "catalog_version": 1, ...}
//       {"id": 3, "ok": false, "error": "InvalidArgument: ..."}
//   * version 1 (kProtocolVersion) — every response carries
//     "protocol_version" and errors become structured objects whose
//     "code" is the canonical StatusCode spelling (common/status.h):
//       {"id": 3, "ok": false, "protocol_version": 1,
//        "error": {"code": "InvalidArgument", "message": "..."}}
//     (The transitional "error_string" free-text duplicate was removed
//     after its announced one-release deprecation window.)
//
// Payload fields are rendered identically under both envelope versions, so
// upgrading only changes the envelope, never the results.
//
// Parsing splits structural validation (ParseRequest — field presence and
// JSON types) from state-dependent validation (api/service.h — dimension
// checks, group lookups, bounds feasibility), so a Request can be parsed,
// queued and admission-checked without touching the catalog.

#ifndef FAIRHMS_API_PROTOCOL_H_
#define FAIRHMS_API_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/params.h"
#include "common/json.h"
#include "common/status.h"
#include "common/statusor.h"

namespace fairhms {

/// The envelope version RenderResponse emits for EnvelopeOptions::version 1
/// — bump when the envelope (not a payload) changes incompatibly.
inline constexpr int kProtocolVersion = 1;

enum class ProtocolOp : int {
  kQuery = 0,
  kInsert,
  kDelete,
  kRegister,
  kSave,
  kDrop,
  kList,
  kStats,
};
inline constexpr int kNumProtocolOps = static_cast<int>(ProtocolOp::kStats) + 1;

/// Canonical wire spelling ("query", "insert", ...).
const char* ProtocolOpName(ProtocolOp op);

/// One solve: everything a query line may carry. Bounds are stored
/// structurally (kind + alpha + explicit lists); the service constructs the
/// GroupBounds against the live group counts at execution time.
struct QueryRequest {
  std::string algorithm;  ///< Registry name, or "auto" for the planner.
  int k = 0;
  enum class Bounds { kProportional, kBalanced, kExplicit };
  Bounds bounds = Bounds::kProportional;
  double alpha = 0.1;
  std::vector<int> lower;  ///< Explicit bounds only.
  std::vector<int> upper;
  bool has_seed = false;
  uint64_t seed = 0;
  bool has_threads = false;
  int threads = 0;
  AlgoParams params;
  /// Planner constraints ("auto" only; 0 = unset).
  double latency_budget_ms = 0.0;
  double quality_target = 0.0;
  /// Allow warm-started re-solves from the session's previous solution.
  bool warm_start = true;
};

/// One appended row. `cats` preserves the request's member order (including
/// duplicates — the last occurrence wins, matching JSON object semantics).
/// A non-string label parses (label_is_string = false) and is rejected by
/// the service after the column lookup, preserving the original check
/// order.
struct InsertRequest {
  std::vector<double> point;
  struct CatEntry {
    std::string column;
    std::string label;
    bool label_is_string = true;
  };
  bool has_cats = false;
  std::vector<CatEntry> cats;
  enum class Group { kDerive, kId, kName };
  Group group = Group::kDerive;
  int64_t group_id = -1;
  std::string group_name;
};

struct DeleteRequest {
  std::vector<int64_t> rows;
};

struct RegisterRequest {
  std::string name;
  enum class Source { kSynthetic, kSnapshot };
  Source source = Source::kSynthetic;
  std::string snapshot_path;
  std::string synthetic;  ///< Generator family.
  int64_t n = 0;
  int64_t dim = 4;
  bool has_seed = false;
  uint64_t seed = 0;
  std::string normalize = "minmax";
  bool has_group_by = false;
  std::vector<std::string> group_by;
  int64_t groups = 1;
};

struct SaveRequest {
  std::string name;
  std::string path;
};

struct DropRequest {
  std::string name;
};

/// One parsed request line. `id` holds the rendered response token for the
/// line's "id" field (`"x"` quoted-escaped for strings, %.17g for numbers)
/// or is empty when absent / non-scalar — the transport then substitutes
/// the 1-based line number. Exactly one op-specific member is meaningful,
/// selected by `op`.
struct Request {
  ProtocolOp op = ProtocolOp::kQuery;
  std::string id;
  std::string dataset = "default";
  QueryRequest query;
  InsertRequest insert;
  DeleteRequest erase;
  RegisterRequest reg;
  SaveRequest save;
  DropRequest drop;
};

/// Structural parse of one request line (an already-parsed JSON object).
/// Fills `out->id` before any validation, so rejected lines still echo
/// their id. State-dependent checks (unknown dataset, group lookups,
/// dimension mismatches) are left to the service.
Status ParseRequest(const JsonValue& line, Request* out);

/// The response id token for a raw request line — the same rule
/// ParseRequest applies (quoted string / %.17g number / the line number
/// when absent or non-scalar, or when the line is not a JSON object). For
/// transports that must answer a line they never hand to the service
/// (rate limits, queue deadlines, drain).
std::string RenderRequestId(std::string_view line, uint64_t line_no);

// ---------------------------------------------------------------------------
// Responses.

struct QueryResponse {
  std::string algorithm;
  int k = 0;
  uint64_t seed = 0;
  int threads = 0;
  std::vector<int> rows;
  double happiness_ratio = 0.0;
  double algo_mhr_estimate = 0.0;
  int violations = 0;
  std::vector<int> group_counts;
  std::string note;  ///< Omitted from the wire when empty.
  /// Planner echo ("algorithm": "auto" requests only): rendered as a
  /// "plan" object carrying the choice, the model's prediction and the
  /// actual solve time side by side. Omitted when planned == false.
  bool planned = false;
  double predicted_ms = -1.0;
  double predicted_hr = -1.0;
  std::string plan_reason;
  std::string plan_params;  ///< Params the planner set; "" = none.
  /// The solve was warm-started from the session's previous solution.
  /// Rendered only when true (bit-identity makes it purely diagnostic).
  bool warm_start = false;
  double solve_ms = 0.0;
  double total_ms = 0.0;
};

struct InsertResponse {
  int row = 0;
  int group = 0;
  std::string group_name;
  uint64_t version = 0;
  uint64_t live_rows = 0;
};

struct DeleteResponse {
  uint64_t erased = 0;
  uint64_t version = 0;
  uint64_t live_rows = 0;
};

struct RegisterResponse {
  std::string name;
  uint64_t rows = 0;
  int dim = 0;
  int groups = 0;
};

struct SaveResponse {
  std::string name;
  std::string path;
};

struct DropResponse {
  std::string name;
};

struct ListResponse {
  std::vector<std::string> datasets;
};

/// The `stats` op payload: catalog contents, per-session cache accounting,
/// the CacheArbiter's global ledger and the service's latency counters —
/// identical from `--queries` batch mode and the daemon.
struct StatsResponse {
  struct DatasetStats {
    std::string name;
    uint64_t live_rows = 0;
    uint64_t total_rows = 0;
    int dim = 0;
    int groups = 0;
    uint64_t version = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_bytes = 0;
    /// Per-artifact-class cache accounting (nets, evaluators, skylines,
    /// ...), in the session's fixed class order — the observable the
    /// planner's cache-warmth signal derives from.
    struct CacheClassStats {
      std::string name;
      uint64_t hits = 0;
      uint64_t misses = 0;
      uint64_t bytes = 0;
    };
    std::vector<CacheClassStats> cache_classes;
  };
  struct OpStats {
    ProtocolOp op = ProtocolOp::kQuery;
    uint64_t count = 0;
    uint64_t errors = 0;
    double total_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  std::vector<DatasetStats> datasets;
  uint64_t cache_budget_bytes = 0;
  uint64_t cache_total_bytes = 0;
  uint64_t cache_evictions = 0;
  /// The CacheArbiter's per-session ledger (charged bytes + logical
  /// last-touch tick), sorted by session name.
  struct CacheSessionStats {
    std::string name;
    uint64_t charged_bytes = 0;
    uint64_t last_touch = 0;
  };
  std::vector<CacheSessionStats> cache_sessions;
  uint64_t served = 0;
  uint64_t failed = 0;
  double uptime_ms = 0.0;
  double qps = 0.0;
  /// Active SIMD dispatch level ("scalar", "sse2", "avx2", "neon") and
  /// requested mode ("auto", "off") of the kernel layer (common/simd.h).
  /// Host-dependent: golden tests scrub both.
  std::string simd_level;
  std::string simd_mode;
  std::vector<OpStats> ops;  ///< Ops with a nonzero count only.
};

/// One response line before envelope rendering. `id` is the rendered token
/// (never empty — the transport substituted the line number already).
struct Response {
  std::string id;
  bool ok = false;
  ProtocolOp op = ProtocolOp::kQuery;
  /// Dataset label for the envelope; empty = omitted (list/stats).
  std::string dataset;
  bool has_catalog_version = false;
  uint64_t catalog_version = 0;
  /// Linearization sequence number (daemon envelopes only; see
  /// EnvelopeOptions::emit_seq).
  bool has_seq = false;
  uint64_t seq = 0;
  Status error;  ///< Meaningful when !ok.
  // Exactly one payload is meaningful when ok, selected by `op`.
  QueryResponse query;
  InsertResponse insert;
  DeleteResponse erase;
  RegisterResponse reg;
  SaveResponse save;
  DropResponse drop;
  ListResponse list;
  StatsResponse stats;
};

struct EnvelopeOptions {
  /// 0 = legacy envelope (byte-identical to the pre-protocol batch CLI);
  /// 1 = versioned envelope with structured errors (kProtocolVersion).
  int version = 0;
  /// Stamp Response::seq as "seq" (versioned envelope only) — the daemon
  /// sets it so clients can order concurrently served responses.
  bool emit_seq = false;
};

/// Renders one response line (no trailing newline) under the given
/// envelope. Deterministic: equal inputs yield equal bytes.
std::string RenderResponse(const Response& response,
                           const EnvelopeOptions& envelope);

/// Renders an error response for a line whose id is already known —
/// convenience for transports rejecting work before parsing completes
/// (rate limits, queue deadlines, drain).
std::string RenderErrorLine(const std::string& id, const Status& error,
                            const EnvelopeOptions& envelope);

}  // namespace fairhms

#endif  // FAIRHMS_API_PROTOCOL_H_
