// OpMetrics: thread-safe per-operation serving counters for the protocol
// layer — request counts, error counts, total and tail latency (p50/p99
// over a bounded reservoir of recent samples), plus uptime and overall
// qps. The `stats` protocol op and the daemon's drain report both read a
// consistent Snapshot.

#ifndef FAIRHMS_API_METRICS_H_
#define FAIRHMS_API_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/protocol.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace fairhms {

class OpMetrics {
 public:
  /// Latency samples retained per op for the percentile estimates; beyond
  /// this the ring overwrites the oldest sample, so percentiles describe
  /// the *recent* distribution while count/total_ms stay exact forever.
  static constexpr size_t kLatencyWindow = 2048;

  /// Records one served request (ok or failed) taking `ms` milliseconds.
  void Record(ProtocolOp op, bool ok, double ms) FAIRHMS_EXCLUDES(mu_);

  struct OpSnapshot {
    uint64_t count = 0;
    uint64_t errors = 0;
    double total_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  struct Snapshot {
    std::array<OpSnapshot, kNumProtocolOps> ops;
    uint64_t served = 0;  ///< Successful requests across all ops.
    uint64_t failed = 0;
    double uptime_ms = 0.0;
    /// Requests (ok + failed) per second of uptime.
    double qps = 0.0;
  };
  Snapshot snapshot() const FAIRHMS_EXCLUDES(mu_);

 private:
  struct PerOp {
    uint64_t count = 0;
    uint64_t errors = 0;
    double total_ms = 0.0;
    std::vector<double> window;  ///< Ring buffer, capped at kLatencyWindow.
    size_t next = 0;
  };

  mutable Mutex mu_;
  Stopwatch uptime_;  ///< Immutable after construction (reads are const).
  std::array<PerOp, kNumProtocolOps> ops_ FAIRHMS_GUARDED_BY(mu_);
};

}  // namespace fairhms

#endif  // FAIRHMS_API_METRICS_H_
