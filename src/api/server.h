// Server: the fairhms_serve daemon's socket front-end over a
// ProtocolService.
//
// Topology: one accept thread polls the listeners (a unix-domain socket, a
// loopback/any TCP socket, or both); each accepted connection gets a
// reader thread that splits the byte stream into request lines and pushes
// them through admission control into a bounded queue; a fixed worker pool
// pops lines, runs ProtocolService::HandleLine, and writes the response to
// the originating connection (a per-connection write mutex keeps
// interleaved responses line-atomic). Responses may return out of request
// order — clients match them by "id" (and order them by "seq", which the
// daemon's versioned envelope always carries).
//
// Admission control, applied in the reader before a line is queued:
//   * per-connection token-bucket rate limit — over-limit lines are
//     answered immediately with a ResourceExhausted error response;
//   * bounded queue — when full, lines are answered with Unavailable
//     rather than buffered without bound.
// Plus two checks applied later:
//   * queue deadline — a worker popping a line older than the deadline
//     answers DeadlineExceeded instead of executing it;
//   * cancellation — queued lines from a connection that has disconnected
//     are dropped unexecuted (counted, not answered: nobody is listening).
//
// Shutdown: Drain() closes the listeners, stops the readers, serves every
// line already admitted, then joins the pool — accepted work is never
// dropped. Catalog reload (SIGHUP) needs no server support: the service's
// SnapshotReload quiesces in-flight requests through its own catalog lock.

#ifndef FAIRHMS_API_SERVER_H_
#define FAIRHMS_API_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace fairhms {

struct ServerOptions {
  /// Unix-domain socket path; empty = no unix listener. An existing file
  /// at the path is replaced.
  std::string unix_path;
  /// TCP port; -1 = no TCP listener, 0 = ephemeral (see Server::tcp_port).
  int tcp_port = -1;
  /// TCP bind address.
  std::string tcp_host = "127.0.0.1";
  /// Worker threads executing requests.
  int workers = 4;
  /// Admission queue bound; lines beyond it are refused with Unavailable.
  size_t max_queue = 1024;
  /// Per-connection sustained requests/second; 0 = unlimited.
  double rate_limit_per_sec = 0.0;
  /// Token-bucket burst size; 0 = same as the rate.
  double rate_limit_burst = 0.0;
  /// Maximum ms a line may wait in the queue before a worker refuses it
  /// with DeadlineExceeded; 0 = no deadline.
  double queue_deadline_ms = 0.0;
  /// Longest accepted request line; longer ones close the connection.
  size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(ProtocolService* service, ServerOptions opts);
  ~Server();  ///< Drains if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the accept/worker threads. Fails
  /// without side effects when no listener is configured or a bind fails.
  Status Start() FAIRHMS_EXCLUDES(drain_mu_);

  /// Graceful shutdown: stop accepting, stop reading, serve everything
  /// admitted, join every thread. Idempotent.
  void Drain() FAIRHMS_EXCLUDES(drain_mu_, conns_mu_, queue_mu_);

  /// The bound TCP port (resolves an ephemeral request), or -1.
  int tcp_port() const { return tcp_port_; }

  uint64_t connections_accepted() const { return connections_.load(); }
  /// Lines refused by admission control or the queue deadline.
  uint64_t rejected() const { return rejected_.load(); }
  /// Queued lines dropped because their connection had gone away.
  uint64_t cancelled() const { return cancelled_.load(); }

 private:
  struct Connection;
  struct Task {
    std::shared_ptr<Connection> conn;
    std::string line;
    uint64_t request_no = 0;
    /// Steady-clock ms timestamp at admission, for the queue deadline.
    double enqueued_ms = 0.0;
  };

  void AcceptLoop() FAIRHMS_EXCLUDES(conns_mu_);
  void ReadLoop(std::shared_ptr<Connection> conn) FAIRHMS_EXCLUDES(conns_mu_);
  void WorkerLoop() FAIRHMS_EXCLUDES(queue_mu_);
  /// Admission control for one line; returns true when queued. Refusal
  /// responses are written after every lock is released (Reply can block
  /// on a slow client).
  bool Admit(const std::shared_ptr<Connection>& conn, std::string line,
             uint64_t request_no) FAIRHMS_EXCLUDES(queue_mu_);
  void Reply(const std::shared_ptr<Connection>& conn,
             const std::string& line);

  ProtocolService* service_;
  const ServerOptions opts_;

  // The fds are written by Start/Drain only while no accept thread runs;
  // AcceptLoop reads them lock-free — the thread spawn/join pair is the
  // happens-before edge, so they are deliberately not GUARDED_BY.
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< Self-pipe that unblocks the poll().

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  // Lock order: drain_mu_ before conns_mu_ / queue_mu_ (Drain holds it
  // across both); conns_mu_ and queue_mu_ never nest with each other.
  /// Live connections + the count of their (detached) reader threads;
  /// Drain waits on readers_cv_ until every reader has exited.
  Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_
      FAIRHMS_GUARDED_BY(conns_mu_);
  CondVar readers_cv_;
  int active_readers_ FAIRHMS_GUARDED_BY(conns_mu_) = 0;

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Task> queue_ FAIRHMS_GUARDED_BY(queue_mu_);
  bool draining_ FAIRHMS_GUARDED_BY(queue_mu_) = false;

  /// Serializes Start/Drain; makes Drain idempotent.
  Mutex drain_mu_ FAIRHMS_ACQUIRED_BEFORE(conns_mu_, queue_mu_);
  bool started_ FAIRHMS_GUARDED_BY(drain_mu_) = false;
  bool drained_ FAIRHMS_GUARDED_BY(drain_mu_) = false;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cancelled_{0};
};

}  // namespace fairhms

#endif  // FAIRHMS_API_SERVER_H_
