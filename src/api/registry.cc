#include "api/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace fairhms {

namespace internal {

// Link anchors: one per algorithm translation unit. Referencing them here
// forces the linker to pull those objects out of the static fairhms
// archive into every binary that uses the registry — without this, a
// binary that never names IntCov() etc. would silently drop the objects
// and their file-scope AlgorithmRegistrars would never run.
int LinkAlgoIntCov();
int LinkAlgoBiGreedy();
int LinkAlgoFairGreedy();
int LinkAlgoRdpGreedy();
int LinkAlgoDmm();
int LinkAlgoSphere();
int LinkAlgoHittingSet();

int LinkBuiltinAlgorithms() {
  return LinkAlgoIntCov() + LinkAlgoBiGreedy() + LinkAlgoFairGreedy() +
         LinkAlgoRdpGreedy() + LinkAlgoDmm() + LinkAlgoSphere() +
         LinkAlgoHittingSet();
}

}  // namespace internal

std::string CapabilitiesToString(const AlgoCapabilities& caps) {
  std::vector<std::string> parts;
  if (caps.fairness_aware) parts.push_back("fair");
  if (caps.exact_2d) parts.push_back("exact-2d");
  if (caps.randomized) parts.push_back("randomized");
  if (caps.supports_lambda) parts.push_back("lambda");
  if (caps.warm_startable) parts.push_back("warm");
  return parts.empty() ? "-" : Join(parts, ",");
}

AlgorithmRegistry& AlgorithmRegistry::Instance() {
  static AlgorithmRegistry* const registry = new AlgorithmRegistry();
  // Volatile sink so no optimizer may elide the anchor references.
  static volatile int anchors = internal::LinkBuiltinAlgorithms();
  (void)anchors;
  return *registry;
}

Status AlgorithmRegistry::Register(AlgorithmInfo info) {
  if (info.name.empty()) {
    return Status::Internal("algorithm registered with an empty name");
  }
  if (!info.solve) {
    return Status::Internal(
        StrFormat("algorithm '%s' registered without a solve fn",
                  info.name.c_str()));
  }
  std::sort(info.params.begin(), info.params.end(),
            [](const ParamSpec& a, const ParamSpec& b) {
              return a.name < b.name;
            });
  const auto [it, inserted] = entries_.emplace(info.name, std::move(info));
  (void)it;
  if (!inserted) {
    return Status::Internal(StrFormat("duplicate algorithm registration '%s'",
                                      it->first.c_str()));
  }
  return Status::OK();
}

const AlgorithmInfo* AlgorithmRegistry::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, info] : entries_) names.push_back(name);
  return names;
}

std::vector<const AlgorithmInfo*> AlgorithmRegistry::All() const {
  std::vector<const AlgorithmInfo*> all;
  all.reserve(entries_.size());
  for (const auto& [name, info] : entries_) all.push_back(&info);
  return all;
}

std::string AlgorithmRegistry::NamesForError() const {
  return Join(Names(), ", ");
}

AlgorithmRegistrar::AlgorithmRegistrar(AlgorithmInfo info) {
  const std::string name = info.name;
  const Status st = AlgorithmRegistry::Instance().Register(std::move(info));
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: algorithm registration '%s' failed: %s\n",
                 name.c_str(), st.ToString().c_str());
    std::abort();
  }
}

}  // namespace fairhms
