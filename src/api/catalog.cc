#include "api/catalog.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace fairhms {

namespace {

/// Cost-model sidecar next to a snapshot. Kept out of the versioned
/// binary snapshot format on purpose: the model is an optimization, not
/// serving state, so a missing or unreadable sidecar must never fail a
/// restore.
std::string CostModelSidecarPath(const std::string& snapshot_path) {
  return snapshot_path + ".plan";
}

}  // namespace

StatusOr<Snapshot> SnapshotSession(SolverSession* session) {
  if (session == nullptr) {
    return Status::InvalidArgument("session must not be null");
  }
  FAIRHMS_RETURN_IF_ERROR(session->EnsureIndex());
  Snapshot snapshot;
  snapshot.data = session->data();
  snapshot.grouping = session->grouping();
  snapshot.group_columns = session->group_column_names();
  snapshot.combo_to_group = session->combo_map();
  const SkylineIndex* index = session->index();
  snapshot.has_index = index != nullptr;
  if (index != nullptr) snapshot.index = index->SaveState();
  return snapshot;
}

DatasetCatalog::DatasetCatalog() : DatasetCatalog(Options{}) {}

DatasetCatalog::DatasetCatalog(Options opts)
    : arbiter_(opts.cache_budget_bytes) {}

Status DatasetCatalog::Commit(const std::string& name, Entry entry) {
  arbiter_.Register(entry.session->cache(), name,
                    [session = entry.session.get()] {
                      session->ClearCache();
                    });
  entries_.emplace(name, std::move(entry));
  ++version_;
  return Status::OK();
}

Status DatasetCatalog::Register(const std::string& name, Dataset data,
                                Grouping grouping,
                                const std::vector<std::string>& group_columns) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (entries_.count(name) != 0) {
    return Status::InvalidArgument(
        StrFormat("dataset '%s' is already registered", name.c_str()));
  }
  Entry entry;
  entry.data = std::make_unique<Dataset>(std::move(data));
  entry.grouping = std::make_unique<Grouping>(std::move(grouping));
  FAIRHMS_ASSIGN_OR_RETURN(
      SolverSession session,
      SolverSession::CreateDynamic(entry.data.get(), entry.grouping.get(),
                                   group_columns));
  entry.session = std::make_unique<SolverSession>(std::move(session));
  return Commit(name, std::move(entry));
}

Status DatasetCatalog::Load(const std::string& name, const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (entries_.count(name) != 0) {
    return Status::InvalidArgument(
        StrFormat("dataset '%s' is already registered", name.c_str()));
  }
  // Every fallible step — read, parse, index restore, session build —
  // completes before the name is committed, so a bad snapshot can never
  // leave the catalog partially mutated.
  FAIRHMS_ASSIGN_OR_RETURN(Snapshot snapshot, ReadSnapshotFile(path));
  Entry entry;
  entry.data = std::make_unique<Dataset>(std::move(snapshot.data));
  entry.grouping = std::make_unique<Grouping>(std::move(snapshot.grouping));
  std::unique_ptr<SkylineIndex> index;
  if (snapshot.has_index) {
    FAIRHMS_ASSIGN_OR_RETURN(
        index, SkylineIndex::Restore(entry.data.get(), entry.grouping.get(),
                                     snapshot.index));
  }
  FAIRHMS_ASSIGN_OR_RETURN(
      SolverSession session,
      SolverSession::RestoreDynamic(entry.data.get(), entry.grouping.get(),
                                    snapshot.group_columns,
                                    std::move(snapshot.combo_to_group),
                                    std::move(index)));
  entry.session = std::make_unique<SolverSession>(std::move(session));
  // Lenient by design (see CostModelSidecarPath): a snapshot without a
  // sidecar — or with a corrupt one — restores with a cold planner.
  std::ifstream sidecar(CostModelSidecarPath(path));
  if (sidecar) {
    std::ostringstream text;
    text << sidecar.rdbuf();
    (void)entry.session->cost_model()->Restore(text.str());
  }
  return Commit(name, std::move(entry));
}

Status DatasetCatalog::Save(const std::string& name, const std::string& path) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(
        StrFormat("no dataset named '%s' in the catalog", name.c_str()));
  }
  FAIRHMS_ASSIGN_OR_RETURN(Snapshot snapshot,
                           SnapshotSession(it->second.session.get()));
  FAIRHMS_RETURN_IF_ERROR(WriteSnapshotFile(snapshot, path));
  // The planner's cost model rides along in a text sidecar so a restored
  // session plans as well as the one that was saved.
  std::ofstream sidecar(CostModelSidecarPath(path),
                        std::ios::out | std::ios::trunc);
  sidecar << it->second.session->cost_model()->Serialize();
  if (!sidecar.good()) {
    return Status::IOError(StrFormat("cannot write cost-model sidecar '%s'",
                                     CostModelSidecarPath(path).c_str()));
  }
  return Status::OK();
}

Status DatasetCatalog::Drop(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(
        StrFormat("no dataset named '%s' in the catalog", name.c_str()));
  }
  arbiter_.Unregister(it->second.session->cache());
  entries_.erase(it);
  ++version_;
  return Status::OK();
}

std::vector<std::string> DatasetCatalog::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

StatusOr<SolverSession*> DatasetCatalog::Session(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(
        StrFormat("no dataset named '%s' in the catalog", name.c_str()));
  }
  return it->second.session.get();
}

StatusOr<SolverResult> DatasetCatalog::Solve(const std::string& name,
                                             const SolverRequest& request) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(
        StrFormat("no dataset named '%s' in the catalog", name.c_str()));
  }
  SolverSession* session = it->second.session.get();
  arbiter_.Touch(session->cache());
  StatusOr<SolverResult> result = session->Solve(request);
  // Settle the budget after the solve, never during: eviction mid-solve
  // would invalidate references the cache handed to the algorithm. The
  // serving session is evicted last — it is the one demonstrably hot.
  arbiter_.Rebalance(session->cache());
  return result;
}

}  // namespace fairhms
