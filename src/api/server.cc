#include "api/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace fairhms {

namespace {

/// Steady-clock milliseconds (monotonic; only differences are used).
double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

/// One accepted client. The fd closes with the last shared_ptr, so queued
/// tasks keep it valid until they are served or dropped; `alive` flips on
/// reader exit so workers can cancel queued work nobody will read.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  int fd = -1;
  std::atomic<bool> alive{true};
  Mutex write_mu;  ///< Keeps concurrently written responses line-atomic.
  /// Token bucket: refilled by wall time, one token per admitted line.
  Mutex bucket_mu;
  double tokens FAIRHMS_GUARDED_BY(bucket_mu) = 0.0;
  double last_refill_ms FAIRHMS_GUARDED_BY(bucket_mu) = 0.0;
  bool bucket_primed FAIRHMS_GUARDED_BY(bucket_mu) = false;
  /// 1-based request counter (the default id); touched only by the one
  /// reader thread, so unguarded.
  uint64_t lines = 0;
};

Server::Server(ProtocolService* service, ServerOptions opts)
    : service_(service), opts_(std::move(opts)) {}

Server::~Server() { Drain(); }

Status Server::Start() {
  MutexLock lock(&drain_mu_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    return Status::InvalidArgument(
        "serve needs a listener: --socket path and/or --port");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError(StrFormat("pipe: %s", std::strerror(errno)));
  }
  auto fail = [this](Status status) {
    CloseFd(&unix_fd_);
    CloseFd(&tcp_fd_);
    CloseFd(&wake_pipe_[0]);
    CloseFd(&wake_pipe_[1]);
    return status;
  };

  if (!opts_.unix_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      return fail(Status::InvalidArgument(StrFormat(
          "--socket path is %zu bytes; unix sockets allow at most %zu",
          opts_.unix_path.size(), sizeof(addr.sun_path) - 1)));
    }
    std::memcpy(addr.sun_path, opts_.unix_path.c_str(),
                opts_.unix_path.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      return fail(Status::IOError(StrFormat("socket(AF_UNIX): %s",
                                            std::strerror(errno))));
    }
    ::unlink(opts_.unix_path.c_str());  // Replace a stale socket file.
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(unix_fd_, 128) != 0) {
      return fail(Status::IOError(StrFormat("bind/listen on %s: %s",
                                            opts_.unix_path.c_str(),
                                            std::strerror(errno))));
    }
  }

  if (opts_.tcp_port >= 0) {
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opts_.tcp_port));
    if (::inet_pton(AF_INET, opts_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      return fail(Status::InvalidArgument(StrFormat(
          "--host '%s' is not an IPv4 address", opts_.tcp_host.c_str())));
    }
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return fail(Status::IOError(StrFormat("socket(AF_INET): %s",
                                            std::strerror(errno))));
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(tcp_fd_, 128) != 0) {
      return fail(Status::IOError(StrFormat("bind/listen on %s:%d: %s",
                                            opts_.tcp_host.c_str(),
                                            opts_.tcp_port,
                                            std::strerror(errno))));
    }
    // Resolve an ephemeral (port 0) request to the actual port.
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  const int workers = std::max(1, opts_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::Drain() {
  MutexLock drain_lock(&drain_mu_);
  if (!started_ || drained_) return;
  drained_ = true;

  // 1. Stop accepting: wake the poll, join the accept thread, close the
  //    listeners so new connects are refused.
  const char byte = 'q';
  (void)!::write(wake_pipe_[1], &byte, 1);
  accept_thread_.join();
  CloseFd(&unix_fd_);
  CloseFd(&tcp_fd_);
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());

  // 2. Stop reading: half-close every connection (responses still flow
  //    out) and wait for the reader threads to run dry.
  {
    MutexLock lock(&conns_mu_);
    for (const std::shared_ptr<Connection>& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
    while (active_readers_ != 0) readers_cv_.Wait(conns_mu_);
  }

  // 3. Serve everything admitted, then stop the workers.
  {
    MutexLock lock(&queue_mu_);
    draining_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // 4. Release the remaining connection references; each fd closes with
  //    its last owner.
  {
    MutexLock lock(&conns_mu_);
    conns_.clear();
  }
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) != 0) return;  // Drain woke us.
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;  // Transient (ECONNABORTED, EMFILE, ...).
      auto conn = std::make_shared<Connection>(client);
      {
        MutexLock lock(&conns_mu_);
        conns_.push_back(conn);
        ++active_readers_;
      }
      ++connections_;
      // Detached: Drain waits on active_readers_, so the server outlives
      // every reader.
      std::thread([this, conn] { ReadLoop(conn); }).detach();
    }
  }
}

void Server::ReadLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error: the client is gone.
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (Trim(line).empty()) continue;  // Blank lines get no response.
      ++conn->lines;
      Admit(conn, std::move(line), conn->lines);
    }
    buffer.erase(0, start);
    if (buffer.size() > opts_.max_line_bytes) {
      // An unterminated over-long line: answer it, then hang up — the
      // framing is unrecoverable.
      Reply(conn, RenderErrorLine(
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            conn->lines + 1)),
                      Status::InvalidArgument(StrFormat(
                          "request line exceeds %zu bytes",
                          opts_.max_line_bytes)),
                      service_->options().envelope));
      break;
    }
  }
  conn->alive.store(false);
  {
    MutexLock lock(&conns_mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
    --active_readers_;
    // Notify while still holding conns_mu_: this detached thread's last
    // touch of server memory must be the mutex release, because the
    // moment Drain observes active_readers_ == 0 the Server (and this
    // condvar) may be destroyed.
    readers_cv_.NotifyAll();
  }
}

bool Server::Admit(const std::shared_ptr<Connection>& conn, std::string line,
                   uint64_t request_no) {
  // Refusals are computed under the locks but answered only after both are
  // released: Reply blocks on the client socket, and stalling queue_mu_
  // (the global admission lock) on a slow reader would wedge every other
  // connection's admission and the worker pool's dequeue.
  Status refusal = Status::OK();
  if (opts_.rate_limit_per_sec > 0.0) {
    MutexLock lock(&conn->bucket_mu);
    const double now = NowMs();
    const double burst = opts_.rate_limit_burst > 0.0
                             ? opts_.rate_limit_burst
                             : std::max(1.0, opts_.rate_limit_per_sec);
    if (!conn->bucket_primed) {
      conn->tokens = burst;
      conn->last_refill_ms = now;
      conn->bucket_primed = true;
    }
    conn->tokens = std::min(
        burst, conn->tokens + (now - conn->last_refill_ms) / 1000.0 *
                                  opts_.rate_limit_per_sec);
    conn->last_refill_ms = now;
    if (conn->tokens < 1.0) {
      refusal = Status::ResourceExhausted(StrFormat(
          "rate limit exceeded (%g requests/s per connection)",
          opts_.rate_limit_per_sec));
    } else {
      conn->tokens -= 1.0;
    }
  }
  if (refusal.ok()) {
    MutexLock lock(&queue_mu_);
    if (draining_) {
      refusal = Status::Unavailable("server is draining");
    } else if (queue_.size() >= opts_.max_queue) {
      refusal = Status::Unavailable(StrFormat(
          "admission queue full (%zu pending lines)", queue_.size()));
    } else {
      Task task;
      task.conn = conn;
      task.line = std::move(line);
      task.request_no = request_no;
      task.enqueued_ms = NowMs();
      queue_.push_back(std::move(task));
    }
  }
  if (!refusal.ok()) {
    ++rejected_;
    Reply(conn, RenderErrorLine(RenderRequestId(line, request_no), refusal,
                                service_->options().envelope));
    return false;
  }
  queue_cv_.NotifyOne();
  return true;
}

void Server::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&queue_mu_);
      while (queue_.empty() && !draining_) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // draining_ and nothing left.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (!task.conn->alive.load()) {
      // The client disconnected while its line sat in the queue: skip the
      // work — nobody is listening for the response.
      ++cancelled_;
      continue;
    }
    if (opts_.queue_deadline_ms > 0.0) {
      const double waited = NowMs() - task.enqueued_ms;
      if (waited > opts_.queue_deadline_ms) {
        ++rejected_;
        Reply(task.conn,
              RenderErrorLine(
                  RenderRequestId(task.line, task.request_no),
                  Status::DeadlineExceeded(StrFormat(
                      "request waited %.1f ms in the queue (deadline "
                      "%.1f ms)", waited, opts_.queue_deadline_ms)),
                  service_->options().envelope));
        continue;
      }
    }
    Reply(task.conn, service_->HandleLine(task.line, task.request_no));
  }
}

void Server::Reply(const std::shared_ptr<Connection>& conn,
                   const std::string& line) {
  MutexLock lock(&conn->write_mu);
  std::string out = line;
  out += '\n';
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(conn->fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      conn->alive.store(false);  // Broken pipe: cancel its queued work.
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace fairhms
