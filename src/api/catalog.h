// DatasetCatalog: many named datasets served from one process.
//
// The serving deployment the ROADMAP targets is multi-tenant: one process
// holds several datasets, each pinned by its own dynamic SolverSession,
// with queries routed by name ({"dataset": "name", ...} in the batch
// driver). The catalog owns the Dataset/Grouping/SolverSession triple per
// name, so entry lifetimes are correct by construction (sessions pin raw
// pointers into catalog-owned storage). Every session shares the
// process-wide ThreadPool::Shared() worker pool — per-tenant pools would
// oversubscribe the machine C times.
//
// Memory: instead of PR 4's one-budget-per-session, the catalog runs one
// CacheArbiter (core/artifact_cache.h) over every session's ArtifactCache.
// Each solve touches its session; Solve() rebalances afterwards, evicting
// the coldest sessions' whole caches until the global total fits the
// budget again — so a budget smaller than the sum of per-dataset working
// sets degrades to recomputation, never to failure.
//
// Persistence: Save() serializes a session's full serving state through
// data/snapshot.h (table + partition + insert-routing provenance +
// maintained skyline state); Load() restores it under a name without a
// single dominance test. A failed Load never partially mutates the
// catalog: every validation runs before the name is inserted.
//
// The catalog is single-writer: Register/Load/Drop/Save and the mutation
// accessors must not race each other or in-flight solves. Solve() itself
// is safe for concurrent callers against *distinct* names once
// registration is done.

#ifndef FAIRHMS_API_CATALOG_H_
#define FAIRHMS_API_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/solver.h"
#include "common/statusor.h"
#include "core/artifact_cache.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "data/snapshot.h"

namespace fairhms {

/// Assembles a Snapshot of a dynamic session's full serving state. Forces
/// the skyline index into existence first (EnsureIndex), so the snapshot
/// always warm-starts; FailedPrecondition on static sessions.
StatusOr<Snapshot> SnapshotSession(SolverSession* session);

class DatasetCatalog {
 public:
  struct Options {
    /// Process-wide cache budget in bytes across every session's
    /// ArtifactCache; 0 = unlimited. Replaces the per-session budget: one
    /// hot tenant may use everything while cold tenants' artifacts are
    /// evicted first.
    uint64_t cache_budget_bytes = 0;
  };

  DatasetCatalog();  ///< Unlimited budget.
  explicit DatasetCatalog(Options opts);
  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Registers `data` + `grouping` under `name` (taking ownership) and
  /// spins up its dynamic session. `group_columns` is the insert-routing
  /// provenance, as in SolverSession::CreateDynamic. Fails without
  /// mutating anything when the name is empty or taken, or the session
  /// refuses the pair.
  Status Register(const std::string& name, Dataset data, Grouping grouping,
                  const std::vector<std::string>& group_columns = {});

  /// Restores a snapshot file under `name` — warm: the skyline index and
  /// insert-routing state come from the file, not from recomputation.
  /// Strict: any read/validation error (see data/snapshot.h for the
  /// taxonomy) leaves the catalog untouched.
  Status Load(const std::string& name, const std::string& path);

  /// Writes `name`'s current serving state to `path` (atomic
  /// write-then-rename). The session stays registered and warm.
  Status Save(const std::string& name, const std::string& path);

  /// Removes `name`, its session and its cache charge. NotFound when
  /// absent.
  Status Drop(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> List() const;

  /// The session serving `name` (NotFound otherwise). Callers may mutate
  /// through it (Insert/Erase) under the single-writer contract; prefer
  /// Solve() for queries so budget arbitration runs.
  StatusOr<SolverSession*> Session(const std::string& name);

  /// Routes one query to `name`: marks its session most-recently-used,
  /// solves, then rebalances the global budget (preferring the session
  /// that just served). Results are bit-identical to a standalone session
  /// pinned to the same data — the catalog adds routing and arbitration,
  /// never a different code path.
  StatusOr<SolverResult> Solve(const std::string& name,
                               const SolverRequest& request);

  /// Monotonic catalog mutation counter: Register/Load/Drop bump it, so a
  /// response stamped with it pins exactly which catalog state served the
  /// query (the batch driver echoes it per line).
  uint64_t version() const { return version_; }

  size_t size() const { return entries_.size(); }

  /// The process-wide budget arbiter (telemetry / reports).
  CacheArbiter* arbiter() { return &arbiter_; }
  const CacheArbiter* arbiter() const { return &arbiter_; }

 private:
  struct Entry {
    std::unique_ptr<Dataset> data;
    std::unique_ptr<Grouping> grouping;
    std::unique_ptr<SolverSession> session;
  };

  /// Shared tail of Register/Load: builds the session over an
  /// already-validated entry and commits it under `name`.
  Status Commit(const std::string& name, Entry entry);

  CacheArbiter arbiter_;
  std::map<std::string, Entry> entries_;
  uint64_t version_ = 0;
};

}  // namespace fairhms

#endif  // FAIRHMS_API_CATALOG_H_
