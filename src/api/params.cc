#include "api/params.h"

#include <cmath>

#include "common/string_util.h"

namespace fairhms {
namespace {

/// Human-readable rendering of a Value for error messages.
std::string ValueToString(const AlgoParams::Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return StrFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* d = std::get_if<double>(&v)) return StrFormat("%g", *d);
  if (const auto* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  return std::get<std::string>(v);
}

/// Renders the valid range of a numeric spec, e.g. "(0, 1]" or ">= 1".
std::string RangeToString(const ParamSpec& spec) {
  const bool has_min = spec.min_value > -1e308;
  const bool has_max = spec.max_value < 1e308;
  if (has_min && has_max) {
    return StrFormat("%s%g, %g%s", spec.min_exclusive ? "(" : "[",
                     spec.min_value, spec.max_value,
                     spec.max_exclusive ? ")" : "]");
  }
  if (has_min) {
    return StrFormat("%s %g", spec.min_exclusive ? ">" : ">=", spec.min_value);
  }
  if (has_max) {
    return StrFormat("%s %g", spec.max_exclusive ? "<" : "<=", spec.max_value);
  }
  return "unbounded";
}

Status CheckRange(const std::string& algorithm, const ParamSpec& spec,
                  double value) {
  const bool below = spec.min_exclusive ? value <= spec.min_value
                                        : value < spec.min_value;
  const bool above = spec.max_exclusive ? value >= spec.max_value
                                        : value > spec.max_value;
  if (below || above) {
    return Status::InvalidArgument(StrFormat(
        "%s: parameter '%s' = %g out of range (valid: %s)", algorithm.c_str(),
        spec.name.c_str(), value, RangeToString(spec).c_str()));
  }
  return Status::OK();
}

}  // namespace

const char* ParamTypeToString(ParamType type) {
  switch (type) {
    case ParamType::kInt: return "int";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
    case ParamType::kString: return "string";
  }
  return "unknown";
}

int64_t AlgoParams::IntOr(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const auto* i = std::get_if<int64_t>(&it->second)) return *i;
  if (const auto* d = std::get_if<double>(&it->second)) {
    return static_cast<int64_t>(*d);
  }
  return def;
}

double AlgoParams::DoubleOr(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const auto* d = std::get_if<double>(&it->second)) return *d;
  if (const auto* i = std::get_if<int64_t>(&it->second)) {
    return static_cast<double>(*i);
  }
  return def;
}

bool AlgoParams::BoolOr(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const auto* b = std::get_if<bool>(&it->second)) return *b;
  return def;
}

std::string AlgoParams::StringOr(const std::string& name,
                                 const std::string& def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
  return def;
}

std::vector<std::string> AlgoParams::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, v] : values_) keys.push_back(k);
  return keys;
}

Status ValidateParams(const std::string& algorithm,
                      const std::vector<ParamSpec>& schema,
                      const AlgoParams& params) {
  for (const auto& [key, value] : params.values()) {
    const ParamSpec* spec = nullptr;
    for (const auto& s : schema) {
      if (s.name == key) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      std::vector<std::string> names;
      for (const auto& s : schema) names.push_back(s.name);
      return Status::InvalidArgument(StrFormat(
          "%s: unknown parameter '%s' (valid: %s)", algorithm.c_str(),
          key.c_str(), names.empty() ? "none" : Join(names, ", ").c_str()));
    }
    switch (spec->type) {
      case ParamType::kInt: {
        if (!std::holds_alternative<int64_t>(value)) {
          return Status::InvalidArgument(StrFormat(
              "%s: parameter '%s' must be an int, got %s", algorithm.c_str(),
              key.c_str(), ValueToString(value).c_str()));
        }
        FAIRHMS_RETURN_IF_ERROR(CheckRange(
            algorithm, *spec,
            static_cast<double>(std::get<int64_t>(value))));
        break;
      }
      case ParamType::kDouble: {
        double v = 0.0;
        if (const auto* d = std::get_if<double>(&value)) {
          v = *d;
        } else if (const auto* i = std::get_if<int64_t>(&value)) {
          v = static_cast<double>(*i);
        } else {
          return Status::InvalidArgument(StrFormat(
              "%s: parameter '%s' must be a double, got %s", algorithm.c_str(),
              key.c_str(), ValueToString(value).c_str()));
        }
        if (!std::isfinite(v)) {
          return Status::InvalidArgument(
              StrFormat("%s: parameter '%s' must be finite", algorithm.c_str(),
                        key.c_str()));
        }
        FAIRHMS_RETURN_IF_ERROR(CheckRange(algorithm, *spec, v));
        break;
      }
      case ParamType::kBool: {
        if (!std::holds_alternative<bool>(value)) {
          return Status::InvalidArgument(StrFormat(
              "%s: parameter '%s' must be a bool, got %s", algorithm.c_str(),
              key.c_str(), ValueToString(value).c_str()));
        }
        break;
      }
      case ParamType::kString: {
        if (!std::holds_alternative<std::string>(value)) {
          return Status::InvalidArgument(StrFormat(
              "%s: parameter '%s' must be a string, got %s", algorithm.c_str(),
              key.c_str(), ValueToString(value).c_str()));
        }
        if (!spec->choices.empty()) {
          const std::string& s = std::get<std::string>(value);
          bool found = false;
          for (const auto& c : spec->choices) {
            if (c == s) {
              found = true;
              break;
            }
          }
          if (!found) {
            return Status::InvalidArgument(StrFormat(
                "%s: parameter '%s' = '%s' not in {%s}", algorithm.c_str(),
                key.c_str(), s.c_str(), Join(spec->choices, ", ").c_str()));
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace fairhms
