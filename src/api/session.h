// SolverSession: the multi-query engine of the FairHMS library.
//
// The paper's experimental workload — and any serving deployment — is a
// sweep: many (algorithm, k, bounds, params, seed) queries against one
// fixed dataset. A SolverSession pins a Dataset + Grouping once and serves
// every SolverRequest through the same AlgorithmRegistry path as
// Solver::Solve, but memoizes the shared artifacts across queries in an
// ArtifactCache (core/artifact_cache.h): global skylines per projection
// key, prepared 2D projections, sampled utility nets and NetEvaluator
// denominator/candidate precomputes, fair candidate pools and group
// tables.
//
//   SolverSession session = SolverSession::Create(&data, &groups).value();
//   SolverRequest req;                  // data/grouping may stay null —
//   req.algorithm = "bigreedy";         // the session fills its pinned
//   req.bounds = bounds;                // objects in.
//   auto first = session.Solve(req);    // cold: builds artifacts
//   auto again = session.Solve(req);    // warm: cache hits
//   session.cache_stats();              // hits / misses / bytes
//
// Guarantee: a warm solve is bit-identical to a cold one — the cache only
// memoizes pure functions of the pinned objects and restores RNG streams
// on hits, so Solver::Solve(req) (the one-shot special case, which runs a
// throwaway session) and session.Solve(req) return identical results.
//
// Solve is safe for concurrent callers once registration has finished; the
// cache serializes artifact construction internally. ClearCache must not
// race in-flight solves.

#ifndef FAIRHMS_API_SESSION_H_
#define FAIRHMS_API_SESSION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "api/solver.h"
#include "common/statusor.h"
#include "core/artifact_cache.h"
#include "data/dataset.h"
#include "data/grouping.h"

namespace fairhms {

class SolverSession {
 public:
  /// Pins `data` + `grouping` (not owned; both must outlive the session and
  /// must not be mutated while it lives). Fails with InvalidArgument on a
  /// null/empty dataset or a grouping that does not cover it.
  static StatusOr<SolverSession> Create(const Dataset* data,
                                        const Grouping* grouping);

  SolverSession(SolverSession&&) = default;
  SolverSession& operator=(SolverSession&&) = default;

  /// Serves one query. request.data / request.grouping may be null (the
  /// pinned objects are filled in) or must equal the pinned pointers —
  /// anything else is an InvalidArgument (pin another session for another
  /// dataset).
  StatusOr<SolverResult> Solve(const SolverRequest& request);

  const Dataset& data() const { return *data_; }
  const Grouping& grouping() const { return *grouping_; }

  /// Pinned per-group row counts (memoized).
  const std::vector<int>& group_counts() { return cache_->GroupCounts(*grouping_); }

  /// Hit/miss/byte report across every artifact class.
  CacheStats cache_stats() const { return cache_->stats(); }

  /// The session's cache, for callers that evaluate results against the
  /// same pinned dataset (e.g. the batch driver's reference mhr).
  ArtifactCache* cache() { return cache_.get(); }

  /// Drops every memoized artifact (hit/miss history survives). Must not
  /// race in-flight solves.
  void ClearCache();

 private:
  SolverSession(const Dataset* data, const Grouping* grouping);

  /// The pinned dataset projected to its first two attributes, built on
  /// first use (exact-2D algorithms on dim > 2 data).
  const Dataset& Projection2D();

  const Dataset* data_;
  const Grouping* grouping_;
  std::unique_ptr<ArtifactCache> cache_;
  std::unique_ptr<std::mutex> projection_mu_;
  std::unique_ptr<Dataset> projection2d_;
};

namespace internal {

/// Request-shape + parameter-schema validation shared by Solver::Validate,
/// Solver::Solve and SolverSession::Solve. On success *info_out (when
/// non-null) points at the resolved registry entry. A non-null `cache`
/// memoizes the group counts used by the bounds-feasibility check.
Status ValidateRequestShape(const SolverRequest& request,
                            const AlgorithmInfo** info_out,
                            ArtifactCache* cache = nullptr);

}  // namespace internal

}  // namespace fairhms

#endif  // FAIRHMS_API_SESSION_H_
