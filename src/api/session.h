// SolverSession: the multi-query engine of the FairHMS library.
//
// The paper's experimental workload — and any serving deployment — is a
// sweep: many (algorithm, k, bounds, params, seed) queries against one
// fixed dataset. A SolverSession pins a Dataset + Grouping once and serves
// every SolverRequest through the same AlgorithmRegistry path as
// Solver::Solve, but memoizes the shared artifacts across queries in an
// ArtifactCache (core/artifact_cache.h): global skylines per projection
// key, prepared 2D projections, sampled utility nets and NetEvaluator
// denominator/candidate precomputes, fair candidate pools and group
// tables.
//
//   SolverSession session = SolverSession::Create(&data, &groups).value();
//   SolverRequest req;                  // data/grouping may stay null —
//   req.algorithm = "bigreedy";         // the session fills its pinned
//   req.bounds = bounds;                // objects in.
//   auto first = session.Solve(req);    // cold: builds artifacts
//   auto again = session.Solve(req);    // warm: cache hits
//   session.cache_stats();              // hits / misses / bytes
//
// Guarantee: a warm solve is bit-identical to a cold one — the cache only
// memoizes pure functions of the pinned objects and restores RNG streams
// on hits, so Solver::Solve(req) (the one-shot special case, which runs a
// throwaway session) and session.Solve(req) return identical results.
//
// Dynamic sessions (CreateDynamic) additionally accept mutations between
// queries: Insert appends a row (deriving its fairness group from pinned
// categorical columns, or taking an explicit id), Erase tombstones rows.
// A SkylineIndex keeps the global/per-group skylines, fair pool and live
// group tables current incrementally and republishes them into the cache
// under the new dataset version, so an update only dirties what it must:
// utility nets survive untouched, evaluator precomputes rebuild lazily
// when the skyline rows under them change, and the 2D projection extends
// in place. The warm-equals-cold guarantee extends across mutations —
// after any update a session query is bit-identical to a cold
// Solver::Solve against the mutated dataset.
//
// Solve is safe for concurrent callers once registration has finished; the
// cache serializes artifact construction internally. ClearCache, Insert
// and Erase must not race in-flight solves.

#ifndef FAIRHMS_API_SESSION_H_
#define FAIRHMS_API_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/solver.h"
#include "common/thread_annotations.h"
#include "common/statusor.h"
#include "core/artifact_cache.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "plan/cost_model.h"
#include "skyline/incremental.h"

namespace fairhms {

class SolverSession {
 public:
  /// Pins `data` + `grouping` (not owned; both must outlive the session and
  /// must not be mutated while it lives). Fails with InvalidArgument on a
  /// null/empty dataset or a grouping that does not cover it.
  static StatusOr<SolverSession> Create(const Dataset* data,
                                        const Grouping* grouping);

  /// Pins a *mutable* dataset + grouping: the session serves Insert/Erase
  /// updates between queries and maintains every derived artifact
  /// incrementally (see the header comment). `group_columns` names
  /// categorical columns whose value combination assigns each inserted
  /// row's group (new combinations open a new group); without them,
  /// inserts into a multi-group session need an explicit group id. The
  /// given grouping must already agree with `group_columns` where given.
  static StatusOr<SolverSession> CreateDynamic(
      Dataset* data, Grouping* grouping,
      const std::vector<std::string>& group_columns = {});

  /// Rebuilds a dynamic session from snapshotted state (data/snapshot.h):
  /// like CreateDynamic, but seeds the combination table from `combo_map`
  /// — preserving routes whose rows were all erased, which a replay of the
  /// live table could never recover — and adopts an already-restored
  /// SkylineIndex (may be null; the index then builds lazily on the first
  /// mutation). The index, when given, must have been restored against
  /// exactly `data` + `grouping`.
  static StatusOr<SolverSession> RestoreDynamic(
      Dataset* data, Grouping* grouping,
      const std::vector<std::string>& group_columns,
      std::vector<std::pair<std::vector<int>, int>> combo_map,
      std::unique_ptr<SkylineIndex> index);

  SolverSession(SolverSession&&) = default;
  SolverSession& operator=(SolverSession&&) = default;

  /// True when the session was created via CreateDynamic.
  bool dynamic() const { return mutable_data_ != nullptr; }

  /// Appends one row (`codes` must cover every categorical column of the
  /// pinned dataset). `group` is an existing group id, or -1 to derive one
  /// (single-group sessions and pinned group_columns only). Returns the
  /// new row's index. Must not race in-flight solves.
  StatusOr<int> Insert(const std::vector<double>& coords,
                       const std::vector<int>& codes, int group = -1);

  /// Tombstones the given live rows (they stay addressable; they leave
  /// every skyline, pool and group table). Groups emptied by deletes stay
  /// in the grouping and get [0, 0] proportional bounds. Must not race
  /// in-flight solves.
  Status Erase(const std::vector<int>& rows);

  /// The group Insert would route a row with these codes to, without
  /// mutating anything: an existing id, or -1 when a new group would be
  /// created from an unseen column combination. Surfaces every Insert
  /// routing error (no provenance, out-of-range or contradicting explicit
  /// group), so callers can run side effects of their own between this
  /// check and the Insert.
  StatusOr<int> ResolveInsertGroup(const std::vector<int>& codes,
                                   int group = -1);

  /// The pinned dataset's current mutation version.
  uint64_t version() const { return data_->version(); }

  /// Forces the dynamic machinery (combination table + SkylineIndex) into
  /// existence without waiting for a mutation — snapshot save wants the
  /// maintained skyline state even from a query-only session.
  /// FailedPrecondition on static sessions.
  Status EnsureIndex();

  /// The maintained skyline index, or null while none has been built
  /// (static session, or a dynamic one before its first mutation /
  /// EnsureIndex call).
  const SkylineIndex* index() const { return index_.get(); }

  /// Names of the pinned group columns (insert-routing provenance), in
  /// pinning order.
  std::vector<std::string> group_column_names() const;

  /// The combination table as a sorted (combo, group) list — the form
  /// data/snapshot.h serializes. Empty until the dynamic state exists.
  std::vector<std::pair<std::vector<int>, int>> combo_map() const;

  /// Serves one query. request.data / request.grouping may be null (the
  /// pinned objects are filled in) or must equal the pinned pointers —
  /// anything else is an InvalidArgument (pin another session for another
  /// dataset).
  StatusOr<SolverResult> Solve(const SolverRequest& request);

  const Dataset& data() const { return *data_; }
  const Grouping& grouping() const { return *grouping_; }

  /// The pinned *mutable* dataset — null for static sessions. Callers that
  /// mutate through it (e.g. registering categorical labels ahead of an
  /// Insert) are bound by the same single-writer contract as Insert/Erase.
  Dataset* mutable_data() { return mutable_data_; }

  /// Pinned per-group *live* row counts (memoized per version).
  const std::vector<int>& group_counts();

  /// Hit/miss/byte report across every artifact class.
  CacheStats cache_stats() const { return cache_->stats(); }

  /// The session's cache, for callers that evaluate results against the
  /// same pinned dataset (e.g. the batch driver's reference mhr).
  ArtifactCache* cache() { return cache_.get(); }

  /// The session's measured cost model: every successful solve records an
  /// observation, and `algorithm: "auto"` requests plan against it.
  /// DatasetCatalog persists it next to snapshots (`<path>.plan`).
  CostModel* cost_model() { return cost_model_.get(); }
  const CostModel* cost_model() const { return cost_model_.get(); }

  /// Drops every memoized artifact (hit/miss history survives). Must not
  /// race in-flight solves.
  void ClearCache() FAIRHMS_EXCLUDES(*projection_mu_);

 private:
  SolverSession(const Dataset* data, const Grouping* grouping);

  /// The pinned dataset projected to its first two attributes, built on
  /// first use (exact-2D algorithms on dim > 2 data) and kept in sync
  /// with mutations: appended rows extend it, tombstones are mirrored.
  const Dataset& Projection2D() FAIRHMS_EXCLUDES(*projection_mu_);

  /// Builds the dynamic machinery (combo table + SkylineIndex) on the
  /// first actual mutation, so update-free dynamic sessions cost exactly
  /// what a static session does.
  Status EnsureDynamicState();

  /// Pushes the SkylineIndex's artifacts into the cache under the current
  /// versions, once per version (dynamic sessions that have mutated only;
  /// no-op otherwise). Updates themselves stay O(skyline): a burst of
  /// mutations publishes lazily on the next query.
  void PublishIndexIfStale();

  /// Last compatible solve of a warm_startable algorithm, keyed by
  /// algorithm name. The hint is advisory (the algorithm re-validates),
  /// so the memo survives ClearCache and bounds drift; eligibility only
  /// filters the cases where probing would be wasted work.
  struct WarmMemo {
    int tau_index = -1;
    int k = 0;
    uint64_t seed = 0;
    int threads = 0;
    uint64_t data_version = 0;
    uint64_t grouping_version = 0;
    std::string params_key;  ///< Fingerprint of the validated params bag.
  };

  const Dataset* data_;
  const Grouping* grouping_;
  std::unique_ptr<ArtifactCache> cache_;
  std::unique_ptr<CostModel> cost_model_;
  // SolverSession is movable (returned by value from the factories), so
  // its mutexes live behind unique_ptr; members are annotated against the
  // pointee (`*warm_mu_`) and locked as `MutexLock lock(*warm_mu_)`.
  std::unique_ptr<Mutex> warm_mu_;
  std::map<std::string, WarmMemo> warm_memo_ FAIRHMS_GUARDED_BY(*warm_mu_);
  std::unique_ptr<Mutex> projection_mu_;
  std::unique_ptr<Dataset> projection2d_ FAIRHMS_GUARDED_BY(*projection_mu_);
  uint64_t projection_synced_version_ FAIRHMS_GUARDED_BY(*projection_mu_) = 0;

  // Dynamic-session state (null/empty for Create'd sessions).
  Dataset* mutable_data_ = nullptr;
  Grouping* mutable_grouping_ = nullptr;
  std::vector<int> group_cols_;  ///< Categorical column indices.
  std::map<std::vector<int>, int> combo_to_group_;
  std::unique_ptr<SkylineIndex> index_;
  std::unique_ptr<Mutex> publish_mu_;
  uint64_t published_data_version_ FAIRHMS_GUARDED_BY(*publish_mu_) =
      ~uint64_t{0};
  uint64_t published_grouping_version_ FAIRHMS_GUARDED_BY(*publish_mu_) =
      ~uint64_t{0};
};

namespace internal {

/// Request-shape + parameter-schema validation shared by Solver::Validate,
/// Solver::Solve and SolverSession::Solve. On success *info_out (when
/// non-null) points at the resolved registry entry. A non-null `cache`
/// memoizes the group counts used by the bounds-feasibility check.
Status ValidateRequestShape(const SolverRequest& request,
                            const AlgorithmInfo** info_out,
                            ArtifactCache* cache = nullptr);

}  // namespace internal

}  // namespace fairhms

#endif  // FAIRHMS_API_SESSION_H_
