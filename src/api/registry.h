// AlgorithmRegistry: the single catalogue of every FairHMS / HMS solver in
// the library.
//
// Each algorithm self-registers from its own .cc via a file-scope
// AlgorithmRegistrar: a factory closure (SolveFn) plus capability metadata
// and the parameter schema its AlgoParams are validated against. The
// Solver::Solve facade (api/solver.h), the CLI's --list_algos, examples and
// tests all resolve algorithms by name through this registry — adding an
// algorithm to the library is one registrar block, with no CLI or facade
// edits.

#ifndef FAIRHMS_API_REGISTRY_H_
#define FAIRHMS_API_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/params.h"
#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

class ArtifactCache;  // core/artifact_cache.h

/// What an algorithm can do / needs. Drives facade behavior (2D projection,
/// skyline preparation) and the --list_algos capability column.
struct AlgoCapabilities {
  /// Exact but 2D-only; Solver::Solve transparently solves higher-D
  /// requests on the first-two-attribute projection (with a result note).
  bool exact_2d = false;
  /// Honors the group bounds by construction. When false the algorithm runs
  /// unconstrained on the global skyline and the bounds are only used for
  /// the violation report; Solver::Solve prepares the skyline.
  bool fairness_aware = false;
  /// Uses the request seed (randomized direction nets etc.). Runs are still
  /// reproducible for a fixed seed.
  bool randomized = false;
  /// Accepts the BiGreedy+ adaptive-sampling 'lambda' parameter.
  bool supports_lambda = false;
  /// Can seed a solve from a previous session solution (via
  /// SolveContext::warm_tau_index) and self-validate the hint, falling
  /// back to a cold solve when validation fails. Warm results must be
  /// bit-identical to cold ones.
  bool warm_startable = false;
};

/// Renders set capabilities as "fair,exact-2d,..." (or "-" when none).
/// Token order is fixed (fair, exact-2d, randomized, lambda, warm); the
/// CLI's --list_algos prints this as a machine-parseable column and CI
/// greps it.
std::string CapabilitiesToString(const AlgoCapabilities& caps);

/// Per-solve diagnostics an algorithm reports back through
/// SolveContext::run_info (when non-null). Used by SolverSession to decide
/// warm-start eligibility for the *next* solve.
struct SolveRunInfo {
  /// Certified tau-grid index of the returned solution (-1 when the solve
  /// did not certify one, e.g. greedy fallback paths).
  int tau_index = -1;
  /// The warm-start hint was accepted; the solve skipped its cold search.
  bool warm_start_used = false;
};

/// Everything Solver::Solve hands an algorithm. `data` is the dataset to
/// select from (already projected to 2D for exact_2d algorithms);
/// `skyline` holds the global skyline of `data` for algorithms with
/// fairness_aware == false (empty otherwise). `params` has been validated
/// against the algorithm's schema.
struct SolveContext {
  const Dataset* data = nullptr;
  const Grouping* grouping = nullptr;
  const GroupBounds* bounds = nullptr;
  const std::vector<int>* skyline = nullptr;
  uint64_t seed = 42;
  int threads = 0;
  const AlgoParams* params = nullptr;
  /// Cross-query artifact memoization, set when the solve runs inside a
  /// SolverSession (api/session.h); null on the one-shot cold path.
  /// Algorithms must produce bit-identical results either way.
  ArtifactCache* cache = nullptr;
  /// Warm-start hint for warm_startable algorithms: the certified tau-grid
  /// index of the session's previous compatible solution, or -1 for a cold
  /// solve. Purely advisory — the algorithm re-validates it and must
  /// return bit-identical results whether or not the hint is used.
  int warm_tau_index = -1;
  /// When non-null, the algorithm fills per-solve diagnostics here.
  SolveRunInfo* run_info = nullptr;
};

/// An algorithm's entry point: builds its Options from the context's params
/// and runs. Must be deterministic for a fixed (context, seed, threads).
using SolveFn = std::function<StatusOr<Solution>(const SolveContext&)>;

/// One registry entry.
struct AlgorithmInfo {
  std::string name;          ///< Registry key, e.g. "bigreedy+".
  std::string display_name;  ///< Human name, e.g. "BiGreedy+".
  std::string summary;       ///< One-line description for --list_algos.
  AlgoCapabilities caps;
  std::vector<ParamSpec> params;  ///< Schema; kept sorted by name.
  SolveFn solve;
};

/// Process-wide algorithm catalogue. Registration happens during static
/// initialization (single-threaded); lookups afterwards are read-only.
class AlgorithmRegistry {
 public:
  /// The singleton (created on first use, never destroyed).
  static AlgorithmRegistry& Instance();

  /// Adds an entry. Duplicate names or a missing solve fn are programming
  /// errors and return Internal (AlgorithmRegistrar aborts on them).
  Status Register(AlgorithmInfo info);

  /// Entry by name, or nullptr. Pointers stay valid for process lifetime.
  const AlgorithmInfo* Find(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// All entries, sorted by name.
  std::vector<const AlgorithmInfo*> All() const;

  /// "a, b, c" over Names() — the uniform unknown-algorithm error text.
  std::string NamesForError() const;

 private:
  AlgorithmRegistry() = default;
  /// Keyed by name; std::map keeps Names()/All() deterministically sorted.
  std::map<std::string, AlgorithmInfo> entries_;
};

/// File-scope self-registration helper:
///   namespace { AlgorithmRegistrar reg(MakeMyAlgoInfo()); }
/// Aborts the process on registration errors (duplicate name = build bug).
class AlgorithmRegistrar {
 public:
  explicit AlgorithmRegistrar(AlgorithmInfo info);
};

}  // namespace fairhms

#endif  // FAIRHMS_API_REGISTRY_H_
