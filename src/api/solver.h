// Solver: the single programmatic entry point of the FairHMS library.
//
// Build a SolverRequest (dataset + grouping + bounds + algorithm name +
// seed/threads + an AlgoParams bag), call Solver::Solve, get a SolverResult
// (solution rows, per-group counts versus bounds, the algorithm's mhr
// estimate, timings). Algorithm resolution, parameter validation against
// the registered schema, the 2D-projection fallback for exact-2D engines
// and skyline preparation for unconstrained baselines all happen here, in
// one place — the CLI, examples, tests and future serving layers are thin
// wrappers over this facade.
//
//   SolverRequest req;
//   req.data = &data; req.grouping = &groups; req.bounds = bounds;
//   req.algorithm = "bigreedy";
//   auto result = Solver::Solve(req);

#ifndef FAIRHMS_API_SOLVER_H_
#define FAIRHMS_API_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/params.h"
#include "api/registry.h"
#include "common/statusor.h"
#include "core/solution.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {

/// One solve: what to run, on what, under which constraint.
struct SolverRequest {
  /// The dataset to select from (not owned; must outlive the call). Use
  /// your normalization of choice before solving.
  const Dataset* data = nullptr;
  /// Fairness groups over `data`'s rows (not owned).
  const Grouping* grouping = nullptr;
  /// Per-group bounds; bounds.k is the result size.
  GroupBounds bounds;
  /// Registry name, e.g. "intcov", "bigreedy+", "g_dmm" (see
  /// AlgorithmRegistry::Names() or `fairhms_cli --list_algos`), or
  /// "auto" to let the session's planner (plan/planner.h) choose from the
  /// cost model; the chosen name and prediction are echoed in
  /// SolverResult::plan.
  std::string algorithm;
  /// Seed for every randomized part (direction nets). >= 0.
  uint64_t seed = 42;
  /// Evaluation-engine lanes: 0 = DefaultThreads(), 1 = exact serial path.
  /// Results are bit-identical across thread counts.
  int threads = 0;
  /// Algorithm-specific knobs, validated against the registered schema.
  /// With "auto", validation happens against the planner's choice (and the
  /// planner may fill keys left unset).
  AlgoParams params;
  /// Planner constraints, honored only with algorithm == "auto". 0 = unset.
  double latency_budget_ms = 0.0;
  /// Minimum predicted happiness ratio, only with "auto". 0 = unset.
  double quality_target = 0.0;
  /// Allow warm_startable algorithms to seed from the session's previous
  /// compatible solution (results stay bit-identical; see
  /// AlgoCapabilities::warm_startable). One-shot Solver::Solve calls run
  /// in a throwaway session, so this only matters for held sessions.
  bool allow_warm_start = true;
};

/// The planner's decision for an `algorithm: "auto"` request, echoed next
/// to the result (and over the wire) so callers can compare predicted vs
/// actual cost.
struct SolverPlanEcho {
  bool planned = false;        ///< True iff the request said "auto".
  double predicted_ms = -1.0;  ///< Model prediction; -1 when cold.
  double predicted_hr = -1.0;  ///< Predicted happiness ratio; -1 when cold.
  std::string reason;          ///< Human-readable why (not stable API).
  std::string params;          ///< Params the planner set, "" when none.
};

/// The outcome of a solve, ready for reporting.
struct SolverResult {
  /// Selected rows + the algorithm's own mhr estimate, solve wall-clock and
  /// display name. Benches/CLI re-evaluate mhr with a reference evaluator.
  Solution solution;
  std::string algorithm;          ///< Registry name that ran.
  std::vector<int> group_counts;  ///< Solution members per group.
  GroupBounds bounds;             ///< The constraint that was applied.
  int violations = 0;             ///< CountViolations of the solution.
  /// Caveats, e.g. the exact-2D projection note or the unconstrained-
  /// baseline disclaimer. Empty when none.
  std::string note;
  /// The global skyline of request.data when the facade had to compute it
  /// (unconstrained baselines run on it); empty otherwise. Callers doing a
  /// reference mhr evaluation can reuse it instead of recomputing.
  std::vector<int> skyline;
  double solve_ms = 0.0;  ///< Algorithm wall-clock (== solution.elapsed_ms).
  double total_ms = 0.0;  ///< Facade wall-clock incl. skyline/projection.
  /// Planner echo for `algorithm: "auto"` requests (plan.planned == false
  /// otherwise).
  SolverPlanEcho plan;
  /// The solve was warm-started from the session's previous solution
  /// (bit-identical to the cold solve it replaced).
  bool warm_start_used = false;
};

/// The facade. Stateless; all methods are safe for concurrent use once
/// static registration has finished (i.e. from main on).
class Solver {
 public:
  /// Validates the request (uniform InvalidArgument messages), resolves the
  /// algorithm via the AlgorithmRegistry, applies the exact-2D projection
  /// fallback / skyline preparation as the capabilities demand, runs the
  /// algorithm and assembles the result.
  static StatusOr<SolverResult> Solve(const SolverRequest& request);

  /// Request-shape and parameter-schema validation only (everything
  /// Solve checks before running the algorithm). Useful for admission
  /// control in serving layers.
  static Status Validate(const SolverRequest& request);
};

}  // namespace fairhms

#endif  // FAIRHMS_API_SOLVER_H_
