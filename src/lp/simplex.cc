#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fairhms {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau with an explicit basis. Columns are
/// [structural | slack/surplus | artificial | rhs].
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols),
                                a_(static_cast<size_t>(rows) * cols, 0.0),
                                basis_(rows, -1) {}

  double& At(int r, int c) { return a_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return a_[static_cast<size_t>(r) * cols_ + c];
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int basis(int r) const { return basis_[static_cast<size_t>(r)]; }
  void set_basis(int r, int col) { basis_[static_cast<size_t>(r)] = col; }

  /// Gauss-Jordan pivot on (pr, pc).
  void Pivot(int pr, int pc) {
    const double piv = At(pr, pc);
    assert(std::fabs(piv) > kEps);
    const double inv = 1.0 / piv;
    for (int c = 0; c < cols_; ++c) At(pr, c) *= inv;
    At(pr, pc) = 1.0;  // Exact.
    for (int r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = At(r, pc);
      if (std::fabs(factor) <= kEps) {
        At(r, pc) = 0.0;
        continue;
      }
      for (int c = 0; c < cols_; ++c) At(r, c) -= factor * At(pr, c);
      At(r, pc) = 0.0;  // Exact.
    }
    basis_[static_cast<size_t>(pr)] = pc;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> a_;
  std::vector<int> basis_;
};

/// One simplex phase: maximize obj over the tableau's feasible basis.
/// `allowed_cols` marks columns eligible to enter. Returns the phase status.
LpStatus RunPhase(Tableau* t, std::vector<double>* obj, double* obj_value,
                  const std::vector<bool>& allowed_cols, int max_iterations) {
  const int m = t->rows();
  const int ncols = static_cast<int>(obj->size());  // Excludes rhs column.
  const int rhs_col = t->cols() - 1;

  int stall_count = 0;
  double last_obj = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Reduced costs: rc[j] = obj[j] - sum_r obj[basis_r] * a[r][j]. We keep
    // `obj` reduced in place instead (price out at pivot time), i.e. `obj`
    // always holds the current reduced-cost row and *obj_value the current
    // objective of the basic solution.
    const bool use_bland = stall_count > 2 * (m + ncols);

    int enter = -1;
    double best = kEps;
    for (int j = 0; j < ncols; ++j) {
      if (!allowed_cols[static_cast<size_t>(j)]) continue;
      const double rc = (*obj)[static_cast<size_t>(j)];
      if (rc > kEps) {
        if (use_bland) { enter = j; break; }
        if (rc > best) { best = rc; enter = j; }
      }
    }
    if (enter < 0) return LpStatus::kOptimal;

    // Ratio test.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      const double coef = t->At(r, enter);
      if (coef > kEps) {
        const double ratio = t->At(r, rhs_col) / coef;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave >= 0 &&
             t->basis(r) < t->basis(leave))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) return LpStatus::kUnbounded;

    t->Pivot(leave, enter);

    // Price out the objective row against the new pivot row.
    const double factor = (*obj)[static_cast<size_t>(enter)];
    for (int c = 0; c < ncols; ++c) {
      (*obj)[static_cast<size_t>(c)] -= factor * t->At(leave, c);
    }
    *obj_value += factor * t->At(leave, rhs_col);
    (*obj)[static_cast<size_t>(enter)] = 0.0;

    if (*obj_value <= last_obj + kEps) {
      ++stall_count;
    } else {
      stall_count = 0;
      last_obj = *obj_value;
    }
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

const char* LpStatusToString(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "Optimal";
    case LpStatus::kInfeasible: return "Infeasible";
    case LpStatus::kUnbounded: return "Unbounded";
    case LpStatus::kIterationLimit: return "IterationLimit";
  }
  return "Unknown";
}

LpProblem::LpProblem(int num_vars) : num_vars_(num_vars) {
  assert(num_vars > 0);
  objective_.assign(static_cast<size_t>(num_vars), 0.0);
}

void LpProblem::SetObjective(std::vector<double> c) {
  assert(static_cast<int>(c.size()) == num_vars_);
  objective_ = std::move(c);
}

void LpProblem::AddConstraint(std::vector<double> coeffs, RelOp op,
                              double rhs) {
  assert(static_cast<int>(coeffs.size()) == num_vars_);
  rows_.push_back({std::move(coeffs), op, rhs});
}

LpResult LpProblem::Solve(int max_iterations) const {
  const int m = static_cast<int>(rows_.size());
  const int n = num_vars_;

  // Normalize rows to nonnegative rhs.
  std::vector<Row> rows = rows_;
  for (Row& r : rows) {
    if (r.rhs < 0) {
      for (double& c : r.coeffs) c = -c;
      r.rhs = -r.rhs;
      if (r.op == RelOp::kLe) r.op = RelOp::kGe;
      else if (r.op == RelOp::kGe) r.op = RelOp::kLe;
    }
  }

  // Count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const Row& r : rows) {
    if (r.op != RelOp::kEq) ++num_slack;
    if (r.op != RelOp::kLe) ++num_artificial;
  }

  const int total = n + num_slack + num_artificial;
  Tableau t(m, total + 1);  // +1 rhs column.
  const int rhs_col = total;

  int slack_at = n;
  int art_at = n + num_slack;
  std::vector<int> artificial_cols;
  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<size_t>(r)];
    for (int j = 0; j < n; ++j) t.At(r, j) = row.coeffs[static_cast<size_t>(j)];
    t.At(r, rhs_col) = row.rhs;
    switch (row.op) {
      case RelOp::kLe:
        t.At(r, slack_at) = 1.0;
        t.set_basis(r, slack_at);
        ++slack_at;
        break;
      case RelOp::kGe:
        t.At(r, slack_at) = -1.0;  // Surplus.
        ++slack_at;
        t.At(r, art_at) = 1.0;
        t.set_basis(r, art_at);
        artificial_cols.push_back(art_at);
        ++art_at;
        break;
      case RelOp::kEq:
        t.At(r, art_at) = 1.0;
        t.set_basis(r, art_at);
        artificial_cols.push_back(art_at);
        ++art_at;
        break;
    }
  }

  LpResult result;

  // ---- Phase 1: drive artificials to zero (maximize -sum artificials). ----
  if (num_artificial > 0) {
    std::vector<double> obj(static_cast<size_t>(total), 0.0);
    for (int c : artificial_cols) obj[static_cast<size_t>(c)] = -1.0;
    // Price out initial basis (artificials are basic with coefficient -1).
    double obj_value = 0.0;
    for (int r = 0; r < m; ++r) {
      const int b = t.basis(r);
      if (obj[static_cast<size_t>(b)] != 0.0) {
        const double f = obj[static_cast<size_t>(b)];
        for (int c = 0; c < total; ++c) obj[static_cast<size_t>(c)] -= f * t.At(r, c);
        obj_value += f * t.At(r, rhs_col);
        obj[static_cast<size_t>(b)] = 0.0;
      }
    }
    std::vector<bool> allowed(static_cast<size_t>(total), true);
    const LpStatus st = RunPhase(&t, &obj, &obj_value, allowed, max_iterations);
    if (st == LpStatus::kIterationLimit) {
      result.status = st;
      return result;
    }
    if (obj_value < -1e-7) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Pivot any artificial still in the basis out (degenerate rows).
    for (int r = 0; r < m; ++r) {
      const int b = t.basis(r);
      const bool is_art =
          b >= n + num_slack && b < n + num_slack + num_artificial;
      if (!is_art) continue;
      int pivot_col = -1;
      for (int c = 0; c < n + num_slack; ++c) {
        if (std::fabs(t.At(r, c)) > kEps) { pivot_col = c; break; }
      }
      if (pivot_col >= 0) t.Pivot(r, pivot_col);
      // Else the row is all-zero (redundant constraint); leave it.
    }
  }

  // ---- Phase 2: original objective, artificial columns frozen. ----
  std::vector<double> obj(static_cast<size_t>(total), 0.0);
  for (int j = 0; j < n; ++j) obj[static_cast<size_t>(j)] = objective_[static_cast<size_t>(j)];
  double obj_value = 0.0;
  for (int r = 0; r < m; ++r) {
    const int b = t.basis(r);
    if (b < total && obj[static_cast<size_t>(b)] != 0.0) {
      const double f = obj[static_cast<size_t>(b)];
      for (int c = 0; c < total; ++c) obj[static_cast<size_t>(c)] -= f * t.At(r, c);
      obj_value += f * t.At(r, rhs_col);
      obj[static_cast<size_t>(b)] = 0.0;
    }
  }
  std::vector<bool> allowed(static_cast<size_t>(total), true);
  for (int c : artificial_cols) allowed[static_cast<size_t>(c)] = false;
  const LpStatus st = RunPhase(&t, &obj, &obj_value, allowed, max_iterations);
  result.status = st;
  if (st != LpStatus::kOptimal) return result;

  result.x.assign(static_cast<size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = t.basis(r);
    if (b >= 0 && b < n) {
      result.x[static_cast<size_t>(b)] = t.At(r, rhs_col);
    }
  }
  result.objective = obj_value;
  return result;
}

}  // namespace fairhms
