// Dense two-phase primal simplex.
//
// Solves   maximize c.x   subject to   A x {<=,>=,==} b,   x >= 0.
//
// The FairHMS workloads solve very many *small* LPs (d + 1 variables,
// |S| + 1 constraints) — max-regret witness LPs for exact MHR evaluation and
// for the RDP-Greedy / F-Greedy baselines — so the implementation favors a
// simple dense tableau with careful anti-cycling over sparse sophistication.

#ifndef FAIRHMS_LP_SIMPLEX_H_
#define FAIRHMS_LP_SIMPLEX_H_

#include <vector>

#include "common/status.h"

namespace fairhms {

/// Relation of a linear constraint row.
enum class RelOp { kLe, kGe, kEq };

/// Terminal state of a solve.
enum class LpStatus {
  kOptimal,        ///< Optimal solution found.
  kInfeasible,     ///< No feasible point exists.
  kUnbounded,      ///< Objective unbounded above on the feasible region.
  kIterationLimit, ///< Pivot budget exhausted (numerical trouble).
};

const char* LpStatusToString(LpStatus s);

/// Result of LpProblem::Solve.
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< Valid when status == kOptimal.
  std::vector<double> x;        ///< Primal solution (size = num_vars).
};

/// A linear program under construction. All variables are nonnegative;
/// model free variables as differences of two if ever needed.
class LpProblem {
 public:
  /// Creates a problem over `num_vars` nonnegative variables.
  explicit LpProblem(int num_vars);

  /// Sets the objective coefficients (size must equal num_vars).
  void SetObjective(std::vector<double> c);

  /// Adds the row  coeffs . x  (op)  rhs. `coeffs` size must equal num_vars.
  void AddConstraint(std::vector<double> coeffs, RelOp op, double rhs);

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  /// Runs two-phase simplex. Deterministic; Bland's rule engages
  /// automatically after a stall to guarantee termination.
  LpResult Solve(int max_iterations = 20000) const;

 private:
  struct Row {
    std::vector<double> coeffs;
    RelOp op;
    double rhs;
  };

  int num_vars_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace fairhms

#endif  // FAIRHMS_LP_SIMPLEX_H_
