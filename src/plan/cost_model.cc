#include "plan/cost_model.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <vector>

namespace fairhms {
namespace {

int Log2Bucket(uint64_t v) {
  int b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

CostSignature CostSignature::Make(int d, uint64_t n, int k, int num_groups,
                                  double bounds_tightness, bool cache_warm) {
  CostSignature sig;
  sig.d = d;
  sig.n_bucket = Log2Bucket(n);
  sig.k_bucket = Log2Bucket(k > 0 ? static_cast<uint64_t>(k) : 1);
  sig.groups_bucket =
      Log2Bucket(num_groups > 0 ? static_cast<uint64_t>(num_groups) : 1);
  double t = bounds_tightness;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  sig.tightness_bucket = static_cast<int>(t * 4.0 + 0.5);
  sig.warm = cache_warm;
  return sig;
}

bool CostSignature::operator<(const CostSignature& o) const {
  return std::tie(d, n_bucket, k_bucket, groups_bucket, tightness_bucket,
                  warm) < std::tie(o.d, o.n_bucket, o.k_bucket,
                                   o.groups_bucket, o.tightness_bucket,
                                   o.warm);
}

bool CostSignature::operator==(const CostSignature& o) const {
  return d == o.d && n_bucket == o.n_bucket && k_bucket == o.k_bucket &&
         groups_bucket == o.groups_bucket &&
         tightness_bucket == o.tightness_bucket && warm == o.warm;
}

void CostModel::Observe(const std::string& algorithm,
                        const CostSignature& sig, double solve_ms,
                        double happiness_ratio) {
  MutexLock lock(&mu_);
  Cell& cell = cells_[Key(algorithm, sig)];
  ++cell.count;
  cell.mean_ms += (solve_ms - cell.mean_ms) / static_cast<double>(cell.count);
  cell.mean_hr +=
      (happiness_ratio - cell.mean_hr) / static_cast<double>(cell.count);
}

CostModel::Estimate CostModel::Predict(const std::string& algorithm,
                                       const CostSignature& sig) const {
  MutexLock lock(&mu_);
  // Tier predicates, from most to least specific. Each tier combines the
  // matching cells by sample-weighted mean; the first non-empty tier wins.
  const auto matches_tier = [&sig](const CostSignature& s, int tier) {
    switch (tier) {
      case 0:
        return s == sig;
      case 1:
        return s.d == sig.d && s.n_bucket == sig.n_bucket &&
               s.k_bucket == sig.k_bucket &&
               s.groups_bucket == sig.groups_bucket &&
               s.tightness_bucket == sig.tightness_bucket;
      case 2:
        return s.d == sig.d && s.n_bucket == sig.n_bucket &&
               s.k_bucket == sig.k_bucket;
      case 3:
        return s.d == sig.d;
      default:
        return true;
    }
  };
  for (int tier = 0; tier <= 4; ++tier) {
    uint64_t total = 0;
    double ms_sum = 0.0;
    double hr_sum = 0.0;
    for (const auto& [key, cell] : cells_) {
      if (key.first != algorithm) continue;
      if (!matches_tier(key.second, tier)) continue;
      total += cell.count;
      ms_sum += cell.mean_ms * static_cast<double>(cell.count);
      hr_sum += cell.mean_hr * static_cast<double>(cell.count);
    }
    if (total > 0) {
      Estimate est;
      est.ms = ms_sum / static_cast<double>(total);
      est.happiness_ratio = hr_sum / static_cast<double>(total);
      est.samples = total;
      est.tier = tier;
      return est;
    }
  }
  return Estimate{};
}

uint64_t CostModel::observations() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [key, cell] : cells_) {
    (void)key;
    total += cell.count;
  }
  return total;
}

std::string CostModel::Serialize() const {
  MutexLock lock(&mu_);
  std::string out = "fairhms-cost-model v1\n";
  char buf[256];
  for (const auto& [key, cell] : cells_) {
    const CostSignature& s = key.second;
    std::snprintf(buf, sizeof(buf),
                  " %d %d %d %d %d %d %" PRIu64 " %.17g %.17g\n", s.d,
                  s.n_bucket, s.k_bucket, s.groups_bucket,
                  s.tightness_bucket, s.warm ? 1 : 0, cell.count,
                  cell.mean_ms, cell.mean_hr);
    out += key.first;
    out += buf;
  }
  return out;
}

Status CostModel::Restore(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "fairhms-cost-model v1") {
    return Status::InvalidArgument("cost model: bad header");
  }
  std::map<Key, Cell> parsed;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string algorithm;
    CostSignature sig;
    int warm = 0;
    Cell cell;
    if (!(fields >> algorithm >> sig.d >> sig.n_bucket >> sig.k_bucket >>
          sig.groups_bucket >> sig.tightness_bucket >> warm >> cell.count >>
          cell.mean_ms >> cell.mean_hr)) {
      return Status::InvalidArgument("cost model: bad cell line: " + line);
    }
    if (cell.count == 0) {
      return Status::InvalidArgument("cost model: zero-count cell: " + line);
    }
    sig.warm = warm != 0;
    parsed[Key(algorithm, sig)] = cell;
  }
  MutexLock lock(&mu_);
  cells_ = std::move(parsed);
  return Status::OK();
}

}  // namespace fairhms
