// Planner: resolves `algorithm: "auto"` requests into a concrete
// registered algorithm (and optionally parameters), driven by the
// registry's capability flags and the session's measured CostModel.
//
// The contract the rest of the stack depends on:
//
//  * **Deterministic.** The same PlanRequest against the same model state
//    yields the same Plan, across threads and repeat runs. Ties between
//    indistinguishable candidates break by a seeded hash of the request
//    seed and the algorithm name, then by name — never by iteration
//    order, wall clock, or randomness.
//  * **Transparent.** The planner only *selects*; it never changes solve
//    semantics. A planned solve is bit-identical to sending the chosen
//    algorithm (with the echoed params) directly.
//  * **Safe when cold.** With no observations the planner falls back to
//    capability-driven defaults (exact IntCov for 2-D data, BiGreedy
//    otherwise) instead of guessing from an empty model.
//
// Candidate set: fairness-aware algorithms, minus exact-2D solvers when
// the data is not 2-D (the facade would silently project and lose
// exactness — the planner refuses to pick a lossy plan on the caller's
// behalf; explicit requests can still do it).

#ifndef FAIRHMS_PLAN_PLANNER_H_
#define FAIRHMS_PLAN_PLANNER_H_

#include <cstdint>
#include <string>

#include "api/params.h"
#include "common/statusor.h"
#include "plan/cost_model.h"

namespace fairhms {

/// Everything the planner may inspect. Assembled by SolverSession from the
/// pinned dataset/grouping, the request, and ArtifactCache warmth.
struct PlanRequest {
  int d = 0;
  uint64_t n = 0;  ///< Live rows.
  int k = 0;
  int num_groups = 0;
  double bounds_tightness = 0.0;  ///< sum(lower bounds) / k, in [0, 1].
  bool cache_warm = false;        ///< Session cache holds artifacts.
  double latency_budget_ms = 0.0; ///< 0 = no budget.
  double quality_target = 0.0;    ///< Required happiness ratio; 0 = none.
  uint64_t seed = 42;             ///< Request seed; feeds the tie-break only.
};

/// The planner's decision, echoed over the wire next to the result.
struct Plan {
  std::string algorithm;
  double predicted_ms = -1.0;  ///< -1 when the model was cold.
  double predicted_hr = -1.0;  ///< -1 when the model was cold.
  std::string reason;          ///< Human-readable why (not stable API).
  std::string params_note;     ///< Params the planner set, "" when none.
};

class Planner {
 public:
  /// Picks an algorithm for `request` using `model`. When `params` is
  /// non-null the planner may additionally set parameter keys the caller
  /// left unset (currently: a smaller `net_size` for BiGreedy when the
  /// predicted time exceeds the latency budget); caller-set keys always
  /// win. InvalidArgument when no registered algorithm is eligible.
  static StatusOr<Plan> PlanQuery(const PlanRequest& request,
                                  const CostModel& model,
                                  AlgoParams* params = nullptr);
};

}  // namespace fairhms

#endif  // FAIRHMS_PLAN_PLANNER_H_
