// CostModel: the measured half of the `algorithm: "auto"` query planner.
//
// Every solve executed through SolverSession (and therefore through
// Solver::Solve, the batch CLI and the fairhms_serve daemon) records one
// observation — which algorithm ran, on what shape of problem, how long it
// took and what happiness ratio it achieved. Observations aggregate into
// per-(algorithm, signature) cells, where the signature buckets the
// request shape (dimension, log2 row/ k / group counts, bounds tightness,
// cache warmth) so a handful of queries generalizes to the neighborhood
// the planner (plan/planner.h) must predict for.
//
// The model is deliberately tiny and deterministic: cells keep a running
// mean (no decay, no randomness), predictions fall back through coarser
// signature tiers before giving up, and Serialize() emits a stable
// line-oriented text form that DatasetCatalog persists next to snapshots
// (`<path>.plan`) so a restored session plans as well as the one that was
// saved.
//
// Thread-safety: Observe/Predict/Serialize/Restore are mutex-guarded and
// safe for concurrent callers.

#ifndef FAIRHMS_PLAN_COST_MODEL_H_
#define FAIRHMS_PLAN_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace fairhms {

/// Bucketed problem shape of one solve. Exact field equality defines a
/// model cell; the planner's fallback tiers relax fields right-to-left.
struct CostSignature {
  int d = 0;                 ///< Dataset dimension (exact).
  int n_bucket = 0;          ///< floor(log2(live rows)).
  int k_bucket = 0;          ///< floor(log2(k)).
  int groups_bucket = 0;     ///< floor(log2(num_groups)).
  int tightness_bucket = 0;  ///< round(4 * sum(lower)/k), clamped to [0, 4].
  bool warm = false;         ///< Session cache had resident artifacts.

  static CostSignature Make(int d, uint64_t n, int k, int num_groups,
                            double bounds_tightness, bool cache_warm);

  bool operator<(const CostSignature& o) const;
  bool operator==(const CostSignature& o) const;
};

class CostModel {
 public:
  CostModel() = default;
  CostModel(const CostModel&) = delete;
  CostModel& operator=(const CostModel&) = delete;

  /// Folds one measured solve into the (algorithm, signature) cell's
  /// running means.
  void Observe(const std::string& algorithm, const CostSignature& sig,
               double solve_ms, double happiness_ratio) FAIRHMS_EXCLUDES(mu_);

  struct Estimate {
    double ms = 0.0;
    double happiness_ratio = 0.0;
    uint64_t samples = 0;  ///< 0 = cold (no data for this algorithm).
    int tier = -1;         ///< Fallback tier the estimate came from (0 = exact).
  };

  /// Prediction for running `algorithm` on a problem shaped like `sig`.
  /// Falls back through progressively coarser matches:
  ///   tier 0 — exact signature;
  ///   tier 1 — ignore cache warmth;
  ///   tier 2 — additionally ignore tightness and group count;
  ///   tier 3 — any cell of the algorithm with the same dimension;
  ///   tier 4 — any cell of the algorithm.
  /// Multi-cell tiers combine by sample-weighted mean. samples == 0 means
  /// the model has never seen the algorithm at all.
  Estimate Predict(const std::string& algorithm,
                   const CostSignature& sig) const FAIRHMS_EXCLUDES(mu_);

  /// Total observations across every cell.
  uint64_t observations() const FAIRHMS_EXCLUDES(mu_);

  /// Stable text form: a header line followed by one sorted line per cell.
  /// Equal model states serialize to equal bytes.
  std::string Serialize() const FAIRHMS_EXCLUDES(mu_);

  /// Replaces the model's contents with a previously Serialize()d form.
  /// InvalidArgument on malformed input, leaving the model unchanged.
  Status Restore(const std::string& text) FAIRHMS_EXCLUDES(mu_);

 private:
  struct Cell {
    uint64_t count = 0;
    double mean_ms = 0.0;
    double mean_hr = 0.0;
  };
  using Key = std::pair<std::string, CostSignature>;

  mutable Mutex mu_;
  std::map<Key, Cell> cells_ FAIRHMS_GUARDED_BY(mu_);
};

}  // namespace fairhms

#endif  // FAIRHMS_PLAN_COST_MODEL_H_
